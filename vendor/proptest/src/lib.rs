//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of proptest it uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, [`any`], [`Just`], range and tuple strategies,
//! [`collection::vec`] / [`collection::btree_set`], [`prop_oneof!`], and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test-name seed; there is no shrinking — a failing case panics with
//! the values embedded in the assertion message.

pub mod test_runner {
    //! Test-runner configuration and the deterministic case RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The case's inputs did not satisfy a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// A property violation with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "{reason}"),
                TestCaseError::Reject(reason) => write!(f, "rejected: {reason}"),
            }
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG driving case generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test's name so each property gets a stable,
        /// independent stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike upstream proptest there is no shrinking; `generate` produces a
    /// concrete value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally-weighted alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> core::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.debug_struct("Union")
                .field("options", &self.options.len())
                .finish()
        }
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

pub mod arbitrary {
    //! The [`any`] entry point and the types it supports.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy generating any value of `T` (see [`any`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use std::collections::BTreeSet;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An element-count specification: a fixed size or a range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_exclusive - self.lo) as u64;
            self.lo + rng.below(span) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with up to `size` elements.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Bounded attempts: duplicates may keep the set below target,
            // matching upstream's best-effort semantics.
            for _ in 0..target.saturating_mul(4) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// A b-tree set of values from `element`, sized (best-effort) by `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal: expands each test item in a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    Ok(())
                })();
                match __result {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            __case + 1,
                            stringify!($name),
                            reason
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property; fails the case on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property; fails the case on violation.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Asserts inequality inside a property; fails the case on violation.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} ({})\n  both: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), left
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u32..4096) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4096);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(any::<bool>(), 1..40)) {
            prop_assert!((1..40).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u32), Just(2), Just(3)].prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20 || x == 30, "{}", x);
        }

        #[test]
        fn tuples_and_sets(
            pair in (any::<bool>(), 1usize..10),
            s in crate::collection::btree_set(0usize..100, 0..20),
        ) {
            prop_assert!(pair.1 >= 1);
            prop_assert!(s.len() < 20);
            prop_assume!(pair.0);
            prop_assert!(pair.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let gen = |name: &str| {
            let mut rng = crate::test_runner::TestRng::deterministic(name);
            (0..16).map(|_| (0u64..1000).generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen("a"), gen("a"));
        assert_ne!(gen("a"), gen("b"));
    }
}
