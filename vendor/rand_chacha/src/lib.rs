//! Offline, API-compatible subset of the `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] with the `seed_from_u64` constructor the
//! workspace uses. The generator is a genuine ChaCha core with 8 rounds,
//! seeded by SplitMix64 key expansion; it is deterministic per seed but not
//! bit-compatible with upstream `rand_chacha` (the workspace relies only on
//! seeded determinism).

use rand::{RngCore, SeedableRng};

/// A ChaCha block cipher core with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, s) in x.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*s);
        }
        self.buffer = x;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64-expand the seed into the 256-bit key.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        let mut rng = ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bool_stream_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&ones), "{ones}");
    }
}
