//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Enough surface for the workspace's benchmark harnesses to compile and
//! run without network access: [`Criterion`], [`BenchmarkGroup`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple best-of-N wall-clock timing printed to stdout — no statistics,
//! plots, or baselines.

use std::fmt::Display;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benchmarks.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, like `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// Per-iteration timing harness passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it enough times for a stable reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up.
        black_box(routine());
        let iters = 3u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
        self.iters = iters;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            return;
        }
        let per_iter_ns = self.elapsed_ns as f64 / self.iters as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(b)) => {
                format!(" {:.1} MiB/s", b as f64 / per_iter_ns * 1e9 / (1 << 20) as f64)
            }
            Some(Throughput::Elements(e)) => {
                format!(" {:.1} Melem/s", e as f64 / per_iter_ns * 1e3)
            }
            None => String::new(),
        };
        println!("bench {id}: {per_iter_ns:.0} ns/iter{rate}");
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the work per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::from_parameter(1000), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::new("range", 7), |b| {
            b.iter(|| black_box(7) * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
