//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: [`Rng`],
//! [`RngCore`], [`SeedableRng`], the [`Standard`](distributions::Standard)
//! distribution, uniform ranges for `gen_range`, and
//! [`SliceRandom`](seq::SliceRandom). Generators are deterministic and
//! high-quality (xoshiro-family), but make no attempt to be bit-compatible
//! with upstream `rand` — the workspace only relies on *seeded determinism*,
//! never on specific streams.

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod distributions {
    //! The subset of `rand::distributions` the workspace uses.

    use crate::RngCore;

    /// The standard distribution: uniform over a type's natural domain
    /// (all values for integers and `bool`, `[0, 1)` for floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// Types a distribution can sample.
    pub trait Distribution<T> {
        /// Samples one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

/// Types samplable by [`Rng::gen_range`].
///
/// Mirrors upstream rand's inference shape: the blanket impls below link a
/// `Range<T>` to element type `T`, so untyped integer literals in ranges
/// resolve from how the sampled value is used.
pub trait SampleUniform: Sized + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`](distributions::Standard)
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related extensions (`SliceRandom`).

    use crate::Rng;

    /// Extension trait for random slice operations.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Built-in generators.

    /// Small, fast xoshiro256** generator (the stub's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = crate::rngs::StdRng::seed_from_u64(42);
        let mut b = crate::rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(2);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
