//! Machine-readable performance snapshot: runs the Figure 9 operations on
//! the telemetry-instrumented controller at the paper's DDR3-1600 module
//! configuration and writes a JSON file with per-op throughput, latency,
//! and energy — cross-checked against the analytic Table 3 energy model.
//!
//! * Output path: `BENCH_telemetry.json`, overridable with the
//!   `AMBIT_BENCH_SNAPSHOT` environment variable.
//! * `AMBIT_QUICK` shrinks the repetition count (CI smoke mode) without
//!   changing the code paths.
//! * `bench_snapshot --validate <path>` re-parses a previously written
//!   snapshot and checks its schema and energy agreement, exiting non-zero
//!   on any violation.
//!
//! A second mode benchmarks the batched execution engine:
//!
//! * `bench_snapshot batch` sweeps (channels C, banks-per-channel B) over
//!   {1} × {1, 2, 4, 8} plus the dual-channel points {2} × {4, 8}, runs a
//!   batch of independent `bbop_and`s on every bank through
//!   [`AmbitMemory::execute_batch`], and writes `BENCH_batch.json`
//!   (override: `AMBIT_BENCH_BATCH_SNAPSHOT`, schema v3) with measured
//!   throughput against the analytic [`AmbitConfig`] envelope, the
//!   bank-parallel speedup over serial issue, the OS-threaded wall-clock
//!   ratio, and the persistent executor pool's reuse counters. The
//!   recorded `config.threads` is the pool's actual worker target
//!   (`AMBIT_POOL_THREADS` / host parallelism), not a constant.
//! * `bench_snapshot --validate-batch <path>` checks a batch snapshot:
//!   measured throughput within 10 % of the analytic envelope, speedup at
//!   least 0.8·C·B at every swept point, pool reuse evidence on
//!   multi-core runners — and prints (rather than silently passing) every
//!   sweep row whose wall-clock speedup fell below 1.0.
//!
//! A third mode benchmarks the functional data plane itself:
//!
//! * `bench_snapshot hotpath` sweeps row widths {1 KB, 4 KB, 8 KB} and op
//!   mixes {tra, copy, mixed} over the word-parallel charge-share fast
//!   path versus the forced bit-serial scalar reference
//!   ([`ambit_dram::Subarray::set_scalar_reference`]), plus one
//!   fault-armed point (which must fall back to the scalar path for replay
//!   determinism) and a driver plan-cache hit-rate measurement. Writes
//!   `BENCH_hotpath.json` (override: `AMBIT_BENCH_HOTPATH_SNAPSHOT`) and
//!   self-validates a ≥10× wall-clock speedup on fault-free 8 KB-row TRA
//!   with byte-identical results everywhere.
//! * `bench_snapshot --validate-hotpath <path>` re-checks a previously
//!   written hotpath snapshot.
//!
//! A fourth mode benchmarks device characterization and variation-aware
//! placement:
//!
//! * `bench_snapshot characterization` characterizes one seeded chip
//!   ([`ChipProfile`]) across a voltage/temperature corner sweep, verifies
//!   the profile's byte-stable JSON round trip, then A/B-compares the
//!   resilient executor at the worst-case corner: profile-blind placement
//!   versus variation-aware placement (profile-steered allocation,
//!   alloc-time weak-row pre-remap, per-bin retry de-rating) on the same
//!   `FaultCampaign::from_profile` fault load. Writes
//!   `BENCH_characterization.json` (override:
//!   `AMBIT_BENCH_CHARACTERIZATION_SNAPSHOT`) and self-validates ≥2×
//!   fewer recovery actions (retries + remaps + degrades + pre-remaps)
//!   with byte-identical final vector contents.
//! * `bench_snapshot --validate-characterization <path>` re-checks a
//!   previously written characterization snapshot.
//!
//! A fifth mode benchmarks the boolean function-synthesis compiler:
//!
//! * `bench_snapshot synth` compiles the full 3-input truth-table space
//!   (256 functions) through `ambit-core::synth`, records the aggregate
//!   step/AAP/scratch/optimizer statistics, executes a slice of the
//!   compiled programs on-device and checks each result against its truth
//!   table, then A/B-measures the compiler-generated arithmetic kernels
//!   (`synth_arith::{add,compare_lt,popcount}_synth`) against the
//!   hand-written `arith` baselines on identical data. Writes
//!   `BENCH_synth.json` (override: `AMBIT_BENCH_SYNTH_SNAPSHOT`) and
//!   self-validates byte-identical results with every synth/hand AAP
//!   ratio inside a fixed band.
//! * `bench_snapshot --validate-synth <path>` re-checks a previously
//!   written synth snapshot.
//!
//! The energy figures are *measured through the metrics pipeline* (the
//! controller's `ambit_command_energy_nj` histogram), not read back from
//! the receipts, so this snapshot also exercises the telemetry path end to
//! end.

use std::process::ExitCode;

use ambit_bench::quick_mode;
use ambit_circuit::{CharacterizationConfig, ChipProfile, CircuitParams};
use ambit_core::{
    AllocGroup, AmbitConfig, AmbitController, AmbitMemory, BatchBuilder, BitwiseOp, IssuePolicy,
    PlacementProfile, ResilienceConfig, ResilientExecutor, RowAddress, SubarrayLayout,
};
use ambit_dram::{
    AapMode, BankId, CampaignConfig, DramGeometry, EnergyModel, FaultCampaign, TimingParams,
    PS_PER_NS,
};
use ambit_telemetry::json::{self, Json};
use ambit_telemetry::Registry;

/// Energy agreement tolerance between the measured (metrics-integrated)
/// and analytic Table 3 values: 1 %.
const ENERGY_TOLERANCE: f64 = 0.01;

/// Tolerance between the measured batch throughput and the analytic
/// all-banks envelope: 10 % (command-bus issue stagger is real overhead
/// the analytic model ignores).
const BATCH_ENVELOPE_TOLERANCE: f64 = 0.10;

/// Required bank-parallel speedup over serial issue, as a fraction of the
/// ideal B×.
const BATCH_SPEEDUP_FLOOR: f64 = 0.8;

/// Required wall-clock speedup of the OS-threaded batch path over the
/// single-threaded bank-parallel path at [`WALLCLOCK_FLOOR_BANKS`]+ banks.
/// Only enforced when the snapshot records ≥ 2 available cores: on a
/// single-core runner the threaded path cannot beat serial issue and the
/// measurement only documents the overhead.
const WALLCLOCK_SPEEDUP_FLOOR: f64 = 1.5;

/// Bank count at which [`WALLCLOCK_SPEEDUP_FLOOR`] starts to apply; below
/// this the functional work per wave is too small to amortize thread
/// startup and the column is informational.
const WALLCLOCK_FLOOR_BANKS: u64 = 8;

/// Wall-clock samples per (policy, bank count); the snapshot keeps the
/// fastest, which is the standard guard against scheduler noise.
const WALLCLOCK_SAMPLES: usize = 3;

/// Analytic Table 3 energy of one op over one row, from the paper's
/// command-program structure (Figure 8) and the [`EnergyModel`]
/// coefficients — written independently of the simulator so the snapshot
/// genuinely cross-checks the measured path.
fn analytic_nj_per_row(model: &EnergyModel, op: BitwiseOp) -> f64 {
    let aap = |w1: usize, w2: usize| {
        model.activate_nj(w1) + model.activate_nj(w2) + model.precharge_nj()
    };
    let ap = |w: usize| model.activate_nj(w) + model.precharge_nj();
    match op {
        // copy = AAP(Di, Dk)
        BitwiseOp::Copy => aap(1, 1),
        // not = AAP(Di, B5); AAP(B4, Dk)
        BitwiseOp::Not => 2.0 * aap(1, 1),
        // and/or = 3 plain AAPs + AAP(B12 triple, Dk)
        BitwiseOp::And | BitwiseOp::Or => 3.0 * aap(1, 1) + aap(3, 1),
        // nand/nor = and + AAP(B4, Dk) through the dual-contact row
        BitwiseOp::Nand | BitwiseOp::Nor => 4.0 * aap(1, 1) + aap(3, 1),
        // xor/xnor = 3 AAPs into double-wordline B-rows, 2 triple APs,
        // AAP(C, B), AAP(B12 triple, Dk)
        BitwiseOp::Xor | BitwiseOp::Xnor => {
            3.0 * aap(1, 2) + 2.0 * ap(3) + aap(1, 1) + aap(3, 1)
        }
        // init = AAP(C, Dk)
        BitwiseOp::InitZero | BitwiseOp::InitOne => aap(1, 1),
    }
}

struct OpResult {
    op: BitwiseOp,
    reps: u64,
    latency_ns_per_op: f64,
    ops_per_s: f64,
    energy_nj_per_op: f64,
    energy_nj_per_kb: f64,
    analytic_nj_per_kb: f64,
    error_frac: f64,
    throughput_gops_analytic: f64,
}

/// Runs `reps` repetitions of `op` on a fresh instrumented controller and
/// reads the results back out of the telemetry registry.
fn measure(op: BitwiseOp, reps: u64, config: &AmbitConfig) -> OpResult {
    let geometry = DramGeometry::ddr3_module();
    let mut ctrl = AmbitController::new(geometry, config.timing, config.mode);
    let registry = Registry::default();
    ctrl.set_telemetry(registry.clone());

    let src2 = (op.source_count() == 2).then_some(RowAddress::D(1));
    let mut first_start_ps = None;
    let mut last_end_ps = 0;
    for _ in 0..reps {
        let receipt = ctrl
            .execute(op, BankId::zero(), 0, RowAddress::D(0), src2, RowAddress::D(2))
            .expect("standard op program executes");
        first_start_ps.get_or_insert(receipt.start_ps);
        last_end_ps = last_end_ps.max(receipt.end_ps);
    }
    let elapsed_ns =
        (last_end_ps - first_start_ps.unwrap_or(0)) as f64 / PS_PER_NS as f64;

    // Energy through the metrics pipeline: the per-command energy
    // histogram's sum is the total nanojoules the controller observed.
    let energy = registry
        .histogram_snapshot("ambit_command_energy_nj", &[])
        .expect("controller registers the energy histogram");
    let row_kb = geometry.row_bytes as f64 / 1024.0;
    let energy_nj_per_op = energy.sum / reps as f64;
    let energy_nj_per_kb = energy_nj_per_op / row_kb;
    let analytic_nj_per_kb = analytic_nj_per_row(&EnergyModel::ddr3_1333(), op) / row_kb;
    let latency_ns_per_op = elapsed_ns / reps as f64;
    OpResult {
        op,
        reps,
        latency_ns_per_op,
        ops_per_s: 1e9 / latency_ns_per_op,
        energy_nj_per_op,
        energy_nj_per_kb,
        analytic_nj_per_kb,
        error_frac: (energy_nj_per_kb - analytic_nj_per_kb).abs() / analytic_nj_per_kb,
        throughput_gops_analytic: config
            .throughput_gops(op)
            .expect("standard op compiles"),
    }
}

fn render_snapshot(results: &[OpResult], config: &AmbitConfig, reps: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ambit-bench-telemetry/v1\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"timing\": \"ddr3_1600\", \"mode\": \"overlapped\", \"banks\": {}, \"row_bytes\": {}, \"reps\": {}, \"quick\": {}}},\n",
        config.banks,
        config.row_bytes,
        reps,
        quick_mode()
    ));
    out.push_str("  \"ops\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"reps\": {}, \"latency_ns_per_op\": {}, \"ops_per_s\": {}, \"energy_nj_per_op\": {}, \"energy_nj_per_kb\": {}, \"analytic_energy_nj_per_kb\": {}, \"energy_error_frac\": {}, \"throughput_gops_analytic\": {}}}{}\n",
            json::escape(r.op.mnemonic()),
            r.reps,
            json::number(r.latency_ns_per_op),
            json::number(r.ops_per_s),
            json::number(r.energy_nj_per_op),
            json::number(r.energy_nj_per_kb),
            json::number(r.analytic_nj_per_kb),
            json::number(r.error_frac),
            json::number(r.throughput_gops_analytic),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a snapshot file: schema marker, per-op required fields, and
/// energy agreement within tolerance. Returns human-readable violations.
fn validate_snapshot(text: &str) -> Result<usize, Vec<String>> {
    let mut errors = Vec::new();
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    if doc.get("schema").and_then(Json::as_str) != Some("ambit-bench-telemetry/v1") {
        errors.push("missing or wrong \"schema\" marker".into());
    }
    for key in ["banks", "row_bytes", "reps"] {
        if doc.get("config").and_then(|c| c.get(key)).and_then(Json::as_u64).is_none() {
            errors.push(format!("config.{key} missing or not an integer"));
        }
    }
    let Some(ops) = doc.get("ops").and_then(Json::as_arr) else {
        errors.push("\"ops\" missing or not an array".into());
        return Err(errors);
    };
    if ops.is_empty() {
        errors.push("\"ops\" is empty".into());
    }
    for (i, op) in ops.iter().enumerate() {
        let name = op.get("op").and_then(Json::as_str).unwrap_or("?");
        for key in [
            "latency_ns_per_op",
            "ops_per_s",
            "energy_nj_per_op",
            "energy_nj_per_kb",
            "analytic_energy_nj_per_kb",
            "energy_error_frac",
            "throughput_gops_analytic",
        ] {
            if op.get(key).and_then(Json::as_f64).is_none() {
                errors.push(format!("ops[{i}] ({name}): {key} missing or not a number"));
            }
        }
        if let Some(err) = op.get("energy_error_frac").and_then(Json::as_f64) {
            if err > ENERGY_TOLERANCE {
                errors.push(format!(
                    "ops[{i}] ({name}): energy off the analytic Table 3 model by {:.2}% (> {:.0}%)",
                    err * 100.0,
                    ENERGY_TOLERANCE * 100.0
                ));
            }
        }
    }
    if errors.is_empty() {
        Ok(ops.len())
    } else {
        Err(errors)
    }
}

struct BatchResult {
    channels: usize,
    banks: usize,
    ops: usize,
    makespan_ns_parallel: f64,
    makespan_ns_serial: f64,
    speedup: f64,
    wallclock_speedup: f64,
    measured_gops: f64,
    analytic_gops: f64,
    envelope_error_frac: f64,
    /// Executor-pool counters accumulated over this point's threaded runs.
    pool: ambit_core::PoolStats,
}

/// Queues `per_bank` independent ANDs on each of `banks` banks, submitted
/// round-robin so every bank's chain starts as early as the command bus
/// allows; the whole batch is one dependency wave. Returns the builder and
/// the destination handles for byte-identity readback.
fn build_bank_sweep_batch(
    mem: &mut AmbitMemory,
    banks: usize,
    per_bank: usize,
) -> (BatchBuilder, Vec<ambit_core::BitVectorHandle>) {
    let bits = mem.row_bits();
    let mut operands = Vec::with_capacity(banks);
    for g in 0..banks {
        let group = AllocGroup(g as u32);
        let mut alloc = || mem.alloc_in_group(bits, group).expect("sweep fits in one subarray");
        let a = alloc();
        let b = alloc();
        let dsts: Vec<_> = (0..per_bank).map(|_| alloc()).collect();
        operands.push((a, b, dsts));
    }
    let mut batch = BatchBuilder::new();
    for j in 0..per_bank {
        for (a, b, dsts) in &operands {
            batch.bitwise(BitwiseOp::And, *a, Some(*b), dsts[j]);
        }
    }
    let all_dsts = operands
        .iter()
        .flat_map(|(_, _, dsts)| dsts.iter().copied())
        .collect();
    (batch, all_dsts)
}

/// Measures one (channels, banks) point of the sweep: bank-parallel
/// makespan, serial baseline on an identical fresh module, the analytic
/// envelope at the same point, and the wall-clock speedup of the
/// OS-threaded issue path over single-threaded bank-parallel issue (best
/// of [`WALLCLOCK_SAMPLES`] each, asserted byte-identical first).
///
/// When the executor pool degrades the threaded policy to `BankParallel`
/// (single-worker pool, e.g. a one-core runner), the two policies run the
/// exact same code path — the wall-clock ratio is recorded as 1.0 by
/// definition rather than as scheduler noise around it.
fn measure_batch(channels: usize, banks: usize, per_bank: usize, config: &AmbitConfig) -> BatchResult {
    let geometry = DramGeometry {
        channels,
        banks,
        ..DramGeometry::ddr3_module()
    };
    let total_banks = geometry.total_banks();
    // One sample: fresh module, timed execute_batch, dst readback. Also
    // reports the module's pool counters so threaded runs can accumulate
    // reuse evidence into the snapshot.
    let run = |policy: IssuePolicy| {
        let mut mem = AmbitMemory::new(geometry, config.timing, config.mode);
        let (batch, dsts) = build_bank_sweep_batch(&mut mem, total_banks, per_bank);
        let t0 = std::time::Instant::now();
        let receipt = mem
            .execute_batch(&batch, policy)
            .expect("bank sweep batch executes");
        let wall_s = t0.elapsed().as_secs_f64();
        let readback: Vec<Vec<bool>> = dsts
            .iter()
            .map(|d| mem.peek_bits(*d).expect("dst readable"))
            .collect();
        (receipt, readback, wall_s, mem.pool_stats())
    };
    fn absorb(pool: &mut ambit_core::PoolStats, s: ambit_core::PoolStats) {
        pool.target_workers = s.target_workers;
        pool.workers = pool.workers.max(s.workers);
        pool.jobs_executed += s.jobs_executed;
        pool.inline_jobs += s.inline_jobs;
        pool.cold_spawns += s.cold_spawns;
        pool.warm_dispatches += s.warm_dispatches;
        pool.worker_panics += s.worker_panics;
    }
    let mut pool = ambit_core::PoolStats::default();
    let (parallel, parallel_bits, wall0_parallel, _) = run(IssuePolicy::BankParallel);
    let (serial, _, _, _) = run(IssuePolicy::Serial);
    let (threaded, threaded_bits, wall0_threaded, stats0) =
        run(IssuePolicy::BankParallelThreaded);
    absorb(&mut pool, stats0);
    // The threaded path must be indistinguishable from serial issue in
    // everything but wall clock: receipts (timing, energy, per-op windows,
    // busy attribution) and final memory bytes.
    assert_eq!(
        threaded, parallel,
        "threaded batch receipt diverges from bank-parallel at C={channels} B={banks}"
    );
    assert_eq!(
        threaded_bits, parallel_bits,
        "threaded batch memory image diverges from bank-parallel at C={channels} B={banks}"
    );

    let wallclock_speedup = if pool.target_workers < 2 {
        1.0
    } else {
        let wall_parallel = (1..WALLCLOCK_SAMPLES)
            .map(|_| run(IssuePolicy::BankParallel).2)
            .fold(wall0_parallel, f64::min);
        let mut wall_threaded = wall0_threaded;
        for _ in 1..WALLCLOCK_SAMPLES {
            let (_, _, wall, stats) = run(IssuePolicy::BankParallelThreaded);
            wall_threaded = wall_threaded.min(wall);
            absorb(&mut pool, stats);
        }
        wall_parallel / wall_threaded
    };

    let ops = total_banks * per_bank;
    let makespan_s = parallel.makespan_ps() as f64 / 1e12;
    // Figure 9 units: billions of byte-wide operations per second. The
    // command buses are per-channel, so channels scale the analytic
    // envelope linearly on top of the per-channel bank model.
    let measured_gops = ops as f64 * config.row_bytes as f64 / makespan_s / 1e9;
    let analytic_gops = channels as f64
        * AmbitConfig { banks, ..*config }
            .throughput_gops(BitwiseOp::And)
            .expect("and compiles");
    BatchResult {
        channels,
        banks,
        ops,
        makespan_ns_parallel: parallel.makespan_ps() as f64 / PS_PER_NS as f64,
        makespan_ns_serial: serial.makespan_ps() as f64 / PS_PER_NS as f64,
        speedup: serial.makespan_ps() as f64 / parallel.makespan_ps() as f64,
        wallclock_speedup,
        measured_gops,
        analytic_gops,
        envelope_error_frac: (measured_gops - analytic_gops).abs() / analytic_gops,
        pool,
    }
}

/// Worker threads the batch engine's executor pool will actually use —
/// recorded in the snapshot so the validator knows whether the wall-clock
/// floor is meaningful on the machine that produced it. Honors
/// `AMBIT_POOL_THREADS` and the host's parallelism, exactly like the pool
/// inside every [`AmbitMemory`].
fn available_threads() -> usize {
    AmbitMemory::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
    .pool_stats()
    .target_workers
}

fn render_batch_snapshot(results: &[BatchResult], config: &AmbitConfig, per_bank: usize) -> String {
    let threads = available_threads();
    let mut pool = ambit_core::PoolStats::default();
    for r in results {
        pool.target_workers = r.pool.target_workers;
        pool.jobs_executed += r.pool.jobs_executed;
        pool.inline_jobs += r.pool.inline_jobs;
        pool.cold_spawns += r.pool.cold_spawns;
        pool.warm_dispatches += r.pool.warm_dispatches;
        pool.worker_panics += r.pool.worker_panics;
    }
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ambit-bench-batch/v3\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"timing\": \"ddr3_1600\", \"mode\": \"overlapped\", \"row_bytes\": {}, \"ops_per_bank\": {}, \"threads\": {}, \"quick\": {}}},\n",
        config.row_bytes,
        per_bank,
        threads,
        quick_mode()
    ));
    out.push_str(&format!(
        "  \"pool\": {{\"target_workers\": {}, \"jobs_executed\": {}, \"inline_jobs\": {}, \"cold_spawns\": {}, \"warm_dispatches\": {}, \"worker_panics\": {}}},\n",
        pool.target_workers,
        pool.jobs_executed,
        pool.inline_jobs,
        pool.cold_spawns,
        pool.warm_dispatches,
        pool.worker_panics
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"channels\": {}, \"banks\": {}, \"ops\": {}, \"makespan_ns_parallel\": {}, \"makespan_ns_serial\": {}, \"speedup\": {}, \"wallclock_speedup\": {}, \"measured_gops\": {}, \"analytic_gops\": {}, \"envelope_error_frac\": {}}}{}\n",
            r.channels,
            r.banks,
            r.ops,
            json::number(r.makespan_ns_parallel),
            json::number(r.makespan_ns_serial),
            json::number(r.speedup),
            json::number(r.wallclock_speedup),
            json::number(r.measured_gops),
            json::number(r.analytic_gops),
            json::number(r.envelope_error_frac),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a batch snapshot: schema marker, per-entry fields, measured
/// throughput within [`BATCH_ENVELOPE_TOLERANCE`] of the analytic
/// envelope, speedup ≥ [`BATCH_SPEEDUP_FLOOR`]·C·B at every sweep point,
/// pool-reuse evidence on multi-core runners, and — when the recorded
/// runner had ≥ 2 cores — wall-clock speedup ≥ [`WALLCLOCK_SPEEDUP_FLOOR`]
/// at [`WALLCLOCK_FLOOR_BANKS`]+ total banks.
///
/// On success also returns warnings: one line per sweep row whose
/// wall-clock speedup fell below 1.0 (the threaded path losing to
/// single-threaded issue is worth surfacing even where the hard floor
/// does not apply).
fn validate_batch_snapshot(text: &str) -> Result<(usize, Vec<String>), Vec<String>> {
    let mut errors = Vec::new();
    let mut warnings = Vec::new();
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    if doc.get("schema").and_then(Json::as_str) != Some("ambit-bench-batch/v3") {
        errors.push("missing or wrong \"schema\" marker".into());
    }
    for key in ["row_bytes", "ops_per_bank", "threads"] {
        if doc.get("config").and_then(|c| c.get(key)).and_then(Json::as_u64).is_none() {
            errors.push(format!("config.{key} missing or not an integer"));
        }
    }
    let threads = doc
        .get("config")
        .and_then(|c| c.get("threads"))
        .and_then(Json::as_u64)
        .unwrap_or(1);
    for key in ["target_workers", "jobs_executed", "cold_spawns", "warm_dispatches"] {
        if doc.get("pool").and_then(|p| p.get(key)).and_then(Json::as_u64).is_none() {
            errors.push(format!("pool.{key} missing or not an integer"));
        }
    }
    let pool_field =
        |key: &str| doc.get("pool").and_then(|p| p.get(key)).and_then(Json::as_u64).unwrap_or(0);
    if threads >= 2 {
        // A multi-worker pool must actually have run pool jobs, and the
        // persistent workers must have served more dispatches than the
        // cold spawns that created them — the reuse the pool exists for.
        if pool_field("jobs_executed") == 0 {
            errors.push("pool.jobs_executed is 0 on a multi-core runner".into());
        }
        if pool_field("warm_dispatches") < pool_field("cold_spawns") {
            errors.push(format!(
                "pool reuse missing: {} warm dispatches vs {} cold spawns",
                pool_field("warm_dispatches"),
                pool_field("cold_spawns")
            ));
        }
    }
    let Some(sweep) = doc.get("sweep").and_then(Json::as_arr) else {
        errors.push("\"sweep\" missing or not an array".into());
        return Err(errors);
    };
    if sweep.is_empty() {
        errors.push("\"sweep\" is empty".into());
    }
    for (i, entry) in sweep.iter().enumerate() {
        let Some(banks) = entry.get("banks").and_then(Json::as_u64) else {
            errors.push(format!("sweep[{i}]: banks missing or not an integer"));
            continue;
        };
        let Some(channels) = entry.get("channels").and_then(Json::as_u64) else {
            errors.push(format!("sweep[{i}]: channels missing or not an integer"));
            continue;
        };
        let total_banks = channels * banks;
        for key in [
            "makespan_ns_parallel",
            "makespan_ns_serial",
            "speedup",
            "wallclock_speedup",
            "measured_gops",
            "analytic_gops",
            "envelope_error_frac",
        ] {
            if entry.get(key).and_then(Json::as_f64).is_none() {
                errors.push(format!(
                    "sweep[{i}] (C={channels} B={banks}): {key} missing or not a number"
                ));
            }
        }
        if let Some(err) = entry.get("envelope_error_frac").and_then(Json::as_f64) {
            if err > BATCH_ENVELOPE_TOLERANCE {
                errors.push(format!(
                    "sweep[{i}] (C={channels} B={banks}): measured throughput off the analytic envelope by {:.1}% (> {:.0}%)",
                    err * 100.0,
                    BATCH_ENVELOPE_TOLERANCE * 100.0
                ));
            }
        }
        if let Some(speedup) = entry.get("speedup").and_then(Json::as_f64) {
            let floor = BATCH_SPEEDUP_FLOOR * total_banks as f64;
            if speedup < floor {
                errors.push(format!(
                    "sweep[{i}] (C={channels} B={banks}): bank-parallel speedup {speedup:.2}x below the {floor:.1}x floor"
                ));
            }
        }
        if let Some(wallclock) = entry.get("wallclock_speedup").and_then(Json::as_f64) {
            if threads >= 2
                && total_banks >= WALLCLOCK_FLOOR_BANKS
                && wallclock < WALLCLOCK_SPEEDUP_FLOOR
            {
                errors.push(format!(
                    "sweep[{i}] (C={channels} B={banks}): wall-clock speedup {wallclock:.2}x below the {WALLCLOCK_SPEEDUP_FLOOR:.1}x floor on a {threads}-core runner"
                ));
            }
            if wallclock < 1.0 {
                warnings.push(format!(
                    "sweep[{i}] (C={channels} B={banks}): threaded issue LOST to single-threaded bank-parallel wall-clock ({wallclock:.2}x)"
                ));
            }
        }
    }
    if errors.is_empty() {
        Ok((sweep.len(), warnings))
    } else {
        Err(errors)
    }
}

/// Required wall-clock speedup of the word-parallel charge-share fast path
/// over the retained scalar reference for fault-free 3-row TRA on 8 KB
/// rows.
const TRA_SPEEDUP_FLOOR: f64 = 10.0;

/// Coarse absolute regression floor on fast-path TRA throughput at 8 KB
/// rows: three orders of magnitude below what a release build measures, so
/// it only trips on a genuine fast-path regression (e.g. falling back to
/// the bit-serial loop), not on a slow CI machine.
const HOTPATH_OPS_FLOOR: f64 = 5_000.0;

/// Required driver plan-cache hit rate for a repeated same-shape op loop.
const PLAN_CACHE_HIT_RATE_FLOOR: f64 = 0.9;

struct HotpathResult {
    row_bytes: usize,
    mix: &'static str,
    fault_armed: bool,
    reps: u64,
    wall_ns_fast: f64,
    wall_ns_scalar: f64,
    ops_per_s_fast: f64,
    ops_per_s_scalar: f64,
    speedup: f64,
    identical: bool,
}

/// Deterministic pseudo-random row content (keeps the bench free of RNG
/// state while still exercising data-dependent TRA outcomes).
fn seeded_row(bits: usize, row: usize, salt: usize) -> ambit_dram::BitRow {
    ambit_dram::BitRow::from_fn(bits, |i| {
        let x = (i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((row as u64) << 32)
            .wrapping_add(salt as u64);
        (x ^ (x >> 29)).count_ones() % 2 == 1
    })
}

/// Runs one op-mix loop on a subarray and returns a state fingerprint
/// (every row plus the last sensed value) for the byte-identity check.
fn run_hotpath_mix(
    sa: &mut ambit_dram::Subarray,
    mix: &str,
    reps: u64,
) -> Vec<ambit_dram::BitRow> {
    use ambit_dram::Wordline;
    let rows = sa.rows();
    let mut last_sense = None;
    for i in 0..reps as usize {
        match mix {
            // Rotating fault-free TRAs: each overwrites its three source
            // rows with their majority, so state evolves across reps.
            "tra" => {
                let wls = [
                    Wordline::data(i % rows),
                    Wordline::data((i + 2) % rows),
                    Wordline::data((i + 5) % rows),
                ];
                last_sense = Some(sa.activate(&wls).expect("TRA executes").clone());
                sa.precharge().expect("precharge after TRA");
            }
            // RowClone-FPM copies: ACTIVATE src, back-to-back ACTIVATE dst.
            "copy" => {
                sa.activate(&[Wordline::data(i % rows)]).expect("activate src");
                last_sense = Some(
                    sa.activate(&[Wordline::data((i + 3) % rows)])
                        .expect("copy activate")
                        .clone(),
                );
                sa.precharge().expect("precharge after copy");
            }
            // Alternating copy and TRA, the shape of a real AAP program.
            "mixed" => {
                if i % 2 == 0 {
                    sa.activate(&[Wordline::data(i % rows)]).expect("activate src");
                    sa.activate(&[Wordline::data((i + 3) % rows)]).expect("copy");
                } else {
                    let wls = [
                        Wordline::data(i % rows),
                        Wordline::data((i + 2) % rows),
                        Wordline::data((i + 5) % rows),
                    ];
                    last_sense = Some(sa.activate(&wls).expect("TRA executes").clone());
                }
                sa.precharge().expect("precharge");
            }
            other => panic!("unknown mix {other}"),
        }
    }
    let mut fingerprint: Vec<ambit_dram::BitRow> = (0..rows).map(|r| sa.peek_row(r)).collect();
    fingerprint.extend(last_sense);
    fingerprint
}

/// Measures one (row width, op mix) point: identical seeded subarrays run
/// the same loop with the fast path enabled and forced-scalar, wall-clock
/// timed, and their final states are compared bit for bit.
fn measure_hotpath(
    row_bytes: usize,
    mix: &'static str,
    reps: u64,
    fault_rate: f64,
) -> HotpathResult {
    use ambit_dram::Subarray;
    const ROWS: usize = 8;
    let bits = row_bytes * 8;
    let mk = |force_scalar: bool| {
        let mut sa = Subarray::new(ROWS, bits);
        sa.set_scalar_reference(force_scalar);
        if fault_rate > 0.0 {
            sa.set_tra_fault_rate(fault_rate).expect("valid rate");
        }
        for r in 0..ROWS {
            sa.poke_row(r, seeded_row(bits, r, row_bytes));
        }
        sa
    };

    let mut fast = mk(false);
    let t0 = std::time::Instant::now();
    let fp_fast = run_hotpath_mix(&mut fast, mix, reps);
    let wall_fast = t0.elapsed();

    let mut scalar = mk(true);
    let t1 = std::time::Instant::now();
    let fp_scalar = run_hotpath_mix(&mut scalar, mix, reps);
    let wall_scalar = t1.elapsed();

    let wall_ns_fast = wall_fast.as_nanos().max(1) as f64;
    let wall_ns_scalar = wall_scalar.as_nanos().max(1) as f64;
    HotpathResult {
        row_bytes,
        mix,
        fault_armed: fault_rate > 0.0,
        reps,
        wall_ns_fast,
        wall_ns_scalar,
        ops_per_s_fast: reps as f64 * 1e9 / wall_ns_fast,
        ops_per_s_scalar: reps as f64 * 1e9 / wall_ns_scalar,
        speedup: wall_ns_scalar / wall_ns_fast,
        identical: fp_fast == fp_scalar,
    }
}

/// Exercises the driver plan cache with a repeated same-shape query loop
/// (the bitmap-index / BitWeaving access pattern) and returns (reps, hits,
/// misses).
fn measure_plan_cache(reps: u64) -> (u64, u64, u64) {
    let mut mem = AmbitMemory::ddr3_module();
    let bits = mem.row_bits();
    let a = mem.alloc(bits).expect("alloc");
    let b = mem.alloc(bits).expect("alloc");
    let d = mem.alloc(bits).expect("alloc");
    mem.poke_bits(a, &vec![true; bits]).expect("poke");
    mem.poke_bits(b, &vec![false; bits]).expect("poke");
    for _ in 0..reps {
        mem.bitwise(BitwiseOp::And, a, Some(b), d).expect("and");
    }
    let (hits, misses) = mem.plan_cache_stats();
    (reps, hits, misses)
}

fn render_hotpath_snapshot(
    results: &[HotpathResult],
    plan_cache: (u64, u64, u64),
    reps_tra: u64,
) -> String {
    let (pc_reps, pc_hits, pc_misses) = plan_cache;
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ambit-bench-hotpath/v1\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"rows\": 8, \"reps_tra\": {}, \"quick\": {}}},\n",
        reps_tra,
        quick_mode()
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"row_bytes\": {}, \"mix\": \"{}\", \"fault_armed\": {}, \"reps\": {}, \"wall_ns_fast\": {}, \"wall_ns_scalar\": {}, \"ops_per_s_fast\": {}, \"ops_per_s_scalar\": {}, \"speedup\": {}, \"identical\": {}}}{}\n",
            r.row_bytes,
            json::escape(r.mix),
            r.fault_armed,
            r.reps,
            json::number(r.wall_ns_fast),
            json::number(r.wall_ns_scalar),
            json::number(r.ops_per_s_fast),
            json::number(r.ops_per_s_scalar),
            json::number(r.speedup),
            r.identical,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"plan_cache\": {{\"reps\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {}}}\n",
        pc_reps,
        pc_hits,
        pc_misses,
        json::number(pc_hits as f64 / (pc_hits + pc_misses).max(1) as f64)
    ));
    out.push_str("}\n");
    out
}

/// Validates a hotpath snapshot: schema marker, per-entry fields, byte
/// identity everywhere, the ≥[`TRA_SPEEDUP_FLOOR`] fast-path speedup and
/// the [`HOTPATH_OPS_FLOOR`] absolute floor on fault-free 8 KB TRA, and the
/// plan-cache hit rate.
fn validate_hotpath_snapshot(text: &str) -> Result<usize, Vec<String>> {
    let mut errors = Vec::new();
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    if doc.get("schema").and_then(Json::as_str) != Some("ambit-bench-hotpath/v1") {
        errors.push("missing or wrong \"schema\" marker".into());
    }
    let Some(sweep) = doc.get("sweep").and_then(Json::as_arr) else {
        errors.push("\"sweep\" missing or not an array".into());
        return Err(errors);
    };
    if sweep.is_empty() {
        errors.push("\"sweep\" is empty".into());
    }
    let mut tra_8k_checked = false;
    for (i, entry) in sweep.iter().enumerate() {
        let mix = entry.get("mix").and_then(Json::as_str).unwrap_or("?");
        let row_bytes = entry.get("row_bytes").and_then(Json::as_u64).unwrap_or(0);
        for key in [
            "wall_ns_fast",
            "wall_ns_scalar",
            "ops_per_s_fast",
            "ops_per_s_scalar",
            "speedup",
        ] {
            if entry.get(key).and_then(Json::as_f64).is_none() {
                errors.push(format!(
                    "sweep[{i}] ({mix}@{row_bytes}B): {key} missing or not a number"
                ));
            }
        }
        match entry.get("identical") {
            Some(Json::Bool(true)) => {}
            _ => errors.push(format!(
                "sweep[{i}] ({mix}@{row_bytes}B): fast and scalar paths not byte-identical"
            )),
        }
        let fault_armed = matches!(entry.get("fault_armed"), Some(Json::Bool(true)));
        if mix == "tra" && !fault_armed && row_bytes == 8192 {
            tra_8k_checked = true;
            if let Some(speedup) = entry.get("speedup").and_then(Json::as_f64) {
                if speedup < TRA_SPEEDUP_FLOOR {
                    errors.push(format!(
                        "sweep[{i}]: fault-free 8 KB TRA speedup {speedup:.1}x below the {TRA_SPEEDUP_FLOOR:.0}x floor"
                    ));
                }
            }
            if let Some(ops) = entry.get("ops_per_s_fast").and_then(Json::as_f64) {
                if ops < HOTPATH_OPS_FLOOR {
                    errors.push(format!(
                        "sweep[{i}]: fast-path 8 KB TRA throughput {ops:.0} ops/s below the coarse {HOTPATH_OPS_FLOOR:.0} ops/s regression floor"
                    ));
                }
            }
        }
    }
    if !tra_8k_checked {
        errors.push("sweep has no fault-free 8 KB TRA entry to hold to the speedup floor".into());
    }
    match doc.get("plan_cache").and_then(|p| p.get("hit_rate")).and_then(Json::as_f64) {
        Some(rate) if rate >= PLAN_CACHE_HIT_RATE_FLOOR => {}
        Some(rate) => errors.push(format!(
            "plan cache hit rate {rate:.3} below the {PLAN_CACHE_HIT_RATE_FLOOR} floor"
        )),
        None => errors.push("plan_cache.hit_rate missing or not a number".into()),
    }
    if errors.is_empty() {
        Ok(sweep.len())
    } else {
        Err(errors)
    }
}

/// The `bench_snapshot hotpath` entry point: sweep row widths and op mixes
/// over the word-parallel and scalar-reference data planes, print the
/// table, self-validate (speedup, identity, plan-cache hit rate), write the
/// JSON snapshot.
fn hotpath_main() -> ExitCode {
    let reps_tra: u64 = if quick_mode() { 6 } else { 24 };
    let reps_cache: u64 = if quick_mode() { 16 } else { 64 };
    let mut results = Vec::new();
    for row_bytes in [1024usize, 4096, 8192] {
        for mix in ["tra", "copy", "mixed"] {
            results.push(measure_hotpath(row_bytes, mix, reps_tra, 0.0));
        }
    }
    // A fault-armed subarray must fall back to the scalar reference so the
    // deterministic per-bit flip stream replays unchanged.
    results.push(measure_hotpath(8192, "tra", reps_tra, 0.001));
    let plan_cache = measure_plan_cache(reps_cache);

    println!("hotpath sweep, {reps_tra} reps/point (8-row subarrays):");
    for r in &results {
        println!(
            "  {:>5}B {:>5}{}: fast {:>12.0} ops/s  scalar {:>10.0} ops/s  speedup {:8.1}x  identical {}",
            r.row_bytes,
            r.mix,
            if r.fault_armed { " (fault-armed)" } else { "" },
            r.ops_per_s_fast,
            r.ops_per_s_scalar,
            r.speedup,
            r.identical,
        );
    }
    let (pc_reps, pc_hits, pc_misses) = plan_cache;
    println!(
        "  plan cache: {pc_reps} same-shape ops -> {pc_hits} hits / {pc_misses} misses"
    );

    let snapshot = render_hotpath_snapshot(&results, plan_cache, reps_tra);
    if let Err(errors) = validate_hotpath_snapshot(&snapshot) {
        for e in &errors {
            eprintln!("self-validation failed: {e}");
        }
        return ExitCode::FAILURE;
    }
    let path = std::env::var("AMBIT_BENCH_HOTPATH_SNAPSHOT")
        .unwrap_or_else(|_| "BENCH_hotpath.json".to_string());
    if let Err(e) = std::fs::write(&path, &snapshot) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {path} (8 KB TRA fast path >= {TRA_SPEEDUP_FLOOR:.0}x over the scalar reference, byte-identical)"
    );
    ExitCode::SUCCESS
}

/// The `bench_snapshot batch` entry point: sweep (channels, banks) points,
/// print the scaling table, self-validate, write the JSON snapshot.
fn batch_main() -> ExitCode {
    let config = AmbitConfig::ddr3_module();
    let per_bank = if quick_mode() { 8 } else { 32 };
    let results: Vec<BatchResult> = [(1, 1), (1, 2), (1, 4), (1, 8), (2, 4), (2, 8)]
        .into_iter()
        .map(|(channels, banks)| measure_batch(channels, banks, per_bank, &config))
        .collect();

    println!(
        "batch channel/bank-scaling sweep @ DDR3-1600, {per_bank} and-ops/bank, {} pool workers:",
        available_threads()
    );
    for r in &results {
        println!(
            "  C={} B={}: {:6} ops  makespan {:8.0} ns (serial {:9.0} ns)  speedup {:5.2}x  wallclock {:5.2}x  {:7.1} GOps/s measured vs {:7.1} analytic (err {:.2}%)",
            r.channels,
            r.banks,
            r.ops,
            r.makespan_ns_parallel,
            r.makespan_ns_serial,
            r.speedup,
            r.wallclock_speedup,
            r.measured_gops,
            r.analytic_gops,
            r.envelope_error_frac * 100.0,
        );
    }

    let snapshot = render_batch_snapshot(&results, &config, per_bank);
    match validate_batch_snapshot(&snapshot) {
        Ok((_, warnings)) => {
            for w in &warnings {
                eprintln!("warning: {w}");
            }
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("self-validation failed: {e}");
            }
            return ExitCode::FAILURE;
        }
    }
    let path = std::env::var("AMBIT_BENCH_BATCH_SNAPSHOT")
        .unwrap_or_else(|_| "BENCH_batch.json".to_string());
    if let Err(e) = std::fs::write(&path, &snapshot) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {path} (throughput within {:.0}% of the analytic envelope, speedup >= {:.1}*C*B, threaded path byte-identical)",
        BATCH_ENVELOPE_TOLERANCE * 100.0,
        BATCH_SPEEDUP_FLOOR
    );
    ExitCode::SUCCESS
}

/// Required factor between the profile-blind and variation-aware recovery
/// action counts (retries + remaps + degrades + pre-remaps).
const ACTION_REDUCTION_FLOOR: f64 = 2.0;

/// The blind run must do real recovery work for the comparison to mean
/// anything; below this the A/B is vacuous and the snapshot is rejected.
const MIN_BLIND_ACTIONS: u64 = 4;

/// Base process-variation level of the simulated chip: inside the paper's
/// ±6 % reliable envelope at the nominal corner, marginal once undervolted
/// and heated.
const BASE_VARIATION_LEVEL: f64 = 0.06;

/// The Table 2 worst-case corner the A/B runs at: deepest undervolt and
/// hottest temperature of the sweep.
const AB_VOLTAGE: f64 = 0.8;
const AB_TEMP_C: f64 = 85.0;

/// Target band for the default-placement subarray's TRA failure rate at
/// the worst-case corner: high enough that profile-blind placement pays
/// steady retries, low enough that it stays under the degrade bound (the
/// regime where placement, not abandonment, decides the recovery bill).
const AB_RATE_BAND: (f64, f64) = (0.004, 0.012);

/// The strongest subarray must be genuinely strong at the corner, and not
/// the one blind placement happens to use.
const AB_STRONG_MAX: f64 = 1e-3;

/// Chip-seed scan range: the first seed whose profile puts the blind
/// placement target in [`AB_RATE_BAND`] with a strong alternative is the
/// benchmark chip. Deterministic — the scan order never changes.
const SEED_SCAN_BASE: u64 = 0xC0FF_EE00;
const SEED_SCAN_WIDTH: u64 = 64;

/// Characterization config for the bench geometry at one V/T corner.
fn corner_config(
    geometry: &DramGeometry,
    first_data_row: usize,
    seed: u64,
    trials: u64,
    voltage: f64,
    temperature_c: f64,
) -> CharacterizationConfig {
    let mut cfg = CharacterizationConfig::for_geometry(
        geometry.total_banks(),
        geometry.subarrays_per_bank,
        geometry.rows_per_subarray,
        geometry.row_bits(),
    );
    cfg.seed = seed;
    cfg.first_eligible_row = first_data_row;
    cfg.variation_level = BASE_VARIATION_LEVEL;
    cfg.trials_per_subarray = trials;
    cfg.voltage_scale = voltage;
    cfg.temperature_c = temperature_c;
    cfg
}

/// Scans chip seeds at the worst-case corner for one where profile-blind
/// placement (always subarray flat 0) lands on a marginal subarray while a
/// genuinely strong one exists — the chip for which characterization pays.
fn pick_ab_chip(
    params: &CircuitParams,
    geometry: &DramGeometry,
    first_data_row: usize,
    trials: u64,
) -> Option<ChipProfile> {
    for k in 0..SEED_SCAN_WIDTH {
        let cfg = corner_config(
            geometry,
            first_data_row,
            SEED_SCAN_BASE + k,
            trials,
            AB_VOLTAGE,
            AB_TEMP_C,
        );
        let chip = ChipProfile::characterize(params, &cfg).expect("corner config is valid");
        let rates = chip.rates();
        let blind_rate = rates[0];
        let strongest = rates.iter().copied().fold(f64::INFINITY, f64::min);
        if (AB_RATE_BAND.0..=AB_RATE_BAND.1).contains(&blind_rate)
            && strongest <= AB_STRONG_MAX
            && strongest < blind_rate
        {
            return Some(chip);
        }
    }
    None
}

struct CornerResult {
    voltage: f64,
    temperature_c: f64,
    effective_level: f64,
    min_rate: f64,
    max_rate: f64,
    weak_subarrays: usize,
    weak_cells: usize,
}

/// Characterizes the chip seed at one corner and summarizes the map.
fn measure_corner(
    params: &CircuitParams,
    geometry: &DramGeometry,
    first_data_row: usize,
    seed: u64,
    trials: u64,
    voltage: f64,
    temperature_c: f64,
) -> CornerResult {
    let cfg = corner_config(geometry, first_data_row, seed, trials, voltage, temperature_c);
    let chip = ChipProfile::characterize(params, &cfg).expect("corner config is valid");
    let rates = chip.rates();
    CornerResult {
        voltage,
        temperature_c,
        effective_level: cfg.effective_level(),
        min_rate: rates.iter().copied().fold(f64::INFINITY, f64::min),
        max_rate: rates.iter().copied().fold(0.0, f64::max),
        weak_subarrays: chip.weak_subarray_count(),
        weak_cells: chip.weak_cells().iter().map(Vec::len).sum(),
    }
}

/// Deterministic operand bits (keeps the A/B free of RNG state).
fn seeded_bits(bits: usize, salt: u64) -> Vec<bool> {
    (0..bits)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(salt);
            (x ^ (x >> 31)).count_ones() % 2 == 1
        })
        .collect()
}

struct AbSide {
    retries: u64,
    remaps: u64,
    degrades: u64,
    preremaps: u64,
    cpu_fallbacks: u64,
    actions: u64,
    finals: Vec<Vec<bool>>,
}

/// Runs the A/B workload on one side: same chip, same
/// [`FaultCampaign::from_profile`] fault load, with or without the
/// variation-aware stack (profile-steered placement, alloc-time weak-row
/// pre-remap, per-bin retry de-rating).
fn run_ab_side(chip: &ChipProfile, aware: bool, ops: usize) -> AbSide {
    let geometry = DramGeometry::tiny();
    let mut mem = AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
    if aware {
        mem.install_profile(PlacementProfile {
            order: chip.strength_order(),
            weak_cells: chip.weak_cells(),
            bins: chip.bin_codes(),
        })
        .expect("profile matches the bench geometry");
    }
    mem.reserve_spare_rows(3).expect("spares fit in the subarray");
    let campaign = FaultCampaign::from_profile(
        CampaignConfig {
            seed: 0xBE9C_0001,
            base_tra_rate: 0.0,
            stuck_cells_per_subarray: 0,
            weak_cells_per_subarray: 0,
            decay_probability: 0.0,
            first_eligible_row: chip.config.first_eligible_row,
            ..CampaignConfig::default()
        },
        &geometry,
        &chip.rates(),
        &chip.weak_cells(),
    )
    .expect("profile shape matches the geometry");
    let cfg = if aware {
        ResilienceConfig {
            bin_retry_multipliers: [0.5, 1.0, 2.0],
            ..ResilienceConfig::default()
        }
    } else {
        ResilienceConfig::default()
    };
    let mut exec = ResilientExecutor::with_campaign(mem, cfg, campaign)
        .expect("campaign applies to the bench geometry");
    let registry = Registry::default();
    exec.set_telemetry(registry.clone());

    let bits = exec.memory().row_bits();
    let a = exec.alloc(bits).expect("alloc a");
    let b = exec.alloc(bits).expect("alloc b");
    let out = exec.alloc(bits).expect("alloc out");
    let da = seeded_bits(bits, 0x51);
    let db = seeded_bits(bits, 0xA7);
    exec.write(a, &da).expect("write a");
    exec.write(b, &db).expect("write b");
    let cycle = [BitwiseOp::And, BitwiseOp::Or, BitwiseOp::Xor];
    for k in 0..ops {
        exec.bitwise(cycle[k % cycle.len()], a, Some(b), out)
            .expect("resilient op completes");
    }
    let finals = vec![
        exec.read(a).expect("read a"),
        exec.read(b).expect("read b"),
        exec.read(out).expect("read out"),
    ];
    let report = *exec.report();
    let preremaps = registry
        .counter_value("ambit_characterization_preremaps_total", &[])
        .unwrap_or(0);
    let degrades = u64::from(report.degraded);
    AbSide {
        retries: report.retries,
        remaps: report.remaps,
        degrades,
        preremaps,
        cpu_fallbacks: report.cpu_fallbacks,
        actions: report.retries + report.remaps + degrades + preremaps,
        finals,
    }
}

/// CPU ground truth for the A/B workload's final vector contents.
fn ab_truth(bits: usize, ops: usize) -> Vec<Vec<bool>> {
    let da = seeded_bits(bits, 0x51);
    let db = seeded_bits(bits, 0xA7);
    let cycle = [BitwiseOp::And, BitwiseOp::Or, BitwiseOp::Xor];
    let last = cycle[(ops - 1) % cycle.len()];
    let out = (0..bits)
        .map(|i| last.apply_words(da[i] as u64, db[i] as u64) & 1 == 1)
        .collect();
    vec![da, db, out]
}

fn render_characterization_snapshot(
    chip: &ChipProfile,
    corners: &[CornerResult],
    roundtrip_identical: bool,
    ops: usize,
    blind: &AbSide,
    aware: &AbSide,
    identical: bool,
) -> String {
    let side = |s: &AbSide| {
        format!(
            "{{\"retries\": {}, \"remaps\": {}, \"degrades\": {}, \"preremaps\": {}, \"cpu_fallbacks\": {}, \"actions\": {}}}",
            s.retries, s.remaps, s.degrades, s.preremaps, s.cpu_fallbacks, s.actions
        )
    };
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ambit-bench-characterization/v1\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"seed\": \"{}\", \"banks\": {}, \"subarrays_per_bank\": {}, \"rows_per_subarray\": {}, \"row_bits\": {}, \"trials_per_subarray\": {}, \"base_variation_level\": {}, \"quick\": {}}},\n",
        chip.config.seed,
        chip.config.banks,
        chip.config.subarrays_per_bank,
        chip.config.rows_per_subarray,
        chip.config.row_bits,
        chip.config.trials_per_subarray,
        json::number(BASE_VARIATION_LEVEL),
        quick_mode()
    ));
    out.push_str(&format!(
        "  \"profile_roundtrip_identical\": {roundtrip_identical},\n"
    ));
    out.push_str("  \"sweep\": [\n");
    for (i, c) in corners.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"voltage\": {}, \"temperature_c\": {}, \"effective_level\": {}, \"min_rate\": {}, \"max_rate\": {}, \"weak_subarrays\": {}, \"weak_cells\": {}}}{}\n",
            json::number(c.voltage),
            json::number(c.temperature_c),
            json::number(c.effective_level),
            json::number(c.min_rate),
            json::number(c.max_rate),
            c.weak_subarrays,
            c.weak_cells,
            if i + 1 < corners.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"ab\": {{\"voltage\": {}, \"temperature_c\": {}, \"ops\": {}, \"blind\": {}, \"aware\": {}, \"action_ratio\": {}, \"identical\": {}}}\n",
        json::number(AB_VOLTAGE),
        json::number(AB_TEMP_C),
        ops,
        side(blind),
        side(aware),
        json::number(blind.actions as f64 / aware.actions.max(1) as f64),
        identical
    ));
    out.push_str("}\n");
    out
}

/// Validates a characterization snapshot: schema marker, byte-stable
/// profile round trip, a non-empty corner sweep, byte-identical A/B
/// results, and the ≥[`ACTION_REDUCTION_FLOOR`]× recovery-action reduction
/// from variation-aware placement.
fn validate_characterization_snapshot(text: &str) -> Result<usize, Vec<String>> {
    let mut errors = Vec::new();
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    if doc.get("schema").and_then(Json::as_str) != Some("ambit-bench-characterization/v1") {
        errors.push("missing or wrong \"schema\" marker".into());
    }
    for key in [
        "banks",
        "subarrays_per_bank",
        "rows_per_subarray",
        "row_bits",
        "trials_per_subarray",
    ] {
        if doc.get("config").and_then(|c| c.get(key)).and_then(Json::as_u64).is_none() {
            errors.push(format!("config.{key} missing or not an integer"));
        }
    }
    if !matches!(doc.get("profile_roundtrip_identical"), Some(Json::Bool(true))) {
        errors.push("profile JSON round trip was not byte-identical".into());
    }
    match doc.get("sweep").and_then(Json::as_arr) {
        Some(sweep) if !sweep.is_empty() => {
            for (i, c) in sweep.iter().enumerate() {
                for key in ["voltage", "temperature_c", "effective_level", "min_rate", "max_rate"] {
                    if c.get(key).and_then(Json::as_f64).is_none() {
                        errors.push(format!("sweep[{i}]: {key} missing or not a number"));
                    }
                }
            }
        }
        _ => errors.push("\"sweep\" missing, not an array, or empty".into()),
    }
    let Some(ab) = doc.get("ab") else {
        errors.push("\"ab\" section missing".into());
        return Err(errors);
    };
    let actions = |who: &str| -> Option<u64> {
        ab.get(who).and_then(|s| s.get("actions")).and_then(Json::as_u64)
    };
    match (actions("blind"), actions("aware")) {
        (Some(blind), Some(aware)) => {
            if blind < MIN_BLIND_ACTIONS {
                errors.push(format!(
                    "blind placement saw only {blind} recovery actions (< {MIN_BLIND_ACTIONS}); the A/B is vacuous"
                ));
            }
            if (blind as f64) < ACTION_REDUCTION_FLOOR * aware as f64 {
                errors.push(format!(
                    "variation-aware placement reduced recovery actions only {blind} -> {aware}, below the {ACTION_REDUCTION_FLOOR}x floor"
                ));
            }
        }
        _ => errors.push("ab.blind.actions / ab.aware.actions missing or not integers".into()),
    }
    if !matches!(ab.get("identical"), Some(Json::Bool(true))) {
        errors.push("blind and aware final vector contents were not byte-identical".into());
    }
    if errors.is_empty() {
        Ok(doc.get("sweep").and_then(Json::as_arr).map_or(0, <[Json]>::len))
    } else {
        Err(errors)
    }
}

/// The `bench_snapshot characterization` entry point: pick the chip seed,
/// sweep V/T corners, verify the profile round trip, A/B the resilient
/// executor at the worst-case corner, self-validate, write the snapshot.
fn characterization_main() -> ExitCode {
    let params = CircuitParams::ddr3_55nm();
    let geometry = DramGeometry::tiny();
    let first_data_row = SubarrayLayout::new(geometry.rows_per_subarray)
        .data_row(0)
        .expect("tiny geometry has data rows");
    let trials: u64 = if quick_mode() { 600 } else { 2_500 };
    let ops: usize = if quick_mode() { 12 } else { 24 };

    let Some(chip) = pick_ab_chip(&params, &geometry, first_data_row, trials) else {
        eprintln!(
            "no chip seed in [{SEED_SCAN_BASE:#x}, +{SEED_SCAN_WIDTH}) puts blind placement in the {AB_RATE_BAND:?} band with a strong alternative"
        );
        return ExitCode::FAILURE;
    };

    // Acceptance: persist -> load -> re-persist must be byte-identical.
    let json_once = chip.to_json();
    let roundtrip_identical = ChipProfile::from_json(&json_once)
        .map(|reloaded| reloaded.to_json() == json_once)
        .unwrap_or(false);

    let corners: &[(f64, f64)] = if quick_mode() {
        &[(1.0, 45.0), (AB_VOLTAGE, AB_TEMP_C)]
    } else {
        &[
            (1.0, 45.0),
            (1.0, 85.0),
            (0.9, 45.0),
            (0.9, 85.0),
            (0.8, 45.0),
            (AB_VOLTAGE, AB_TEMP_C),
        ]
    };
    let corner_results: Vec<CornerResult> = corners
        .iter()
        .map(|&(v, t)| {
            measure_corner(&params, &geometry, first_data_row, chip.config.seed, trials, v, t)
        })
        .collect();

    println!(
        "characterization sweep, chip seed {:#x}, {trials} trials/subarray:",
        chip.config.seed
    );
    for c in &corner_results {
        println!(
            "  {:.1} V {:>3.0} C: level {:.3}  rates [{:.4}, {:.4}]  weak subarrays {}  weak cells {}",
            c.voltage, c.temperature_c, c.effective_level, c.min_rate, c.max_rate,
            c.weak_subarrays, c.weak_cells,
        );
    }

    let blind = run_ab_side(&chip, false, ops);
    let aware = run_ab_side(&chip, true, ops);
    let truth = ab_truth(geometry.row_bits(), ops);
    let identical = blind.finals == aware.finals && blind.finals == truth;
    println!(
        "A/B at {AB_VOLTAGE} V {AB_TEMP_C} C, {ops} ops: blind {} actions ({} retries, {} remaps, {} degrades) vs aware {} actions ({} retries, {} remaps, {} preremaps); identical {identical}",
        blind.actions, blind.retries, blind.remaps, blind.degrades,
        aware.actions, aware.retries, aware.remaps, aware.preremaps,
    );

    let snapshot = render_characterization_snapshot(
        &chip, &corner_results, roundtrip_identical, ops, &blind, &aware, identical,
    );
    if let Err(errors) = validate_characterization_snapshot(&snapshot) {
        for e in &errors {
            eprintln!("self-validation failed: {e}");
        }
        return ExitCode::FAILURE;
    }
    let path = std::env::var("AMBIT_BENCH_CHARACTERIZATION_SNAPSHOT")
        .unwrap_or_else(|_| "BENCH_characterization.json".to_string());
    if let Err(e) = std::fs::write(&path, &snapshot) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {path} (variation-aware placement >= {ACTION_REDUCTION_FLOOR:.0}x fewer recovery actions, byte-identical results)"
    );
    ExitCode::SUCCESS
}

/// Band for the synthesized-kernel AAP cost relative to the hand-written
/// baseline: the compiler may pay for generality, but not more than this
/// factor, and a ratio below the floor means the A/B measured different
/// work.
const SYNTH_RATIO_MIN: f64 = 0.2;
const SYNTH_RATIO_MAX: f64 = 4.5;

struct SynthKernelResult {
    name: &'static str,
    lanes: usize,
    width: usize,
    hand_aaps: usize,
    synth_aaps: usize,
    ratio: f64,
    identical: bool,
}

struct SynthCompileSummary {
    tables: usize,
    total_steps: usize,
    total_aaps: usize,
    total_aps: usize,
    max_scratch_rows: usize,
    cse_removed: usize,
    dead_removed: usize,
    maj3_steps: usize,
    executed: usize,
    identical: bool,
}

/// Compiles every 3-input truth table, executes a slice of them on the
/// device through the batch engine, and checks each result against the
/// table itself (inputs carry the cycling assignment pattern, so one row
/// covers the whole truth table).
fn measure_synth_compile(stride: usize) -> SynthCompileSummary {
    use ambit_core::{synthesize, BoolFunc, SynthOptions, SynthProgram};
    let plans: Vec<SynthProgram> = (0..256u64)
        .map(|t| {
            let f = BoolFunc::from_table(3, t).expect("3-input table");
            synthesize(&[f], &SynthOptions::default()).expect("table synthesizes")
        })
        .collect();
    let mut summary = SynthCompileSummary {
        tables: plans.len(),
        total_steps: 0,
        total_aaps: 0,
        total_aps: 0,
        max_scratch_rows: 0,
        cse_removed: 0,
        dead_removed: 0,
        maj3_steps: 0,
        executed: 0,
        identical: true,
    };
    for plan in &plans {
        let (aaps, aps) = plan.aap_cost();
        summary.total_steps += plan.steps().len();
        summary.total_aaps += aaps;
        summary.total_aps += aps;
        summary.max_scratch_rows = summary.max_scratch_rows.max(plan.scratch_rows());
        summary.cse_removed += plan.stats().cse_removed;
        summary.dead_removed += plan.stats().dead_removed;
        summary.maj3_steps += plan.stats().maj3_steps;
    }

    let mut mem =
        AmbitMemory::new(DramGeometry::tiny(), TimingParams::ddr3_1600(), AapMode::Overlapped);
    let bits = mem.row_bits();
    let inputs: Vec<_> = (0..3).map(|_| mem.alloc(bits).expect("input alloc")).collect();
    for (j, &h) in inputs.iter().enumerate() {
        let pattern: Vec<bool> = (0..bits).map(|p| p >> j & 1 == 1).collect();
        mem.write_bits(h, &pattern).expect("input write");
    }
    let out = mem.alloc(bits).expect("output alloc");
    let pool_rows = plans.iter().map(SynthProgram::scratch_rows).max().unwrap_or(0);
    let pool: Vec<_> = (0..pool_rows).map(|_| mem.alloc(bits).expect("scratch alloc")).collect();
    for (t, plan) in plans.iter().enumerate().step_by(stride.max(1)) {
        let mut batch = BatchBuilder::new();
        plan.emit_into(&mut batch, &inputs, &pool[..plan.scratch_rows()], &[out])
            .expect("emit");
        mem.execute_batch(&batch, IssuePolicy::BankParallel).expect("execute");
        let got = mem.read_bits(out).expect("readback");
        let want: Vec<bool> = (0..bits).map(|p| (t as u64) >> (p & 7) & 1 == 1).collect();
        summary.executed += 1;
        summary.identical &= got == want;
    }
    summary
}

/// A/B-measures one arithmetic kernel: the hand-written `arith` path and
/// the compiler-generated `synth_arith` path run the same data on one
/// module, and the receipts' AAP counts are compared (the results must be
/// byte-identical first).
fn measure_synth_kernels(lanes: usize, width: usize) -> Vec<SynthKernelResult> {
    use ambit_apps::arith::BitSlicedVector;
    use ambit_apps::synth_arith;
    let mut mem = AmbitMemory::new(
        DramGeometry {
            subarrays_per_bank: 4,
            rows_per_subarray: 128,
            ..DramGeometry::tiny()
        },
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    );
    let mask = (1u32 << width) - 1;
    let va: Vec<u32> = (0..lanes as u32)
        .map(|i| i.wrapping_mul(0x9e37_79b9) >> 7 & mask)
        .collect();
    let vb: Vec<u32> = (0..lanes as u32)
        .map(|i| i.wrapping_mul(0x85eb_ca6b) >> 5 & mask)
        .collect();
    let a = BitSlicedVector::alloc(&mut mem, lanes, width).expect("alloc a");
    let b = BitSlicedVector::alloc(&mut mem, lanes, width).expect("alloc b");
    a.write(&mut mem, &va).expect("write a");
    b.write(&mut mem, &vb).expect("write b");
    let policy = IssuePolicy::BankParallel;

    let mut results = Vec::new();
    {
        let (hand, hand_receipt) = a.add(&mut mem, &b).expect("hand add");
        let (synth, synth_receipt) =
            synth_arith::add_synth(&mut mem, &a, &b, policy).expect("synth add");
        let identical = hand.read(&mem).unwrap() == synth.read(&mem).unwrap();
        results.push(SynthKernelResult {
            name: "add",
            lanes,
            width,
            hand_aaps: hand_receipt.aaps,
            synth_aaps: synth_receipt.total.aaps,
            ratio: synth_receipt.total.aaps as f64 / hand_receipt.aaps.max(1) as f64,
            identical,
        });
    }
    {
        let (hand, hand_receipt) = a.compare_lt(&mut mem, &b).expect("hand compare");
        let (synth, synth_receipt) =
            synth_arith::compare_lt_synth(&mut mem, &a, &b, policy).expect("synth compare");
        let identical = mem.read_bits(hand).unwrap() == mem.read_bits(synth).unwrap();
        results.push(SynthKernelResult {
            name: "compare_lt",
            lanes,
            width,
            hand_aaps: hand_receipt.aaps,
            synth_aaps: synth_receipt.total.aaps,
            ratio: synth_receipt.total.aaps as f64 / hand_receipt.aaps.max(1) as f64,
            identical,
        });
    }
    {
        let (hand, hand_receipt) = a.popcount(&mut mem).expect("hand popcount");
        let (synth, synth_receipt) =
            synth_arith::popcount_synth(&mut mem, &a, policy).expect("synth popcount");
        let identical = hand.read(&mem).unwrap() == synth.read(&mem).unwrap();
        results.push(SynthKernelResult {
            name: "popcount",
            lanes,
            width,
            hand_aaps: hand_receipt.aaps,
            synth_aaps: synth_receipt.total.aaps,
            ratio: synth_receipt.total.aaps as f64 / hand_receipt.aaps.max(1) as f64,
            identical,
        });
    }
    results
}

fn render_synth_snapshot(
    compile: &SynthCompileSummary,
    kernels: &[SynthKernelResult],
) -> String {
    let scratch_ceiling =
        SubarrayLayout::new(DramGeometry::tiny().rows_per_subarray).data_rows();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"ambit-bench-synth/v1\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"inputs\": 3, \"tables\": {}, \"scratch_ceiling\": {}, \"quick\": {}}},\n",
        compile.tables,
        scratch_ceiling,
        quick_mode()
    ));
    out.push_str(&format!(
        "  \"compile\": {{\"total_steps\": {}, \"total_aaps\": {}, \"total_aps\": {}, \"mean_aaps\": {}, \"max_scratch_rows\": {}, \"cse_removed\": {}, \"dead_removed\": {}, \"maj3_steps\": {}}},\n",
        compile.total_steps,
        compile.total_aaps,
        compile.total_aps,
        json::number(compile.total_aaps as f64 / compile.tables.max(1) as f64),
        compile.max_scratch_rows,
        compile.cse_removed,
        compile.dead_removed,
        compile.maj3_steps
    ));
    out.push_str(&format!(
        "  \"executed\": {{\"tables\": {}, \"identical\": {}}},\n",
        compile.executed, compile.identical
    ));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"lanes\": {}, \"width\": {}, \"hand_aaps\": {}, \"synth_aaps\": {}, \"ratio\": {}, \"identical\": {}}}{}\n",
            json::escape(k.name),
            k.lanes,
            k.width,
            k.hand_aaps,
            k.synth_aaps,
            json::number(k.ratio),
            k.identical,
            if i + 1 < kernels.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Validates a synth snapshot: schema marker, all 256 tables compiled,
/// a non-empty on-device slice that matched its truth tables, scratch
/// under the tiny per-subarray ceiling, and every kernel A/B byte-identical
/// with an AAP ratio inside [[`SYNTH_RATIO_MIN`], [`SYNTH_RATIO_MAX`]].
fn validate_synth_snapshot(text: &str) -> Result<usize, Vec<String>> {
    let mut errors = Vec::new();
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    if doc.get("schema").and_then(Json::as_str) != Some("ambit-bench-synth/v1") {
        errors.push("missing or wrong \"schema\" marker".into());
    }
    if doc.get("config").and_then(|c| c.get("tables")).and_then(Json::as_u64) != Some(256) {
        errors.push("config.tables must be 256 (the full 3-input space)".into());
    }
    let ceiling = doc
        .get("config")
        .and_then(|c| c.get("scratch_ceiling"))
        .and_then(Json::as_u64);
    match ceiling {
        Some(ceiling) => {
            match doc.get("compile").and_then(|c| c.get("max_scratch_rows")).and_then(Json::as_u64)
            {
                // 3 input rows + 1 output row share the subarray.
                Some(rows) if rows + 4 <= ceiling => {}
                Some(rows) => errors.push(format!(
                    "max scratch {rows} rows + 3 inputs + 1 output exceed the {ceiling}-row subarray ceiling"
                )),
                None => errors.push("compile.max_scratch_rows missing or not an integer".into()),
            }
        }
        None => errors.push("config.scratch_ceiling missing or not an integer".into()),
    }
    for key in ["total_steps", "total_aaps", "cse_removed", "dead_removed"] {
        if doc.get("compile").and_then(|c| c.get(key)).and_then(Json::as_u64).is_none() {
            errors.push(format!("compile.{key} missing or not an integer"));
        }
    }
    match doc.get("executed").and_then(|e| e.get("tables")).and_then(Json::as_u64) {
        Some(n) if n > 0 => {}
        _ => errors.push("executed.tables missing or zero".into()),
    }
    if !matches!(
        doc.get("executed").and_then(|e| e.get("identical")),
        Some(Json::Bool(true))
    ) {
        errors.push("on-device execution diverged from the truth tables".into());
    }
    let Some(kernels) = doc.get("kernels").and_then(Json::as_arr) else {
        errors.push("\"kernels\" missing or not an array".into());
        return Err(errors);
    };
    if kernels.is_empty() {
        errors.push("\"kernels\" is empty".into());
    }
    for (i, k) in kernels.iter().enumerate() {
        let name = k.get("name").and_then(Json::as_str).unwrap_or("?");
        if !matches!(k.get("identical"), Some(Json::Bool(true))) {
            errors.push(format!(
                "kernels[{i}] ({name}): synthesized result not byte-identical to the hand-written kernel"
            ));
        }
        match k.get("ratio").and_then(Json::as_f64) {
            Some(ratio) if (SYNTH_RATIO_MIN..=SYNTH_RATIO_MAX).contains(&ratio) => {}
            Some(ratio) => errors.push(format!(
                "kernels[{i}] ({name}): AAP ratio {ratio:.2} outside [{SYNTH_RATIO_MIN}, {SYNTH_RATIO_MAX}]"
            )),
            None => errors.push(format!("kernels[{i}] ({name}): ratio missing or not a number")),
        }
    }
    if errors.is_empty() {
        Ok(kernels.len())
    } else {
        Err(errors)
    }
}

/// The `bench_snapshot synth` entry point: compile the full 3-input table
/// space, execute a slice on-device against the truth tables, A/B the
/// compiler-generated arithmetic kernels against the hand-written ones,
/// self-validate, write the JSON snapshot.
fn synth_main() -> ExitCode {
    let stride = if quick_mode() { 4 } else { 1 };
    let (lanes, width) = if quick_mode() { (48, 6) } else { (96, 8) };
    let compile = measure_synth_compile(stride);
    let kernels = measure_synth_kernels(lanes, width);

    println!(
        "synth compile: {} tables -> {} steps, {} AAPs + {} APs (mean {:.1} AAPs/function), max scratch {} rows, CSE -{}, DSE -{}",
        compile.tables,
        compile.total_steps,
        compile.total_aaps,
        compile.total_aps,
        compile.total_aaps as f64 / compile.tables as f64,
        compile.max_scratch_rows,
        compile.cse_removed,
        compile.dead_removed,
    );
    println!(
        "synth execute: {} tables on-device, identical {}",
        compile.executed, compile.identical
    );
    for k in &kernels {
        println!(
            "  {:>10} ({} lanes x {} bits): hand {:5} AAPs  synth {:5} AAPs  ratio {:.2}  identical {}",
            k.name, k.lanes, k.width, k.hand_aaps, k.synth_aaps, k.ratio, k.identical,
        );
    }

    let snapshot = render_synth_snapshot(&compile, &kernels);
    if let Err(errors) = validate_synth_snapshot(&snapshot) {
        for e in &errors {
            eprintln!("self-validation failed: {e}");
        }
        return ExitCode::FAILURE;
    }
    let path = std::env::var("AMBIT_BENCH_SYNTH_SNAPSHOT")
        .unwrap_or_else(|_| "BENCH_synth.json".to_string());
    if let Err(e) = std::fs::write(&path, &snapshot) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {path} (all compiled tables conform, kernel AAP ratios within [{SYNTH_RATIO_MIN}, {SYNTH_RATIO_MAX}])"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 2 && args[1] == "batch" {
        return batch_main();
    }
    if args.len() == 2 && args[1] == "synth" {
        return synth_main();
    }
    if args.len() == 3 && args[1] == "--validate-synth" {
        let text = match std::fs::read_to_string(&args[2]) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", args[2]);
                return ExitCode::FAILURE;
            }
        };
        return match validate_synth_snapshot(&text) {
            Ok(n) => {
                println!(
                    "{}: valid synth snapshot, {n} kernel A/Bs within the AAP band",
                    args[2]
                );
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("{}: {e}", args[2]);
                }
                ExitCode::FAILURE
            }
        };
    }
    if args.len() == 2 && args[1] == "characterization" {
        return characterization_main();
    }
    if args.len() == 3 && args[1] == "--validate-characterization" {
        let text = match std::fs::read_to_string(&args[2]) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", args[2]);
                return ExitCode::FAILURE;
            }
        };
        return match validate_characterization_snapshot(&text) {
            Ok(n) => {
                println!(
                    "{}: valid characterization snapshot, {n} corners swept, A/B within floors",
                    args[2]
                );
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("{}: {e}", args[2]);
                }
                ExitCode::FAILURE
            }
        };
    }
    if args.len() == 2 && args[1] == "hotpath" {
        return hotpath_main();
    }
    if args.len() == 3 && args[1] == "--validate-hotpath" {
        let text = match std::fs::read_to_string(&args[2]) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", args[2]);
                return ExitCode::FAILURE;
            }
        };
        return match validate_hotpath_snapshot(&text) {
            Ok(n) => {
                println!(
                    "{}: valid hotpath snapshot, {n} sweep points byte-identical",
                    args[2]
                );
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("{}: {e}", args[2]);
                }
                ExitCode::FAILURE
            }
        };
    }
    if args.len() == 3 && args[1] == "--validate-batch" {
        let text = match std::fs::read_to_string(&args[2]) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", args[2]);
                return ExitCode::FAILURE;
            }
        };
        return match validate_batch_snapshot(&text) {
            Ok((n, warnings)) => {
                for w in &warnings {
                    eprintln!("{}: warning: {w}", args[2]);
                }
                println!(
                    "{}: valid batch snapshot, {n} sweep points within tolerance",
                    args[2]
                );
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("{}: {e}", args[2]);
                }
                ExitCode::FAILURE
            }
        };
    }
    if args.len() == 3 && args[1] == "--validate" {
        let text = match std::fs::read_to_string(&args[2]) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", args[2]);
                return ExitCode::FAILURE;
            }
        };
        return match validate_snapshot(&text) {
            Ok(n) => {
                println!("{}: valid snapshot, {n} ops within tolerance", args[2]);
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("{}: {e}", args[2]);
                }
                ExitCode::FAILURE
            }
        };
    }

    let config = AmbitConfig::ddr3_module();
    let reps: u64 = if quick_mode() { 4 } else { 64 };
    let ops = [
        BitwiseOp::Not,
        BitwiseOp::And,
        BitwiseOp::Or,
        BitwiseOp::Xor,
    ];
    let results: Vec<OpResult> = ops.iter().map(|&op| measure(op, reps, &config)).collect();

    println!("bench snapshot @ DDR3-1600, {} reps/op:", reps);
    for r in &results {
        println!(
            "  {:>8}: {:7.1} ns/op  {:9.0} ops/s  {:6.2} nJ/KB (analytic {:6.2}, err {:.3}%)  {:5.1} GOps/s analytic",
            r.op.mnemonic(),
            r.latency_ns_per_op,
            r.ops_per_s,
            r.energy_nj_per_kb,
            r.analytic_nj_per_kb,
            r.error_frac * 100.0,
            r.throughput_gops_analytic,
        );
    }

    let snapshot = render_snapshot(&results, &config, reps);
    // Self-validate before writing: a snapshot that fails its own energy
    // cross-check must not land on disk looking healthy.
    if let Err(errors) = validate_snapshot(&snapshot) {
        for e in &errors {
            eprintln!("self-validation failed: {e}");
        }
        return ExitCode::FAILURE;
    }
    let path = std::env::var("AMBIT_BENCH_SNAPSHOT")
        .unwrap_or_else(|_| "BENCH_telemetry.json".to_string());
    if let Err(e) = std::fs::write(&path, &snapshot) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path} (energy within {:.0}% of the analytic Table 3 model)",
        ENERGY_TOLERANCE * 100.0);
    ExitCode::SUCCESS
}
