//! Ablation (Section 3.4): RowClone copy mechanisms. Ambit's operand
//! staging depends on RowClone-FPM; this harness quantifies what PSM or
//! plain controller copies would cost instead — the reason the driver
//! works so hard to co-locate operands in one subarray.

use ambit_bench::{cell, Report};
use ambit_core::{AmbitConfig, BitwiseOp};
use ambit_dram::rowclone::{copy_fpm, copy_psm, copy_via_controller};
use ambit_dram::{
    AapMode, BankId, BitRow, CommandTimer, DramDevice, DramGeometry, RowLocation, TimingParams,
};

fn main() {
    let geometry = DramGeometry::ddr3_module();
    let mut device = DramDevice::new(geometry);
    let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Naive);

    let bits = geometry.row_bits();
    let src = RowLocation::in_bank0(0, 10);
    device.poke(src, BitRow::from_fn(bits, |i| i % 7 == 0));

    let fpm = copy_fpm(&mut device, &mut timer, src, RowLocation::in_bank0(0, 11))
        .expect("fpm copy");
    let psm_dst = RowLocation {
        bank: BankId { channel: 0, rank: 0, bank: 1 },
        subarray: 0,
        row: 10,
    };
    let psm = copy_psm(&mut device, &mut timer, src, psm_dst).expect("psm copy");
    let ctrl = copy_via_controller(&mut device, &mut timer, src, RowLocation::in_bank0(1, 10))
        .expect("controller copy");

    let mut report = Report::new(
        "RowClone copy mechanisms: one 8 KB row copy (DDR3-1600)",
        &["mechanism", "latency (ns)", "vs FPM"],
    );
    for (name, out) in [("RowClone-FPM", fpm), ("RowClone-PSM", psm), ("controller", ctrl)] {
        report.row(&[
            cell(name),
            format!("{:.0}", out.latency_ps as f64 / 1000.0),
            format!("{:.1}x", out.latency_ps as f64 / fpm.latency_ps as f64),
        ]);
    }
    report.print();
    println!("\npaper: RowClone-FPM ≈ 80 ns; PSM is 'significantly slower' (internal-bus serial)");

    // What an AND would cost if its three staging copies used each
    // mechanism (the final AAP onto B12 is common).
    let and_aaps = 4.0; // Figure 8a
    let overlapped = TimingParams::ddr3_1600().aap_overlapped_ps() as f64;
    let mut cost = Report::new(
        "Bulk AND cost if operand staging used each copy mechanism",
        &["staging", "AND latency (ns)", "slowdown"],
    );
    let native = and_aaps * overlapped;
    for (name, copy_ps) in [
        ("FPM (Ambit, in-subarray)", overlapped),
        ("PSM (cross-bank)", psm.latency_ps as f64),
        ("controller (no RowClone)", ctrl.latency_ps as f64),
    ] {
        let total = 3.0 * copy_ps + overlapped;
        cost.row(&[
            cell(name),
            format!("{:.0}", total / 1000.0),
            format!("{:.1}x", total / native),
        ]);
    }
    cost.print();

    let eight_banks = AmbitConfig::ddr3_module()
        .throughput_gops(BitwiseOp::And)
        .expect("standard op");
    println!(
        "\nwith FPM staging, the 8-bank module sustains {eight_banks:.0} GOps/s of AND \
         — the co-location requirement (Section 5.4.2) is what protects this"
    );
}
