//! Study: compressed (WAH/FastBit-style) bitmap indices vs Ambit.
//!
//! The paper's bitmap-index systems (FastBit, Oracle) often store
//! bitmaps WAH-compressed. Compression helps the CPU on *sparse* bitmaps
//! (less data to stream) but is opaque to in-DRAM row operations — Ambit
//! computes on uncompressed rows at constant cost. This harness maps the
//! crossover: at what density does each approach win?

use ambit_bench::{cell, fmt_time, Report};
use ambit_apps::WahBitmap;
use ambit_core::{AmbitConfig, BitwiseOp};
use ambit_sys::SystemConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let config = SystemConfig::gem5_calibrated();
    let ambit = AmbitConfig::ddr3_module();
    let bits = 8 * 1024 * 1024; // one 8 M-bit bitmap (1 MB uncompressed)
    let mut rng = ChaCha8Rng::seed_from_u64(0xc0de);

    let mut report = Report::new(
        "AND of two 8 Mbit bitmaps: WAH-compressed CPU vs plain CPU vs Ambit",
        &[
            "density",
            "WAH bytes",
            "ratio",
            "CPU WAH",
            "CPU plain",
            "Ambit",
            "winner",
        ],
    );

    for density in [0.0001f64, 0.001, 0.01, 0.05, 0.2, 0.5] {
        // Build two random bitmaps at this density and compress them.
        let da: Vec<bool> = (0..bits).map(|_| rng.gen_bool(density)).collect();
        let db: Vec<bool> = (0..bits).map(|_| rng.gen_bool(density)).collect();
        let wa = WahBitmap::from_bools(&da);
        let wb = WahBitmap::from_bools(&db);
        let and = wa.and(&wb); // functional check input
        assert_eq!(
            and.count_ones(),
            (0..bits).filter(|&i| da[i] && db[i]).count()
        );

        let compressed_bytes = wa.compressed_bytes() + wb.compressed_bytes();
        let plain_bytes = 3 * bits / 8; // read two + write one

        // CPU on compressed data: stream both compressed inputs + output.
        let out_bytes = and.compressed_bytes();
        let wah_time = config.stream_time_s(
            compressed_bytes + out_bytes,
            compressed_bytes + out_bytes,
            compressed_bytes,
        );
        // CPU on plain data: stream 3 × 1 MB.
        let plain_time = config.stream_time_s(plain_bytes, plain_bytes, plain_bytes);
        // Ambit: density-independent row operations.
        let ambit_time = (bits / 8) as f64
            / (ambit.throughput_bytes_per_s(BitwiseOp::And).expect("op"));

        let winner = if ambit_time < wah_time.min(plain_time) {
            "Ambit"
        } else if wah_time < plain_time {
            "WAH"
        } else {
            "plain"
        };
        report.row(&[
            format!("{:.2}%", density * 100.0),
            cell(wa.compressed_bytes()),
            format!("{:.1}x", (bits / 8) as f64 / wa.compressed_bytes() as f64),
            fmt_time(wah_time),
            fmt_time(plain_time),
            fmt_time(ambit_time),
            cell(winner),
        ]);
    }
    report.print();

    println!(
        "\nreading the table: WAH wins only for very sparse bitmaps (large compression\n\
         ratios shrink the CPU's traffic below even Ambit's in-DRAM cost); once density\n\
         reaches a fraction of a percent the compressed size approaches the plain size\n\
         and Ambit's constant-cost row operations dominate. This is why in-DRAM bitmap\n\
         systems trade compression for raw row alignment."
    );
}
