//! Ablation: what cross-bank ACTIVATE constraints (tRRD / tFAW) would
//! cost Ambit's bank-level parallelism.
//!
//! The paper's throughput projection (Section 7) assumes the banks run
//! their AAP pipelines independently — defensible for in-DRAM operations
//! that put no data on the external bus, but the activation *power* budget
//! behind tFAW does not vanish. This harness streams AND programs across
//! all 8 banks with the constraints disabled (paper model) and enforced,
//! and reports the achieved throughput.

use ambit_bench::{cell, Report};
use ambit_dram::{AapMode, CommandTimer, TimingParams};

/// Streams `ops_per_bank` AND programs (4 AAPs each; the last AAP raises
/// 3 wordlines) round-robin across `banks` banks; returns makespan in ps.
fn run_stream(banks: usize, ops_per_bank: usize, enforce: bool) -> u64 {
    let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Overlapped);
    timer.set_enforce_inter_bank(enforce);
    let mut makespan = 0;
    for _ in 0..ops_per_bank {
        for bank in 0..banks {
            for aap in 0..4 {
                let w1 = if aap == 3 { 3 } else { 1 };
                let (_, end) = timer.aap(bank, w1, 1).expect("aap");
                makespan = makespan.max(end);
            }
        }
    }
    makespan
}

fn main() {
    let ops = 64;
    let row_kb = 8.0;
    let mut report = Report::new(
        "Streaming bulk AND across banks: tRRD/tFAW disabled vs enforced",
        &["banks", "relaxed GB/s", "enforced GB/s", "loss"],
    );
    for banks in [1usize, 2, 4, 8] {
        let relaxed = run_stream(banks, ops, false);
        let enforced = run_stream(banks, ops, true);
        let gbps = |ps: u64| (banks * ops) as f64 * row_kb / (ps as f64 * 1e-12) / 1e6;
        report.row(&[
            cell(banks),
            format!("{:.0}", gbps(relaxed)),
            format!("{:.0}", gbps(enforced)),
            format!("{:.0}%", 100.0 * (1.0 - gbps(enforced) / gbps(relaxed))),
        ]);
    }
    report.print();

    println!(
        "\ninterpretation: with one or two banks the constraints are invisible; at 8 banks\n\
         the ACT-rate limits bite, so a real controller would either respect a reduced\n\
         rate or provision the activation power budget for multi-row ACTIVATEs.\n\
         The paper's Figure 9 numbers correspond to the relaxed column (documented in\n\
         DESIGN.md as a modelling assumption)."
    );
}
