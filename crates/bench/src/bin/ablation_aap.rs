//! Ablation (Section 5.3): the split row decoder's overlapped AAP
//! (tRAS + 4 ns + tRP = 49 ns) versus the naive serial AAP
//! (2·tRAS + tRP = 80 ns), and its effect on every operation's latency
//! and throughput.

use ambit_bench::{cell, compare_line, Report};
use ambit_core::{AmbitConfig, BitwiseOp};
use ambit_dram::{AapMode, TimingParams};

fn main() {
    let timing = TimingParams::ddr3_1600();
    println!("== AAP primitive latency (DDR3-1600, 8-8-8) ==");
    compare_line("naive AAP (2*tRAS + tRP)", "80 ns", format!("{} ns", timing.aap_naive_ps() / 1000));
    compare_line(
        "split-decoder AAP (tRAS + 4ns + tRP)",
        "49 ns",
        format!("{} ns", timing.aap_overlapped_ps() / 1000),
    );

    let naive = AmbitConfig {
        mode: AapMode::Naive,
        ..AmbitConfig::ddr3_module()
    };
    let fast = AmbitConfig::ddr3_module();

    let mut report = Report::new(
        "Per-operation latency and throughput, naive vs split-decoder AAP",
        &["op", "naive (ns)", "overlapped (ns)", "naive GOps/s", "overlapped GOps/s", "gain"],
    );
    for op in BitwiseOp::FIGURE9_OPS {
        let ln = naive.op_latency_ps(op).expect("standard op") as f64 / 1000.0;
        let lf = fast.op_latency_ps(op).expect("standard op") as f64 / 1000.0;
        let tn = naive.throughput_gops(op).expect("standard op");
        let tf = fast.throughput_gops(op).expect("standard op");
        report.row(&[
            cell(op),
            format!("{ln:.0}"),
            format!("{lf:.0}"),
            format!("{tn:.1}"),
            format!("{tf:.1}"),
            format!("{:.2}x", tf / tn),
        ]);
    }
    report.print();

    let gain = fast.mean_throughput_gops().expect("ops")
        / naive.mean_throughput_gops().expect("ops");
    println!("\nmean throughput gain from the split row decoder: {gain:.2}x");
    println!("(the paper quotes the primitive-level gain, 80 ns -> 49 ns = 1.63x)");
}
