//! Table 3: energy of bulk bitwise operations (nJ/KB) — conventional
//! DDR3 data movement versus Ambit in-DRAM execution.
//!
//! The Ambit numbers come from *executing the actual command programs* on
//! the simulated controller (so they include every ACTIVATE's wordline
//! count and every PRECHARGE), not from closed-form arithmetic.

use ambit_bench::{cell, Report};
use ambit_core::{AmbitController, BitwiseOp, RowAddress};
use ambit_dram::{AapMode, BankId, DramGeometry, EnergyModel, TimingParams};

/// Energy per kilobyte for one operation, measured by running its program.
fn measured_nj_per_kb(op: BitwiseOp) -> f64 {
    let geometry = DramGeometry::ddr3_module();
    let mut ctrl = AmbitController::new(geometry, TimingParams::ddr3_1333(), AapMode::Overlapped);
    let src2 = (op.source_count() == 2).then_some(RowAddress::D(1));
    let receipt = ctrl
        .execute(op, BankId::zero(), 0, RowAddress::D(0), src2, RowAddress::D(2))
        .expect("program executes");
    receipt.energy_nj / (geometry.row_bytes as f64 / 1024.0)
}

fn main() {
    let model = EnergyModel::ddr3_1333();
    // (row label, representative op, DDR3 transfers per byte, paper DDR3, paper Ambit)
    let rows = [
        ("not", BitwiseOp::Not, 2u64, 93.7, 1.6),
        ("and/or", BitwiseOp::And, 3, 137.9, 3.2),
        ("nand/nor", BitwiseOp::Nand, 3, 137.9, 4.0),
        ("xor/xnor", BitwiseOp::Xor, 3, 137.9, 5.5),
    ];

    let mut report = Report::new(
        "Table 3: DRAM + channel energy of bitwise operations (nJ/KB)",
        &[
            "op",
            "DDR3",
            "paper DDR3",
            "Ambit",
            "paper Ambit",
            "reduction",
            "paper (down)",
        ],
    );
    for (label, op, transfers, paper_ddr3, paper_ambit) in rows {
        let ddr3 = model.conventional_nj_per_kb(transfers);
        let ambit = measured_nj_per_kb(op);
        let paper_reduction = paper_ddr3 / paper_ambit;
        report.row(&[
            cell(label),
            format!("{ddr3:.1}"),
            format!("{paper_ddr3:.1}"),
            format!("{ambit:.2}"),
            format!("{paper_ambit:.1}"),
            format!("{:.1}X", ddr3 / ambit),
            format!("{paper_reduction:.1}X"),
        ]);
    }
    report.print();
    report.write_csv_if_requested("table3_energy").expect("csv");

    // Verify the paired-operation symmetry the paper relies on: or/nor/xnor
    // cost exactly the same as and/nand/xor.
    for (a, b) in [
        (BitwiseOp::And, BitwiseOp::Or),
        (BitwiseOp::Nand, BitwiseOp::Nor),
        (BitwiseOp::Xor, BitwiseOp::Xnor),
    ] {
        let ea = measured_nj_per_kb(a);
        let eb = measured_nj_per_kb(b);
        assert!(
            (ea - eb).abs() < 1e-9,
            "{a} and {b} should cost identically ({ea} vs {eb})"
        );
    }
    println!("\npaired-op check passed: or/nor/xnor cost exactly as and/nand/xor");
    println!(
        "paper headline: Ambit reduces energy 25.1X-59.5X vs DDR3 (reproduced above per row)"
    );
}
