//! Ablation (Section 5.1, footnote 4): why Ambit ships four designated
//! rows and two DCC rows instead of the minimal three + one.
//!
//! With the extra rows, xor/xnor hold their intermediates in the B-group
//! and finish in 5 AAPs + 2 APs. On minimal hardware the same xor must be
//! composed from and/or/not with D-group scratch rows; this harness
//! executes both versions on the simulated device and compares latency,
//! energy, and (of course) results.

use ambit_bench::{cell, Report};
use ambit_core::{AmbitController, BitwiseOp, OpReceipt, RowAddress};
use ambit_dram::{AapMode, BankId, BitRow, DramGeometry, TimingParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn controller() -> AmbitController {
    AmbitController::new(
        DramGeometry::ddr3_module(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

/// xor composed from two-operand primitives only (minimal designated-row
/// hardware): tmp1 = a AND b; tmp2 = a OR b; tmp1 = NOT tmp1;
/// dst = tmp1 AND tmp2.
fn xor_composed(ctrl: &mut AmbitController, bank: BankId) -> OpReceipt {
    use RowAddress::D;
    let (a, b, dst, tmp1, tmp2) = (D(0), D(1), D(2), D(3), D(4));
    let mut receipt = ctrl
        .execute(BitwiseOp::And, bank, 0, a, Some(b), tmp1)
        .expect("and");
    receipt.absorb(&ctrl.execute(BitwiseOp::Or, bank, 0, a, Some(b), tmp2).expect("or"));
    receipt.absorb(&ctrl.execute(BitwiseOp::Not, bank, 0, tmp1, None, tmp1).expect("not"));
    receipt.absorb(&ctrl.execute(BitwiseOp::And, bank, 0, tmp1, Some(tmp2), dst).expect("and"));
    receipt
}

fn main() {
    let bank = BankId::zero();
    let bits = DramGeometry::ddr3_module().row_bits();
    let mut rng = ChaCha8Rng::seed_from_u64(44);
    let a = BitRow::random(bits, &mut rng);
    let b = BitRow::random(bits, &mut rng);

    // Native xor on the shipped 4-row + 2-DCC design.
    let mut ctrl_native = controller();
    ctrl_native.poke_data(bank, 0, 0, &a).expect("load");
    ctrl_native.poke_data(bank, 0, 1, &b).expect("load");
    let native = ctrl_native
        .execute(BitwiseOp::Xor, bank, 0, RowAddress::D(0), Some(RowAddress::D(1)), RowAddress::D(2))
        .expect("xor");
    let native_result = ctrl_native.peek_data(bank, 0, 2).expect("result");

    // Composed xor for minimal hardware.
    let mut ctrl_min = controller();
    ctrl_min.poke_data(bank, 0, 0, &a).expect("load");
    ctrl_min.poke_data(bank, 0, 1, &b).expect("load");
    let composed = xor_composed(&mut ctrl_min, bank);
    let composed_result = ctrl_min.peek_data(bank, 0, 2).expect("result");

    assert_eq!(native_result, composed_result, "both xors must agree");
    assert_eq!(native_result, a.xor(&b), "and match the reference");

    let mut report = Report::new(
        "xor on one row pair: shipped B-group (4 T-rows + 2 DCCs) vs minimal hardware",
        &["design", "AAPs", "APs", "latency (ns)", "energy (nJ)"],
    );
    for (name, r) in [("shipped (Figure 8c)", native), ("minimal (composed)", composed)] {
        report.row(&[
            cell(name),
            cell(r.aaps),
            cell(r.aps),
            format!("{:.0}", r.latency_ps() as f64 / 1000.0),
            format!("{:.1}", r.energy_nj),
        ]);
    }
    report.print();

    println!(
        "\nthe extra designated/DCC rows buy a {:.2}x latency and {:.2}x energy win for xor/xnor",
        composed.latency_ps() as f64 / native.latency_ps() as f64,
        composed.energy_nj / native.energy_nj,
    );
    println!("results verified identical to the software reference");
}
