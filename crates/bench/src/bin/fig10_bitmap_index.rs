//! Figure 10: end-to-end bitmap-index query time, baseline vs Ambit, for
//! u ∈ {8 M, 16 M} users and w ∈ {2, 3, 4} weeks.
//!
//! The Ambit path executes the full query functionally on the simulated
//! device (the printed counts are cross-checked against the software
//! reference inside `run_bitmap_index`).

use ambit_bench::{cell, compare_line, fmt_ratio, fmt_time, quick_mode, Report};
use ambit_apps::bitmap_index::{
    run_bitmap_index, run_bitmap_index_optimized, BitmapIndexWorkload,
};
use ambit_core::AmbitMemory;
use ambit_sys::SystemConfig;

fn main() {
    let config = SystemConfig::gem5_calibrated();
    let users: Vec<usize> = if quick_mode() {
        vec![1 << 20]
    } else {
        vec![8 * 1024 * 1024, 16 * 1024 * 1024]
    };
    let weeks = [2usize, 3, 4];
    // Paper bar annotations, by (u, w) in the same order.
    let paper_speedups = [[5.4, 6.1, 6.3], [5.7, 6.2, 6.6]];

    let mut report = Report::new(
        "Figure 10: bitmap index query execution time",
        &["users", "weeks", "baseline", "Ambit", "Ambit+fold", "speedup", "paper", "active-every-week"],
    );
    let mut speedups = Vec::new();
    for (ui, &u) in users.iter().enumerate() {
        for (wi, &w) in weeks.iter().enumerate() {
            let workload = BitmapIndexWorkload::figure10(u, w);
            let result = run_bitmap_index(&config, AmbitMemory::ddr3_module(), &workload);
            let folded =
                run_bitmap_index_optimized(&config, AmbitMemory::ddr3_module(), &workload);
            assert_eq!(result.answer, folded.answer);
            let paper = paper_speedups
                .get(ui)
                .and_then(|row| row.get(wi))
                .copied()
                .unwrap_or(f64::NAN);
            report.row(&[
                format!("{}M", u / (1024 * 1024)),
                cell(w),
                fmt_time(result.baseline_s),
                fmt_time(result.ambit_s),
                fmt_time(folded.ambit_s),
                fmt_ratio(result.speedup()),
                if paper.is_nan() { "-".into() } else { fmt_ratio(paper) },
                cell(result.answer.active_every_week),
            ]);
            speedups.push(result.speedup());
        }
    }
    report.print();
    report.write_csv_if_requested("fig10_bitmap_index").expect("csv");

    let mean = speedups.iter().product::<f64>().powf(1.0 / speedups.len() as f64);
    println!();
    compare_line("mean end-to-end speedup", "6.0x", fmt_ratio(mean));
    println!("  (answers are cross-checked against the software reference inside the run)");
}
