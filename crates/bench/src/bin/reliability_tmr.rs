//! Reliability campaign (paper Sections 5.4.5 and 6 combined): take the
//! TRA failure rates the circuit Monte Carlo predicts at each process-
//! variation level, inject them as transient faults into the functional
//! device, and measure how often raw Ambit operations corrupt data —
//! and how much of that the TMR ECC (`ECC(A) = AAA`) recovers.

use ambit_bench::{cell, quick_mode, Report};
use ambit_circuit::{run_monte_carlo, CircuitParams};
use ambit_core::{bitwise_tmr, AmbitMemory, BitwiseOp, TmrVector};
use ambit_dram::{AapMode, DramGeometry, TimingParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn memory() -> AmbitMemory {
    AmbitMemory::new(
        DramGeometry {
            rows_per_subarray: 128,
            row_bytes: 1024,
            ..DramGeometry::tiny()
        },
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

fn main() {
    let params = CircuitParams::ddr3_55nm();
    let mc_trials = if quick_mode() { 20_000 } else { 100_000 };
    let op_trials = if quick_mode() { 10 } else { 40 };
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e57);

    let mut report = Report::new(
        "TRA fault rate (circuit MC) -> injected into the device -> raw vs TMR data corruption",
        &[
            "variation",
            "MC fail rate",
            "raw wrong bits",
            "raw bit error",
            "TMR wrong bits",
            "TMR uncorrected",
        ],
    );

    for level in [0.10f64, 0.15, 0.20, 0.25] {
        // 1. Circuit model: per-bitline TRA failure probability.
        let mc = run_monte_carlo(&params, level, mc_trials, &mut rng);
        let rate = mc.failure_rate();

        // 2. Inject into the functional device and run raw ANDs.
        let mut mem = memory();
        mem.set_tra_fault_rate(rate).expect("valid fault rate");
        let bits = mem.row_bits();
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let d = mem.alloc(bits).unwrap();
        let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
        let db: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

        let mut raw_wrong = 0usize;
        for _ in 0..op_trials {
            mem.poke_bits(a, &da).unwrap();
            mem.poke_bits(b, &db).unwrap();
            mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
            let got = mem.peek_bits(d).unwrap();
            raw_wrong += (0..bits).filter(|&i| got[i] != (da[i] && db[i])).count();
        }

        // 3. Same workload under TMR: three replicas, voted read.
        let mut mem = memory();
        mem.set_tra_fault_rate(rate).expect("valid fault rate");
        let ta = TmrVector::alloc(&mut mem, bits).unwrap();
        let tb = TmrVector::alloc(&mut mem, bits).unwrap();
        let td = TmrVector::alloc(&mut mem, bits).unwrap();
        let mut tmr_wrong = 0usize;
        let mut tmr_flagged = 0usize;
        for _ in 0..op_trials {
            ta.write(&mut mem, &da).unwrap();
            tb.write(&mut mem, &db).unwrap();
            bitwise_tmr(&mut mem, BitwiseOp::And, &ta, Some(&tb), &td).unwrap();
            let voted = td.read_voted(&mem).unwrap();
            tmr_wrong += (0..bits).filter(|&i| voted.data[i] != (da[i] && db[i])).count();
            tmr_flagged += voted.corrected.len();
        }

        let total_bits = (op_trials * bits) as f64;
        report.row(&[
            format!("±{:.0}%", level * 100.0),
            format!("{:.2}%", rate * 100.0),
            cell(raw_wrong),
            format!("{:.3}%", 100.0 * raw_wrong as f64 / total_bits),
            cell(tmr_wrong),
            format!("{:.3}%", 100.0 * tmr_wrong as f64 / total_bits),
        ]);
        let _ = tmr_flagged;
    }
    report.print();

    println!(
        "\nreading the table: raw bit-error rates track the per-TRA fault rate times the\n\
         number of TRAs per op; TMR's voted reads eliminate nearly all of them (residual\n\
         errors require two replicas to fail on the same bitline in the same op).\n\
         TMR costs 3x storage and 3x operations — the paper calls lower-overhead\n\
         bitwise-homomorphic ECC an open problem (Section 5.4.5)."
    );
}
