//! Ablation: subarray-level parallelism (SALP, Kim et al. ISCA'12). The
//! paper's introduction names "the memory-level parallelism across
//! multiple DRAM arrays ... (i.e., number of banks or subarrays)" as
//! Ambit's scaling lever; the base design exploits banks. This harness
//! measures what adding SALP buys: chunks mapped to different subarrays of
//! the *same* bank overlap in time.

use ambit_bench::{cell, Report};
use ambit_core::{AmbitConfig, AmbitMemory, BitwiseOp};
use ambit_dram::{AapMode, DramGeometry, TimingParams};

/// Measures the makespan of one bulk AND over `chunks` rows on a 1-bank
/// device with `subarrays` subarrays, with/without SALP.
fn measure(subarrays: usize, chunks: usize, salp: bool) -> u64 {
    let geometry = DramGeometry {
        banks: 1,
        subarrays_per_bank: subarrays,
        rows_per_subarray: 1024,
        row_bytes: 1024,
        ..DramGeometry::tiny()
    };
    let mut mem = AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
    mem.set_salp(salp);
    let bits = chunks * mem.row_bits();
    let a = mem.alloc(bits).expect("capacity");
    let b = mem.alloc(bits).expect("capacity");
    let d = mem.alloc(bits).expect("capacity");
    let receipt = mem.bitwise(BitwiseOp::And, a, Some(b), d).expect("and");
    receipt.latency_ps()
}

fn main() {
    let mut report = Report::new(
        "Bulk AND over 16 rows on ONE bank: baseline vs SALP (measured makespan)",
        &["subarrays", "baseline (ns)", "SALP (ns)", "speedup"],
    );
    for subarrays in [1usize, 2, 4, 8, 16] {
        let base = measure(subarrays, 16, false);
        let salp = measure(subarrays, 16, true);
        report.row(&[
            cell(subarrays),
            format!("{:.0}", base as f64 / 1000.0),
            format!("{:.0}", salp as f64 / 1000.0),
            format!("{:.2}x", base as f64 / salp as f64),
        ]);
    }
    report.print();

    let module = AmbitConfig::ddr3_module();
    let salp_cfg = AmbitConfig::with_salp(8, 16);
    println!(
        "\nanalytic steady state: 8-bank module {:.0} GOps/s AND; with 16-subarray SALP \
         {:.0} GOps/s ({}x)",
        module.throughput_gops(BitwiseOp::And).expect("op"),
        salp_cfg.throughput_gops(BitwiseOp::And).expect("op"),
        salp_cfg.banks / module.banks,
    );
    println!(
        "SALP needs the isolation hardware of [59] (and footnote 3 notes tension with\n\
         Ambit-NOT's sense-amp changes) — which is why the paper leaves it as headroom\n\
         rather than claiming it."
    );
}
