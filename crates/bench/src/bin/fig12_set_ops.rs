//! Figure 12: set union/intersection/difference — red-black tree vs SIMD
//! bitset vs Ambit, m = 15 input sets over a 512 k domain, sweeping the
//! population e of each input set.
//!
//! All three implementations run functionally and are cross-checked
//! element-for-element inside `run_setop`; the printed numbers are
//! execution times normalized to the RB-tree baseline (the y-axis of the
//! paper's figure — lower is better).

use ambit_bench::{cell, fmt_time, quick_mode, Report};
use ambit_apps::{run_setop, SetOperation, SetWorkload};
use ambit_core::AmbitMemory;
use ambit_sys::SystemConfig;

fn main() {
    let config = SystemConfig::gem5_calibrated();
    let populations: Vec<usize> = if quick_mode() {
        vec![4, 64, 1024]
    } else {
        vec![4, 16, 64, 256, 1024]
    };

    for op in SetOperation::ALL {
        let mut report = Report::new(
            format!("Figure 12 ({op}): execution time normalized to RB-tree (m=15, N=512k)"),
            &["e", "RB-tree", "Bitset", "Ambit", "RB abs", "Bitset abs", "Ambit abs", "|result|"],
        );
        for &e in &populations {
            let workload = SetWorkload::figure12(e);
            let result = run_setop(&config, AmbitMemory::ddr3_module(), &workload, op);
            let (rb, bs, am) = result.normalized();
            report.row(&[
                cell(e),
                format!("{rb:.2}"),
                format!("{bs:.2}"),
                format!("{am:.3}"),
                fmt_time(result.rbtree_s),
                fmt_time(result.bitset_s),
                fmt_time(result.ambit_s),
                cell(result.result_len),
            ]);
        }
        report.print();
        report
            .write_csv_if_requested(&format!("fig12_set_ops_{op}"))
            .expect("csv");
    }

    println!("\npaper shape to verify in the tables above:");
    println!("  - at e = 4: RB-tree beats both bitvector variants (except near-union cases)");
    println!("  - Bitset/RB-tree normalized time falls as e grows (paper annotations 153/88/30/8)");
    println!("  - from e >= 64, Ambit is the fastest; paper reports ~3x over RB-tree on average");
}
