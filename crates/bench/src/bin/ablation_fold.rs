//! Ablation (Section 5.2): program-level copy elimination. Accumulations
//! (k-way AND/OR) executed naively materialize every intermediate in a
//! data row; the fold compiler keeps the accumulator in the designated
//! rows. This harness executes both versions on the device and compares.

use ambit_bench::{cell, Report};
use ambit_core::{compile_fold, fold_savings, AmbitController, BitwiseOp, RowAddress};
use ambit_dram::{AapMode, BankId, BitRow, DramGeometry, TimingParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn controller() -> AmbitController {
    AmbitController::new(
        DramGeometry::ddr3_module(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

fn main() {
    let bank = BankId::zero();
    let bits = DramGeometry::ddr3_module().row_bits();
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    let mut report = Report::new(
        "k-way OR accumulation: naive programs vs fold compilation (one 8 KB row set)",
        &["k", "naive AAPs", "fold AAPs+APs", "naive (ns)", "fold (ns)", "speedup", "energy saved"],
    );

    for k in [3usize, 5, 7, 15] {
        let data: Vec<BitRow> = (0..k).map(|_| BitRow::random(bits, &mut rng)).collect();

        // Naive: copy + (k−1) standard ORs through a data-row accumulator.
        let mut naive = controller();
        for (i, d) in data.iter().enumerate() {
            naive.poke_data(bank, 0, i, d).unwrap();
        }
        let mut naive_receipt = naive
            .execute(BitwiseOp::Copy, bank, 0, RowAddress::D(0), None, RowAddress::D(100))
            .unwrap();
        for i in 1..k {
            let r = naive
                .execute(
                    BitwiseOp::Or,
                    bank,
                    0,
                    RowAddress::D(100),
                    Some(RowAddress::D(i)),
                    RowAddress::D(100),
                )
                .unwrap();
            naive_receipt.absorb(&r);
        }

        // Fold: accumulator lives in T0 across steps.
        let mut fold = controller();
        for (i, d) in data.iter().enumerate() {
            fold.poke_data(bank, 0, i, d).unwrap();
        }
        let srcs: Vec<RowAddress> = (0..k).map(RowAddress::D).collect();
        let program = compile_fold(BitwiseOp::Or, &srcs, RowAddress::D(100)).unwrap();
        let fold_receipt = fold.run_program(bank, 0, &program).unwrap();

        assert_eq!(
            naive.peek_data(bank, 0, 100).unwrap(),
            fold.peek_data(bank, 0, 100).unwrap(),
            "k={k}: fold result must match"
        );

        let (naive_aaps, fold_aaps, fold_aps) = fold_savings(k);
        report.row(&[
            cell(k),
            cell(naive_aaps + 1), // +1 for the initial copy
            format!("{fold_aaps}+{fold_aps}"),
            format!("{:.0}", naive_receipt.latency_ps() as f64 / 1000.0),
            format!("{:.0}", fold_receipt.latency_ps() as f64 / 1000.0),
            format!("{:.2}x", naive_receipt.latency_ps() as f64 / fold_receipt.latency_ps() as f64),
            format!(
                "{:.0}%",
                100.0 * (1.0 - fold_receipt.energy_nj / naive_receipt.energy_nj)
            ),
        ]);
    }
    report.print();
    println!(
        "\nthis is the paper's Section 5.2 remark made concrete: dead intermediate\n\
         stores never leave the designated rows, saving both AAPs and energy.\n\
         A bitmap index's 7-day weekly OR is the k=7 row."
    );
}
