//! Figure 9: raw throughput of bulk bitwise operations on Skylake,
//! GTX 745, HMC 2.0, Ambit (8-bank DDR3 module), and Ambit-3D.
//!
//! Also prints the Section 7 headline ratios and a bank-count sweep (the
//! "memory-level parallelism" scaling claim).

use ambit_bench::{cell, compare_line, fmt_ratio, Report};
use ambit_core::{AmbitConfig, BitwiseOp};
use ambit_sys::machines::{figure9_machines, AmbitMachine, BandwidthMachine, BitwiseMachine};

fn main() {
    let machines = figure9_machines();
    let mut report = Report::new(
        "Figure 9: throughput of bulk bitwise operations (GOps/s, 8-bit ops)",
        &["op", "Skylake", "GTX 745", "HMC 2.0", "Ambit", "Ambit-3D"],
    );
    for op in BitwiseOp::FIGURE9_OPS {
        let mut row = vec![cell(op)];
        for m in &machines {
            row.push(format!("{:.1}", m.throughput_gops(op)));
        }
        report.row(&row);
    }
    let mut mean_row = vec![cell("mean")];
    for m in &machines {
        mean_row.push(format!("{:.1}", m.mean_throughput_gops()));
    }
    report.row(&mean_row);
    report.print();
    report.write_csv_if_requested("fig9_throughput").expect("csv");

    println!("\nSection 7 headline comparisons (mean across the 7 ops):");
    let ambit = AmbitMachine::module().mean_throughput_gops();
    let ambit3d = AmbitMachine::three_d().mean_throughput_gops();
    let sky = BandwidthMachine::skylake().mean_throughput_gops();
    let gpu = BandwidthMachine::gtx745().mean_throughput_gops();
    let hmc = BandwidthMachine::hmc2().mean_throughput_gops();
    compare_line("Ambit vs Skylake", "44.9x", fmt_ratio(ambit / sky));
    compare_line("Ambit vs GTX 745", "32.0x", fmt_ratio(ambit / gpu));
    compare_line("Ambit vs HMC 2.0", "2.4x", fmt_ratio(ambit / hmc));
    compare_line("Ambit-3D vs HMC 2.0", "9.7x", fmt_ratio(ambit3d / hmc));
    compare_line("HMC 2.0 vs Skylake", "18.5x", fmt_ratio(hmc / sky));
    compare_line("HMC 2.0 vs GTX 745", "13.1x", fmt_ratio(hmc / gpu));

    // Bank-level parallelism sweep: Ambit throughput scales linearly with
    // the number of banks (Section 1, "advantages of our implementation").
    let mut sweep = Report::new(
        "Ambit AND throughput vs bank count (linear MLP scaling)",
        &["banks", "GOps/s"],
    );
    for banks in [1, 2, 4, 8, 16] {
        let cfg = AmbitConfig {
            banks,
            ..AmbitConfig::ddr3_module()
        };
        sweep.row(&[
            cell(banks),
            format!("{:.1}", cfg.throughput_gops(BitwiseOp::And).expect("standard op")),
        ]);
    }
    sweep.print();
}
