//! Ablation: what DRAM refresh costs Ambit. The paper notes (Section 3.2,
//! issue 4) that retention is why TRAs only run on freshly copied rows;
//! the refresh *schedule* itself also taxes throughput slightly. This
//! harness measures an AAP stream against a live refresh scheduler and
//! checks the closed-form derate.

use ambit_bench::{cell, Report};
use ambit_core::{AmbitConfig, BitwiseOp};
use ambit_dram::{
    refreshed_throughput, AapMode, CommandTimer, RefreshParams, RefreshScheduler, TimingParams,
};

/// Streams `n` AND programs on one bank with/without refresh; returns the
/// makespan in ps.
fn stream(n: usize, refresh: Option<RefreshParams>) -> u64 {
    let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Overlapped);
    let mut sched = refresh.map(RefreshScheduler::new);
    let mut end = 0;
    for _ in 0..n {
        if let Some(s) = sched.as_mut() {
            s.catch_up(&mut timer);
        }
        for aap in 0..4 {
            let w = if aap == 3 { 3 } else { 1 };
            let (_, e) = timer.aap(0, w, 1).unwrap();
            end = e;
        }
    }
    end
}

fn main() {
    let params = RefreshParams::ddr3_4gb();
    println!("== Refresh schedule (JEDEC DDR3, 4 Gb) ==");
    println!("  tREFI = {} ns, tRFC = {} ns", params.t_refi_ps / 1000, params.t_rfc_ps / 1000);
    println!(
        "  steady-state overhead tRFC/tREFI = {:.2}%  ({} refreshes per 64 ms window)",
        100.0 * params.refresh_overhead(),
        params.commands_per_window()
    );

    let ops = 4000; // ~780 µs of AND stream: spans ~100 refresh intervals
    let without = stream(ops, None);
    let with = stream(ops, Some(params));
    let measured = with as f64 / without as f64 - 1.0;

    let mut report = Report::new(
        "Measured AND-stream slowdown under a live refresh scheduler",
        &["configuration", "makespan (us)", "slowdown"],
    );
    report.row(&[
        cell("no refresh"),
        format!("{:.1}", without as f64 / 1e6),
        cell("-"),
    ]);
    report.row(&[
        cell("tREFI/tRFC enforced"),
        format!("{:.1}", with as f64 / 1e6),
        format!("{:.2}%", measured * 100.0),
    ]);
    report.print();

    let raw = AmbitConfig::ddr3_module()
        .throughput_gops(BitwiseOp::And)
        .expect("standard op");
    let derated = refreshed_throughput(raw * 1e9, &params) / 1e9;
    println!(
        "\nFigure 9's Ambit AND throughput {raw:.0} GOps/s becomes {derated:.0} GOps/s \
         with refresh —\na {:.1}% tax that does not change any conclusion in the paper.",
        100.0 * params.refresh_overhead()
    );
    assert!((measured - params.refresh_overhead()).abs() < 0.01);
    println!("(measured slowdown agrees with the closed-form tRFC/tREFI derate)");
}
