//! Section 5.5.2: "the (Ambit) controller can interleave the various AAP
//! operations in the bitwise operations with other regular memory requests
//! from different applications." This harness measures both directions of
//! that interference: what co-running AAP streams do to regular-request
//! latency, and what stealing bank time does to Ambit throughput.

use ambit_bench::{cell, Report};
use ambit_dram::{AapMode, CommandTimer, FrFcfsScheduler, MemoryRequest, TimingParams};

/// Regular readers on `reader_banks`, AAP streams on the same or different
/// banks; returns (mean read latency ns, makespan us).
fn run(share_banks: bool, ambit_ops: usize) -> (f64, f64) {
    let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Overlapped);

    // Ambit work first (the timer interleaves by bank state, so issuing
    // order within a window is immaterial for the per-bank pipelines).
    for i in 0..ambit_ops {
        let bank = if share_banks { i % 2 } else { 4 + i % 2 };
        for aap in 0..4 {
            let w = if aap == 3 { 3 } else { 1 };
            timer.aap(bank, w, 1).expect("aap");
        }
    }

    // Regular traffic: strided reads over two banks, arriving steadily.
    let mut sched = FrFcfsScheduler::new();
    for i in 0..256u64 {
        sched.enqueue(MemoryRequest {
            arrival_ps: i * 50_000, // one request per 50 ns
            bank: (i % 2) as usize,
            row: (i / 16) as usize,
            is_write: i % 5 == 0,
        });
    }
    let (_, stats) = sched.run(&mut timer).expect("schedule");
    (stats.mean_latency_ps / 1000.0, stats.makespan_ps as f64 / 1e6)
}

fn main() {
    let mut report = Report::new(
        "Regular-request latency vs co-running Ambit AAP streams (DDR3-1600)",
        &["Ambit ops", "banks", "mean read latency (ns)", "makespan (us)"],
    );
    for &(ops, share) in &[
        (0usize, false),
        (64, false),
        (64, true),
        (256, true),
    ] {
        let (lat, makespan) = run(share, ops);
        report.row(&[
            cell(ops),
            cell(if ops == 0 {
                "-"
            } else if share {
                "shared"
            } else {
                "separate"
            }),
            format!("{lat:.0}"),
            format!("{makespan:.1}"),
        ]);
    }
    report.print();

    println!(
        "\nreading the table: Ambit streams on *other* banks leave regular latency\n\
         untouched (bank-level isolation); sharing banks delays the readers by the\n\
         in-flight AAPs' row occupancy, which is why the Ambit controller tracks\n\
         on-going bitwise operations and interleaves at AAP granularity (§5.5.2)."
    );
}
