//! Figures 3, 4 and 6 as a narrated demo: single-cell activation state
//! transitions, triple-row activation (charge sharing → sense
//! amplification → restore), and the dual-contact-cell NOT — at both the
//! analog level (ambit-circuit) and the functional level (ambit-dram).

use ambit_circuit::{CircuitParams, SenseAmp};
use ambit_dram::{BitRow, Subarray, Wordline};

fn main() {
    let params = CircuitParams::ddr3_55nm();
    let amp = SenseAmp::new(params);

    println!("== Figure 3: single-cell activation (analog) ==");
    let single_dev = params.c_cell / (params.c_cell + params.c_bitline) * params.vdd / 2.0;
    println!("  precharged bitline: {:.3} V (VDD/2)", params.v_precharge());
    println!("  charge-sharing deviation (charged cell): +{:.1} mV", single_dev * 1e3);
    let out = amp.sense(single_dev);
    println!(
        "  sense amplification: latched to {} in {:.2} ns",
        if out.sensed_one { "VDD (1)" } else { "0" },
        out.latch_time_s * 1e9
    );

    println!("\n== Figure 4: triple-row activation (analog) ==");
    for k in 0..=3 {
        let dev = params.tra_deviation_ideal(k);
        let out = amp.sense(dev);
        println!(
            "  k={k} charged cells: deviation {:+.1} mV -> senses {} (majority: {}), latch {:.2} ns",
            dev * 1e3,
            out.sensed_one as u8,
            (k >= 2) as u8,
            out.latch_time_s * 1e9
        );
    }

    println!("\n== Figure 4: triple-row activation (functional) ==");
    let mut sa = Subarray::new(16, 8);
    sa.poke_row(0, BitRow::from_fn(8, |i| i < 6)); // A = 11111100 (LSB first)
    sa.poke_row(1, BitRow::from_fn(8, |i| i % 2 == 0)); // B = 10101010
    sa.poke_row(2, BitRow::from_fn(8, |i| i >= 4)); // C = 00001111
    let show = |r: &BitRow| -> String { (0..8).map(|i| if r.get(i) { '1' } else { '0' }).collect() };
    println!("  A = {}", show(&sa.peek_row(0)));
    println!("  B = {}", show(&sa.peek_row(1)));
    println!("  C = {}", show(&sa.peek_row(2)));
    let sensed = sa
        .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
        .expect("TRA")
        .clone();
    sa.precharge().expect("precharge");
    println!("  TRA result (bitwise majority) = {}", show(&sensed));
    println!(
        "  all three source rows overwritten: A={} B={} C={}",
        show(&sa.peek_row(0)),
        show(&sa.peek_row(1)),
        show(&sa.peek_row(2))
    );

    println!("\n== Figure 6: Ambit-NOT via the dual-contact cell (functional) ==");
    let mut sa = Subarray::new(16, 8);
    let src = BitRow::from_fn(8, |i| i % 3 == 0);
    sa.poke_row(0, src.clone());
    println!("  source row        = {}", show(&src));
    // ACTIVATE source; ACTIVATE n-wordline of the DCC; PRECHARGE.
    sa.activate(&[Wordline::data(0)]).expect("activate source");
    sa.activate(&[Wordline::negated(4)]).expect("activate n-wordline");
    sa.precharge().expect("precharge");
    println!("  DCC (after copy)  = {}", show(&sa.peek_row(4)));
    // Read back through the d-wordline: the negated value.
    let sensed = sa.activate(&[Wordline::data(4)]).expect("read DCC").clone();
    sa.precharge().expect("precharge");
    println!("  sensed through d-wordline = {} (= NOT source)", show(&sensed));
    assert_eq!(sensed, src.not());
    println!("\nall transitions match the paper's figures");
}
