//! Study: bulk bit-serial arithmetic from bitwise primitives — what the
//! paper's conclusion enables and SIMDRAM later built. Measures in-DRAM
//! lane-parallel addition (carry = one native TRA-majority per bit) against
//! a bandwidth-bound SIMD CPU adder.

use ambit_bench::{cell, fmt_time, Report};
use ambit_apps::arith::BitSlicedVector;
use ambit_core::{AmbitConfig, AmbitMemory, BitwiseOp};
use ambit_sys::SystemConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let config = SystemConfig::gem5_calibrated();
    let ambit = AmbitConfig::ddr3_module();
    let mut rng = ChaCha8Rng::seed_from_u64(0xadd);

    // Functional demonstration on the simulated device (modest size so the
    // functional simulation stays snappy).
    let lanes = 64 * 1024;
    let width = 8;
    let mut mem = AmbitMemory::ddr3_module();
    let a = BitSlicedVector::alloc(&mut mem, lanes, width).expect("alloc");
    let b = BitSlicedVector::alloc(&mut mem, lanes, width).expect("alloc");
    let av: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..256)).collect();
    let bv: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..256)).collect();
    a.write(&mut mem, &av).expect("write");
    b.write(&mut mem, &bv).expect("write");
    let (sum, receipt) = a.add(&mut mem, &b).expect("add");
    let got = sum.read(&mem).expect("read");
    for l in 0..lanes {
        assert_eq!(got[l], (av[l] + bv[l]) & 255, "lane {l}");
    }
    println!(
        "functional check: {lanes} lane-parallel {width}-bit additions computed in DRAM, \
         all correct\n  ({} AAPs + {} APs, {:.2} us simulated)",
        receipt.aaps,
        receipt.aps,
        receipt.latency_ps() as f64 / 1e6
    );

    // Analytic throughput: additions per second at paper scale.
    let mut report = Report::new(
        "Bulk lane-parallel addition throughput (8-bank module, analytic steady state)",
        &["width", "DRAM ops/bit", "Ambit Gadds/s", "CPU Gadds/s", "Ambit/CPU"],
    );
    for width in [4usize, 8, 16, 32] {
        // Per bit position: xor + xor + maj + copy programs.
        let per_bit_ps = 2 * ambit.op_latency_ps(BitwiseOp::Xor).expect("op")
            + ambit.op_latency_ps(BitwiseOp::And).expect("op") // maj = AND-shaped program
            + ambit.op_latency_ps(BitwiseOp::Copy).expect("op");
        let lanes_per_round = ambit.banks * ambit.row_bytes * 8;
        let adds_per_s =
            lanes_per_round as f64 / (width as f64 * per_bit_ps as f64 * 1e-12);
        // CPU: stream 2 inputs + 1 output of `width`-bit integers, SIMD adds.
        let bytes_per_add = 3.0 * (width as f64 / 8.0);
        let cpu_adds_per_s = config.stream_bandwidth(usize::MAX / 2) / bytes_per_add;
        report.row(&[
            cell(width),
            cell(4 * width),
            format!("{:.1}", adds_per_s / 1e9),
            format!("{:.1}", cpu_adds_per_s / 1e9),
            format!("{:.1}x", adds_per_s / cpu_adds_per_s),
        ]);
    }
    report.print();

    println!(
        "\nthe carry chain is where TRA shines: maj(a, b, carry) is one 4-AAP program\n\
         because majority is what triple-row activation physically computes. Narrow\n\
         integers amortize best — exactly SIMDRAM's later finding.\n\
         (time to produce the functional numbers above: {})",
        fmt_time(receipt.latency_ps() as f64 * 1e-12)
    );
}
