//! Differential-conformance fuzz driver and repro replayer.
//!
//! ```text
//! conformance_replay fuzz [--seed S] [--count N] [--faults] [--profiles] [--multi-channel]
//!                         [--synth]
//! conformance_replay replay <repro.json>
//! ```
//!
//! `fuzz` generates `N` seeded programs and runs each through the N-way
//! execution oracle (eager, batch serial, batch bank-parallel, forced
//! scalar, resilient, plus the CPU golden model). `--faults` arms a slice
//! of the programs with a uniform TRA fault rate; `--profiles` arms a
//! slice with a random device characterization map (variation-aware
//! placement, spare-row pre-remap, per-subarray fault campaign);
//! `--multi-channel` places a slice of the fault-free programs on the
//! two-channel geometry so the channel-sharded threaded batch path is
//! fuzzed against the serial paths; `--synth` lets fault-free programs
//! carry random synthesized truth-table ops, compiled through the
//! `ambit-core::synth` pipeline on every execution path. The first
//! divergence is minimized and written to `CONFORMANCE_repro.json` in the
//! current directory, and the process exits 1. `AMBIT_QUICK=1` caps the
//! default count at 200 programs for CI smoke runs.
//!
//! `replay` loads a repro JSON file and re-runs it: exit 0 if the recorded
//! failure reproduces (same failing paths), exit 2 if it does not.

use std::env;
use std::fs;
use std::process::ExitCode;

use ambit_conformance::{generate, run_oracle, GeneratorConfig, ProgOp, Repro};

const REPRO_FILE: &str = "CONFORMANCE_repro.json";

fn usage() -> ExitCode {
    eprintln!(
        "usage: conformance_replay fuzz [--seed S] [--count N] [--faults] [--profiles] \
         [--multi-channel] [--synth]\n\
         \x20      conformance_replay replay <repro.json>"
    );
    ExitCode::from(64)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("fuzz") => fuzz(&args[1..]),
        Some("replay") => match args.get(1) {
            Some(path) => replay(path),
            None => usage(),
        },
        _ => usage(),
    }
}

fn fuzz(args: &[String]) -> ExitCode {
    let mut seed: u64 = 1;
    let mut count: usize = if env::var("AMBIT_QUICK").is_ok() { 200 } else { 1000 };
    let mut faults = false;
    let mut profiles = false;
    let mut multi_channel = false;
    let mut synth = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--count" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => count = v,
                None => return usage(),
            },
            "--faults" => faults = true,
            "--profiles" => profiles = true,
            "--multi-channel" => multi_channel = true,
            "--synth" => synth = true,
            _ => return usage(),
        }
    }

    let mut cfg = GeneratorConfig::default();
    if faults {
        cfg.fault_chance = GeneratorConfig::with_faults().fault_chance;
    }
    if profiles {
        cfg.profile_chance = GeneratorConfig::with_profiles().profile_chance;
    }
    if multi_channel {
        cfg.multi_channel_chance = GeneratorConfig::with_multi_channel().multi_channel_chance;
    }
    if synth {
        cfg.synth_chance = GeneratorConfig::with_synth().synth_chance;
    }
    let mut fault_armed = 0usize;
    let mut profile_armed = 0usize;
    let mut dual_channel = 0usize;
    let mut synth_armed = 0usize;
    for i in 0..count {
        let program_seed = seed.wrapping_add(i as u64);
        let program = generate(program_seed, &cfg);
        if program.fault_tra_rate.is_some() {
            fault_armed += 1;
        }
        if program.profile_seed.is_some() {
            profile_armed += 1;
        }
        if program.geometry.geometry().channels > 1 {
            dual_channel += 1;
        }
        if program.ops.iter().any(|op| matches!(op, ProgOp::Synth { .. })) {
            synth_armed += 1;
        }
        let report = run_oracle(&program, None);
        if report.ok() {
            continue;
        }
        eprintln!("seed {program_seed}: divergence detected");
        for f in &report.failures {
            eprintln!("  [{}] {}", f.path, f.detail);
        }
        match Repro::capture(&program, None) {
            Some(repro) => {
                let text = repro.to_json().to_string();
                if let Err(e) = fs::write(REPRO_FILE, &text) {
                    eprintln!("failed to write {REPRO_FILE}: {e}");
                } else {
                    eprintln!(
                        "minimized repro ({} ops, {} vectors) written to {REPRO_FILE}",
                        repro.program.ops.len(),
                        repro.program.vectors.len()
                    );
                }
            }
            // The divergence did not survive re-execution (flaky
            // environment); still report the failure.
            None => eprintln!("divergence did not reproduce during capture"),
        }
        return ExitCode::FAILURE;
    }
    println!(
        "conformance: {count} programs from seed {seed} ({fault_armed} fault-armed, \
         {profile_armed} profile-armed, {dual_channel} dual-channel, {synth_armed} with \
         synthesized ops), 0 divergences"
    );
    ExitCode::SUCCESS
}

fn replay(path: &str) -> ExitCode {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(66);
        }
    };
    let repro = match Repro::from_json_text(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::from(65);
        }
    };
    let report = repro.replay();
    if repro.reproduces() {
        println!("repro reproduces: {} failing path(s)", report.failures.len());
        for f in &report.failures {
            println!("  [{}] {}", f.path, f.detail);
        }
        ExitCode::SUCCESS
    } else if report.ok() {
        println!("repro does NOT reproduce: all paths now conform");
        ExitCode::from(2)
    } else {
        println!("repro failure set changed:");
        for f in &report.failures {
            println!("  [{}] {}", f.path, f.detail);
        }
        ExitCode::from(2)
    }
}
