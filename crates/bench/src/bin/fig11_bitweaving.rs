//! Figure 11: speedup of Ambit over the SIMD baseline for BitWeaving
//! column scans (`select count(*) where c1 <= val <= c2`), sweeping bits
//! per column b ∈ {4..32} and row count r ∈ {1 M..8 M}.
//!
//! The paper's two observations to look for in the output:
//! 1. speedup grows with b (the CPU bitcount amortizes), and
//! 2. at fixed b, speedup jumps when r·b/8 stops fitting in the 2 MB L2.

use ambit_bench::{cell, compare_line, fmt_ratio, quick_mode, Report};
use ambit_apps::bitweaving::{run_bitweaving, BitWeavingWorkload};
use ambit_core::AmbitMemory;
use ambit_sys::SystemConfig;

fn main() {
    let config = SystemConfig::gem5_calibrated();
    let (bits_sweep, row_sweep): (Vec<usize>, Vec<usize>) = if quick_mode() {
        (vec![4, 16, 32], vec![1 << 20, 8 << 20])
    } else {
        (
            vec![4, 8, 12, 16, 20, 24, 28, 32],
            vec![1 << 20, 2 << 20, 4 << 20, 8 << 20],
        )
    };

    let mut headers: Vec<String> = vec!["b".into()];
    headers.extend(row_sweep.iter().map(|r| format!("r={}M", r >> 20)));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(
        "Figure 11: Ambit speedup over SIMD baseline for BitWeaving scans",
        &header_refs,
    );

    let mut all = Vec::new();
    for &b in &bits_sweep {
        let mut row = vec![cell(b)];
        for &r in &row_sweep {
            let result = run_bitweaving(
                &config,
                AmbitMemory::ddr3_module(),
                &BitWeavingWorkload { rows: r, bits: b, seed: 0xb17 },
            )
            .expect("bitweaving run");
            row.push(fmt_ratio(result.speedup()));
            all.push((b, r, result.speedup()));
        }
        report.row(&row);
    }
    report.print();
    report.write_csv_if_requested("fig11_bitweaving").expect("csv");

    let mean = all.iter().map(|&(_, _, s)| s).product::<f64>().powf(1.0 / all.len() as f64);
    let max = all.iter().map(|&(_, _, s)| s).fold(0.0f64, f64::max);
    let min = all.iter().map(|&(_, _, s)| s).fold(f64::MAX, f64::min);
    println!();
    compare_line("speedup range", "1.8x - 11.8x", format!("{min:.1}x - {max:.1}x"));
    compare_line("mean speedup", "7.0x", fmt_ratio(mean));
    println!("  working-set crossover: watch the jump in a row once r*b/8 exceeds 2 MB L2");
    for &b in &bits_sweep {
        let boundary = 2 * 1024 * 1024 * 8 / b;
        println!("    b={b:2}: L2 crossover at r ≈ {:.1} M rows", boundary as f64 / 1e6);
    }
}
