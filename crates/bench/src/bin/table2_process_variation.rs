//! Table 2: effect of process variation on triple-row activation —
//! Monte Carlo failure rates at ±0 %…±25 % variation (100 000 trials per
//! level, as in the paper), plus the adversarial worst-case margin
//! (paper: TRA guaranteed correct to ±6 %).

use ambit_bench::{cell, compare_line, quick_mode, Report};
use ambit_circuit::{table2_sweep, worst_case_margin, CircuitParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let params = CircuitParams::ddr3_55nm();
    let trials: u64 = if quick_mode() { 10_000 } else { 100_000 };
    let mut rng = ChaCha8Rng::seed_from_u64(0x7ab1e2);

    let sweep = table2_sweep(&params, trials, &mut rng);
    let paper = [0.00, 0.00, 0.29, 6.01, 16.36, 26.19];

    let mut report = Report::new(
        format!("Table 2: TRA failure rate vs process variation ({trials} trials/level)"),
        &["variation", "failures", "% failures", "paper %"],
    );
    for (r, &p) in sweep.iter().zip(&paper) {
        report.row(&[
            format!("±{:.0}%", r.level * 100.0),
            cell(r.failures),
            format!("{:.2}%", r.failure_percent()),
            format!("{p:.2}%"),
        ]);
    }
    report.print();
    report.write_csv_if_requested("table2_process_variation").expect("csv");

    let margin = worst_case_margin(&params);
    println!("\nAdversarial worst-case analysis:");
    compare_line(
        "all-corners-adversarial TRA still correct up to",
        "±6%",
        format!("±{:.1}%", margin * 100.0),
    );

    // Sanity: the two shape properties the paper emphasises.
    assert!(
        sweep[1].failures == 0,
        "±5% must be failure-free (paper: 0.00%)"
    );
    assert!(
        sweep.windows(2).all(|w| w[1].failures >= w[0].failures),
        "failure rate must be monotone in variation"
    );
    println!("\nshape checks passed: 0 failures at ±5%, monotone in level");
}
