//! # ambit-bench — experiment harnesses for the Ambit reproduction
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md for the full index); the Criterion
//! benches in `benches/` measure the simulator itself. This library crate
//! holds the shared report-formatting helpers and quick-mode plumbing.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Display;

/// Returns `true` when `AMBIT_QUICK` is set: harnesses shrink their sweeps
/// for smoke testing (CI) while keeping the same code paths.
pub fn quick_mode() -> bool {
    std::env::var_os("AMBIT_QUICK").is_some()
}

/// A fixed-width text table mirroring the paper's presentation.
#[derive(Debug)]
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report with a title line (e.g. `"Figure 9: ..."`).
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row of cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as CSV (header row first) for external plotting.
    pub fn render_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path` when the `AMBIT_CSV_DIR`
    /// environment variable is set (harnesses call this after printing).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv_if_requested(&self, name: &str) -> std::io::Result<()> {
        if let Some(dir) = std::env::var_os("AMBIT_CSV_DIR") {
            let mut path = std::path::PathBuf::from(dir);
            std::fs::create_dir_all(&path)?;
            path.push(format!("{name}.csv"));
            std::fs::write(path, self.render_csv())?;
        }
        Ok(())
    }
}

/// Formats seconds with a sensible SI unit.
pub fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.2} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Formats a ratio as `12.3x`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.1}x")
}

/// Formats any display value right-padded (convenience for rows).
pub fn cell(v: impl Display) -> String {
    v.to_string()
}

/// Prints a paper-vs-measured comparison footer line.
pub fn compare_line(label: &str, paper: impl Display, measured: impl Display) {
    println!("  {label}: paper {paper}, reproduced {measured}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned_columns() {
        let mut r = Report::new("Test", &["a", "long-header", "c"]);
        r.row(&[cell(1), cell("x"), cell(2.5)]);
        r.row(&[cell(100), cell("yyyy"), cell("z")]);
        let s = r.render();
        assert!(s.contains("== Test =="));
        assert!(s.contains("long-header"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn report_checks_arity() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&[cell(1)]);
    }

    #[test]
    fn csv_rendering_escapes_and_aligns() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&[cell("x,y"), cell(1)]);
        r.row(&[cell("plain"), cell(2)]);
        let csv = r.render_csv();
        assert_eq!(csv, "a,b\n\"x,y\",1\nplain,2\n");
    }

    #[test]
    fn time_formatting_units() {
        assert_eq!(fmt_time(2.0), "2.00 s");
        assert_eq!(fmt_time(2e-3), "2.00 ms");
        assert_eq!(fmt_time(2e-6), "2.00 us");
        assert_eq!(fmt_time(5e-9), "5.0 ns");
        assert_eq!(fmt_ratio(6.04), "6.0x");
    }
}
