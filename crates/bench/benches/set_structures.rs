//! Criterion bench: the real (host-executed) set data structures backing
//! Figure 12 — red-black tree vs bitset — plus the Ambit functional path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ambit_apps::{AmbitSetArena, BitSet, RbTree};
use ambit_core::AmbitMemory;
use ambit_dram::{AapMode, DramGeometry, TimingParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const DOMAIN: usize = 64 * 1024;

fn elements(e: usize, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out: Vec<usize> = (0..e).map(|_| rng.gen_range(0..DOMAIN)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn bench_inserts(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_insert");
    group.sample_size(20);
    for e in [256usize, 4096] {
        let elems = elements(e, 1);
        group.bench_with_input(BenchmarkId::new("rbtree", e), &elems, |bench, elems| {
            bench.iter(|| {
                let mut t = RbTree::new();
                for &k in elems {
                    t.insert(k);
                }
                black_box(t.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("bitset", e), &elems, |bench, elems| {
            bench.iter(|| {
                let mut s = BitSet::new(DOMAIN);
                for &k in elems {
                    s.insert(k);
                }
                black_box(s.len())
            });
        });
    }
    group.finish();
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_union_m15");
    group.sample_size(10);
    let e = 1024;
    let sets: Vec<Vec<usize>> = (0..15).map(|i| elements(e, i as u64)).collect();

    let trees: Vec<RbTree<usize>> = sets.iter().map(|s| s.iter().copied().collect()).collect();
    group.bench_function("rbtree", |bench| {
        bench.iter(|| {
            let mut out = RbTree::new();
            for t in &trees {
                for &k in t.iter() {
                    out.insert(k);
                }
            }
            black_box(out.len())
        });
    });

    let bitsets: Vec<BitSet> = sets
        .iter()
        .map(|s| {
            let mut b = BitSet::new(DOMAIN);
            for &k in s {
                b.insert(k);
            }
            b
        })
        .collect();
    group.bench_function("bitset", |bench| {
        bench.iter(|| {
            let mut acc = BitSet::new(DOMAIN);
            for b in &bitsets {
                acc.union_with(b);
            }
            black_box(acc.len())
        });
    });

    group.bench_function("ambit_functional", |bench| {
        bench.iter(|| {
            let mem = AmbitMemory::new(
                DramGeometry::ddr3_module(),
                TimingParams::ddr3_1600(),
                AapMode::Overlapped,
            );
            let mut arena = AmbitSetArena::new(mem, DOMAIN);
            let out = arena.new_set().unwrap();
            let mut acc = out;
            for s in &sets {
                let h = arena.new_set().unwrap();
                arena.load(h, s).unwrap();
                arena.union(out, acc, h).unwrap();
                acc = out;
            }
            black_box(arena.len(out).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_union);
criterion_main!(benches);
