//! Criterion bench: simulator throughput of the functional Ambit device
//! executing each bulk bitwise command program on one 8 KB row pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ambit_core::{AmbitController, BitwiseOp, RowAddress};
use ambit_dram::{AapMode, BankId, BitRow, DramGeometry, TimingParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_bulk_ops(c: &mut Criterion) {
    let geometry = DramGeometry::ddr3_module();
    let bits = geometry.row_bits();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let a = BitRow::random(bits, &mut rng);
    let b = BitRow::random(bits, &mut rng);

    let mut group = c.benchmark_group("bulk_ops");
    group.throughput(Throughput::Bytes(geometry.row_bytes as u64));
    group.sample_size(30);
    for op in BitwiseOp::FIGURE9_OPS {
        group.bench_with_input(BenchmarkId::from_parameter(op), &op, |bench, &op| {
            let mut ctrl =
                AmbitController::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
            let bank = BankId::zero();
            ctrl.poke_data(bank, 0, 0, &a).unwrap();
            ctrl.poke_data(bank, 0, 1, &b).unwrap();
            let src2 = (op.source_count() == 2).then_some(RowAddress::D(1));
            bench.iter(|| {
                let receipt = ctrl
                    .execute(op, bank, 0, RowAddress::D(0), src2, RowAddress::D(2))
                    .unwrap();
                black_box(receipt.latency_ps());
            });
        });
    }
    group.finish();
}

fn bench_raw_majority(c: &mut Criterion) {
    // The inner loop of TRA: word-parallel majority over an 8 KB row.
    let bits = 8192 * 8;
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let a = BitRow::random(bits, &mut rng);
    let b = BitRow::random(bits, &mut rng);
    let cc = BitRow::random(bits, &mut rng);
    let mut group = c.benchmark_group("bitrow");
    group.throughput(Throughput::Bytes(8192));
    group.bench_function("majority_8kb", |bench| {
        bench.iter(|| black_box(BitRow::majority(&a, &b, &cc)));
    });
    group.bench_function("and_8kb", |bench| {
        bench.iter(|| black_box(a.and(&b)));
    });
    group.finish();
}

criterion_group!(benches, bench_bulk_ops, bench_raw_majority);
criterion_main!(benches);
