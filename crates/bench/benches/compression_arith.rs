//! Criterion bench: WAH compressed-domain algebra and the in-DRAM
//! bit-serial adder (host-side simulator performance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ambit_apps::arith::BitSlicedVector;
use ambit_apps::WahBitmap;
use ambit_core::AmbitMemory;
use ambit_dram::{AapMode, DramGeometry, TimingParams};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_wah(c: &mut Criterion) {
    let bits = 1 << 20;
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut group = c.benchmark_group("wah");
    group.sample_size(20);
    for density in [0.001f64, 0.1] {
        let da: Vec<bool> = (0..bits).map(|_| rng.gen_bool(density)).collect();
        let db: Vec<bool> = (0..bits).map(|_| rng.gen_bool(density)).collect();
        let a = WahBitmap::from_bools(&da);
        let b = WahBitmap::from_bools(&db);
        group.throughput(Throughput::Bytes((bits / 8) as u64));
        group.bench_with_input(
            BenchmarkId::new("and_compressed", format!("{:.1}pct", density * 100.0)),
            &(a, b),
            |bench, (a, b)| {
                bench.iter(|| black_box(a.and(b)));
            },
        );
    }
    group.finish();
}

fn bench_adder(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_serial_adder");
    group.sample_size(10);
    let lanes = 64 * 1024;
    for width in [8usize, 16] {
        group.throughput(Throughput::Elements(lanes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |bench, &width| {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let max = (1u32 << width) - 1;
            let av: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..=max)).collect();
            let bv: Vec<u32> = (0..lanes).map(|_| rng.gen_range(0..=max)).collect();
            bench.iter(|| {
                let mut mem = AmbitMemory::new(
                    DramGeometry::ddr3_module(),
                    TimingParams::ddr3_1600(),
                    AapMode::Overlapped,
                );
                let a = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
                let b = BitSlicedVector::alloc(&mut mem, lanes, width).unwrap();
                a.write(&mut mem, &av).unwrap();
                b.write(&mut mem, &bv).unwrap();
                let (sum, _) = a.add(&mut mem, &b).unwrap();
                black_box(sum.read(&mem).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wah, bench_adder);
criterion_main!(benches);
