//! Criterion bench: BitWeaving predicate scans — the software (SIMD-style)
//! scan versus the functional Ambit device executing the same dataflow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ambit_apps::bitweaving::{AmbitColumn, BitSlicedColumn, BitWeavingWorkload};
use ambit_core::AmbitMemory;
use ambit_dram::{AapMode, DramGeometry, TimingParams};

fn bench_scans(c: &mut Criterion) {
    let rows = 256 * 1024;
    let mut group = c.benchmark_group("bitweaving_scan");
    group.sample_size(10);
    for bits in [8usize, 16] {
        let workload = BitWeavingWorkload { rows, bits, seed: 5 };
        let (values, c1, c2) = workload.generate();
        let column = BitSlicedColumn::from_values(&values, bits);
        group.throughput(Throughput::Elements(rows as u64));

        group.bench_with_input(
            BenchmarkId::new("software", bits),
            &column,
            |bench, column| {
                bench.iter(|| black_box(column.scan_between(c1, c2)));
            },
        );

        group.bench_with_input(
            BenchmarkId::new("ambit_functional", bits),
            &column,
            |bench, column| {
                bench.iter(|| {
                    let mut mem = AmbitMemory::new(
                        DramGeometry::ddr3_module(),
                        TimingParams::ddr3_1600(),
                        AapMode::Overlapped,
                    );
                    let acol = AmbitColumn::load(&mut mem, column).expect("load column");
                    black_box(acol.scan_between(&mut mem, c1, c2).expect("scan").0)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
