//! Criterion bench: Monte Carlo TRA reliability trials per second (the
//! Table 2 engine) and the transient sense-amplifier simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use ambit_circuit::{run_monte_carlo, CircuitParams, SenseAmp};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_monte_carlo(c: &mut Criterion) {
    let params = CircuitParams::ddr3_55nm();
    let mut group = c.benchmark_group("tra_monte_carlo");
    group.sample_size(20);
    for level in [0.05, 0.15, 0.25] {
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("pm{:.0}pct", level * 100.0)),
            &level,
            |bench, &level| {
                let mut rng = ChaCha8Rng::seed_from_u64(9);
                bench.iter(|| black_box(run_monte_carlo(&params, level, 1000, &mut rng)));
            },
        );
    }
    group.finish();
}

fn bench_sense_amp_transient(c: &mut Criterion) {
    let params = CircuitParams::ddr3_55nm();
    let amp = SenseAmp::new(params);
    let mut group = c.benchmark_group("sense_amp");
    group.sample_size(20);
    for (name, dev) in [("tra_k2", params.tra_deviation_ideal(2)), ("tiny_5mv", 0.005)] {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(amp.sense(dev)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monte_carlo, bench_sense_amp_transient);
criterion_main!(benches);
