//! SIMDRAM-style boolean microprogram compiler.
//!
//! Ambit's bbop ISA covers the paper's fixed operation set; the follow-on
//! SIMDRAM line (arXiv:2012.11890, arXiv:2105.12839) shows the general
//! form: *any* n-input boolean function can be lowered to the MAJ/NOT
//! basis the DRAM physically computes, because
//!
//! ```text
//! AND(a, b) = MAJ(a, b, 0)      — TRA with control row C0 as the third input
//! OR(a, b)  = MAJ(a, b, 1)      — TRA with control row C1
//! NOT(a)                         — the dual-contact cell's negated wordline
//! ```
//!
//! and `{AND, NOT}` (a fortiori `{MAJ, NOT}`) is functionally complete:
//! every truth table has a sum-of-products form built from AND/OR/NOT.
//! This module is that compiler:
//!
//! * **Front ends** — [`BoolFunc`] (a truth table over ≤ 6 inputs) and
//!   [`Expr`] (an expression DAG with And/Or/Xor/Maj/Not nodes);
//! * **Lowering** — Shannon decomposition of truth tables and a recursive
//!   walk of expressions, both emitting only MAJ/NOT steps over virtual
//!   values (with local simplification: constant folding, repeated-operand
//!   majority collapse, double-negation elimination);
//! * **Optimizer** — common-subexpression elimination across the whole
//!   batch of output functions (value numbering with canonicalized MAJ
//!   operand order), dead-step elimination (backward liveness from the
//!   outputs), and scratch-row register allocation (last-use reuse, so the
//!   designated-row footprint is the live-range high-water mark, not the
//!   step count);
//! * **Back end** — instruction selection onto the existing bbop set
//!   (`MAJ(x, y, const)` becomes the native And/Or program, which *is* the
//!   majority with a control row) and emission as ordinary
//!   [`BatchBuilder`] operations, so synthesized programs flow through the
//!   plan cache, the batch engine's hazard analysis, and the threaded
//!   executor unchanged.
//!
//! Output semantics match the driver's: every step stages its sources
//! before writing, and the compiled program writes its destination handles
//! only in trailing steps, after all input reads — so a destination may
//! alias an input and still observe pre-operation values, exactly like the
//! eager driver ops and the conformance golden model.
//!
//! ```
//! use ambit_core::synth::{synthesize, BoolFunc, SynthOptions};
//! use ambit_core::{AmbitMemory, IssuePolicy};
//! use ambit_dram::{AapMode, DramGeometry, TimingParams};
//!
//! // sum and carry of a full adder, compiled together so the optimizer
//! // shares the common subterms.
//! let sum = BoolFunc::from_fn(3, |i| (i.count_ones() & 1) == 1)?;
//! let carry = BoolFunc::from_fn(3, |i| i.count_ones() >= 2)?;
//! let plan = synthesize(&[sum, carry], &SynthOptions::default())?;
//!
//! let mut mem = AmbitMemory::new(
//!     DramGeometry::tiny(),
//!     TimingParams::ddr3_1600(),
//!     AapMode::Overlapped,
//! );
//! let bits = mem.row_bits();
//! let a = mem.alloc(bits)?;
//! let b = mem.alloc(bits)?;
//! let c = mem.alloc(bits)?;
//! let s = mem.alloc(bits)?;
//! let cout = mem.alloc(bits)?;
//! plan.run(&mut mem, IssuePolicy::BankParallel, &[a, b, c], &[s, cout])?;
//! # Ok::<(), ambit_core::AmbitError>(())
//! ```

use std::collections::HashMap;

use crate::batch::{BatchBuilder, BatchReceipt, IssuePolicy};
use crate::driver::{AmbitMemory, BitVectorHandle};
use crate::error::{AmbitError, Result};
use crate::ops::{self, command_counts, BitwiseOp};
use crate::addressing::RowAddress;

/// Maximum number of function inputs: a 6-input truth table fills a `u64`
/// exactly.
pub const MAX_INPUTS: usize = 6;

fn synth_err(detail: impl Into<String>) -> AmbitError {
    AmbitError::Synthesis { detail: detail.into() }
}

/// An n-input boolean function as a truth table.
///
/// Input `j` of an assignment contributes bit `j` of the minterm index;
/// the function's value on that assignment is bit `index` of `table`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoolFunc {
    inputs: usize,
    table: u64,
}

impl BoolFunc {
    /// Builds a function from its truth table.
    ///
    /// # Errors
    ///
    /// Rejects input counts outside `1..=6` and tables with bits beyond
    /// `2^(2^inputs)`.
    pub fn from_table(inputs: usize, table: u64) -> Result<Self> {
        if inputs == 0 || inputs > MAX_INPUTS {
            return Err(synth_err(format!(
                "function arity {inputs} outside 1..={MAX_INPUTS}"
            )));
        }
        let minterms = 1u64 << inputs;
        if minterms < 64 && table >> minterms != 0 {
            return Err(synth_err(format!(
                "table {table:#x} has bits beyond its {minterms} minterms"
            )));
        }
        Ok(BoolFunc { inputs, table })
    }

    /// Builds a function by evaluating `f` on every minterm index.
    ///
    /// # Errors
    ///
    /// Rejects input counts outside `1..=6`.
    pub fn from_fn(inputs: usize, f: impl Fn(u64) -> bool) -> Result<Self> {
        if inputs == 0 || inputs > MAX_INPUTS {
            return Err(synth_err(format!(
                "function arity {inputs} outside 1..={MAX_INPUTS}"
            )));
        }
        let mut table = 0u64;
        for idx in 0..1u64 << inputs {
            if f(idx) {
                table |= 1 << idx;
            }
        }
        Ok(BoolFunc { inputs, table })
    }

    /// Builds the truth table of an expression over `inputs` variables.
    ///
    /// # Errors
    ///
    /// Rejects arities outside `1..=6` and expressions referencing inputs
    /// beyond `inputs`.
    pub fn from_expr(inputs: usize, expr: &Expr) -> Result<Self> {
        if inputs == 0 || inputs > MAX_INPUTS {
            return Err(synth_err(format!(
                "function arity {inputs} outside 1..={MAX_INPUTS}"
            )));
        }
        expr.check_inputs(inputs)?;
        BoolFunc::from_fn(inputs, |idx| expr.eval(idx))
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// The raw truth table.
    pub fn table(&self) -> u64 {
        self.table
    }

    /// Evaluates the function on a minterm index (input `j` = bit `j`).
    pub fn eval(&self, assignment: u64) -> bool {
        debug_assert!(assignment < 1 << self.inputs);
        self.table >> (assignment & ((1 << self.inputs) - 1)) & 1 == 1
    }
}

/// An expression-DAG front end for the synthesizer.
///
/// Inputs are numbered; constants, negation, and the usual connectives are
/// provided, plus a native three-input majority node (the TRA primitive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Input variable `j`.
    Input(usize),
    /// A constant.
    Const(bool),
    /// Logical negation.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Exclusive or.
    Xor(Box<Expr>, Box<Expr>),
    /// Three-input majority.
    Maj(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Input variable `j`.
    pub fn input(j: usize) -> Expr {
        Expr::Input(j)
    }

    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self & rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self | rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `self ^ rhs`.
    pub fn xor(self, rhs: Expr) -> Expr {
        Expr::Xor(Box::new(self), Box::new(rhs))
    }

    /// `maj(a, b, c)`.
    pub fn maj(a: Expr, b: Expr, c: Expr) -> Expr {
        Expr::Maj(Box::new(a), Box::new(b), Box::new(c))
    }

    fn eval(&self, idx: u64) -> bool {
        match self {
            Expr::Input(j) => idx >> j & 1 == 1,
            Expr::Const(v) => *v,
            Expr::Not(e) => !e.eval(idx),
            Expr::And(a, b) => a.eval(idx) && b.eval(idx),
            Expr::Or(a, b) => a.eval(idx) || b.eval(idx),
            Expr::Xor(a, b) => a.eval(idx) != b.eval(idx),
            Expr::Maj(a, b, c) => {
                u8::from(a.eval(idx)) + u8::from(b.eval(idx)) + u8::from(c.eval(idx)) >= 2
            }
        }
    }

    fn check_inputs(&self, inputs: usize) -> Result<()> {
        match self {
            Expr::Input(j) if *j >= inputs => Err(synth_err(format!(
                "expression references input {j}, function has {inputs}"
            ))),
            Expr::Input(_) | Expr::Const(_) => Ok(()),
            Expr::Not(e) => e.check_inputs(inputs),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                a.check_inputs(inputs)?;
                b.check_inputs(inputs)
            }
            Expr::Maj(a, b, c) => {
                a.check_inputs(inputs)?;
                b.check_inputs(inputs)?;
                c.check_inputs(inputs)
            }
        }
    }
}

/// Compiler knobs.
#[derive(Debug, Clone)]
pub struct SynthOptions {
    /// Common-subexpression elimination across the whole output batch.
    pub cse: bool,
    /// Dead-step elimination (backward liveness from the outputs).
    pub dead_step_elim: bool,
    /// Lower three-live-input majorities into And/Or so the compiled
    /// program uses only two-operand bitwise steps — the shape the
    /// [`ResilientExecutor`](crate::ResilientExecutor) front end accepts.
    pub bitwise_only: bool,
    /// Reject programs whose scratch-row high-water mark exceeds this
    /// budget (e.g. a subarray's designated-row count minus the operands).
    pub max_scratch: Option<usize>,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            cse: true,
            dead_step_elim: true,
            bitwise_only: false,
            max_scratch: None,
        }
    }
}

/// A virtual value during lowering: a constant, an input, or the result of
/// an earlier step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Val {
    Zero,
    One,
    Input(usize),
    Step(usize),
}

impl Val {
    fn is_const(self) -> bool {
        matches!(self, Val::Zero | Val::One)
    }
}

/// A lowered step over virtual values: the MAJ/NOT basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LowStep {
    Maj(Val, Val, Val),
    Not(Val),
}

/// The lowering context: emits MAJ/NOT steps with local simplification,
/// optionally memoizing (the CSE replay runs with the memo on).
struct Lowerer {
    steps: Vec<LowStep>,
    memo: Option<HashMap<LowStep, Val>>,
    bitwise_only: bool,
    cse_hits: usize,
}

impl Lowerer {
    fn new(memoize: bool, bitwise_only: bool) -> Self {
        Lowerer {
            steps: Vec::new(),
            memo: memoize.then(HashMap::new),
            bitwise_only,
            cse_hits: 0,
        }
    }

    fn push(&mut self, step: LowStep) -> Val {
        if let Some(memo) = &self.memo {
            if let Some(&v) = memo.get(&step) {
                self.cse_hits += 1;
                return v;
            }
        }
        self.steps.push(step);
        let v = Val::Step(self.steps.len() - 1);
        if let Some(memo) = &mut self.memo {
            memo.insert(step, v);
        }
        v
    }

    fn not(&mut self, v: Val) -> Val {
        match v {
            Val::Zero => Val::One,
            Val::One => Val::Zero,
            // Double negation: the operand of a Not step is the answer.
            Val::Step(s) => {
                if let LowStep::Not(inner) = self.steps[s] {
                    inner
                } else {
                    self.push(LowStep::Not(v))
                }
            }
            Val::Input(_) => self.push(LowStep::Not(v)),
        }
    }

    fn maj(&mut self, a: Val, b: Val, c: Val) -> Val {
        // A repeated operand owns the majority regardless of the third.
        if a == b || a == c {
            return a;
        }
        if b == c {
            return b;
        }
        // Two (necessarily distinct) constants cancel: maj(x, 0, 1) = x.
        let consts = [a, b, c].iter().filter(|v| v.is_const()).count();
        if consts >= 2 {
            return *[a, b, c]
                .iter()
                .find(|v| !v.is_const())
                .expect("three distinct values cannot all be boolean constants");
        }
        if self.bitwise_only && consts == 0 {
            // maj(a, b, c) = (a & b) | (c & (a | b)): four two-operand
            // steps, so the program stays within the resilient front end.
            let ab = self.maj(a, b, Val::Zero);
            let a_or_b = self.maj(a, b, Val::One);
            let c_ab = self.maj(c, a_or_b, Val::Zero);
            return self.maj(ab, c_ab, Val::One);
        }
        // Majority is symmetric: canonical operand order maximizes CSE.
        let mut operands = [a, b, c];
        operands.sort_unstable();
        self.push(LowStep::Maj(operands[0], operands[1], operands[2]))
    }

    fn and(&mut self, a: Val, b: Val) -> Val {
        self.maj(a, b, Val::Zero)
    }

    fn or(&mut self, a: Val, b: Val) -> Val {
        self.maj(a, b, Val::One)
    }

    fn xor(&mut self, a: Val, b: Val) -> Val {
        match (a, b) {
            (Val::Zero, v) | (v, Val::Zero) => v,
            (Val::One, v) | (v, Val::One) => self.not(v),
            _ if a == b => Val::Zero,
            _ => {
                // a ⊕ b = (a | b) & !(a & b), all in the majority basis.
                let either = self.or(a, b);
                let both = self.and(a, b);
                let not_both = self.not(both);
                self.and(either, not_both)
            }
        }
    }

    /// Shannon decomposition of a `k`-variable cofactor table.
    fn table(&mut self, k: usize, table: u64) -> Val {
        let minterms = 1u64 << k;
        let mask = if minterms == 64 { u64::MAX } else { (1 << minterms) - 1 };
        let t = table & mask;
        if t == 0 {
            return Val::Zero;
        }
        if t == mask {
            return Val::One;
        }
        // Non-constant tables have at least one variable to split on.
        let half = minterms / 2;
        let half_mask = (1u64 << half) - 1;
        let f0 = t & half_mask;
        let f1 = t >> half & half_mask;
        if f0 == f1 {
            return self.table(k - 1, f0);
        }
        let x = Val::Input(k - 1);
        let v0 = self.table(k - 1, f0);
        let v1 = self.table(k - 1, f1);
        // mux(x, v1, v0); the maj/not simplifications absorb the constant
        // cofactors (v1 = 1 → x | v0, v0 = 0 → x & v1, ...).
        let hi = self.and(x, v1);
        let nx = self.not(x);
        let lo = self.and(nx, v0);
        self.or(hi, lo)
    }

    fn expr(&mut self, e: &Expr) -> Val {
        match e {
            Expr::Input(j) => Val::Input(*j),
            Expr::Const(false) => Val::Zero,
            Expr::Const(true) => Val::One,
            Expr::Not(e) => {
                let v = self.expr(e);
                self.not(v)
            }
            Expr::And(a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                self.and(a, b)
            }
            Expr::Or(a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                self.or(a, b)
            }
            Expr::Xor(a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                self.xor(a, b)
            }
            Expr::Maj(a, b, c) => {
                let (a, b, c) = (self.expr(a), self.expr(b), self.expr(c));
                self.maj(a, b, c)
            }
        }
    }
}

/// Replays `steps` through a fresh lowerer, remapping operands. With
/// `memoize` this is the CSE pass: structurally identical steps collapse
/// to one, and the re-simplification rules fire again on operands that
/// became equal under canonicalization.
fn replay(
    steps: &[LowStep],
    outputs: &[Val],
    memoize: bool,
) -> (Vec<LowStep>, Vec<Val>, usize) {
    let mut lw = Lowerer::new(memoize, false);
    let mut map: Vec<Val> = Vec::with_capacity(steps.len());
    let tr = |v: Val, map: &[Val]| match v {
        Val::Step(s) => map[s],
        other => other,
    };
    for step in steps {
        let val = match *step {
            LowStep::Not(v) => {
                let v = tr(v, &map);
                lw.not(v)
            }
            LowStep::Maj(a, b, c) => {
                let (a, b, c) = (tr(a, &map), tr(b, &map), tr(c, &map));
                lw.maj(a, b, c)
            }
        };
        map.push(val);
    }
    let outputs = outputs.iter().map(|&v| tr(v, &map)).collect();
    (lw.steps, outputs, lw.cse_hits)
}

/// Dead-step elimination: keeps only steps reachable from the outputs.
fn eliminate_dead(steps: &[LowStep], outputs: &[Val]) -> (Vec<LowStep>, Vec<Val>, usize) {
    let mut live = vec![false; steps.len()];
    let mut stack: Vec<usize> = outputs
        .iter()
        .filter_map(|v| match v {
            Val::Step(s) => Some(*s),
            _ => None,
        })
        .collect();
    while let Some(s) = stack.pop() {
        if live[s] {
            continue;
        }
        live[s] = true;
        let operands = match steps[s] {
            LowStep::Not(v) => [Some(v), None, None],
            LowStep::Maj(a, b, c) => [Some(a), Some(b), Some(c)],
        };
        for v in operands.into_iter().flatten() {
            if let Val::Step(dep) = v {
                stack.push(dep);
            }
        }
    }
    let mut remap = vec![usize::MAX; steps.len()];
    let mut kept = Vec::new();
    for (s, step) in steps.iter().enumerate() {
        if !live[s] {
            continue;
        }
        let tr = |v: Val, remap: &[usize]| match v {
            Val::Step(old) => Val::Step(remap[old]),
            other => other,
        };
        let mapped = match *step {
            LowStep::Not(v) => LowStep::Not(tr(v, &remap)),
            LowStep::Maj(a, b, c) => {
                LowStep::Maj(tr(a, &remap), tr(b, &remap), tr(c, &remap))
            }
        };
        remap[s] = kept.len();
        kept.push(mapped);
    }
    let outputs = outputs
        .iter()
        .map(|&v| match v {
            Val::Step(s) => Val::Step(remap[s]),
            other => other,
        })
        .collect();
    let removed = steps.len() - kept.len();
    (kept, outputs, removed)
}

/// Where a compiled step's operand or result lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotRef {
    /// The caller's `j`-th input vector.
    Input(usize),
    /// Scratch row `r` (a designated data row allocated for intermediates).
    Scratch(usize),
    /// The caller's `k`-th output vector.
    Output(usize),
}

/// One compiled step, in terms of [`SlotRef`] operands. Maps one-to-one
/// onto the driver's eager calls and the batch builder's op constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthStep {
    /// A standard bbop (`Not`, `And`, `Or`, `Copy`, `InitZero`, `InitOne`).
    Bitwise {
        /// The operation.
        op: BitwiseOp,
        /// First source slot.
        src1: SlotRef,
        /// Second source slot, for two-operand ops.
        src2: Option<SlotRef>,
        /// Destination slot.
        dst: SlotRef,
    },
    /// A native three-input majority (one TRA program).
    Maj3 {
        /// First input slot.
        a: SlotRef,
        /// Second input slot.
        b: SlotRef,
        /// Third input slot.
        c: SlotRef,
        /// Destination slot.
        dst: SlotRef,
    },
}

/// Optimizer and selection statistics for one compiled program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Steps emitted by naive lowering, before any optimization.
    pub lowered_steps: usize,
    /// Steps removed by common-subexpression elimination.
    pub cse_removed: usize,
    /// Steps removed by dead-step elimination.
    pub dead_removed: usize,
    /// Selected native `Maj3` steps.
    pub maj3_steps: usize,
    /// Selected `And`/`Or` steps (majorities with a control-row input).
    pub and_or_steps: usize,
    /// Selected `Not` steps.
    pub not_steps: usize,
    /// Trailing output-write steps (`Copy`/`InitZero`/`InitOne`).
    pub output_steps: usize,
}

/// A compiled boolean microprogram: a schedule of [`SynthStep`]s over
/// input, scratch, and output slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthProgram {
    inputs: usize,
    outputs: usize,
    scratch: usize,
    steps: Vec<SynthStep>,
    funcs: Vec<BoolFunc>,
    stats: SynthStats,
}

/// Compiles a batch of truth-table functions over a shared input set into
/// one microprogram. Compiling related functions together (e.g. a full
/// adder's sum and carry) lets the optimizer share their common subterms.
///
/// # Errors
///
/// Rejects an empty batch, mismatched arities, and programs exceeding
/// [`SynthOptions::max_scratch`].
pub fn synthesize(funcs: &[BoolFunc], opts: &SynthOptions) -> Result<SynthProgram> {
    if funcs.is_empty() {
        return Err(synth_err("no functions to synthesize"));
    }
    let inputs = funcs[0].inputs;
    if funcs.iter().any(|f| f.inputs != inputs) {
        return Err(synth_err("all functions in a batch must share an arity"));
    }
    let mut lw = Lowerer::new(false, opts.bitwise_only);
    let outputs: Vec<Val> = funcs.iter().map(|f| lw.table(f.inputs, f.table)).collect();
    finish(lw, outputs, funcs.to_vec(), opts)
}

/// Compiles a batch of expressions over `inputs` shared variables.
///
/// # Errors
///
/// Rejects empty batches, out-of-range input references, arities outside
/// `1..=6`, and programs exceeding [`SynthOptions::max_scratch`].
pub fn synthesize_exprs(
    inputs: usize,
    exprs: &[Expr],
    opts: &SynthOptions,
) -> Result<SynthProgram> {
    if exprs.is_empty() {
        return Err(synth_err("no expressions to synthesize"));
    }
    let funcs = exprs
        .iter()
        .map(|e| BoolFunc::from_expr(inputs, e))
        .collect::<Result<Vec<_>>>()?;
    let mut lw = Lowerer::new(false, opts.bitwise_only);
    let outputs: Vec<Val> = exprs.iter().map(|e| lw.expr(e)).collect();
    finish(lw, outputs, funcs, opts)
}

/// Shared backend: optimize, allocate scratch registers, select steps.
fn finish(
    lw: Lowerer,
    mut outputs: Vec<Val>,
    funcs: Vec<BoolFunc>,
    opts: &SynthOptions,
) -> Result<SynthProgram> {
    let inputs = funcs[0].inputs;
    let mut steps = lw.steps;
    let mut stats = SynthStats { lowered_steps: steps.len(), ..SynthStats::default() };

    if opts.cse {
        let before = steps.len();
        let (s, o, _) = replay(&steps, &outputs, true);
        stats.cse_removed = before - s.len();
        steps = s;
        outputs = o;
    }
    if opts.dead_step_elim {
        let (s, o, removed) = eliminate_dead(&steps, &outputs);
        stats.dead_removed = removed;
        steps = s;
        outputs = o;
    }

    // Scratch-row register allocation: each step value occupies one
    // designated row from its definition to its last use; rows are reused
    // as soon as their value dies. Values feeding an output stay live
    // until the trailing copies at the end.
    let mut last_use = vec![0usize; steps.len()];
    for (i, step) in steps.iter().enumerate() {
        let operands = match *step {
            LowStep::Not(v) => [Some(v), None, None],
            LowStep::Maj(a, b, c) => [Some(a), Some(b), Some(c)],
        };
        for v in operands.into_iter().flatten() {
            if let Val::Step(s) = v {
                last_use[s] = i;
            }
        }
    }
    for v in &outputs {
        if let Val::Step(s) = v {
            last_use[*s] = steps.len();
        }
    }

    let mut reg_of = vec![usize::MAX; steps.len()];
    let mut free: Vec<usize> = Vec::new();
    let mut high_water = 0usize;
    let mut compiled: Vec<SynthStep> = Vec::with_capacity(steps.len() + outputs.len());
    // Constants resolve to None: a Maj keeps at most one constant operand
    // (two would have folded), and selection turns it into And/Or, whose
    // control row the op program supplies.
    let slot = |v: Val, reg_of: &[usize]| -> Option<SlotRef> {
        match v {
            Val::Input(j) => Some(SlotRef::Input(j)),
            Val::Step(s) => Some(SlotRef::Scratch(reg_of[s])),
            Val::Zero | Val::One => None,
        }
    };
    for (i, step) in steps.iter().enumerate() {
        // Resolve operand slots before retiring their registers.
        let resolved = match *step {
            LowStep::Not(v) => [slot(v, &reg_of), None, None],
            LowStep::Maj(a, b, c) => {
                [slot(a, &reg_of), slot(b, &reg_of), slot(c, &reg_of)]
            }
        };
        // Free dying operand registers before acquiring the destination:
        // a step may legally overwrite one of its own sources, because the
        // device stages sources into the B-group before the destination
        // row is touched.
        let operands = match *step {
            LowStep::Not(v) => [Some(v), None, None],
            LowStep::Maj(a, b, c) => [Some(a), Some(b), Some(c)],
        };
        for v in operands.into_iter().flatten() {
            if let Val::Step(s) = v {
                if last_use[s] == i && reg_of[s] != usize::MAX {
                    free.push(reg_of[s]);
                    // Several operands may share a value; free it once.
                    reg_of[s] = usize::MAX;
                }
            }
        }
        let reg = free.pop().unwrap_or_else(|| {
            high_water += 1;
            high_water - 1
        });
        reg_of[i] = reg;
        let dst = SlotRef::Scratch(reg);
        compiled.push(match *step {
            LowStep::Not(_) => {
                stats.not_steps += 1;
                SynthStep::Bitwise {
                    op: BitwiseOp::Not,
                    src1: resolved[0].expect("not has one operand"),
                    src2: None,
                    dst,
                }
            }
            LowStep::Maj(a, b, c) => {
                let vals = [a, b, c];
                let live: Vec<SlotRef> = vals
                    .iter()
                    .zip(resolved.iter())
                    .filter(|(v, _)| !v.is_const())
                    .map(|(_, s)| s.expect("maj has three operands"))
                    .collect();
                match vals.iter().find(|v| v.is_const()) {
                    Some(Val::Zero) => {
                        stats.and_or_steps += 1;
                        SynthStep::Bitwise {
                            op: BitwiseOp::And,
                            src1: live[0],
                            src2: Some(live[1]),
                            dst,
                        }
                    }
                    Some(Val::One) => {
                        stats.and_or_steps += 1;
                        SynthStep::Bitwise {
                            op: BitwiseOp::Or,
                            src1: live[0],
                            src2: Some(live[1]),
                            dst,
                        }
                    }
                    _ => {
                        stats.maj3_steps += 1;
                        SynthStep::Maj3 {
                            a: resolved[0].expect("maj has three operands"),
                            b: resolved[1].expect("maj has three operands"),
                            c: resolved[2].expect("maj has three operands"),
                            dst,
                        }
                    }
                }
            }
        });
        // Dead-store guard: with DSE off a step may have no users at all;
        // its register frees immediately after the step.
        if last_use[i] <= i {
            free.push(reg);
            reg_of[i] = usize::MAX;
        }
    }

    // Trailing output writes: destinations are only written after every
    // input read, so a destination handle may alias an input (pre-op read
    // semantics, as in the eager driver and the golden model).
    for (k, v) in outputs.iter().enumerate() {
        stats.output_steps += 1;
        let dst = SlotRef::Output(k);
        compiled.push(match *v {
            Val::Zero => SynthStep::Bitwise {
                op: BitwiseOp::InitZero,
                src1: dst,
                src2: None,
                dst,
            },
            Val::One => SynthStep::Bitwise {
                op: BitwiseOp::InitOne,
                src1: dst,
                src2: None,
                dst,
            },
            Val::Input(j) => SynthStep::Bitwise {
                op: BitwiseOp::Copy,
                src1: SlotRef::Input(j),
                src2: None,
                dst,
            },
            Val::Step(s) => SynthStep::Bitwise {
                op: BitwiseOp::Copy,
                src1: SlotRef::Scratch(reg_of[s]),
                src2: None,
                dst,
            },
        });
    }

    if let Some(budget) = opts.max_scratch {
        if high_water > budget {
            return Err(synth_err(format!(
                "program needs {high_water} scratch rows, budget is {budget}"
            )));
        }
    }

    Ok(SynthProgram {
        inputs,
        outputs: outputs.len(),
        scratch: high_water,
        steps: compiled,
        funcs,
        stats,
    })
}

impl SynthProgram {
    /// Number of input vectors the program reads.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Number of output vectors the program writes.
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Scratch rows required per chunk — the register allocator's
    /// live-range high-water mark.
    pub fn scratch_rows(&self) -> usize {
        self.scratch
    }

    /// The compiled step schedule.
    pub fn steps(&self) -> &[SynthStep] {
        &self.steps
    }

    /// The truth tables this program computes, in output order.
    pub fn functions(&self) -> &[BoolFunc] {
        &self.funcs
    }

    /// Optimizer and selection statistics.
    pub fn stats(&self) -> &SynthStats {
        &self.stats
    }

    /// Whether every step is a two-operand bitwise op (no native `Maj3`),
    /// the shape the resilient executor's front end accepts.
    pub fn is_bitwise_only(&self) -> bool {
        self.steps.iter().all(|s| matches!(s, SynthStep::Bitwise { .. }))
    }

    /// Per-chunk `(AAPs, APs)` cost of the compiled schedule, from the
    /// Figure 8 command programs each step selects.
    pub fn aap_cost(&self) -> (usize, usize) {
        let d = RowAddress::D(0);
        let (mut aaps, mut aps) = (0, 0);
        for step in &self.steps {
            let program = match step {
                SynthStep::Bitwise { op, .. } => {
                    let src2 = (op.source_count() == 2).then_some(d);
                    ops::compile(*op, d, src2, d).expect("arity is fixed by selection")
                }
                SynthStep::Maj3 { .. } => ops::compile_majority(d, d, d, d),
            };
            let (a, p) = command_counts(&program);
            aaps += a;
            aps += p;
        }
        (aaps, aps)
    }

    /// Evaluates the *compiled schedule* (not the source truth tables) on
    /// one minterm index, returning each output's bit. Used by tests to
    /// prove the optimizer preserved semantics.
    pub fn eval(&self, assignment: u64) -> Vec<bool> {
        let mut scratch = vec![false; self.scratch];
        let mut outs = vec![false; self.outputs];
        let read = |slot: SlotRef, scratch: &[bool], outs: &[bool]| match slot {
            SlotRef::Input(j) => assignment >> j & 1 == 1,
            SlotRef::Scratch(r) => scratch[r],
            SlotRef::Output(k) => outs[k],
        };
        for step in &self.steps {
            let (dst, value) = match *step {
                SynthStep::Bitwise { op, src1, src2, dst } => {
                    let a = u64::from(read(src1, &scratch, &outs));
                    let b = u64::from(src2.is_some_and(|s| read(s, &scratch, &outs)));
                    (dst, op.apply_words(a, b) & 1 == 1)
                }
                SynthStep::Maj3 { a, b, c, dst } => {
                    let votes = u8::from(read(a, &scratch, &outs))
                        + u8::from(read(b, &scratch, &outs))
                        + u8::from(read(c, &scratch, &outs));
                    (dst, votes >= 2)
                }
            };
            match dst {
                SlotRef::Scratch(r) => scratch[r] = value,
                SlotRef::Output(k) => outs[k] = value,
                SlotRef::Input(_) => unreachable!("steps never write input slots"),
            }
        }
        outs
    }

    fn resolve(
        &self,
        slot: SlotRef,
        inputs: &[BitVectorHandle],
        scratch: &[BitVectorHandle],
        outputs: &[BitVectorHandle],
    ) -> BitVectorHandle {
        match slot {
            SlotRef::Input(j) => inputs[j],
            SlotRef::Scratch(r) => scratch[r],
            SlotRef::Output(k) => outputs[k],
        }
    }

    fn check_handles(
        &self,
        inputs: &[BitVectorHandle],
        scratch: &[BitVectorHandle],
        outputs: &[BitVectorHandle],
    ) -> Result<()> {
        if inputs.len() != self.inputs {
            return Err(synth_err(format!(
                "program reads {} input(s), {} given",
                self.inputs,
                inputs.len()
            )));
        }
        if outputs.len() != self.outputs {
            return Err(synth_err(format!(
                "program writes {} output(s), {} given",
                self.outputs,
                outputs.len()
            )));
        }
        if scratch.len() < self.scratch {
            return Err(synth_err(format!(
                "program needs {} scratch row(s), {} given",
                self.scratch,
                scratch.len()
            )));
        }
        Ok(())
    }

    /// Appends the compiled schedule to `batch` over concrete handles.
    /// Scratch handles must be co-located with the operands (same length,
    /// same allocation group). Output handles may alias input handles; the
    /// schedule reads all inputs before its trailing output writes.
    ///
    /// # Errors
    ///
    /// Rejects mismatched input/output counts and short scratch sets.
    pub fn emit_into(
        &self,
        batch: &mut BatchBuilder,
        inputs: &[BitVectorHandle],
        scratch: &[BitVectorHandle],
        outputs: &[BitVectorHandle],
    ) -> Result<()> {
        self.check_handles(inputs, scratch, outputs)?;
        for step in &self.steps {
            match *step {
                SynthStep::Bitwise { op, src1, src2, dst } => {
                    batch.bitwise(
                        op,
                        self.resolve(src1, inputs, scratch, outputs),
                        src2.map(|s| self.resolve(s, inputs, scratch, outputs)),
                        self.resolve(dst, inputs, scratch, outputs),
                    );
                }
                SynthStep::Maj3 { a, b, c, dst } => {
                    batch.maj3(
                        self.resolve(a, inputs, scratch, outputs),
                        self.resolve(b, inputs, scratch, outputs),
                        self.resolve(c, inputs, scratch, outputs),
                        self.resolve(dst, inputs, scratch, outputs),
                    );
                }
            }
        }
        Ok(())
    }

    /// Runs the compiled schedule through the eager driver interface, one
    /// step at a time.
    ///
    /// # Errors
    ///
    /// Rejects mismatched handle counts and propagates driver errors.
    pub fn run_eager(
        &self,
        mem: &mut AmbitMemory,
        inputs: &[BitVectorHandle],
        scratch: &[BitVectorHandle],
        outputs: &[BitVectorHandle],
    ) -> Result<()> {
        self.check_handles(inputs, scratch, outputs)?;
        for step in &self.steps {
            match *step {
                SynthStep::Bitwise { op, src1, src2, dst } => {
                    mem.bitwise(
                        op,
                        self.resolve(src1, inputs, scratch, outputs),
                        src2.map(|s| self.resolve(s, inputs, scratch, outputs)),
                        self.resolve(dst, inputs, scratch, outputs),
                    )?;
                }
                SynthStep::Maj3 { a, b, c, dst } => {
                    mem.bitwise_maj3(
                        self.resolve(a, inputs, scratch, outputs),
                        self.resolve(b, inputs, scratch, outputs),
                        self.resolve(c, inputs, scratch, outputs),
                        self.resolve(dst, inputs, scratch, outputs),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Convenience driver: allocates scratch rows in the first input's
    /// allocation group, emits the schedule as one batch, executes it
    /// under `policy`, and frees the scratch. The resulting `BatchOp`s go
    /// through the plan cache and the batch engine like any others, so a
    /// second run of the same program over the same handles is all cache
    /// hits.
    ///
    /// # Errors
    ///
    /// Rejects mismatched handle counts; propagates allocation and
    /// execution errors.
    pub fn run(
        &self,
        mem: &mut AmbitMemory,
        policy: IssuePolicy,
        inputs: &[BitVectorHandle],
        outputs: &[BitVectorHandle],
    ) -> Result<BatchReceipt> {
        if inputs.is_empty() {
            return Err(synth_err("run requires at least one input handle"));
        }
        let bits = mem.len_bits(inputs[0])?;
        let group = mem.group(inputs[0])?;
        let mut scratch = Vec::with_capacity(self.scratch);
        for _ in 0..self.scratch {
            match mem.alloc_in_group(bits, group) {
                Ok(h) => scratch.push(h),
                Err(e) => {
                    for h in scratch {
                        let _ = mem.free(h);
                    }
                    return Err(e);
                }
            }
        }
        let mut batch = BatchBuilder::new();
        let emitted = self.emit_into(&mut batch, inputs, &scratch, outputs);
        let result = emitted.and_then(|()| mem.execute_batch(&batch, policy));
        for h in scratch {
            let _ = mem.free(h);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};

    fn exhaustive_check(plan: &SynthProgram, funcs: &[BoolFunc]) {
        for idx in 0..1u64 << plan.inputs() {
            let got = plan.eval(idx);
            for (k, f) in funcs.iter().enumerate() {
                assert_eq!(
                    got[k],
                    f.eval(idx),
                    "output {k} wrong at minterm {idx:#b} (table {:#x})",
                    f.table()
                );
            }
        }
    }

    #[test]
    fn all_two_input_tables_compile_and_evaluate() {
        for table in 0..16u64 {
            let f = BoolFunc::from_table(2, table).unwrap();
            let plan = synthesize(&[f], &SynthOptions::default()).unwrap();
            exhaustive_check(&plan, &[f]);
        }
    }

    #[test]
    fn all_three_input_tables_compile_and_evaluate() {
        for table in 0..256u64 {
            let f = BoolFunc::from_table(3, table).unwrap();
            let plan = synthesize(&[f], &SynthOptions::default()).unwrap();
            exhaustive_check(&plan, &[f]);
            // Bitwise-only lowering preserves semantics and its shape.
            let flat = synthesize(
                &[f],
                &SynthOptions { bitwise_only: true, ..SynthOptions::default() },
            )
            .unwrap();
            assert!(flat.is_bitwise_only(), "table {table:#x} kept a Maj3");
            exhaustive_check(&flat, &[f]);
        }
    }

    #[test]
    fn expression_front_end_matches_truth_tables() {
        // maj(a, b, c) ^ !(a & c)
        let e = Expr::maj(Expr::input(0), Expr::input(1), Expr::input(2))
            .xor(Expr::input(0).and(Expr::input(2)).not());
        let f = BoolFunc::from_expr(3, &e).unwrap();
        let plan = synthesize_exprs(3, &[e], &SynthOptions::default()).unwrap();
        exhaustive_check(&plan, &[f]);
    }

    #[test]
    fn cse_and_dse_preserve_semantics_and_shrink_programs() {
        let full_adder = [
            BoolFunc::from_fn(3, |i| i.count_ones() & 1 == 1).unwrap(),
            BoolFunc::from_fn(3, |i| i.count_ones() >= 2).unwrap(),
        ];
        let opt = synthesize(&full_adder, &SynthOptions::default()).unwrap();
        let naive = synthesize(
            &full_adder,
            &SynthOptions {
                cse: false,
                dead_step_elim: false,
                ..SynthOptions::default()
            },
        )
        .unwrap();
        exhaustive_check(&opt, &full_adder);
        exhaustive_check(&naive, &full_adder);
        assert!(opt.steps().len() <= naive.steps().len());
        assert!(opt.stats().cse_removed > 0, "full adder has shared subterms");
    }

    #[test]
    fn constant_and_projection_functions_need_no_scratch() {
        let zero = BoolFunc::from_table(2, 0).unwrap();
        let one = BoolFunc::from_table(2, 0xF).unwrap();
        let proj = BoolFunc::from_fn(2, |i| i & 1 == 1).unwrap();
        for f in [zero, one, proj] {
            let plan = synthesize(&[f], &SynthOptions::default()).unwrap();
            assert_eq!(plan.scratch_rows(), 0);
            assert_eq!(plan.steps().len(), 1, "one trailing output step");
            exhaustive_check(&plan, &[f]);
        }
    }

    #[test]
    fn scratch_budget_is_enforced() {
        let f = BoolFunc::from_fn(3, |i| i.count_ones() & 1 == 1).unwrap();
        let plan = synthesize(&[f], &SynthOptions::default()).unwrap();
        assert!(plan.scratch_rows() > 0);
        let starved = synthesize(
            &[f],
            &SynthOptions {
                max_scratch: Some(plan.scratch_rows() - 1),
                ..SynthOptions::default()
            },
        );
        assert!(matches!(starved, Err(AmbitError::Synthesis { .. })));
        // A budget exactly at the high-water mark passes.
        synthesize(
            &[f],
            &SynthOptions {
                max_scratch: Some(plan.scratch_rows()),
                ..SynthOptions::default()
            },
        )
        .unwrap();
    }

    #[test]
    fn invalid_functions_are_rejected() {
        assert!(BoolFunc::from_table(0, 0).is_err());
        assert!(BoolFunc::from_table(7, 0).is_err());
        assert!(BoolFunc::from_table(2, 0x10).is_err());
        assert!(BoolFunc::from_table(6, u64::MAX).is_ok());
        assert!(synthesize(&[], &SynthOptions::default()).is_err());
        let f2 = BoolFunc::from_table(2, 0b0110).unwrap();
        let f3 = BoolFunc::from_table(3, 0x96).unwrap();
        assert!(synthesize(&[f2, f3], &SynthOptions::default()).is_err());
        assert!(BoolFunc::from_expr(2, &Expr::input(5)).is_err());
    }

    #[test]
    fn compiled_xor_runs_on_the_device() {
        let mut mem = AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        );
        let bits = mem.row_bits();
        let xor = BoolFunc::from_table(2, 0b0110).unwrap();
        let plan = synthesize(&[xor], &SynthOptions::default()).unwrap();
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let out = mem.alloc(bits).unwrap();
        let av: Vec<bool> = (0..bits).map(|i| i % 2 == 0).collect();
        let bv: Vec<bool> = (0..bits).map(|i| i % 3 == 0).collect();
        mem.write_bits(a, &av).unwrap();
        mem.write_bits(b, &bv).unwrap();
        plan.run(&mut mem, IssuePolicy::Serial, &[a, b], &[out]).unwrap();
        let got = mem.read_bits(out).unwrap();
        for i in 0..bits {
            assert_eq!(got[i], av[i] ^ bv[i], "bit {i}");
        }
    }

    #[test]
    fn destination_may_alias_an_input() {
        let mut mem = AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        );
        let bits = mem.row_bits();
        // f(a, b) = !a — writing into a must read the pre-op value.
        let f = BoolFunc::from_fn(2, |i| i & 1 == 0).unwrap();
        let plan = synthesize(&[f], &SynthOptions::default()).unwrap();
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let av: Vec<bool> = (0..bits).map(|i| i % 5 == 0).collect();
        mem.write_bits(a, &av).unwrap();
        mem.write_bits(b, &vec![false; bits]).unwrap();
        plan.run(&mut mem, IssuePolicy::BankParallel, &[a, b], &[a]).unwrap();
        let got = mem.read_bits(a).unwrap();
        for i in 0..bits {
            assert_eq!(got[i], !av[i], "bit {i}");
        }
    }

    #[test]
    fn aap_cost_counts_the_selected_programs() {
        // f = a & b compiles to one And (4 AAPs) plus one output copy
        // (1 AAP).
        let f = BoolFunc::from_table(2, 0b1000).unwrap();
        let plan = synthesize(&[f], &SynthOptions::default()).unwrap();
        assert_eq!(plan.aap_cost(), (5, 0));
    }
}
