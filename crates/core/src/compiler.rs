//! Program-level optimization of bulk bitwise dataflows (paper
//! Section 5.2: "this copy overhead can be reduced by applying standard
//! compilation techniques... an optimization like dead-store elimination
//! may prevent these values from being copied unnecessarily").
//!
//! The canonical case is an *accumulation*: `dst = s0 op s1 op … op s(k−1)`
//! for an associative op. Executed naively this is `k−1` full command
//! programs, each copying the running accumulator out to a data row and
//! back in again. The optimized program keeps the accumulator in the
//! designated rows across steps — the intermediate stores are dead and
//! never materialize in the D-group:
//!
//! ```text
//! AAP(s0, B0)            ; T0 = s0
//! AAP(s1, B1)            ; T1 = s1
//! AAP(C,  B2)            ; T2 = control (0 for AND, 1 for OR)
//! AP (B12)               ; T0 = T1 = T2 = s0 op s1
//! for each further s_j:
//!   AAP(s_j, B1)         ; T1 = s_j        (T0 still holds the acc)
//!   AAP(C,   B2)         ; T2 = control    (B12 overwrote it)
//!   AP (B12)             ; acc op= s_j
//! AAP(B0, dst)           ; the only live store
//! ```
//!
//! Cost: `2k` AAPs + `k−1` APs versus the naive `4(k−1)` AAPs — about 20 %
//! fewer DRAM cycles for a 7-way OR (a bitmap index's weekly rollup) and
//! one D-group write instead of `k−1`.

use crate::addressing::RowAddress;
use crate::error::{AmbitError, Result};
use crate::ops::{AmbitCmd, BitwiseOp};

/// Returns `true` if [`compile_fold`] supports the operation (associative
/// ops whose TRA control row exists: AND and OR).
pub fn fold_supported(op: BitwiseOp) -> bool {
    matches!(op, BitwiseOp::And | BitwiseOp::Or)
}

/// Compiles an optimized k-way accumulation `dst = srcs[0] op … op
/// srcs[k−1]` that keeps the accumulator in the designated rows.
///
/// # Errors
///
/// Returns [`AmbitError::WrongOperandCount`] if fewer than two sources are
/// given or `op` is not foldable.
pub fn compile_fold(
    op: BitwiseOp,
    srcs: &[RowAddress],
    dst: RowAddress,
) -> Result<Vec<AmbitCmd>> {
    use AmbitCmd::{Aap, Ap};
    use RowAddress::{B, C};

    if !fold_supported(op) || srcs.len() < 2 {
        return Err(AmbitError::WrongOperandCount {
            op: op.mnemonic(),
            expected: 2,
            provided: srcs.len(),
        });
    }
    let control = match op {
        BitwiseOp::And => C(0),
        BitwiseOp::Or => C(1),
        _ => unreachable!("fold_supported checked"),
    };

    let mut program = Vec::with_capacity(2 * srcs.len() + srcs.len());
    program.push(Aap(srcs[0], B(0)));
    program.push(Aap(srcs[1], B(1)));
    program.push(Aap(control, B(2)));
    program.push(Ap(B(12)));
    for &src in &srcs[2..] {
        program.push(Aap(src, B(1)));
        program.push(Aap(control, B(2)));
        program.push(Ap(B(12)));
    }
    program.push(Aap(B(0), dst));
    Ok(program)
}

/// Command-count comparison for a k-way fold: `(naive_aaps, fold_aaps,
/// fold_aps)`. The naive path runs `k−1` standard two-operand programs.
pub fn fold_savings(k: usize) -> (usize, usize, usize) {
    assert!(k >= 2, "fold needs at least two operands");
    (4 * (k - 1), 2 * k, k - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::AmbitController;
    use ambit_dram::{AapMode, BankId, BitRow, DramGeometry, TimingParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn controller() -> AmbitController {
        AmbitController::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    #[test]
    fn fold_program_shape() {
        let srcs: Vec<RowAddress> = (0..7).map(RowAddress::D).collect();
        let program = compile_fold(BitwiseOp::Or, &srcs, RowAddress::D(10)).unwrap();
        let aaps = program.iter().filter(|c| matches!(c, AmbitCmd::Aap(_, _))).count();
        let aps = program.len() - aaps;
        assert_eq!((aaps, aps), (2 * 7, 6));
        let (naive, fold_aaps, fold_aps) = fold_savings(7);
        assert_eq!(naive, 24);
        assert_eq!((fold_aaps, fold_aps), (aaps, aps));
    }

    #[test]
    fn fold_or_computes_the_union() {
        let mut ctrl = controller();
        let bank = BankId::zero();
        let bits = ctrl.row_bits();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let data: Vec<BitRow> = (0..5).map(|_| BitRow::random(bits, &mut rng)).collect();
        for (i, d) in data.iter().enumerate() {
            ctrl.poke_data(bank, 0, i, d).unwrap();
        }
        let srcs: Vec<RowAddress> = (0..5).map(RowAddress::D).collect();
        let program = compile_fold(BitwiseOp::Or, &srcs, RowAddress::D(9)).unwrap();
        ctrl.run_program(bank, 0, &program).unwrap();
        let expect = data.iter().skip(1).fold(data[0].clone(), |acc, d| acc.or(d));
        assert_eq!(ctrl.peek_data(bank, 0, 9).unwrap(), expect);
    }

    #[test]
    fn fold_and_computes_the_intersection() {
        let mut ctrl = controller();
        let bank = BankId::zero();
        let bits = ctrl.row_bits();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        // Dense rows so the intersection is non-trivial.
        let data: Vec<BitRow> = (0..4)
            .map(|_| {
                let r = BitRow::random(bits, &mut rng);
                r.or(&BitRow::from_fn(bits, |i| i % 2 == 0))
            })
            .collect();
        for (i, d) in data.iter().enumerate() {
            ctrl.poke_data(bank, 0, i, d).unwrap();
        }
        let srcs: Vec<RowAddress> = (0..4).map(RowAddress::D).collect();
        let program = compile_fold(BitwiseOp::And, &srcs, RowAddress::D(8)).unwrap();
        ctrl.run_program(bank, 0, &program).unwrap();
        let expect = data.iter().skip(1).fold(data[0].clone(), |acc, d| acc.and(d));
        assert_eq!(ctrl.peek_data(bank, 0, 8).unwrap(), expect);
        assert!(expect.count_ones() >= bits / 2, "test data kept it non-trivial");
    }

    #[test]
    fn fold_preserves_sources() {
        let mut ctrl = controller();
        let bank = BankId::zero();
        let bits = ctrl.row_bits();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let data: Vec<BitRow> = (0..3).map(|_| BitRow::random(bits, &mut rng)).collect();
        for (i, d) in data.iter().enumerate() {
            ctrl.poke_data(bank, 0, i, d).unwrap();
        }
        let srcs: Vec<RowAddress> = (0..3).map(RowAddress::D).collect();
        let program = compile_fold(BitwiseOp::Or, &srcs, RowAddress::D(5)).unwrap();
        ctrl.run_program(bank, 0, &program).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(&ctrl.peek_data(bank, 0, i).unwrap(), d, "source {i}");
        }
    }

    #[test]
    fn fold_matches_naive_chain_and_is_cheaper() {
        let bits = DramGeometry::tiny().row_bits();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let data: Vec<BitRow> = (0..7).map(|_| BitRow::random(bits, &mut rng)).collect();
        let bank = BankId::zero();

        // Naive: 6 standard OR programs through a D-row accumulator.
        let mut naive = controller();
        for (i, d) in data.iter().enumerate() {
            naive.poke_data(bank, 0, i, d).unwrap();
        }
        let mut naive_receipt = naive
            .execute(BitwiseOp::Copy, bank, 0, RowAddress::D(0), None, RowAddress::D(10))
            .unwrap();
        for i in 1..7 {
            let r = naive
                .execute(BitwiseOp::Or, bank, 0, RowAddress::D(10), Some(RowAddress::D(i)), RowAddress::D(10))
                .unwrap();
            naive_receipt.absorb(&r);
        }

        // Fold.
        let mut fold = controller();
        for (i, d) in data.iter().enumerate() {
            fold.poke_data(bank, 0, i, d).unwrap();
        }
        let srcs: Vec<RowAddress> = (0..7).map(RowAddress::D).collect();
        let program = compile_fold(BitwiseOp::Or, &srcs, RowAddress::D(10)).unwrap();
        let fold_receipt = fold.run_program(bank, 0, &program).unwrap();

        assert_eq!(
            naive.peek_data(bank, 0, 10).unwrap(),
            fold.peek_data(bank, 0, 10).unwrap()
        );
        assert!(
            fold_receipt.latency_ps() < naive_receipt.latency_ps(),
            "fold {} vs naive {}",
            fold_receipt.latency_ps(),
            naive_receipt.latency_ps()
        );
        assert!(fold_receipt.energy_nj < naive_receipt.energy_nj);
    }

    #[test]
    fn unsupported_folds_rejected() {
        let srcs = [RowAddress::D(0), RowAddress::D(1)];
        assert!(compile_fold(BitwiseOp::Xor, &srcs, RowAddress::D(2)).is_err());
        assert!(compile_fold(BitwiseOp::Or, &srcs[..1], RowAddress::D(2)).is_err());
        assert!(fold_supported(BitwiseOp::And));
        assert!(!fold_supported(BitwiseOp::Nand));
    }
}
