//! Row address grouping and the B-group decoder (paper Section 5.1,
//! Table 1, Figure 7).
//!
//! Each subarray's address space is split into three groups:
//!
//! * **B-group** — 16 reserved addresses `B0..B15` that map onto the eight
//!   special wordlines (designated rows `T0..T3`, and the d-/n-wordlines of
//!   the two dual-contact rows `DCC0`/`DCC1`), singly or in pre-wired
//!   pairs/triples. Triple addresses trigger triple-row activations.
//! * **C-group** — two pre-initialized control rows: `C0` (all zeros) and
//!   `C1` (all ones).
//! * **D-group** — the remaining addresses, exposed to software as regular
//!   data rows.

use ambit_dram::Wordline;

use crate::error::{AmbitError, Result};

/// A row address within one subarray, as seen by the Ambit controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowAddress {
    /// A bitwise-group reserved address, `B0`–`B15`.
    B(u8),
    /// A control-group address: `C(0)` = all zeros, `C(1)` = all ones.
    C(u8),
    /// A data-group address, `D0`–`D(n-1)`.
    D(usize),
}

impl std::fmt::Display for RowAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RowAddress::B(i) => write!(f, "B{i}"),
            RowAddress::C(i) => write!(f, "C{i}"),
            RowAddress::D(i) => write!(f, "D{i}"),
        }
    }
}

/// Physical placement of the special rows within each subarray, and the
/// B-group decode table.
///
/// The layout puts the eight special row-equivalents and the two control
/// rows at the bottom of the subarray, directly adjacent to the sense
/// amplifiers as in the paper's Figure 7, followed by the data rows:
///
/// | physical row | contents |
/// |---|---|
/// | 0–3 | designated rows T0–T3 |
/// | 4 | DCC0 (d- and n-wordline) |
/// | 5 | DCC1 (d- and n-wordline) |
/// | 6 | C0 (all zeros) |
/// | 7 | C1 (all ones) |
/// | 8… | data rows D0… |
///
/// Of the `rows_per_subarray` physical rows, `rows_per_subarray − 18` are
/// exposed as D-group addresses, matching the paper's 1006 data addresses
/// for a 1024-row subarray (1024 − 16 B-addresses − 2 C-addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubarrayLayout {
    rows_per_subarray: usize,
}

/// Physical row index of designated row T0.
pub const ROW_T0: usize = 0;
/// Physical row index of designated row T1.
pub const ROW_T1: usize = 1;
/// Physical row index of designated row T2.
pub const ROW_T2: usize = 2;
/// Physical row index of designated row T3.
pub const ROW_T3: usize = 3;
/// Physical row index of dual-contact row DCC0.
pub const ROW_DCC0: usize = 4;
/// Physical row index of dual-contact row DCC1.
pub const ROW_DCC1: usize = 5;
/// Physical row index of control row C0 (all zeros).
pub const ROW_C0: usize = 6;
/// Physical row index of control row C1 (all ones).
pub const ROW_C1: usize = 7;
/// Physical row index of the first data row (D0).
pub const ROW_D0: usize = 8;

impl SubarrayLayout {
    /// Creates the layout for subarrays of `rows_per_subarray` rows.
    ///
    /// # Panics
    ///
    /// Panics if the subarray is too small to hold the reserved rows plus
    /// at least one data row.
    pub fn new(rows_per_subarray: usize) -> Self {
        assert!(
            rows_per_subarray > 18,
            "subarray of {rows_per_subarray} rows cannot hold the Ambit reserved rows and address groups"
        );
        SubarrayLayout { rows_per_subarray }
    }

    /// Number of D-group addresses exposed to software per subarray.
    ///
    /// Reserves 16 B-group and 2 C-group addresses out of the row address
    /// space (paper: 1006 of 1024).
    pub fn data_rows(&self) -> usize {
        self.rows_per_subarray - 18
    }

    /// Physical rows per subarray.
    pub fn rows_per_subarray(&self) -> usize {
        self.rows_per_subarray
    }

    /// Physical row index of data address `Dk`.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::DataRowOutOfRange`] if `k` exceeds the D-group.
    pub fn data_row(&self, k: usize) -> Result<usize> {
        if k >= self.data_rows() {
            return Err(AmbitError::DataRowOutOfRange {
                index: k,
                available: self.data_rows(),
            });
        }
        Ok(ROW_D0 + k)
    }

    /// Decodes a row address into the set of wordlines the split row
    /// decoder raises (paper Table 1).
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::Dram`] with an unmapped-address error for
    /// B-group indices above 15 or C-group indices above 1, and
    /// [`AmbitError::DataRowOutOfRange`] for bad D indices.
    pub fn decode(&self, address: RowAddress) -> Result<Vec<Wordline>> {
        use ambit_dram::DramError::UnmappedAddress;
        Ok(match address {
            RowAddress::B(0) => vec![Wordline::data(ROW_T0)],
            RowAddress::B(1) => vec![Wordline::data(ROW_T1)],
            RowAddress::B(2) => vec![Wordline::data(ROW_T2)],
            RowAddress::B(3) => vec![Wordline::data(ROW_T3)],
            RowAddress::B(4) => vec![Wordline::data(ROW_DCC0)],
            RowAddress::B(5) => vec![Wordline::negated(ROW_DCC0)],
            RowAddress::B(6) => vec![Wordline::data(ROW_DCC1)],
            RowAddress::B(7) => vec![Wordline::negated(ROW_DCC1)],
            RowAddress::B(8) => vec![Wordline::negated(ROW_DCC0), Wordline::data(ROW_T0)],
            RowAddress::B(9) => vec![Wordline::negated(ROW_DCC1), Wordline::data(ROW_T1)],
            RowAddress::B(10) => vec![Wordline::data(ROW_T2), Wordline::data(ROW_T3)],
            RowAddress::B(11) => vec![Wordline::data(ROW_T0), Wordline::data(ROW_T3)],
            RowAddress::B(12) => vec![
                Wordline::data(ROW_T0),
                Wordline::data(ROW_T1),
                Wordline::data(ROW_T2),
            ],
            RowAddress::B(13) => vec![
                Wordline::data(ROW_T1),
                Wordline::data(ROW_T2),
                Wordline::data(ROW_T3),
            ],
            RowAddress::B(14) => vec![
                Wordline::data(ROW_DCC0),
                Wordline::data(ROW_T1),
                Wordline::data(ROW_T2),
            ],
            RowAddress::B(15) => vec![
                Wordline::data(ROW_DCC1),
                Wordline::data(ROW_T0),
                Wordline::data(ROW_T3),
            ],
            RowAddress::B(i) => {
                return Err(UnmappedAddress { address: i as usize }.into());
            }
            RowAddress::C(0) => vec![Wordline::data(ROW_C0)],
            RowAddress::C(1) => vec![Wordline::data(ROW_C1)],
            RowAddress::C(i) => {
                return Err(UnmappedAddress { address: i as usize }.into());
            }
            RowAddress::D(k) => vec![Wordline::data(self.data_row(k)?)],
        })
    }

    /// Number of wordlines raised by an address — the activation-energy
    /// multiplier of Section 7 ("22 % for each additional wordline").
    ///
    /// # Errors
    ///
    /// Same conditions as [`decode`](Self::decode).
    pub fn wordline_count(&self, address: RowAddress) -> Result<usize> {
        Ok(self.decode(address)?.len())
    }

    /// Whether `address` is decoded by the small B-group decoder (true) or
    /// the regular C/D decoder (false) — the split of Section 5.3.
    pub fn uses_b_decoder(&self, address: RowAddress) -> bool {
        matches!(address, RowAddress::B(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::BitlineSide;

    fn layout() -> SubarrayLayout {
        SubarrayLayout::new(1024)
    }

    #[test]
    fn d_group_matches_paper_1006() {
        assert_eq!(layout().data_rows(), 1006, "paper: 1006 D addresses per 1024-row subarray");
    }

    #[test]
    fn single_b_addresses_map_to_individual_wordlines() {
        // Table 1, B0–B7: each activates one wordline.
        let l = layout();
        for i in 0..8u8 {
            let wls = l.decode(RowAddress::B(i)).unwrap();
            assert_eq!(wls.len(), 1, "B{i}");
        }
        // B5/B7 are the n-wordlines.
        assert_eq!(l.decode(RowAddress::B(5)).unwrap()[0].side, BitlineSide::BitlineBar);
        assert_eq!(l.decode(RowAddress::B(7)).unwrap()[0].side, BitlineSide::BitlineBar);
        assert_eq!(l.decode(RowAddress::B(4)).unwrap()[0].side, BitlineSide::Bitline);
    }

    #[test]
    fn dual_b_addresses_match_table1() {
        let l = layout();
        // B8 = {DCC0-bar, T0}.
        let b8 = l.decode(RowAddress::B(8)).unwrap();
        assert_eq!(b8, vec![Wordline::negated(ROW_DCC0), Wordline::data(ROW_T0)]);
        // B9 = {DCC1-bar, T1}; B10 = {T2, T3}; B11 = {T0, T3}.
        assert_eq!(
            l.decode(RowAddress::B(9)).unwrap(),
            vec![Wordline::negated(ROW_DCC1), Wordline::data(ROW_T1)]
        );
        assert_eq!(
            l.decode(RowAddress::B(10)).unwrap(),
            vec![Wordline::data(ROW_T2), Wordline::data(ROW_T3)]
        );
        assert_eq!(
            l.decode(RowAddress::B(11)).unwrap(),
            vec![Wordline::data(ROW_T0), Wordline::data(ROW_T3)]
        );
    }

    #[test]
    fn triple_b_addresses_match_table1() {
        let l = layout();
        for (addr, rows) in [
            (12u8, [ROW_T0, ROW_T1, ROW_T2]),
            (13, [ROW_T1, ROW_T2, ROW_T3]),
            (14, [ROW_DCC0, ROW_T1, ROW_T2]),
            (15, [ROW_DCC1, ROW_T0, ROW_T3]),
        ] {
            let wls = l.decode(RowAddress::B(addr)).unwrap();
            assert_eq!(wls.len(), 3, "B{addr}");
            let got: Vec<usize> = wls.iter().map(|w| w.row).collect();
            assert_eq!(got, rows.to_vec(), "B{addr}");
            assert!(
                wls.iter().all(|w| w.side == BitlineSide::Bitline),
                "TRAs use d-wordlines"
            );
        }
    }

    #[test]
    fn wordline_counts_for_energy_model() {
        let l = layout();
        assert_eq!(l.wordline_count(RowAddress::B(0)).unwrap(), 1);
        assert_eq!(l.wordline_count(RowAddress::B(8)).unwrap(), 2);
        assert_eq!(l.wordline_count(RowAddress::B(12)).unwrap(), 3);
        assert_eq!(l.wordline_count(RowAddress::C(1)).unwrap(), 1);
        assert_eq!(l.wordline_count(RowAddress::D(100)).unwrap(), 1);
    }

    #[test]
    fn data_rows_come_after_reserved_rows() {
        let l = layout();
        assert_eq!(l.data_row(0).unwrap(), ROW_D0);
        assert_eq!(l.data_row(1005).unwrap(), ROW_D0 + 1005);
        assert!(l.data_row(1006).is_err());
    }

    #[test]
    fn invalid_addresses_rejected() {
        let l = layout();
        assert!(l.decode(RowAddress::B(16)).is_err());
        assert!(l.decode(RowAddress::C(2)).is_err());
        assert!(l.decode(RowAddress::D(5000)).is_err());
    }

    #[test]
    fn b_decoder_split() {
        let l = layout();
        assert!(l.uses_b_decoder(RowAddress::B(3)));
        assert!(!l.uses_b_decoder(RowAddress::C(0)));
        assert!(!l.uses_b_decoder(RowAddress::D(9)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(RowAddress::B(12).to_string(), "B12");
        assert_eq!(RowAddress::C(1).to_string(), "C1");
        assert_eq!(RowAddress::D(42).to_string(), "D42");
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn tiny_subarray_rejected() {
        SubarrayLayout::new(8);
    }
}
