//! Persistent executor pool for the threaded batch path.
//!
//! `IssuePolicy::BankParallelThreaded` originally spawned one OS thread per
//! bank per batch via `std::thread::scope`; at simulator batch sizes the
//! spawn/join cost alone swamped the parallel work and the threaded path
//! lost wall-clock to serial execution (BENCH_batch.json schema v2 recorded
//! 0.78–0.91× at every bank count). [`ExecutorPool`] fixes the overhead at
//! the source: a small set of long-lived workers (hand-rolled
//! `Mutex` + `Condvar` job queue, zero dependencies) is spawned lazily on
//! first use, sized from [`std::thread::available_parallelism`] (override
//! with the `AMBIT_POOL_THREADS` environment variable), and reused across
//! every batch for the lifetime of the [`AmbitMemory`](crate::AmbitMemory)
//! that owns it.
//!
//! Jobs borrow from the submitting stack frame (the same shape
//! `thread::scope` offers): [`run_scoped`](ExecutorPool::run_scoped) blocks
//! until every submitted job has completed — including when a job panics —
//! so non-`'static` borrows are sound. A panicking job is caught on the
//! worker, surfaced to the submitter as
//! [`AmbitError::ExecutorPanicked`](crate::AmbitError::ExecutorPanicked),
//! and leaves the pool fully usable: the worker thread survives and keeps
//! serving the queue. Dropping the pool shuts the workers down gracefully
//! (the queue is necessarily empty between `run_scoped` calls, so nothing
//! is abandoned).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use ambit_telemetry::{Counter, Histogram, Registry};

use crate::error::{AmbitError, Result};

/// Snapshot of executor-pool activity since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently alive.
    pub workers: usize,
    /// Maximum workers the pool will spawn.
    pub target_workers: usize,
    /// Jobs executed on pool workers.
    pub jobs_executed: u64,
    /// Jobs run inline on the submitting thread (single-job batches and
    /// single-worker pools skip the queue entirely).
    pub inline_jobs: u64,
    /// Dispatches that had to spawn a fresh worker thread.
    pub cold_spawns: u64,
    /// Dispatches served by an already-running worker — the reuse the
    /// persistent pool exists to deliver.
    pub warm_dispatches: u64,
    /// Jobs that panicked (caught and surfaced as typed errors).
    pub worker_panics: u64,
}

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<(StaticJob, Instant)>,
    shutdown: bool,
    spawned: usize,
    idle: usize,
}

/// Per-`run_scoped` completion tracker: jobs decrement `remaining` as they
/// finish (successfully or by panic) and the submitter blocks on `done`
/// until it reaches zero. This wait is what makes the `'env` job lifetime
/// sound: no borrow escapes the call.
struct ScopeState {
    inner: Mutex<ScopeInner>,
    done: Condvar,
}

struct ScopeInner {
    remaining: usize,
    panics: Vec<String>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            inner: Mutex::new(ScopeInner {
                remaining: 0,
                panics: Vec::new(),
            }),
            done: Condvar::new(),
        }
    }

    fn finish_job(&self, panic: Option<String>) {
        let mut inner = self.inner.lock().expect("pool scope lock poisoned");
        inner.remaining -= 1;
        if let Some(msg) = panic {
            inner.panics.push(msg);
        }
        if inner.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut inner = self.inner.lock().expect("pool scope lock poisoned");
        while inner.remaining > 0 {
            inner = self.done.wait(inner).expect("pool scope lock poisoned");
        }
    }

    /// Panic payloads collected so far. Only meaningful after
    /// [`wait_all`](Self::wait_all) has returned.
    fn take_panics(&self) -> Vec<String> {
        std::mem::take(
            &mut self
                .inner
                .lock()
                .expect("pool scope lock poisoned")
                .panics,
        )
    }
}

/// Waits for all enqueued jobs even if the submitting frame unwinds between
/// enqueue and the normal wait — the soundness backstop for scoped jobs.
struct WaitGuard<'a>(&'a ScopeState);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait_all();
    }
}

struct PoolTelemetry {
    jobs: Counter,
    inline_jobs: Counter,
    cold_spawns: Counter,
    warm_dispatches: Counter,
    worker_panics: Counter,
    queue_wait_us: Histogram,
}

struct PoolShared {
    queue: Mutex<QueueState>,
    job_ready: Condvar,
    jobs_executed: AtomicU64,
    inline_jobs: AtomicU64,
    cold_spawns: AtomicU64,
    warm_dispatches: AtomicU64,
    worker_panics: AtomicU64,
    telemetry: Mutex<Option<PoolTelemetry>>,
}

impl PoolShared {
    fn observe_dequeue(&self, enqueued_at: Instant) {
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
        if let Some(tel) = self.telemetry.lock().expect("pool telemetry lock poisoned").as_ref() {
            tel.jobs.inc();
            tel.queue_wait_us
                .observe(enqueued_at.elapsed().as_secs_f64() * 1e6);
        }
    }
}

/// A persistent pool of OS worker threads with a shared FIFO job queue.
///
/// See the [module docs](self) for motivation and guarantees. One pool is
/// owned by each [`AmbitMemory`](crate::AmbitMemory) and reused for both
/// halves of every threaded batch: the channel-sharded timing pass and the
/// per-bank functional pass.
pub struct ExecutorPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    target: usize,
}

impl std::fmt::Debug for ExecutorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorPool")
            .field("target", &self.target)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ExecutorPool {
    /// Creates a pool that will lazily spawn up to `target` workers (at
    /// least 1). No threads start until the first multi-job
    /// [`run_scoped`](Self::run_scoped) call, so idle pools are free.
    pub fn new(target: usize) -> Self {
        ExecutorPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    shutdown: false,
                    spawned: 0,
                    idle: 0,
                }),
                job_ready: Condvar::new(),
                jobs_executed: AtomicU64::new(0),
                inline_jobs: AtomicU64::new(0),
                cold_spawns: AtomicU64::new(0),
                warm_dispatches: AtomicU64::new(0),
                worker_panics: AtomicU64::new(0),
                telemetry: Mutex::new(None),
            }),
            workers: Mutex::new(Vec::new()),
            target: target.max(1),
        }
    }

    /// A pool sized for this host: the `AMBIT_POOL_THREADS` environment
    /// variable if set (clamped to ≥ 1), otherwise
    /// [`std::thread::available_parallelism`].
    pub fn with_default_size() -> Self {
        ExecutorPool::new(Self::default_workers())
    }

    /// The host-derived default worker target (see
    /// [`with_default_size`](Self::with_default_size)).
    pub fn default_workers() -> usize {
        if let Ok(v) = std::env::var("AMBIT_POOL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Maximum number of workers this pool will run. The driver degrades
    /// `BankParallelThreaded` to `BankParallel` when this is 1: with no
    /// second core there is nothing to win, only spawn overhead to pay.
    pub fn target_workers(&self) -> usize {
        self.target
    }

    /// Registers `ambit_pool_*` instruments (job/spawn/reuse counters and
    /// the queue-wait histogram) on `registry` and mirrors all activity so
    /// far onto them, so attach order does not hide history.
    pub fn set_telemetry(&self, registry: &Registry) {
        let tel = PoolTelemetry {
            jobs: registry.counter(
                "ambit_pool_jobs_total",
                "Jobs executed on executor-pool worker threads",
                &[],
            ),
            inline_jobs: registry.counter(
                "ambit_pool_inline_jobs_total",
                "Jobs run inline on the submitting thread (no queue round-trip)",
                &[],
            ),
            cold_spawns: registry.counter(
                "ambit_pool_cold_spawns_total",
                "Dispatches that had to spawn a fresh worker thread",
                &[],
            ),
            warm_dispatches: registry.counter(
                "ambit_pool_warm_dispatches_total",
                "Dispatches served by already-running workers (pool reuse)",
                &[],
            ),
            worker_panics: registry.counter(
                "ambit_pool_worker_panics_total",
                "Pool jobs that panicked (caught and surfaced as typed errors)",
                &[],
            ),
            queue_wait_us: registry.histogram(
                "ambit_pool_queue_wait_us",
                "Wall-clock microseconds jobs spent queued before a worker picked them up",
                &[],
                &[1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0],
            ),
        };
        tel.jobs.add(self.shared.jobs_executed.load(Ordering::Relaxed));
        tel.inline_jobs.add(self.shared.inline_jobs.load(Ordering::Relaxed));
        tel.cold_spawns.add(self.shared.cold_spawns.load(Ordering::Relaxed));
        tel.warm_dispatches
            .add(self.shared.warm_dispatches.load(Ordering::Relaxed));
        tel.worker_panics
            .add(self.shared.worker_panics.load(Ordering::Relaxed));
        *self.shared.telemetry.lock().expect("pool telemetry lock poisoned") = Some(tel);
    }

    /// Activity counters since construction.
    pub fn stats(&self) -> PoolStats {
        let (workers, _) = {
            let q = self.shared.queue.lock().expect("pool queue lock poisoned");
            (q.spawned, q.idle)
        };
        PoolStats {
            workers,
            target_workers: self.target,
            jobs_executed: self.shared.jobs_executed.load(Ordering::Relaxed),
            inline_jobs: self.shared.inline_jobs.load(Ordering::Relaxed),
            cold_spawns: self.shared.cold_spawns.load(Ordering::Relaxed),
            warm_dispatches: self.shared.warm_dispatches.load(Ordering::Relaxed),
            worker_panics: self.shared.worker_panics.load(Ordering::Relaxed),
        }
    }

    /// Runs `jobs` to completion and returns once all have finished — the
    /// pool-backed equivalent of `std::thread::scope`: jobs may borrow from
    /// the caller's stack frame.
    ///
    /// Zero- and one-job batches (and every batch on a single-worker pool)
    /// run inline on the submitting thread: there is no parallelism to win,
    /// and skipping the queue keeps single-bank batches at parity with
    /// serial execution. Larger batches are enqueued for the workers, with
    /// missing workers spawned on demand up to the target.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::ExecutorPanicked`] if any job panicked (after
    /// all jobs have finished). The pool remains usable.
    pub fn run_scoped<'env>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'env>>) -> Result<()> {
        if jobs.is_empty() {
            return Ok(());
        }
        if jobs.len() == 1 || self.target <= 1 {
            let mut panics = Vec::new();
            for job in jobs {
                self.shared.inline_jobs.fetch_add(1, Ordering::Relaxed);
                if let Some(tel) = self
                    .shared
                    .telemetry
                    .lock()
                    .expect("pool telemetry lock poisoned")
                    .as_ref()
                {
                    tel.inline_jobs.inc();
                }
                if let Err(p) = catch_unwind(AssertUnwindSafe(job)) {
                    panics.push(panic_message(p));
                }
            }
            return self.surface(panics);
        }

        let scope = ScopeState::new();
        let njobs = jobs.len();
        // SAFETY: every job (and therefore every 'env borrow it captures)
        // is guaranteed to finish before this function returns: WaitGuard
        // blocks on the scope even if this frame unwinds, and `remaining`
        // is incremented under the scope lock before each enqueue, so the
        // guard never returns early.
        let guard = WaitGuard(&scope);
        {
            let mut q = self.shared.queue.lock().expect("pool queue lock poisoned");
            for job in jobs {
                let scope_ref = &scope;
                let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(job));
                    scope_ref.finish_job(outcome.err().map(panic_message));
                });
                scope
                    .inner
                    .lock()
                    .expect("pool scope lock poisoned")
                    .remaining += 1;
                let wrapped: StaticJob = unsafe {
                    std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, StaticJob>(wrapped)
                };
                q.jobs.push_back((wrapped, Instant::now()));
            }
            let spawnable = self.target.saturating_sub(q.spawned);
            let cold = njobs.saturating_sub(q.idle).min(spawnable);
            let warm = (njobs - cold) as u64;
            self.shared.cold_spawns.fetch_add(cold as u64, Ordering::Relaxed);
            self.shared.warm_dispatches.fetch_add(warm, Ordering::Relaxed);
            if let Some(tel) = self
                .shared
                .telemetry
                .lock()
                .expect("pool telemetry lock poisoned")
                .as_ref()
            {
                tel.cold_spawns.add(cold as u64);
                tel.warm_dispatches.add(warm);
            }
            let mut handles = self.workers.lock().expect("pool worker list poisoned");
            for _ in 0..cold {
                let shared = Arc::clone(&self.shared);
                let name = format!("ambit-pool-{}", q.spawned);
                q.spawned += 1;
                handles.push(
                    std::thread::Builder::new()
                        .name(name)
                        .spawn(move || worker_loop(shared))
                        .expect("failed to spawn pool worker"),
                );
            }
            self.shared.job_ready.notify_all();
        }
        drop(guard);
        self.surface(scope.take_panics())
    }

    fn surface(&self, panics: Vec<String>) -> Result<()> {
        if panics.is_empty() {
            return Ok(());
        }
        self.shared
            .worker_panics
            .fetch_add(panics.len() as u64, Ordering::Relaxed);
        if let Some(tel) = self
            .shared
            .telemetry
            .lock()
            .expect("pool telemetry lock poisoned")
            .as_ref()
        {
            tel.worker_panics.add(panics.len() as u64);
        }
        Err(AmbitError::ExecutorPanicked {
            message: panics.into_iter().next().unwrap_or_default(),
        })
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("pool queue lock poisoned");
            q.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("pool worker list poisoned"));
        for handle in handles {
            // Workers drain remaining jobs before honoring shutdown, so
            // this never abandons queued work.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let (job, enqueued_at) = {
            let mut q = shared.queue.lock().expect("pool queue lock poisoned");
            loop {
                if let Some(entry) = q.jobs.pop_front() {
                    break entry;
                }
                if q.shutdown {
                    q.spawned -= 1;
                    return;
                }
                q.idle += 1;
                q = shared.job_ready.wait(q).expect("pool queue lock poisoned");
                q.idle -= 1;
            }
        };
        shared.observe_dequeue(enqueued_at);
        // The job wrapper owns its own panic handling (catch_unwind +
        // scope notification), so the worker thread itself never unwinds.
        job();
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

// The pool is shared behind `&self` from multiple submitting threads (the
// driver is `Sync`) — pin that property at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ExecutorPool>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scoped_jobs_borrow_and_complete() {
        let pool = ExecutorPool::new(4);
        let mut outputs = vec![0usize; 8];
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = outputs
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| Box::new(move || *slot = i * i) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool.run_scoped(jobs).unwrap();
        assert_eq!(outputs, vec![0, 1, 4, 9, 16, 25, 36, 49]);
        let stats = pool.stats();
        assert_eq!(stats.jobs_executed, 8);
        assert!(stats.workers <= 4);
    }

    #[test]
    fn single_job_runs_inline_without_spawning() {
        let pool = ExecutorPool::new(4);
        let hit = AtomicUsize::new(0);
        pool.run_scoped(vec![Box::new(|| {
            hit.fetch_add(1, Ordering::Relaxed);
        })])
        .unwrap();
        assert_eq!(hit.load(Ordering::Relaxed), 1);
        let stats = pool.stats();
        assert_eq!(stats.inline_jobs, 1);
        assert_eq!(stats.workers, 0, "no worker threads for inline jobs");
    }

    #[test]
    fn workers_are_reused_across_batches() {
        let pool = ExecutorPool::new(2);
        for _ in 0..10 {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> =
                (0..2).map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>).collect();
            pool.run_scoped(jobs).unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs_executed, 20);
        assert!(
            stats.cold_spawns <= 2,
            "long-lived workers: {} cold spawns",
            stats.cold_spawns
        );
        assert!(stats.warm_dispatches >= 18);
    }

    #[test]
    fn panicking_job_yields_typed_error_and_pool_survives() {
        let pool = ExecutorPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| panic!("boom in worker")),
            Box::new(|| {}),
        ];
        let err = pool.run_scoped(jobs).unwrap_err();
        match err {
            AmbitError::ExecutorPanicked { message } => {
                assert!(message.contains("boom in worker"), "{message}")
            }
            other => panic!("expected ExecutorPanicked, got {other}"),
        }
        // The pool stays usable after a panic.
        let ok = AtomicUsize::new(0);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    ok.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs).unwrap();
        assert_eq!(ok.load(Ordering::Relaxed), 4);
        assert_eq!(pool.stats().worker_panics, 1);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = ExecutorPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> =
            (0..6).map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>).collect();
        pool.run_scoped(jobs).unwrap();
        drop(pool); // must not hang or leak threads
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        use ambit_telemetry::Registry;
        let registry = Registry::new();
        let pool = ExecutorPool::new(2);
        // Activity before attach is backfilled at attach time.
        pool.run_scoped(vec![Box::new(|| {})]).unwrap();
        pool.set_telemetry(&registry);
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> =
            (0..3).map(|_| Box::new(|| {}) as Box<dyn FnOnce() + Send + '_>).collect();
        pool.run_scoped(jobs).unwrap();
        let stats = pool.stats();
        assert_eq!(
            registry.counter_value("ambit_pool_jobs_total", &[]),
            Some(stats.jobs_executed)
        );
        assert_eq!(
            registry.counter_value("ambit_pool_inline_jobs_total", &[]),
            Some(stats.inline_jobs)
        );
        assert_eq!(
            registry.counter_value("ambit_pool_cold_spawns_total", &[]),
            Some(stats.cold_spawns)
        );
        assert_eq!(
            registry.counter_value("ambit_pool_warm_dispatches_total", &[]),
            Some(stats.warm_dispatches)
        );
        let wait = registry.histogram_snapshot("ambit_pool_queue_wait_us", &[]).unwrap();
        assert_eq!(wait.count, stats.jobs_executed);
    }
}
