//! The Ambit controller: executes AAP/AP command programs against the
//! functional DRAM model while accounting timing and energy
//! (paper Sections 5.2–5.5).

use std::collections::HashSet;

use ambit_dram::{
    AapMode, Bank, BankId, BitRow, CampaignTick, CommandTimer, DramDevice, DramError,
    DramGeometry, EnergyModel, FaultCampaign, RefreshScheduler, TimerShard, TimingParams,
    TraceEntry,
};
use ambit_telemetry::Registry;

use crate::addressing::{RowAddress, SubarrayLayout};
use crate::error::{AmbitError, Result};
use crate::ops::{compile, AmbitCmd, BitwiseOp};
use crate::pool::ExecutorPool;

/// One channel lane's timing output: `(chunk index, receipt + trace-entry
/// count)` pairs appended by that lane's shard job.
type LaneTimings = Vec<(usize, Result<(OpReceipt, usize)>)>;

/// Timing/energy receipt for one executed command program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpReceipt {
    /// Issue time of the program's first command, picoseconds.
    pub start_ps: u64,
    /// Time the bank is ready after the program's last precharge.
    pub end_ps: u64,
    /// Energy consumed by the program, nanojoules.
    pub energy_nj: f64,
    /// AAP primitives executed.
    pub aaps: usize,
    /// AP primitives executed.
    pub aps: usize,
}

impl OpReceipt {
    /// Program latency in picoseconds.
    pub fn latency_ps(&self) -> u64 {
        self.end_ps - self.start_ps
    }

    /// Merges another receipt executed on the same timeline (e.g. the next
    /// chunk of a multi-row operation): extends the window and sums energy.
    pub fn absorb(&mut self, other: &OpReceipt) {
        self.start_ps = self.start_ps.min(other.start_ps);
        self.end_ps = self.end_ps.max(other.end_ps);
        self.energy_nj += other.energy_nj;
        self.aaps += other.aaps;
        self.aps += other.aps;
    }
}

/// The Ambit memory controller plus the Ambit DRAM device it drives.
///
/// Owns the functional device, the command-timing engine, and the subarray
/// layout. Higher layers (`driver`, `isa`) allocate data rows and translate
/// bitvector operations into per-subarray programs executed here.
///
/// # Examples
///
/// ```
/// use ambit_core::{AmbitController, BitwiseOp, RowAddress};
/// use ambit_dram::{AapMode, BankId, BitRow, DramGeometry, TimingParams};
///
/// let mut ctrl = AmbitController::new(
///     DramGeometry::tiny(),
///     TimingParams::ddr3_1600(),
///     AapMode::Overlapped,
/// );
/// let bank = BankId::zero();
/// let bits = ctrl.row_bits();
/// ctrl.poke_data(bank, 0, 0, &BitRow::ones(bits))?;
/// ctrl.poke_data(bank, 0, 1, &BitRow::zeros(bits))?;
/// let receipt = ctrl.execute(
///     BitwiseOp::Or,
///     bank,
///     0,
///     RowAddress::D(0),
///     Some(RowAddress::D(1)),
///     RowAddress::D(2),
/// )?;
/// assert_eq!(ctrl.peek_data(bank, 0, 2)?.count_ones(), bits);
/// assert_eq!(receipt.aaps, 4); // Figure 8a: and/or is four AAPs
/// # Ok::<(), ambit_core::AmbitError>(())
/// ```
#[derive(Debug)]
pub struct AmbitController {
    device: DramDevice,
    timer: CommandTimer,
    layout: SubarrayLayout,
    /// Subarrays whose control rows have been initialized.
    control_ready: HashSet<(usize, usize)>,
    /// Subarray-level parallelism: each (bank, subarray) pair gets its own
    /// timing pipeline and per-subarray precharges.
    salp: bool,
}

impl AmbitController {
    /// Creates a controller over a fresh device of the given geometry.
    pub fn new(geometry: DramGeometry, timing: TimingParams, mode: AapMode) -> Self {
        let mut timer = CommandTimer::new(timing, mode);
        // The DDR command/data bus is a per-channel resource: timing
        // pipelines [c·stride, (c+1)·stride) belong to channel c and share
        // one bus lane. For single-channel geometries every pipeline lands
        // on lane 0, which is exactly the historical single-global-bus
        // behavior.
        timer.set_channel_stride(geometry.ranks * geometry.banks);
        AmbitController {
            device: DramDevice::new(geometry),
            timer,
            layout: SubarrayLayout::new(geometry.rows_per_subarray),
            control_ready: HashSet::new(),
            salp: false,
        }
    }

    /// Enables subarray-level parallelism (SALP, Kim et al. ISCA'12):
    /// different subarrays of the same bank run their AAP pipelines
    /// concurrently — the second memory-level-parallelism axis the paper's
    /// introduction points at ("number of banks or subarrays", citing SALP).
    ///
    /// # Panics
    ///
    /// Panics if any bank currently has an open row.
    pub fn set_salp(&mut self, salp: bool) {
        self.salp = salp;
        let geometry = *self.device.geometry();
        // SALP multiplies the timing-pipeline space per bank, so the
        // per-channel lane boundary moves with it.
        let per_bank = if salp { geometry.subarrays_per_bank } else { 1 };
        self.timer
            .set_channel_stride(geometry.ranks * geometry.banks * per_bank);
        for flat in 0..geometry.total_banks() {
            let id = BankId::from_flat_index(flat, &geometry);
            self.device.bank_mut(id).set_salp(salp);
        }
    }

    /// Whether SALP is enabled.
    pub fn salp(&self) -> bool {
        self.salp
    }

    /// Timing-pipeline index for a (bank, subarray) pair: per-bank without
    /// SALP, per-subarray with it.
    fn timer_index(&self, flat_bank: usize, subarray: usize) -> usize {
        if self.salp {
            flat_bank * self.device.geometry().subarrays_per_bank + subarray
        } else {
            flat_bank
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &DramGeometry {
        self.device.geometry()
    }

    /// Row width in bits.
    pub fn row_bits(&self) -> usize {
        self.device.geometry().row_bits()
    }

    /// The subarray layout (reserved-row placement and B-group decode).
    pub fn layout(&self) -> &SubarrayLayout {
        &self.layout
    }

    /// The underlying functional device (read-only).
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// Mutable access to the functional device, for fault-injection
    /// campaigns and tests. Production code paths never need this.
    pub fn device_mut(&mut self) -> &mut DramDevice {
        &mut self.device
    }

    /// The command-timing engine (read-only; exposes time/energy/stats).
    pub fn timer(&self) -> &CommandTimer {
        &self.timer
    }

    /// Mutable access to the timing engine — e.g. to enable command
    /// tracing (`set_tracing`) or inter-bank constraint enforcement.
    pub fn timer_mut(&mut self) -> &mut CommandTimer {
        &mut self.timer
    }

    /// Advances a fault campaign's clock: catches the refresh scheduler up
    /// to the controller's current time and arms any retention-decay faults
    /// for the refresh windows that elapsed. This lives on the controller
    /// because the campaign needs the timer and the device simultaneously.
    pub fn campaign_tick(
        &mut self,
        campaign: &mut FaultCampaign,
        scheduler: &mut RefreshScheduler,
    ) -> CampaignTick {
        campaign.catch_up(scheduler, &mut self.timer, &mut self.device)
    }

    /// Replaces the energy model used for accounting.
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        self.timer.set_energy_model(model);
    }

    /// Attaches a telemetry registry to the command timer and the device:
    /// every issued command updates per-bank ACT/PRE/RD/WR counters, the
    /// wordlines-raised histogram, and the per-command energy histogram, and
    /// every multi-row charge share increments the word-parallel vs scalar
    /// path-split counter.
    pub fn set_telemetry(&mut self, registry: Registry) {
        self.device.set_telemetry(&registry);
        self.timer.set_telemetry(registry);
    }

    /// Enables cross-bank tRRD/tFAW enforcement (ablation; default off).
    pub fn set_enforce_inter_bank(&mut self, enforce: bool) {
        self.timer.set_enforce_inter_bank(enforce);
    }

    /// Closes any row the command timer has open on the timing pipeline
    /// that runs programs for `(bank, subarray)`. Required before AAP
    /// programs when regular read/write traffic shares the timer: traffic
    /// leaves rows open for row-buffer locality, but AAP/AP must start from
    /// the precharged state.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors from the precharge.
    pub fn close_open_row(&mut self, bank: BankId, subarray: usize) -> Result<()> {
        let flat = self.timer_index(bank.flat_index(self.device.geometry()), subarray);
        if self.timer.bank_active(flat) {
            self.timer.issue_precharge(flat)?;
        }
        Ok(())
    }

    /// Executes one bulk bitwise operation on a single row triple within
    /// `(bank, subarray)`: `dst = op(src1, src2)`, all addresses in that
    /// subarray's address space.
    ///
    /// # Errors
    ///
    /// * [`AmbitError::ControlRowWrite`] if `dst` is a control row.
    /// * [`AmbitError::WrongOperandCount`] on arity mismatch.
    /// * Address and DRAM protocol errors from the underlying layers.
    pub fn execute(
        &mut self,
        op: BitwiseOp,
        bank: BankId,
        subarray: usize,
        src1: RowAddress,
        src2: Option<RowAddress>,
        dst: RowAddress,
    ) -> Result<OpReceipt> {
        if matches!(dst, RowAddress::C(_)) {
            return Err(AmbitError::ControlRowWrite);
        }
        let program = compile(op, src1, src2, dst)?;
        self.run_program(bank, subarray, &program)
    }

    /// Executes an arbitrary AAP/AP command program within one subarray.
    /// This is the extension point for multi-step accelerated kernels that
    /// keep intermediates in the designated rows (e.g. BitWeaving's
    /// predicate evaluation).
    ///
    /// # Errors
    ///
    /// Propagates address-decode and DRAM protocol errors.
    pub fn run_program(
        &mut self,
        bank: BankId,
        subarray: usize,
        program: &[AmbitCmd],
    ) -> Result<OpReceipt> {
        let flat = self.timer_index(bank.flat_index(self.device.geometry()), subarray);
        self.ensure_control_rows(bank, subarray);
        let salp = self.salp;

        // Receipts account the *channel lane's* energy delta, not the
        // device total: with per-channel energy accumulators a program's
        // delta is a pure function of its own lane's command sequence, so
        // the channel-sharded timing pass reproduces it bit-exactly. On
        // single-channel geometries lane 0 is the device total anyway.
        let energy_before = self.timer.bank_energy_nj(flat);
        let mut start_ps = None;
        let mut end_ps = 0;
        let mut aaps = 0;
        let mut aps = 0;

        for cmd in program {
            match *cmd {
                AmbitCmd::Aap(a1, a2) => {
                    let wl1 = self.layout.decode(a1)?;
                    let wl2 = self.layout.decode(a2)?;
                    {
                        let b = self.device.bank_mut(bank);
                        b.activate(subarray, &wl1)?;
                        b.activate(subarray, &wl2)?;
                        if salp {
                            b.precharge_subarray(subarray)?;
                        } else {
                            b.precharge()?;
                        }
                    }
                    let (s, e) = self.timer.aap_tagged(
                        flat,
                        (wl1.len(), wl1.first().map(|w| w.row)),
                        (wl2.len(), wl2.first().map(|w| w.row)),
                    )?;
                    start_ps.get_or_insert(s);
                    end_ps = e;
                    aaps += 1;
                }
                AmbitCmd::Ap(a) => {
                    let wl = self.layout.decode(a)?;
                    {
                        let b = self.device.bank_mut(bank);
                        b.activate(subarray, &wl)?;
                        if salp {
                            b.precharge_subarray(subarray)?;
                        } else {
                            b.precharge()?;
                        }
                    }
                    let (s, e) = self.timer.ap_tagged(flat, (wl.len(), wl.first().map(|w| w.row)))?;
                    start_ps.get_or_insert(s);
                    end_ps = e;
                    aps += 1;
                }
            }
        }

        Ok(OpReceipt {
            start_ps: start_ps.unwrap_or(self.timer.bank_now_ps(flat)),
            end_ps: end_ps.max(start_ps.unwrap_or(0)),
            energy_nj: self.timer.bank_energy_nj(flat) - energy_before,
            aaps,
            aps,
        })
    }

    /// Timer-only replay of a command program: issues exactly the
    /// AAP/AP timing sequence [`run_program`](Self::run_program) would —
    /// same pipeline index, same wordline tags, same order — without
    /// touching the functional device.
    ///
    /// The threaded batch path splits `run_program` in two: this timing
    /// pass runs on the submitting thread — or, when a batch wave spans
    /// multiple channels, one shard per channel via
    /// [`time_chunks_sharded`](Self::time_chunks_sharded) — while the
    /// functional half ([`run_bank_queues`](Self::run_bank_queues)) fans
    /// out across banks on pool workers. Because the timer calls here are
    /// byte-for-byte the ones the serial path makes, receipts, traces, and
    /// timer telemetry are identical by construction.
    ///
    /// # Errors
    ///
    /// Propagates address-decode and timing protocol errors.
    pub(crate) fn time_program(
        &mut self,
        bank: BankId,
        subarray: usize,
        program: &[AmbitCmd],
    ) -> Result<OpReceipt> {
        let flat = self.timer_index(bank.flat_index(self.device.geometry()), subarray);
        time_program_on(&mut self.timer, &self.layout, flat, program)
    }

    /// Channel-sharded timing pass over one wave of chunks, each
    /// `(bank, subarray, program)` in serial issue order. Chunks whose
    /// timing pipelines share a channel lane are timed in serial order on
    /// one [`TimerShard`]; distinct lanes run concurrently on `pool`
    /// workers. Per-lane clocks, buses, tRRD/tFAW windows, and energy
    /// accumulators (see [`CommandTimer`]) make each lane's timestamps a
    /// pure function of its own command sequence, so the merged receipts,
    /// trace, stats, and timer state are byte-identical to timing the same
    /// chunks serially — which the single-lane fast path below literally
    /// does.
    ///
    /// Each chunk's timing starts from the precharged state
    /// ([`close_open_row`](Self::close_open_row) semantics, replayed on the
    /// shard).
    ///
    /// # Errors
    ///
    /// Surfaces the first failing chunk's error in serial chunk order. On
    /// error no shard is merged back: the timer keeps its pre-wave state
    /// (the serial path would have partially advanced it — but a failed
    /// batch surfaces the error and discards timing either way).
    pub(crate) fn time_chunks_sharded(
        &mut self,
        chunks: &[(BankId, usize, &[AmbitCmd])],
        pool: &ExecutorPool,
    ) -> Result<Vec<OpReceipt>> {
        let geometry = *self.device.geometry();
        let flats: Vec<usize> = chunks
            .iter()
            .map(|&(bank, subarray, _)| self.timer_index(bank.flat_index(&geometry), subarray))
            .collect();
        let lanes: Vec<usize> = flats.iter().map(|&f| self.timer.lane_of(f)).collect();
        let mut active = lanes.clone();
        active.sort_unstable();
        active.dedup();

        if active.len() <= 1 || pool.target_workers() < 2 {
            let mut receipts = Vec::with_capacity(chunks.len());
            for (&(_, _, program), &flat) in chunks.iter().zip(&flats) {
                if self.timer.bank_active(flat) {
                    self.timer.issue_precharge(flat)?;
                }
                receipts.push(time_program_on(&mut self.timer, &self.layout, flat, program)?);
            }
            return Ok(receipts);
        }

        let mut shards: Vec<TimerShard> = active
            .iter()
            .map(|&lane| self.timer.fork_channel_shard(lane))
            .collect();
        let mut lane_chunks: Vec<Vec<usize>> = vec![Vec::new(); active.len()];
        for (idx, &lane) in lanes.iter().enumerate() {
            let pos = active.binary_search(&lane).expect("lane in active set");
            lane_chunks[pos].push(idx);
        }

        // Each lane job appends `(chunk index, receipt + trace-entry count)`
        // to its own output vector — disjoint slots, no synchronization.
        let mut lane_outputs: Vec<LaneTimings> = vec![Vec::new(); active.len()];
        {
            let layout = &self.layout;
            let flats = &flats;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = shards
                .iter_mut()
                .zip(lane_outputs.iter_mut())
                .zip(lane_chunks.iter())
                .map(|((shard, out), idxs)| {
                    Box::new(move || {
                        for &idx in idxs {
                            let (_, _, program) = chunks[idx];
                            let flat = flats[idx];
                            let trace_before = shard.trace_len();
                            let timed = (|| {
                                let t = shard.timer_mut();
                                if t.bank_active(flat) {
                                    t.issue_precharge(flat)?;
                                }
                                time_program_on(t, layout, flat, program)
                            })();
                            let failed = timed.is_err();
                            out.push((
                                idx,
                                timed.map(|r| (r, shard.trace_len() - trace_before)),
                            ));
                            if failed {
                                break;
                            }
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_scoped(jobs)?;
        }

        let mut per_chunk: Vec<Option<(OpReceipt, usize)>> = vec![None; chunks.len()];
        let mut first_err: Option<(usize, AmbitError)> = None;
        for outputs in &lane_outputs {
            for (idx, res) in outputs {
                match res {
                    Ok(v) => per_chunk[*idx] = Some(*v),
                    Err(e) => {
                        if first_err.as_ref().is_none_or(|(i, _)| idx < i) {
                            first_err = Some((*idx, e.clone()));
                        }
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }

        // Merge: absorb lane state in ascending lane order, then stitch the
        // per-lane delta traces back into serial chunk order (each chunk's
        // entries are contiguous in its lane's delta because lanes process
        // their chunks in ascending serial index).
        let mut lane_traces: Vec<std::collections::VecDeque<TraceEntry>> = shards
            .into_iter()
            .map(|shard| self.timer.absorb_channel_shard(shard).into())
            .collect();
        let mut merged: Vec<TraceEntry> = Vec::new();
        let mut receipts = Vec::with_capacity(chunks.len());
        for (idx, slot) in per_chunk.into_iter().enumerate() {
            let (receipt, trace_count) = slot.expect("every chunk timed");
            let pos = active
                .binary_search(&lanes[idx])
                .expect("lane in active set");
            for _ in 0..trace_count {
                merged.push(lane_traces[pos].pop_front().expect("trace entry per count"));
            }
            receipts.push(receipt);
        }
        self.timer.append_trace_entries(&merged);
        Ok(receipts)
    }

    /// Device-only execution of per-bank program queues on the persistent
    /// executor pool — the functional half of the threaded batch path.
    /// `queues[flat_bank]` holds `(subarray, program)` pairs in the order
    /// the serial path would have run them; within one bank that order is
    /// preserved exactly, and banks share no functional state, so the final
    /// device image (including per-subarray stats and RNG streams) is
    /// byte-identical to serial execution.
    ///
    /// Control rows are lazily-initialized shared state, so they are
    /// prepared serially here before any job is submitted.
    ///
    /// # Errors
    ///
    /// Surfaces the failing bank's error deterministically in flat-bank
    /// order, not job completion order. A worker panic surfaces as
    /// [`AmbitError::ExecutorPanicked`] instead of aborting the process.
    pub(crate) fn run_bank_queues(
        &mut self,
        queues: &[Vec<(usize, &[AmbitCmd])>],
        pool: &ExecutorPool,
    ) -> Result<()> {
        let bits = self.row_bits();
        for (flat, queue) in queues.iter().enumerate() {
            for &(subarray, _) in queue {
                if self.control_ready.insert((flat, subarray)) {
                    let sa = self.device.banks_mut()[flat].subarray_mut(subarray);
                    sa.poke_row(crate::addressing::ROW_C0, BitRow::zeros(bits));
                    sa.poke_row(crate::addressing::ROW_C1, BitRow::ones(bits));
                }
            }
        }
        let salp = self.salp;
        let layout = &self.layout;
        let banks = self.device.banks_mut();
        let mut results: Vec<Result<()>> = (0..queues.len()).map(|_| Ok(())).collect();
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = banks
            .iter_mut()
            .zip(queues)
            .zip(results.iter_mut())
            .filter(|((_, queue), _)| !queue.is_empty())
            .map(|((bank, queue), slot)| {
                Box::new(move || {
                    *slot = queue.iter().try_for_each(|&(subarray, program)| {
                        run_program_on_bank(bank, layout, salp, subarray, program)
                    });
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_scoped(jobs)?;
        results.into_iter().collect()
    }

    /// Reads data row `Dk` through the DRAM protocol (ACTIVATE, column
    /// reads, PRECHARGE), accounting channel time and energy.
    ///
    /// # Errors
    ///
    /// Propagates address and protocol errors.
    pub fn read_data(&mut self, bank: BankId, subarray: usize, k: usize) -> Result<BitRow> {
        let row = self.layout.data_row(k)?;
        let flat = bank.flat_index(self.device.geometry());
        let lines = self.device.geometry().row_bytes.div_ceil(64);
        self.timer.issue_activate_tagged(flat, 1, Some(row))?;
        let mut last = self.timer.now_ps();
        for _ in 0..lines {
            last = self.timer.issue_read(flat)?;
        }
        self.timer.advance_to(last);
        self.timer.issue_precharge(flat)?;

        let b = self.device.bank_mut(bank);
        b.activate(subarray, &[ambit_dram::Wordline::data(row)])?;
        let data = b
            .sense()
            .ok_or(AmbitError::Dram(DramError::BankNotActivated))?
            .clone();
        b.precharge()?;
        Ok(data)
    }

    /// Writes data row `Dk` through the DRAM protocol, accounting channel
    /// time and energy.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::SizeMismatch`] if `data` does not match the
    /// row width; propagates address and protocol errors.
    pub fn write_data(
        &mut self,
        bank: BankId,
        subarray: usize,
        k: usize,
        data: &BitRow,
    ) -> Result<()> {
        if data.len() != self.row_bits() {
            return Err(AmbitError::SizeMismatch {
                left_bits: data.len(),
                right_bits: self.row_bits(),
            });
        }
        let row = self.layout.data_row(k)?;
        let flat = bank.flat_index(self.device.geometry());
        let lines = self.device.geometry().row_bytes.div_ceil(64);
        self.timer.issue_activate_tagged(flat, 1, Some(row))?;
        let mut last = self.timer.now_ps();
        for _ in 0..lines {
            last = self.timer.issue_write(flat)?;
        }
        self.timer.advance_to(last);
        self.timer.issue_precharge(flat)?;

        let b = self.device.bank_mut(bank);
        b.activate(subarray, &[ambit_dram::Wordline::data(row)])?;
        b.write_bytes(0, &data.to_bytes())?;
        b.precharge()?;
        Ok(())
    }

    /// Backdoor write of data row `Dk` (no protocol, no timing): used for
    /// bulk test setup and workload initialization where load time is not
    /// part of the measured experiment.
    ///
    /// # Errors
    ///
    /// Returns an address error if `k` is out of the D-group.
    pub fn poke_data(
        &mut self,
        bank: BankId,
        subarray: usize,
        k: usize,
        data: &BitRow,
    ) -> Result<()> {
        let row = self.layout.data_row(k)?;
        self.device.bank_mut(bank).subarray_mut(subarray).poke_row(row, data.clone());
        Ok(())
    }

    /// Backdoor read of data row `Dk` (no protocol, no timing).
    ///
    /// # Errors
    ///
    /// Returns an address error if `k` is out of the D-group.
    pub fn peek_data(&self, bank: BankId, subarray: usize, k: usize) -> Result<BitRow> {
        let row = self.layout.data_row(k)?;
        Ok(self.device.bank(bank).subarray(subarray).peek_row(row))
    }

    /// Ensures C0/C1 hold their constants in the given subarray (the
    /// manufacturer initializes these once; we do it lazily).
    fn ensure_control_rows(&mut self, bank: BankId, subarray: usize) {
        let flat = bank.flat_index(self.device.geometry());
        if !self.control_ready.insert((flat, subarray)) {
            return;
        }
        let bits = self.row_bits();
        let sa = self.device.bank_mut(bank).subarray_mut(subarray);
        sa.poke_row(crate::addressing::ROW_C0, BitRow::zeros(bits));
        sa.poke_row(crate::addressing::ROW_C1, BitRow::ones(bits));
    }
}

/// Times one command program on `timer` pipeline `flat` — the timing half
/// of [`AmbitController::run_program`], shared verbatim by the serial path
/// (`time_program`) and by per-channel [`TimerShard`]s in
/// `time_chunks_sharded`, so both issue the identical call sequence. The
/// receipt's energy is the pipeline's channel-lane delta
/// ([`CommandTimer::bank_energy_nj`]), exact under sharding because each
/// lane owns its accumulator.
pub(crate) fn time_program_on(
    timer: &mut CommandTimer,
    layout: &SubarrayLayout,
    flat: usize,
    program: &[AmbitCmd],
) -> Result<OpReceipt> {
    let energy_before = timer.bank_energy_nj(flat);
    let mut start_ps = None;
    let mut end_ps = 0;
    let mut aaps = 0;
    let mut aps = 0;

    for cmd in program {
        match *cmd {
            AmbitCmd::Aap(a1, a2) => {
                let wl1 = layout.decode(a1)?;
                let wl2 = layout.decode(a2)?;
                let (s, e) = timer.aap_tagged(
                    flat,
                    (wl1.len(), wl1.first().map(|w| w.row)),
                    (wl2.len(), wl2.first().map(|w| w.row)),
                )?;
                start_ps.get_or_insert(s);
                end_ps = e;
                aaps += 1;
            }
            AmbitCmd::Ap(a) => {
                let wl = layout.decode(a)?;
                let (s, e) = timer.ap_tagged(flat, (wl.len(), wl.first().map(|w| w.row)))?;
                start_ps.get_or_insert(s);
                end_ps = e;
                aps += 1;
            }
        }
    }

    Ok(OpReceipt {
        start_ps: start_ps.unwrap_or(timer.bank_now_ps(flat)),
        end_ps: end_ps.max(start_ps.unwrap_or(0)),
        energy_nj: timer.bank_energy_nj(flat) - energy_before,
        aaps,
        aps,
    })
}

/// Executes one command program against a single bank's functional state —
/// the device half of [`AmbitController::run_program`] with the timing half
/// stripped out. A free function over `&mut Bank` so the threaded batch
/// path can hand disjoint banks to distinct OS threads while the borrow
/// checker proves the ownership split is race-free. Must mutate the bank in
/// exactly the order `run_program` does (activate, activate, precharge per
/// AAP; activate, precharge per AP) or threaded execution stops being
/// byte-identical to serial.
pub(crate) fn run_program_on_bank(
    bank: &mut Bank,
    layout: &SubarrayLayout,
    salp: bool,
    subarray: usize,
    program: &[AmbitCmd],
) -> Result<()> {
    for cmd in program {
        match *cmd {
            AmbitCmd::Aap(a1, a2) => {
                let wl1 = layout.decode(a1)?;
                let wl2 = layout.decode(a2)?;
                bank.activate(subarray, &wl1)?;
                bank.activate(subarray, &wl2)?;
                if salp {
                    bank.precharge_subarray(subarray)?;
                } else {
                    bank.precharge()?;
                }
            }
            AmbitCmd::Ap(a) => {
                let wl = layout.decode(a)?;
                bank.activate(subarray, &wl)?;
                if salp {
                    bank.precharge_subarray(subarray)?;
                } else {
                    bank.precharge()?;
                }
            }
        }
    }
    Ok(())
}

// The controller owns only plain data plus the already-thread-safe
// telemetry handles, so it is `Send + Sync` by construction — the property
// the threaded batch path and multi-tenant serving (ROADMAP item 1) rely
// on. Keep this assertion next to the struct so a regression fails to
// compile rather than failing at a distant use site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AmbitController>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn controller() -> AmbitController {
        AmbitController::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    fn rows(bits: usize, seed: u64) -> (BitRow, BitRow) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (BitRow::random(bits, &mut rng), BitRow::random(bits, &mut rng))
    }

    #[test]
    fn all_ops_produce_correct_results() {
        for op in BitwiseOp::FIGURE9_OPS {
            let mut ctrl = controller();
            let bank = BankId::zero();
            let bits = ctrl.row_bits();
            let (a, b) = rows(bits, 11);
            ctrl.poke_data(bank, 0, 0, &a).unwrap();
            ctrl.poke_data(bank, 0, 1, &b).unwrap();
            let src2 = (op.source_count() == 2).then_some(RowAddress::D(1));
            ctrl.execute(op, bank, 0, RowAddress::D(0), src2, RowAddress::D(2))
                .unwrap();
            let got = ctrl.peek_data(bank, 0, 2).unwrap();
            let expect = BitRow::from_fn(bits, |i| {
                let x = a.get(i) as u64;
                let y = b.get(i) as u64;
                op.apply_words(x, y) & 1 == 1
            });
            assert_eq!(got, expect, "{op} mismatch");
        }
    }

    #[test]
    fn sources_survive_two_operand_ops() {
        // Section 3.3: the implementation copies operands to designated rows
        // precisely so the TRA does not destroy the sources.
        let mut ctrl = controller();
        let bank = BankId::zero();
        let bits = ctrl.row_bits();
        let (a, b) = rows(bits, 13);
        ctrl.poke_data(bank, 0, 0, &a).unwrap();
        ctrl.poke_data(bank, 0, 1, &b).unwrap();
        ctrl.execute(
            BitwiseOp::Xor,
            bank,
            0,
            RowAddress::D(0),
            Some(RowAddress::D(1)),
            RowAddress::D(2),
        )
        .unwrap();
        assert_eq!(ctrl.peek_data(bank, 0, 0).unwrap(), a);
        assert_eq!(ctrl.peek_data(bank, 0, 1).unwrap(), b);
    }

    #[test]
    fn and_latency_is_four_aaps() {
        let mut ctrl = controller();
        let bank = BankId::zero();
        let receipt = ctrl
            .execute(
                BitwiseOp::And,
                bank,
                0,
                RowAddress::D(0),
                Some(RowAddress::D(1)),
                RowAddress::D(2),
            )
            .unwrap();
        assert_eq!(receipt.aaps, 4);
        assert_eq!(receipt.aps, 0);
        assert_eq!(receipt.latency_ps(), 4 * 49_000, "4 × 49 ns overlapped AAPs");
    }

    #[test]
    fn xor_latency_is_five_aaps_two_aps() {
        let mut ctrl = controller();
        let receipt = ctrl
            .execute(
                BitwiseOp::Xor,
                BankId::zero(),
                0,
                RowAddress::D(0),
                Some(RowAddress::D(1)),
                RowAddress::D(2),
            )
            .unwrap();
        assert_eq!((receipt.aaps, receipt.aps), (5, 2));
        assert_eq!(receipt.latency_ps(), 5 * 49_000 + 2 * 45_000);
    }

    #[test]
    fn not_uses_dcc_and_is_two_aaps() {
        let mut ctrl = controller();
        let bank = BankId::zero();
        let bits = ctrl.row_bits();
        let (a, _) = rows(bits, 17);
        ctrl.poke_data(bank, 0, 5, &a).unwrap();
        let receipt = ctrl
            .execute(BitwiseOp::Not, bank, 0, RowAddress::D(5), None, RowAddress::D(6))
            .unwrap();
        assert_eq!(ctrl.peek_data(bank, 0, 6).unwrap(), a.not());
        assert_eq!(receipt.aaps, 2);
    }

    #[test]
    fn copy_and_init_ops() {
        let mut ctrl = controller();
        let bank = BankId::zero();
        let bits = ctrl.row_bits();
        let (a, _) = rows(bits, 19);
        ctrl.poke_data(bank, 0, 0, &a).unwrap();
        ctrl.execute(BitwiseOp::Copy, bank, 0, RowAddress::D(0), None, RowAddress::D(3))
            .unwrap();
        assert_eq!(ctrl.peek_data(bank, 0, 3).unwrap(), a);
        ctrl.execute(BitwiseOp::InitOne, bank, 0, RowAddress::D(0), None, RowAddress::D(4))
            .unwrap();
        assert_eq!(ctrl.peek_data(bank, 0, 4).unwrap().count_ones(), bits);
        ctrl.execute(BitwiseOp::InitZero, bank, 0, RowAddress::D(0), None, RowAddress::D(4))
            .unwrap();
        assert_eq!(ctrl.peek_data(bank, 0, 4).unwrap().count_ones(), 0);
    }

    #[test]
    fn control_rows_are_write_protected() {
        let mut ctrl = controller();
        let err = ctrl
            .execute(
                BitwiseOp::And,
                BankId::zero(),
                0,
                RowAddress::D(0),
                Some(RowAddress::D(1)),
                RowAddress::C(0),
            )
            .unwrap_err();
        assert_eq!(err, AmbitError::ControlRowWrite);
    }

    #[test]
    fn energy_accounting_matches_table3_shape() {
        // One AND on one row pair: 4 AAPs with a triple-row activation.
        let mut ctrl = controller();
        let receipt = ctrl
            .execute(
                BitwiseOp::And,
                BankId::zero(),
                0,
                RowAddress::D(0),
                Some(RowAddress::D(1)),
                RowAddress::D(2),
            )
            .unwrap();
        let m = EnergyModel::ddr3_1333();
        let expect = 3.0 * (2.0 * m.activate_nj(1) + m.precharge_nj())
            + (m.activate_nj(3) + m.activate_nj(1) + m.precharge_nj());
        assert!((receipt.energy_nj - expect).abs() < 1e-9);
    }

    #[test]
    fn protocol_read_write_roundtrip_with_timing() {
        let mut ctrl = controller();
        let bank = BankId::zero();
        let bits = ctrl.row_bits();
        let (a, _) = rows(bits, 23);
        let before = ctrl.timer().now_ps();
        ctrl.write_data(bank, 1, 7, &a).unwrap();
        let got = ctrl.read_data(bank, 1, 7).unwrap();
        assert_eq!(got, a);
        assert!(ctrl.timer().now_ps() > before, "protocol access takes time");
        assert!(ctrl.timer().energy().bytes_transferred > 0);
    }

    #[test]
    fn write_data_rejects_wrong_width_as_typed_error() {
        let mut ctrl = controller();
        let narrow = BitRow::zeros(ctrl.row_bits() - 1);
        let err = ctrl.write_data(BankId::zero(), 0, 0, &narrow).unwrap_err();
        assert!(matches!(err, AmbitError::SizeMismatch { .. }), "{err}");
    }

    #[test]
    fn ops_in_different_banks_share_one_timeline() {
        let mut ctrl = controller();
        let b0 = BankId::zero();
        let b1 = BankId { channel: 0, rank: 0, bank: 1 };
        let r0 = ctrl
            .execute(BitwiseOp::And, b0, 0, RowAddress::D(0), Some(RowAddress::D(1)), RowAddress::D(2))
            .unwrap();
        let r1 = ctrl
            .execute(BitwiseOp::And, b1, 0, RowAddress::D(0), Some(RowAddress::D(1)), RowAddress::D(2))
            .unwrap();
        // Bank-level parallelism: the second op overlaps the first almost
        // entirely instead of starting after it.
        assert!(r1.start_ps < r0.end_ps, "banks overlap");
    }

    #[test]
    fn receipt_absorb_merges_windows() {
        let mut a = OpReceipt { start_ps: 100, end_ps: 200, energy_nj: 1.0, aaps: 2, aps: 0 };
        let b = OpReceipt { start_ps: 150, end_ps: 400, energy_nj: 2.0, aaps: 4, aps: 1 };
        a.absorb(&b);
        assert_eq!(a.start_ps, 100);
        assert_eq!(a.end_ps, 400);
        assert_eq!(a.aaps, 6);
        assert_eq!(a.aps, 1);
        assert!((a.energy_nj - 3.0).abs() < 1e-12);
    }
}
