//! Batched, bank-parallel execution of bulk bitwise operations.
//!
//! The paper's headline throughput (Section 7.1, Figure 9) assumes all
//! banks operate in parallel: each bank sustains an independent pipeline of
//! AAP programs, and the analytic envelope in
//! [`AmbitConfig`](crate::AmbitConfig) scales linearly with the bank count.
//! [`AmbitMemory::bitwise`](crate::AmbitMemory::bitwise) realizes that
//! parallelism only *within* one multi-chunk vector; a workload made of many
//! single-chunk operations still issues them serially.
//!
//! A [`BatchBuilder`] collects a set of bulk operations — with dependencies
//! between them inferred from handle reuse (read-after-write,
//! write-after-write, write-after-read) or declared explicitly — and
//! [`AmbitMemory::execute_batch`](crate::AmbitMemory::execute_batch) plans
//! them into dependency *waves*: every op in a wave is mutually independent,
//! so their chunk programs issue back-to-back and overlap across banks on
//! the shared [`CommandTimer`](ambit_dram::CommandTimer) timeline, SIMDRAM
//! style (Hajinazar et al., ASPLOS'21). A wave barrier separates dependent
//! ops.

use std::collections::{HashMap, HashSet};

use crate::controller::OpReceipt;
use crate::driver::BitVectorHandle;
use crate::error::{AmbitError, Result};
use crate::ops::BitwiseOp;

/// Identifier of one operation inside a [`BatchBuilder`], returned by the
/// builder methods and usable as a dependency anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// The op's position in the batch (its submission order).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// How `execute_batch` issues the planned chunk programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IssuePolicy {
    /// Issue ops strictly one after another: each op's programs start only
    /// after the previous op's last precharge completes. This is the
    /// baseline the bank-parallel speedup is measured against.
    Serial,
    /// Issue every op of a dependency wave back-to-back so chunk programs
    /// on different banks overlap in simulated time; a timing barrier
    /// separates consecutive waves.
    #[default]
    BankParallel,
    /// [`BankParallel`](Self::BankParallel) semantics — identical receipts,
    /// traces, telemetry, and final memory image — but the functional work
    /// additionally executes on real OS threads, one per bank with work
    /// (`std::thread::scope`), so wall-clock time scales with cores.
    ///
    /// Execution is two-phase: a serial *timing pass* replays the exact
    /// command sequence `BankParallel` issues (the command bus is one
    /// global serializer, so timestamps depend on global issue order),
    /// then a parallel *functional pass* runs each bank's program queue on
    /// its own thread. Within one bank the queue preserves serial order,
    /// and banks share no functional state, so results are byte-identical
    /// by construction.
    ///
    /// Falls back to plain `BankParallel` (still correct, just wall-clock
    /// serial) when any subarray has a transient TRA fault rate armed:
    /// fault-armed charge shares consume the subarray's pinned per-bit RNG
    /// stream, which the fallback keeps bit-exact by running the one code
    /// path the stream was pinned against.
    BankParallelThreaded,
}

/// Receipt for one executed batch: the merged timing/energy window, per-op
/// receipts, and per-bank occupancy attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReceipt {
    /// Merged window across every op: earliest start, latest end, summed
    /// energy and command counts.
    pub total: OpReceipt,
    /// Per-op receipts, indexed by [`OpId::index`].
    pub per_op: Vec<OpReceipt>,
    /// Dependency waves the batch was planned into.
    pub waves: usize,
    /// Open-row busy time each timing pipeline (bank, or `(bank, subarray)`
    /// under SALP) accumulated *during this batch only*, picoseconds — the
    /// per-batch delta of the timer's cumulative busy attribution, so a
    /// pipeline this batch never touched reads zero even if earlier batches
    /// used it. Indexed by pipeline id; the vector's length covers every
    /// pipeline the timer has ever tracked, not just the ones this batch
    /// used.
    pub bank_busy_ps: Vec<u64>,
}

impl BatchReceipt {
    /// Wall-clock simulated time from the batch's first command to its last
    /// precharge.
    pub fn makespan_ps(&self) -> u64 {
        self.total.latency_ps()
    }

    /// Timing pipelines that did work during this batch.
    pub fn banks_used(&self) -> usize {
        self.bank_busy_ps.iter().filter(|&&b| b > 0).count()
    }
}

/// One queued operation: the same shapes the eager
/// [`AmbitMemory`](crate::AmbitMemory) entry points accept.
///
/// `PartialEq`/`Eq`/`Hash` make the op usable as the driver's
/// compiled-program cache key: handles are never reused after `free`, so an
/// op value identifies a (handle set, shape) pair for the life of the cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum BatchOp {
    /// `dst = op(src1, src2)`.
    Bitwise {
        op: BitwiseOp,
        src1: BitVectorHandle,
        src2: Option<BitVectorHandle>,
        dst: BitVectorHandle,
    },
    /// `dst = majority(a, b, c)`.
    Maj3 {
        a: BitVectorHandle,
        b: BitVectorHandle,
        c: BitVectorHandle,
        dst: BitVectorHandle,
    },
    /// `dst = srcs[0] op … op srcs[k−1]` (associative fold).
    Fold {
        op: BitwiseOp,
        srcs: Vec<BitVectorHandle>,
        dst: BitVectorHandle,
    },
}

impl BatchOp {
    /// Handles the op reads (the destination is excluded even when it is
    /// also a source — that in-place hazard is covered by the write).
    pub(crate) fn reads(&self) -> Vec<BitVectorHandle> {
        match self {
            BatchOp::Bitwise { src1, src2, .. } => {
                let mut r = vec![*src1];
                r.extend(*src2);
                r
            }
            BatchOp::Maj3 { a, b, c, .. } => vec![*a, *b, *c],
            BatchOp::Fold { srcs, .. } => srcs.clone(),
        }
    }

    /// The handle the op writes.
    pub(crate) fn writes(&self) -> BitVectorHandle {
        match self {
            BatchOp::Bitwise { dst, .. }
            | BatchOp::Maj3 { dst, .. }
            | BatchOp::Fold { dst, .. } => *dst,
        }
    }

    /// Whether the op references `handle` as a source or destination —
    /// the plan-cache eviction predicate
    /// [`AmbitMemory::free`](crate::AmbitMemory::free) uses to drop exactly
    /// the cached plans a freed handle invalidates.
    pub(crate) fn involves(&self, handle: BitVectorHandle) -> bool {
        self.writes() == handle || self.reads().contains(&handle)
    }

    /// Telemetry mnemonic, matching what the eager entry points record.
    pub(crate) fn mnemonic(&self) -> &'static str {
        match self {
            BatchOp::Bitwise { op, .. } => op.mnemonic(),
            BatchOp::Maj3 { .. } => "maj3",
            BatchOp::Fold { op: BitwiseOp::And, .. } => "fold_and",
            BatchOp::Fold { op: BitwiseOp::Or, .. } => "fold_or",
            BatchOp::Fold { op, .. } => op.mnemonic(),
        }
    }
}

/// A read-only view of one queued batch operation: the operation kind, the
/// handles it reads, and the handle it writes.
///
/// This is the introspection surface golden models and conformance oracles
/// use to recompute a batch's expected results on the CPU without executing
/// it — the view mirrors exactly what
/// [`execute_batch`](crate::AmbitMemory::execute_batch) will run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOpView {
    /// Telemetry mnemonic of the operation (`bbop_and`, `maj3`,
    /// `fold_or`, …).
    pub mnemonic: &'static str,
    /// The bitwise operation, for ops that are a plain
    /// [`BitwiseOp`] application ([`None`] for majority).
    pub op: Option<BitwiseOp>,
    /// Handles the op reads, in operand order (destination excluded even
    /// when it is also a source).
    pub reads: Vec<BitVectorHandle>,
    /// The handle the op writes.
    pub writes: BitVectorHandle,
}

/// Builder for a batch of bulk bitwise operations with inter-op
/// dependencies.
///
/// Data dependencies are inferred automatically from handle reuse: an op
/// reading a handle a prior op wrote (RAW), writing a handle a prior op
/// wrote (WAW), or writing a handle a prior op read (WAR) is ordered after
/// that op. [`depends_on`](Self::depends_on) adds explicit edges for
/// orderings the handles do not capture.
///
/// # Examples
///
/// ```
/// use ambit_core::{AmbitMemory, BatchBuilder, BitwiseOp, IssuePolicy};
///
/// let mut mem = AmbitMemory::ddr3_module();
/// let bits = mem.row_bits();
/// let a = mem.alloc(bits)?;
/// let b = mem.alloc(bits)?;
/// let t = mem.alloc(bits)?;
/// let out = mem.alloc(bits)?;
/// mem.poke_bits(a, &vec![true; bits])?;
/// mem.poke_bits(b, &vec![false; bits])?;
///
/// let mut batch = BatchBuilder::new();
/// let and = batch.bitwise(BitwiseOp::And, a, Some(b), t);
/// let not = batch.bitwise(BitwiseOp::Not, t, None, out); // RAW on t
/// assert_eq!(and.index(), 0);
/// assert_eq!(not.index(), 1);
/// let receipt = mem.execute_batch(&batch, IssuePolicy::BankParallel)?;
/// assert_eq!(receipt.per_op.len(), 2);
/// assert_eq!(mem.popcount(out)?, bits);
/// # Ok::<(), ambit_core::AmbitError>(())
/// ```
#[derive(Debug, Default)]
pub struct BatchBuilder {
    pub(crate) ops: Vec<BatchOp>,
    /// Explicit `(later, earlier)` edges added via `depends_on`.
    explicit: Vec<(usize, usize)>,
}

impl BatchBuilder {
    /// An empty batch.
    pub fn new() -> Self {
        BatchBuilder::default()
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Queues `dst = op(src1, src2)` (the shape of
    /// [`AmbitMemory::bitwise`](crate::AmbitMemory::bitwise)).
    pub fn bitwise(
        &mut self,
        op: BitwiseOp,
        src1: BitVectorHandle,
        src2: Option<BitVectorHandle>,
        dst: BitVectorHandle,
    ) -> OpId {
        self.push(BatchOp::Bitwise { op, src1, src2, dst })
    }

    /// Queues `dst = majority(a, b, c)` (the shape of
    /// [`AmbitMemory::bitwise_maj3`](crate::AmbitMemory::bitwise_maj3)).
    pub fn maj3(
        &mut self,
        a: BitVectorHandle,
        b: BitVectorHandle,
        c: BitVectorHandle,
        dst: BitVectorHandle,
    ) -> OpId {
        self.push(BatchOp::Maj3 { a, b, c, dst })
    }

    /// Queues a k-way accumulation (the shape of
    /// [`AmbitMemory::bitwise_fold`](crate::AmbitMemory::bitwise_fold)).
    pub fn fold(&mut self, op: BitwiseOp, srcs: &[BitVectorHandle], dst: BitVectorHandle) -> OpId {
        self.push(BatchOp::Fold {
            op,
            srcs: srcs.to_vec(),
            dst,
        })
    }

    /// Adds an explicit edge: `op` must execute after `dep`. Use for
    /// orderings invisible to the handle-based hazard analysis (e.g. ops
    /// that communicate through host-side reads between batches).
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::UnknownOp`] if either id is not from this
    /// batch, and [`AmbitError::DependencyCycle`] for a self-edge.
    pub fn depends_on(&mut self, op: OpId, dep: OpId) -> Result<()> {
        for id in [op, dep] {
            if id.0 >= self.ops.len() {
                return Err(AmbitError::UnknownOp { id: id.0 });
            }
        }
        if op == dep {
            return Err(AmbitError::DependencyCycle { op: op.0 });
        }
        self.explicit.push((op.0, dep.0));
        Ok(())
    }

    fn push(&mut self, op: BatchOp) -> OpId {
        self.ops.push(op);
        OpId(self.ops.len() - 1)
    }

    /// Read-only views of every queued op, in submission order — the
    /// program-introspection hook for golden models (see [`BatchOpView`]).
    pub fn op_views(&self) -> Vec<BatchOpView> {
        self.ops
            .iter()
            .map(|o| BatchOpView {
                mnemonic: o.mnemonic(),
                op: match o {
                    BatchOp::Bitwise { op, .. } | BatchOp::Fold { op, .. } => Some(*op),
                    BatchOp::Maj3 { .. } => None,
                },
                reads: o.reads(),
                writes: o.writes(),
            })
            .collect()
    }

    /// Plans the batch into dependency waves: every op in a wave is
    /// independent of every other op in the same wave, and depends only on
    /// ops in earlier waves. Waves preserve submission order internally.
    ///
    /// # Errors
    ///
    /// * [`AmbitError::EmptyBatch`] for an empty builder.
    /// * [`AmbitError::DependencyCycle`] if the explicit edges close a
    ///   cycle (handle-inferred edges alone always point backwards and
    ///   cannot).
    pub(crate) fn waves(&self) -> Result<Vec<Vec<usize>>> {
        let n = self.ops.len();
        if n == 0 {
            return Err(AmbitError::EmptyBatch);
        }
        let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); n];
        for &(later, earlier) in &self.explicit {
            deps[later].insert(earlier);
        }
        // Hazard analysis over raw handle ids, in submission order.
        let mut last_writer: HashMap<u64, usize> = HashMap::new();
        let mut readers_since_write: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            for r in op.reads() {
                if let Some(&w) = last_writer.get(&r.0) {
                    deps[i].insert(w); // RAW
                }
                readers_since_write.entry(r.0).or_default().push(i);
            }
            let d = op.writes();
            if let Some(&w) = last_writer.get(&d.0) {
                deps[i].insert(w); // WAW
            }
            for &r in readers_since_write.get(&d.0).map_or(&[][..], |v| v) {
                if r != i {
                    deps[i].insert(r); // WAR
                }
            }
            last_writer.insert(d.0, i);
            readers_since_write.insert(d.0, Vec::new());
        }

        // Kahn's algorithm by levels.
        let mut remaining: Vec<HashSet<usize>> = deps;
        let mut placed = vec![false; n];
        let mut waves = Vec::new();
        let mut done = 0;
        while done < n {
            let wave: Vec<usize> = (0..n)
                .filter(|&i| !placed[i] && remaining[i].is_empty())
                .collect();
            if wave.is_empty() {
                let op = (0..n).find(|&i| !placed[i]).unwrap_or(0);
                return Err(AmbitError::DependencyCycle { op });
            }
            for &i in &wave {
                placed[i] = true;
            }
            done += wave.len();
            for r in remaining.iter_mut() {
                for &i in &wave {
                    r.remove(&i);
                }
            }
            waves.push(wave);
        }
        Ok(waves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(id: u64) -> BitVectorHandle {
        BitVectorHandle(id)
    }

    #[test]
    fn independent_ops_form_one_wave() {
        let mut b = BatchBuilder::new();
        for i in 0..4u64 {
            b.bitwise(
                BitwiseOp::And,
                handle(3 * i),
                Some(handle(3 * i + 1)),
                handle(3 * i + 2),
            );
        }
        assert_eq!(b.waves().unwrap(), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn raw_waw_war_hazards_order_waves() {
        let mut b = BatchBuilder::new();
        // op0: t = a & b; op1: out = !t (RAW on t); op2: t = c | d (WAR
        // against op1's read, WAW against op0's write).
        b.bitwise(BitwiseOp::And, handle(0), Some(handle(1)), handle(2));
        b.bitwise(BitwiseOp::Not, handle(2), None, handle(3));
        b.bitwise(BitwiseOp::Or, handle(4), Some(handle(5)), handle(2));
        assert_eq!(b.waves().unwrap(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn in_place_accumulation_chains() {
        let mut b = BatchBuilder::new();
        // acc = acc | p_i three times: each op both reads and writes acc.
        for i in 0..3u64 {
            b.bitwise(BitwiseOp::Or, handle(0), Some(handle(i + 1)), handle(0));
        }
        assert_eq!(b.waves().unwrap(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn shared_read_only_operand_does_not_serialize() {
        let mut b = BatchBuilder::new();
        b.bitwise(BitwiseOp::Not, handle(0), None, handle(1));
        b.bitwise(BitwiseOp::Not, handle(0), None, handle(2));
        assert_eq!(b.waves().unwrap(), vec![vec![0, 1]]);
    }

    #[test]
    fn explicit_dependency_edges() {
        let mut b = BatchBuilder::new();
        let x = b.bitwise(BitwiseOp::Not, handle(0), None, handle(1));
        let y = b.bitwise(BitwiseOp::Not, handle(2), None, handle(3));
        b.depends_on(y, x).unwrap();
        assert_eq!(b.waves().unwrap(), vec![vec![0], vec![1]]);
    }

    #[test]
    fn cycle_and_bad_ids_are_typed_errors() {
        let mut b = BatchBuilder::new();
        let x = b.bitwise(BitwiseOp::Not, handle(0), None, handle(1));
        let y = b.bitwise(BitwiseOp::Not, handle(2), None, handle(3));
        assert_eq!(
            b.depends_on(x, x).unwrap_err(),
            AmbitError::DependencyCycle { op: 0 }
        );
        assert_eq!(
            b.depends_on(x, OpId(7)).unwrap_err(),
            AmbitError::UnknownOp { id: 7 }
        );
        b.depends_on(y, x).unwrap();
        b.depends_on(x, y).unwrap();
        assert!(matches!(
            b.waves().unwrap_err(),
            AmbitError::DependencyCycle { .. }
        ));
    }

    #[test]
    fn empty_batch_rejected() {
        assert_eq!(
            BatchBuilder::new().waves().unwrap_err(),
            AmbitError::EmptyBatch
        );
    }

    #[test]
    fn maj3_and_fold_hazards_tracked() {
        let mut b = BatchBuilder::new();
        b.maj3(handle(0), handle(1), handle(2), handle(3));
        b.fold(BitwiseOp::Or, &[handle(3), handle(4)], handle(5));
        assert_eq!(b.waves().unwrap(), vec![vec![0], vec![1]]);
    }
}
