//! Bulk bitwise operations and their AAP/AP command programs
//! (paper Section 5.2, Figure 8).
//!
//! Every Ambit operation compiles to a short, fixed sequence of
//! [`AmbitCmd`]s. The `and`/`nand`/`xor` programs are given verbatim in the
//! paper's Figure 8; `or`/`nor`/`xnor` follow from "appropriately modifying
//! the control rows" (the figure's footnote), which this module spells out
//! and the tests verify bit-exactly against a software reference.

use crate::addressing::RowAddress;
use crate::error::{AmbitError, Result};

/// A bulk bitwise operation supported by the bbop ISA (Section 5.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitwiseOp {
    /// `dst = !src1`
    Not,
    /// `dst = src1 & src2`
    And,
    /// `dst = src1 | src2`
    Or,
    /// `dst = !(src1 & src2)`
    Nand,
    /// `dst = !(src1 | src2)`
    Nor,
    /// `dst = src1 ^ src2`
    Xor,
    /// `dst = !(src1 ^ src2)`
    Xnor,
    /// `dst = src1` (RowClone copy expressed in Ambit addressing)
    Copy,
    /// `dst = 0` (initialization from control row C0)
    InitZero,
    /// `dst = 1` (initialization from control row C1)
    InitOne,
}

impl BitwiseOp {
    /// All seven bitwise operations evaluated in the paper's Figure 9.
    pub const FIGURE9_OPS: [BitwiseOp; 7] = [
        BitwiseOp::Not,
        BitwiseOp::And,
        BitwiseOp::Or,
        BitwiseOp::Nand,
        BitwiseOp::Nor,
        BitwiseOp::Xor,
        BitwiseOp::Xnor,
    ];

    /// Number of source operands the operation takes.
    pub fn source_count(&self) -> usize {
        match self {
            BitwiseOp::Not | BitwiseOp::Copy => 1,
            BitwiseOp::InitZero | BitwiseOp::InitOne => 0,
            _ => 2,
        }
    }

    /// Mnemonic, as used in the bbop ISA.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BitwiseOp::Not => "bbop_not",
            BitwiseOp::And => "bbop_and",
            BitwiseOp::Or => "bbop_or",
            BitwiseOp::Nand => "bbop_nand",
            BitwiseOp::Nor => "bbop_nor",
            BitwiseOp::Xor => "bbop_xor",
            BitwiseOp::Xnor => "bbop_xnor",
            BitwiseOp::Copy => "bbop_copy",
            BitwiseOp::InitZero => "bbop_zero",
            BitwiseOp::InitOne => "bbop_one",
        }
    }

    /// Software reference semantics on one pair of words (the ground truth
    /// the in-DRAM programs are tested against).
    pub fn apply_words(&self, a: u64, b: u64) -> u64 {
        match self {
            BitwiseOp::Not => !a,
            BitwiseOp::And => a & b,
            BitwiseOp::Or => a | b,
            BitwiseOp::Nand => !(a & b),
            BitwiseOp::Nor => !(a | b),
            BitwiseOp::Xor => a ^ b,
            BitwiseOp::Xnor => !(a ^ b),
            BitwiseOp::Copy => a,
            BitwiseOp::InitZero => 0,
            BitwiseOp::InitOne => u64::MAX,
        }
    }
}

impl std::fmt::Display for BitwiseOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One step of an Ambit command program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmbitCmd {
    /// `AAP(addr1, addr2)`: ACTIVATE `addr1`; ACTIVATE `addr2`; PRECHARGE —
    /// copies the result of activating `addr1` into the row(s) of `addr2`.
    Aap(RowAddress, RowAddress),
    /// `AP(addr)`: ACTIVATE `addr`; PRECHARGE.
    Ap(RowAddress),
}

/// Compiles `op` into its AAP/AP program (paper Figure 8).
///
/// `src1`/`src2` and `dst` are D-group (or C-group) addresses within one
/// subarray. Operations with fewer than two sources ignore `src2`.
///
/// # Errors
///
/// Returns [`AmbitError::WrongOperandCount`] when `src2` presence does not
/// match the operation's arity.
pub fn compile(
    op: BitwiseOp,
    src1: RowAddress,
    src2: Option<RowAddress>,
    dst: RowAddress,
) -> Result<Vec<AmbitCmd>> {
    use AmbitCmd::{Aap, Ap};
    use RowAddress::{B, C};

    let need = op.source_count();
    let got = 1 + src2.is_some() as usize;
    // Zero-source ops tolerate the mandatory src1 slot being anything.
    if need == 2 && src2.is_none() || need < 2 && src2.is_some() {
        return Err(AmbitError::WrongOperandCount {
            op: op.mnemonic(),
            expected: need,
            provided: got,
        });
    }

    Ok(match op {
        // Figure 8 footnote text + Section 5.2:
        //   Dk = !Di: copy !Di into DCC0 via its n-wordline, then copy
        //   DCC0 (d-wordline) into Dk.
        BitwiseOp::Not => vec![Aap(src1, B(5)), Aap(B(4), dst)],

        // Figure 8a: Dk = Di & Dj (T2 = 0 makes the majority an AND).
        BitwiseOp::And => vec![
            Aap(src1, B(0)),
            Aap(src2.expect("arity checked"), B(1)),
            Aap(C(0), B(2)),
            Aap(B(12), dst),
        ],

        // or = and with T2 = 1.
        BitwiseOp::Or => vec![
            Aap(src1, B(0)),
            Aap(src2.expect("arity checked"), B(1)),
            Aap(C(1), B(2)),
            Aap(B(12), dst),
        ],

        // Figure 8b: route the TRA result through DCC0's n-wordline.
        BitwiseOp::Nand => vec![
            Aap(src1, B(0)),
            Aap(src2.expect("arity checked"), B(1)),
            Aap(C(0), B(2)),
            Aap(B(12), B(5)),
            Aap(B(4), dst),
        ],

        // nor = nand with T2 = 1.
        BitwiseOp::Nor => vec![
            Aap(src1, B(0)),
            Aap(src2.expect("arity checked"), B(1)),
            Aap(C(1), B(2)),
            Aap(B(12), B(5)),
            Aap(B(4), dst),
        ],

        // Figure 8c: Dk = (Di & !Dj) | (!Di & Dj).
        //   B8 loads DCC0 = !Di and T0 = Di in one AAP; B9 likewise for Dj.
        //   B10 zeroes T2 and T3; the two APs compute the half-terms in
        //   T1 and T0 via TRAs with the DCC d-wordlines; C1→T2 then turns
        //   the final TRA into an OR.
        BitwiseOp::Xor => vec![
            Aap(src1, B(8)),
            Aap(src2.expect("arity checked"), B(9)),
            Aap(C(0), B(10)),
            Ap(B(14)),
            Ap(B(15)),
            Aap(C(1), B(2)),
            Aap(B(12), dst),
        ],

        // xnor mirrors xor with the control rows swapped:
        //   T2 = T3 = 1 makes the APs compute (!Di | Dj) and (Di | !Dj);
        //   C0→T2 turns the final TRA into an AND of those terms.
        BitwiseOp::Xnor => vec![
            Aap(src1, B(8)),
            Aap(src2.expect("arity checked"), B(9)),
            Aap(C(1), B(10)),
            Ap(B(14)),
            Ap(B(15)),
            Aap(C(0), B(2)),
            Aap(B(12), dst),
        ],

        // RowClone expressed as a single AAP.
        BitwiseOp::Copy => vec![Aap(src1, dst)],
        BitwiseOp::InitZero => vec![Aap(C(0), dst)],
        BitwiseOp::InitOne => vec![Aap(C(1), dst)],
    })
}

/// Compiles the native three-input bitwise majority `dst = maj(a, b, c)`
/// — the raw triple-row activation exposed as an operation. This is what
/// TRA physically computes (Section 3.1); the standard AND/OR programs are
/// the special cases with a control row as the third input. Follow-on work
/// (SIMDRAM) builds full arithmetic on exactly this primitive: a ripple-
/// carry adder's carry is `maj(a_i, b_i, carry)`.
pub fn compile_majority(
    a: RowAddress,
    b: RowAddress,
    c: RowAddress,
    dst: RowAddress,
) -> Vec<AmbitCmd> {
    use AmbitCmd::Aap;
    use RowAddress::B;
    vec![Aap(a, B(0)), Aap(b, B(1)), Aap(c, B(2)), Aap(B(12), dst)]
}

/// Counts the `(AAPs, APs)` of a program — the quantities the paper's
/// latency and energy arithmetic is expressed in.
pub fn command_counts(program: &[AmbitCmd]) -> (usize, usize) {
    let aaps = program
        .iter()
        .filter(|c| matches!(c, AmbitCmd::Aap(_, _)))
        .count();
    (aaps, program.len() - aaps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_command_counts() {
        // Paper: and/or = 4 AAP; nand/nor = 5 AAP; xor/xnor = 5 AAP + 2 AP;
        // not = 2 AAP.
        let d = RowAddress::D(0);
        let e = RowAddress::D(1);
        let k = RowAddress::D(2);
        let counts = |op| {
            let srcs = if BitwiseOp::source_count(&op) == 2 { Some(e) } else { None };
            command_counts(&compile(op, d, srcs, k).unwrap())
        };
        assert_eq!(counts(BitwiseOp::Not), (2, 0));
        assert_eq!(counts(BitwiseOp::And), (4, 0));
        assert_eq!(counts(BitwiseOp::Or), (4, 0));
        assert_eq!(counts(BitwiseOp::Nand), (5, 0));
        assert_eq!(counts(BitwiseOp::Nor), (5, 0));
        assert_eq!(counts(BitwiseOp::Xor), (5, 2));
        assert_eq!(counts(BitwiseOp::Xnor), (5, 2));
        assert_eq!(counts(BitwiseOp::Copy), (1, 0));
    }

    #[test]
    fn and_program_matches_figure8a_verbatim() {
        use AmbitCmd::Aap;
        use RowAddress::{B, C, D};
        let program = compile(BitwiseOp::And, D(3), Some(D(7)), D(9)).unwrap();
        assert_eq!(
            program,
            vec![
                Aap(D(3), B(0)),
                Aap(D(7), B(1)),
                Aap(C(0), B(2)),
                Aap(B(12), D(9)),
            ]
        );
    }

    #[test]
    fn nand_program_matches_figure8b_verbatim() {
        use AmbitCmd::Aap;
        use RowAddress::{B, C, D};
        let program = compile(BitwiseOp::Nand, D(0), Some(D(1)), D(2)).unwrap();
        assert_eq!(
            program,
            vec![
                Aap(D(0), B(0)),
                Aap(D(1), B(1)),
                Aap(C(0), B(2)),
                Aap(B(12), B(5)),
                Aap(B(4), D(2)),
            ]
        );
    }

    #[test]
    fn xor_program_matches_figure8c_verbatim() {
        use AmbitCmd::{Aap, Ap};
        use RowAddress::{B, C, D};
        let program = compile(BitwiseOp::Xor, D(0), Some(D(1)), D(2)).unwrap();
        assert_eq!(
            program,
            vec![
                Aap(D(0), B(8)),
                Aap(D(1), B(9)),
                Aap(C(0), B(10)),
                Ap(B(14)),
                Ap(B(15)),
                Aap(C(1), B(2)),
                Aap(B(12), D(2)),
            ]
        );
    }

    #[test]
    fn majority_program_is_four_aaps() {
        use RowAddress::D;
        let program = compile_majority(D(0), D(1), D(2), D(3));
        assert_eq!(command_counts(&program), (4, 0));
    }

    #[test]
    fn arity_is_enforced() {
        let d = RowAddress::D(0);
        assert!(matches!(
            compile(BitwiseOp::And, d, None, d).unwrap_err(),
            AmbitError::WrongOperandCount { expected: 2, provided: 1, .. }
        ));
        assert!(matches!(
            compile(BitwiseOp::Not, d, Some(d), d).unwrap_err(),
            AmbitError::WrongOperandCount { expected: 1, provided: 2, .. }
        ));
    }

    #[test]
    fn word_reference_semantics() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(BitwiseOp::And.apply_words(a, b), 0b1000);
        assert_eq!(BitwiseOp::Or.apply_words(a, b), 0b1110);
        assert_eq!(BitwiseOp::Xor.apply_words(a, b), 0b0110);
        assert_eq!(BitwiseOp::Nand.apply_words(a, b) & 0xF, 0b0111);
        assert_eq!(BitwiseOp::Nor.apply_words(a, b) & 0xF, 0b0001);
        assert_eq!(BitwiseOp::Xnor.apply_words(a, b) & 0xF, 0b1001);
        assert_eq!(BitwiseOp::Not.apply_words(a, 0) & 0xF, 0b0011);
        assert_eq!(BitwiseOp::Copy.apply_words(a, b), a);
    }

    #[test]
    fn source_counts() {
        assert_eq!(BitwiseOp::Not.source_count(), 1);
        assert_eq!(BitwiseOp::Xor.source_count(), 2);
        assert_eq!(BitwiseOp::InitOne.source_count(), 0);
    }

    #[test]
    fn mnemonics_are_unique() {
        let all = [
            BitwiseOp::Not,
            BitwiseOp::And,
            BitwiseOp::Or,
            BitwiseOp::Nand,
            BitwiseOp::Nor,
            BitwiseOp::Xor,
            BitwiseOp::Xnor,
            BitwiseOp::Copy,
            BitwiseOp::InitZero,
            BitwiseOp::InitOne,
        ];
        let mut names: Vec<&str> = all.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
