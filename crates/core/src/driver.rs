//! The Ambit driver: subarray-aware placement of bitvectors and the
//! user-facing bulk-operation API (paper Section 5.4.2).
//!
//! For RowClone-FPM to move operands into the designated rows, the operand
//! rows must live in the *same subarray*. The paper therefore expects the
//! manufacturer to ship a driver that (1) lets applications allocate
//! bitvectors that will be operated on together and (2) maps corresponding
//! portions of those bitvectors to the same subarray, interleaving large
//! vectors across subarrays and banks.
//!
//! [`AmbitMemory`] implements exactly that: bitvectors are split into
//! row-sized chunks; chunk *i* of every vector in the same *allocation
//! group* is placed in the same `(bank, subarray)`, with consecutive chunks
//! striped across banks first (for bank-level parallelism) and then across
//! subarrays.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ambit_dram::{
    AapMode, BankId, BitRow, CampaignTick, CellFault, DramGeometry, FaultCampaign,
    FrFcfsScheduler, RefreshScheduler, TimingParams, PS_PER_NS,
};
use ambit_telemetry::{Counter, Histogram, Registry, Span};

use crate::addressing::RowAddress;
use crate::batch::{BatchBuilder, BatchOp, BatchReceipt, IssuePolicy};
use crate::compiler::{compile_fold, fold_supported};
use crate::controller::{AmbitController, OpReceipt};
use crate::error::{AmbitError, Result};
use crate::ops::{compile, compile_majority, AmbitCmd, BitwiseOp};
use crate::pool::{ExecutorPool, PoolStats};

/// Opaque handle to an allocated Ambit bitvector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitVectorHandle(pub(crate) u64);

/// Affinity group: bitvectors allocated in the same group are co-located
/// chunk-by-chunk so in-DRAM operations between them use RowClone-FPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AllocGroup(pub u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ChunkLoc {
    bank: BankId,
    subarray: usize,
    d_index: usize,
}

#[derive(Debug, Clone)]
struct VectorMeta {
    bits: usize,
    group: AllocGroup,
    chunks: Vec<ChunkLoc>,
}

/// One compiled per-chunk command program, ready to issue.
#[derive(Debug, Clone)]
struct ChunkProgram {
    bank: BankId,
    subarray: usize,
    program: Vec<AmbitCmd>,
}

/// One entry of the driver's bad-row map: a data row found permanently
/// faulty and remapped onto a spare row of the same subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadRowEntry {
    /// Flat bank index.
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// D-group index of the faulty row.
    pub d_index: usize,
    /// D-group index of the spare row it now resolves to.
    pub spare_d_index: usize,
}

/// A plain-data device reliability map consumed by the allocator
/// (variation-aware placement, paper Section 5.5.3 + ROADMAP item 4).
///
/// This is the `ambit-core` projection of a characterized chip: build one
/// from `ambit_circuit::ChipProfile` via its `strength_order()` /
/// `weak_cells()` / `bin_codes()` accessors (this crate deliberately does
/// not depend on the circuit crate, so the profile arrives as plain
/// vectors). Install it with
/// [`AmbitMemory::install_profile`] *before the first allocation*:
///
/// * new chunks are placed following [`order`](Self::order) instead of the
///   default bank-first stripe, so the hottest allocations (the first ones
///   made in each group) land in the strongest subarrays;
/// * any chunk whose physical row hosts a known weak cell is pre-remapped
///   onto a spare row at allocation time via the existing
///   [`AmbitMemory::remap_bit`] path — paying the repair *before* first
///   use instead of after a detected corruption;
/// * [`bins`](Self::bins) feed the resilient executor's per-bin retry
///   de-rating.
///
/// Subarray-indexed vectors are row-major:
/// `flat_bank * subarrays_per_bank + subarray`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlacementProfile {
    /// Every `(flat_bank, subarray)` pair exactly once, strongest
    /// (lowest failure rate) first.
    pub order: Vec<(usize, usize)>,
    /// Per subarray: known weak cells as `(physical_row, column)` pairs.
    pub weak_cells: Vec<Vec<(usize, usize)>>,
    /// Per subarray: reliability bin code (0 strong, 1 nominal, 2 weak).
    pub bins: Vec<u8>,
}

/// Ambit device memory with a subarray-aware allocator on top of the
/// [`AmbitController`].
///
/// # Examples
///
/// ```
/// use ambit_core::{AmbitMemory, BitwiseOp};
/// use ambit_dram::{AapMode, DramGeometry, TimingParams};
///
/// let mut mem = AmbitMemory::new(
///     DramGeometry::tiny(),
///     TimingParams::ddr3_1600(),
///     AapMode::Overlapped,
/// );
/// let bits = 2 * mem.row_bits(); // two chunks, striped across banks
/// let a = mem.alloc(bits)?;
/// let b = mem.alloc(bits)?;
/// let out = mem.alloc(bits)?;
/// mem.poke_bits(a, &vec![true; bits])?;
/// mem.poke_bits(b, &vec![false; bits])?;
/// mem.bitwise(BitwiseOp::Xor, a, Some(b), out)?;
/// assert_eq!(mem.popcount(out)?, bits);
/// # Ok::<(), ambit_core::AmbitError>(())
/// ```
#[derive(Debug)]
pub struct AmbitMemory {
    ctrl: AmbitController,
    vectors: HashMap<u64, VectorMeta>,
    next_id: u64,
    /// Next free D index per `[flat_bank][subarray]`.
    next_free: Vec<Vec<usize>>,
    /// For each group, the placement of chunk index `i`.
    group_sequences: HashMap<u32, Vec<(usize, usize)>>,
    /// Spare rows reserved at the top of each subarray's D space for
    /// permanent-fault remapping (paper Section 5.5.3).
    spares_per_subarray: usize,
    /// Spares consumed so far, per `[flat_bank][subarray]`.
    spares_used: Vec<Vec<usize>>,
    /// Rows found permanently faulty and remapped (the bad-row map).
    bad_rows: Vec<BadRowEntry>,
    /// Installed device characterization map, if any (variation-aware
    /// placement + pre-remap).
    profile: Option<PlacementProfile>,
    /// Registered per-op instruments, when a telemetry registry is
    /// attached.
    telemetry: Option<DriverTelemetry>,
    /// Compiled-program cache keyed by the op (which pins both the handle
    /// set and the shape, hence the chunk layout): repeated same-shape ops —
    /// bitmap-index query loops, BitWeaving scans — skip validation and
    /// compilation. Handles are never reused, and a chunk layout is
    /// immutable after allocation, so entries only go stale when a handle is
    /// freed ([`free`](AmbitMemory::free) evicts exactly the entries that
    /// reference the freed handle). Lock-guarded rather than `RefCell` so
    /// shared-reference planning stays safe across OS threads and
    /// `AmbitMemory` is `Sync`.
    plan_cache: Mutex<HashMap<BatchOp, Vec<ChunkProgram>>>,
    /// Cache hit/miss counts, mirrored into
    /// `ambit_driver_plan_cache_{hits,misses}` when telemetry is attached.
    /// Atomics (matching the telemetry crate's counters) so concurrent
    /// readers of a shared `&AmbitMemory` never race.
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    /// Persistent worker pool for `BankParallelThreaded` batches: reused
    /// across every batch this memory executes (both the channel-sharded
    /// timing pass and the per-bank functional pass), replacing the
    /// per-batch `thread::scope` spawns that made the threaded path lose
    /// wall-clock to serial. Workers spawn lazily on first use; sized from
    /// `available_parallelism` (override: `AMBIT_POOL_THREADS`).
    pool: ExecutorPool,
}

/// Cached telemetry handles for the driver's per-operation view.
#[derive(Debug)]
struct DriverTelemetry {
    registry: Registry,
    /// Per-op latency in simulated nanoseconds.
    latency_ns: Histogram,
    /// Per-op energy in nanojoules.
    energy_nj: Histogram,
    /// Per-mnemonic op counters (small linear cache keyed by the op's
    /// `&'static str` mnemonic).
    ops: Vec<(&'static str, Counter)>,
    /// Compiled-program cache hits and misses.
    plan_cache_hits: Counter,
    plan_cache_misses: Counter,
    /// Weak cells repaired proactively at allocation time.
    preremaps: Counter,
}

impl DriverTelemetry {
    fn new(registry: Registry) -> Self {
        let latency_ns = registry.histogram(
            "ambit_op_latency_ns",
            "Bulk bitwise operation latency in simulated nanoseconds",
            &[],
            // 49 ns (one AAP) up through multi-chunk, refresh-delayed ops.
            &[50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0, 12800.0, 25600.0],
        );
        let energy_nj = registry.histogram(
            "ambit_op_energy_nj",
            "Bulk bitwise operation energy in nanojoules",
            &[],
            &[5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0, 1280.0, 2560.0],
        );
        let plan_cache_hits = registry.counter(
            "ambit_driver_plan_cache_hits",
            "Bulk ops whose compiled chunk programs were served from the plan cache",
            &[],
        );
        let plan_cache_misses = registry.counter(
            "ambit_driver_plan_cache_misses",
            "Bulk ops that were validated and compiled from scratch",
            &[],
        );
        let preremaps = registry.counter(
            "ambit_characterization_preremaps_total",
            "Weak rows remapped onto spares at allocation time from the installed chip profile",
            &[],
        );
        DriverTelemetry {
            registry,
            latency_ns,
            energy_nj,
            ops: Vec::new(),
            plan_cache_hits,
            plan_cache_misses,
            preremaps,
        }
    }

    /// Publishes the profile-armed gauges (idempotent; called when a
    /// profile is installed or telemetry is attached after one).
    fn arm_profile_gauges(&self, profile: &PlacementProfile) {
        self.registry
            .gauge(
                "ambit_characterization_profile_armed",
                "1 when a device characterization profile drives placement",
                &[],
            )
            .set(1.0);
        let weak = profile.bins.iter().filter(|&&b| b >= 2).count();
        self.registry
            .gauge(
                "ambit_characterization_weak_subarrays",
                "Subarrays binned weak by the installed chip profile",
                &[],
            )
            .set(weak as f64);
    }

    fn op_counter(&mut self, mnemonic: &'static str) -> &Counter {
        if let Some(i) = self.ops.iter().position(|(m, _)| *m == mnemonic) {
            return &self.ops[i].1;
        }
        let counter = self.registry.counter(
            "ambit_ops_total",
            "Bulk bitwise operations executed by the driver",
            &[("op", mnemonic)],
        );
        self.ops.push((mnemonic, counter));
        &self.ops[self.ops.len() - 1].1
    }

    /// Records one completed driver operation: counters, histograms, and a
    /// `driver.bitwise` span denominated in simulated nanoseconds.
    fn record_op(&mut self, mnemonic: &'static str, receipt: &OpReceipt, chunks: usize) {
        self.op_counter(mnemonic).inc();
        self.latency_ns
            .observe(receipt.latency_ps() as f64 / PS_PER_NS as f64);
        self.energy_nj.observe(receipt.energy_nj);
        self.registry.record_span(
            Span::new(
                "driver.bitwise",
                receipt.start_ps / PS_PER_NS,
                receipt.end_ps / PS_PER_NS,
            )
            .attr("op", mnemonic)
            .attr("chunks", chunks)
            .attr("aaps", receipt.aaps)
            .attr("aps", receipt.aps)
            .attr("energy_nj", receipt.energy_nj),
        );
    }

    /// Records one completed batch: per-op counters/histograms, a
    /// `driver.batch` span, and per-bank occupancy gauges from the timer's
    /// busy-time attribution.
    fn record_batch(&mut self, receipt: &BatchReceipt, mnemonics: &[&'static str]) {
        for (op_receipt, &mnemonic) in receipt.per_op.iter().zip(mnemonics) {
            self.op_counter(mnemonic).inc();
            self.latency_ns
                .observe(op_receipt.latency_ps() as f64 / PS_PER_NS as f64);
            self.energy_nj.observe(op_receipt.energy_nj);
        }
        self.registry.record_span(
            Span::new(
                "driver.batch",
                receipt.total.start_ps / PS_PER_NS,
                receipt.total.end_ps / PS_PER_NS,
            )
            .attr("ops", receipt.per_op.len())
            .attr("waves", receipt.waves)
            .attr("banks_used", receipt.banks_used())
            .attr("aaps", receipt.total.aaps)
            .attr("aps", receipt.total.aps)
            .attr("energy_nj", receipt.total.energy_nj),
        );
        for (bank, &busy) in receipt.bank_busy_ps.iter().enumerate() {
            let label = bank.to_string();
            self.registry
                .gauge(
                    "ambit_batch_bank_busy_ns",
                    "Open-row busy time each timing pipeline accumulated during \
                     the most recent batch, simulated nanoseconds",
                    &[("bank", &label)],
                )
                .set(busy as f64 / PS_PER_NS as f64);
        }
    }
}

impl AmbitMemory {
    /// Creates Ambit memory of the given geometry and timing.
    pub fn new(geometry: DramGeometry, timing: TimingParams, mode: AapMode) -> Self {
        let ctrl = AmbitController::new(geometry, timing, mode);
        let banks = geometry.total_banks();
        AmbitMemory {
            ctrl,
            vectors: HashMap::new(),
            next_id: 0,
            next_free: vec![vec![0; geometry.subarrays_per_bank]; banks],
            group_sequences: HashMap::new(),
            spares_per_subarray: 0,
            spares_used: vec![vec![0; geometry.subarrays_per_bank]; banks],
            bad_rows: Vec::new(),
            profile: None,
            telemetry: None,
            plan_cache: Mutex::new(HashMap::new()),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            pool: ExecutorPool::with_default_size(),
        }
    }

    /// Convenience constructor for the paper's 8-bank DDR3-1600 module.
    pub fn ddr3_module() -> Self {
        AmbitMemory::new(
            DramGeometry::ddr3_module(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    /// Row width in bits (the chunk size of allocations).
    pub fn row_bits(&self) -> usize {
        self.ctrl.row_bits()
    }

    /// The underlying controller (timing, energy, stats).
    pub fn controller(&self) -> &AmbitController {
        &self.ctrl
    }

    /// Mutable access to the controller, for custom command programs.
    pub fn controller_mut(&mut self) -> &mut AmbitController {
        &mut self.ctrl
    }

    /// Attaches a telemetry registry: the driver records per-operation
    /// counters (`ambit_ops_total{op=...}`), latency and energy histograms,
    /// and a `driver.bitwise` span per bulk operation, and forwards the
    /// registry to the controller for per-command instrumentation.
    pub fn set_telemetry(&mut self, registry: Registry) {
        self.ctrl.set_telemetry(registry.clone());
        self.pool.set_telemetry(&registry);
        let tel = DriverTelemetry::new(registry);
        if let Some(profile) = &self.profile {
            tel.arm_profile_gauges(profile);
        }
        self.telemetry = Some(tel);
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// Enables subarray-level parallelism: chunks placed in different
    /// subarrays of one bank overlap in time like chunks in different
    /// banks.
    pub fn set_salp(&mut self, salp: bool) {
        self.ctrl.set_salp(salp);
    }

    /// Total energy consumed so far, nanojoules.
    pub fn energy_nj(&self) -> f64 {
        self.ctrl.timer().energy().total_nj()
    }

    /// Activity counters of the persistent executor pool backing
    /// [`IssuePolicy::BankParallelThreaded`] batches: worker reuse vs cold
    /// spawns is the wall-clock win the pool exists for.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Replaces the executor pool with one bounded to `threads` workers
    /// (the old pool's workers shut down gracefully; its counters reset).
    /// With `threads == 1` the driver degrades
    /// [`IssuePolicy::BankParallelThreaded`] to plain `BankParallel` — the
    /// same degradation a one-core host gets automatically.
    pub fn set_pool_threads(&mut self, threads: usize) {
        self.pool = ExecutorPool::new(threads);
        if let Some(tel) = &self.telemetry {
            self.pool.set_telemetry(&tel.registry);
        }
    }

    /// Current simulated time, picoseconds.
    pub fn now_ps(&self) -> u64 {
        self.ctrl.timer().now_ps()
    }

    /// Allocates a bitvector of `bits` bits in the default group.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] when no co-located rows remain.
    pub fn alloc(&mut self, bits: usize) -> Result<BitVectorHandle> {
        self.alloc_in_group(bits, AllocGroup::default())
    }

    /// Allocates a bitvector of `bits` bits in `group`. Vectors in the same
    /// group are chunk-wise co-located (paper Section 5.4.2's API hint).
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] when no co-located rows remain.
    pub fn alloc_in_group(&mut self, bits: usize, group: AllocGroup) -> Result<BitVectorHandle> {
        if bits == 0 {
            return Err(AmbitError::EmptyAllocation);
        }
        let row_bits = self.row_bits();
        let chunk_count = bits.div_ceil(row_bits);
        let placements = self.group_placements(group, chunk_count);

        // First pass: check capacity without mutating. Reserved spare rows
        // are not allocatable.
        let layout_rows = self.ctrl.layout().data_rows() - self.spares_per_subarray;
        let mut needed: HashMap<(usize, usize), usize> = HashMap::new();
        for &(b, s) in &placements {
            *needed.entry((b, s)).or_insert(0) += 1;
        }
        for (&(b, s), &n) in &needed {
            let free = layout_rows - self.next_free[b][s];
            if free < n {
                return Err(AmbitError::OutOfMemory {
                    requested_rows: n,
                    available_rows: free,
                });
            }
        }

        let geometry = *self.ctrl.geometry();
        let chunks: Vec<ChunkLoc> = placements
            .iter()
            .map(|&(b, s)| {
                let d_index = self.next_free[b][s];
                self.next_free[b][s] += 1;
                ChunkLoc {
                    bank: BankId::from_flat_index(b, &geometry),
                    subarray: s,
                    d_index,
                }
            })
            .collect();

        let id = self.next_id;
        self.next_id += 1;
        self.vectors.insert(
            id,
            VectorMeta {
                bits,
                group,
                chunks,
            },
        );
        let handle = BitVectorHandle(id);
        // Variation-aware pre-remap: if a chunk's physical row hosts a
        // known weak cell, pay the spare-row repair now, before first use.
        // A failure (spares exhausted) surfaces at allocation time and the
        // handle is rolled back; the rows stay consumed, like any freed
        // arena rows.
        if self.profile.is_some() {
            if let Err(e) = self.preremap_weak_rows(handle) {
                self.vectors.remove(&id);
                return Err(e);
            }
        }
        Ok(handle)
    }

    /// Remaps every chunk of `handle` whose physical row appears in the
    /// profile's weak-cell map onto a spare row (one remap repairs the
    /// whole row, however many weak cells it hosts).
    fn preremap_weak_rows(&mut self, handle: BitVectorHandle) -> Result<()> {
        let geometry = *self.ctrl.geometry();
        let subarrays = geometry.subarrays_per_bank;
        let row_bits = self.row_bits();
        let meta = self.meta(handle)?.clone();
        let mut targets = Vec::new();
        {
            let Some(profile) = &self.profile else {
                return Ok(());
            };
            for (i, chunk) in meta.chunks.iter().enumerate() {
                let flat = chunk.bank.flat_index(&geometry) * subarrays + chunk.subarray;
                let physical = self.ctrl.layout().data_row(chunk.d_index)?;
                if profile.weak_cells[flat].iter().any(|&(row, _)| row == physical) {
                    targets.push(i);
                }
            }
        }
        for i in targets {
            // Any bit of the chunk selects the same row; clamp to the
            // logical length for a partial final chunk.
            self.remap_bit(handle, (i * row_bits).min(meta.bits - 1))?;
            if let Some(tel) = &self.telemetry {
                tel.preremaps.inc();
            }
        }
        Ok(())
    }

    /// Length of the bitvector in bits.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::UnknownHandle`] for stale handles.
    pub fn len_bits(&self, handle: BitVectorHandle) -> Result<usize> {
        Ok(self.meta(handle)?.bits)
    }

    /// Number of row-sized chunks backing the bitvector.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::UnknownHandle`] for stale handles.
    pub fn chunk_count(&self, handle: BitVectorHandle) -> Result<usize> {
        Ok(self.meta(handle)?.chunks.len())
    }

    /// The allocation group the bitvector was placed in.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::UnknownHandle`] for stale handles.
    pub fn group(&self, handle: BitVectorHandle) -> Result<AllocGroup> {
        Ok(self.meta(handle)?.group)
    }

    /// Injects a stuck-at cell fault at logical bit `bit` of the vector —
    /// for reliability campaigns (e.g. validating the TMR ECC of paper
    /// Section 5.4.5).
    ///
    /// # Errors
    ///
    /// Returns an unknown-handle error or a range error.
    pub fn inject_fault(
        &mut self,
        handle: BitVectorHandle,
        bit: usize,
        fault: CellFault,
    ) -> Result<()> {
        let meta = self.meta(handle)?.clone();
        let row_bits = self.row_bits();
        if bit >= meta.bits {
            return Err(AmbitError::SizeMismatch {
                left_bits: bit,
                right_bits: meta.bits,
            });
        }
        let chunk = meta.chunks[bit / row_bits];
        let physical_row = self.ctrl.layout().data_row(chunk.d_index)?;
        self.ctrl
            .device_mut()
            .bank_mut(chunk.bank)
            .subarray_mut(chunk.subarray)
            .inject_fault(physical_row, bit % row_bits, fault)?;
        Ok(())
    }

    /// Sets the same transient TRA fault rate on every subarray of the
    /// device (feed this from `ambit_circuit`'s Monte Carlo failure
    /// rates). For per-subarray rates, plan a
    /// [`FaultCampaign`](ambit_dram::FaultCampaign) and install it with
    /// [`apply_campaign`](Self::apply_campaign) instead.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidFaultRate`](ambit_dram::DramError)
    /// unless `rate` is a probability in `[0, 1]`.
    pub fn set_tra_fault_rate(&mut self, rate: f64) -> Result<()> {
        let geometry = *self.ctrl.geometry();
        let device = self.ctrl.device_mut();
        for flat in 0..geometry.total_banks() {
            let id = BankId::from_flat_index(flat, &geometry);
            let bank = device.bank_mut(id);
            for s in 0..bank.subarray_count() {
                bank.subarray_mut(s).set_tra_fault_rate(rate)?;
            }
        }
        Ok(())
    }

    /// Installs a planned [`FaultCampaign`] into the device: plants its
    /// stuck-at cells and sets every subarray's individual TRA fault rate.
    ///
    /// # Errors
    ///
    /// Propagates DRAM-level errors if the campaign was planned for a
    /// different geometry.
    pub fn apply_campaign(&mut self, campaign: &FaultCampaign) -> Result<()> {
        campaign.apply(self.ctrl.device_mut())?;
        Ok(())
    }

    /// Advances a fault campaign to the driver's current time: issues due
    /// refreshes and arms retention-decay faults for the elapsed windows.
    pub fn campaign_tick(
        &mut self,
        campaign: &mut FaultCampaign,
        scheduler: &mut RefreshScheduler,
    ) -> CampaignTick {
        self.ctrl.campaign_tick(campaign, scheduler)
    }

    /// Reserves `per_subarray` rows at the top of every subarray's data
    /// space as spare rows for permanent-fault remapping
    /// ([`remap_bit`](Self::remap_bit)). Must be called before any
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] if allocations already exist or
    /// if the reservation would leave no allocatable rows.
    pub fn reserve_spare_rows(&mut self, per_subarray: usize) -> Result<()> {
        let data_rows = self.ctrl.layout().data_rows();
        let allocated = self.next_free.iter().flatten().any(|&n| n > 0);
        if allocated || per_subarray >= data_rows {
            return Err(AmbitError::OutOfMemory {
                requested_rows: per_subarray,
                available_rows: data_rows.saturating_sub(1),
            });
        }
        self.spares_per_subarray = per_subarray;
        Ok(())
    }

    /// Installs a device characterization map ([`PlacementProfile`]) into
    /// the allocator. From here on, new allocations are placed strongest
    /// subarray first and chunks landing on known-weak rows are repaired
    /// onto spare rows *at allocation time* (reserve spares with
    /// [`reserve_spare_rows`](Self::reserve_spare_rows) first, or the
    /// pre-remap will surface [`AmbitError::SpareRowsExhausted`] on
    /// alloc). Must be called before any allocation, so the whole working
    /// set follows the profile.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::ProfileRejected`] if allocations already
    /// exist or the profile's shape does not match the device geometry
    /// (the order must visit every subarray exactly once; weak cells and
    /// bins must be row-major over all subarrays and in range).
    pub fn install_profile(&mut self, profile: PlacementProfile) -> Result<()> {
        let geometry = *self.ctrl.geometry();
        let banks = geometry.total_banks();
        let subarrays = geometry.subarrays_per_bank;
        let total = banks * subarrays;
        let reject = |reason: &'static str| Err(AmbitError::ProfileRejected { reason });
        if self.next_free.iter().flatten().any(|&n| n > 0) {
            return reject("profile must be installed before any allocation");
        }
        if profile.order.len() != total {
            return reject("placement order must visit every subarray exactly once");
        }
        let mut seen = vec![false; total];
        for &(b, s) in &profile.order {
            if b >= banks || s >= subarrays {
                return reject("placement order references a subarray outside the geometry");
            }
            let flat = b * subarrays + s;
            if seen[flat] {
                return reject("placement order visits a subarray twice");
            }
            seen[flat] = true;
        }
        if profile.weak_cells.len() != total {
            return reject("weak-cell map must cover every subarray");
        }
        let rows = geometry.rows_per_subarray;
        let bits = self.row_bits();
        for cells in &profile.weak_cells {
            for &(row, col) in cells {
                if row >= rows || col >= bits {
                    return reject("weak cell outside the subarray");
                }
            }
        }
        if profile.bins.len() != total || profile.bins.iter().any(|&b| b > 2) {
            return reject("bins must give every subarray a code in 0..=2");
        }
        if let Some(tel) = &self.telemetry {
            tel.arm_profile_gauges(&profile);
        }
        self.profile = Some(profile);
        Ok(())
    }

    /// The installed characterization profile, if any.
    pub fn profile(&self) -> Option<&PlacementProfile> {
        self.profile.as_ref()
    }

    /// Worst reliability-bin code (0 strong, 1 nominal, 2 weak) across the
    /// subarrays backing `handle`'s chunks; 1 (nominal) when no profile is
    /// installed. The resilient executor uses this to de-rate its retry
    /// budget per operand.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::UnknownHandle`] for stale handles.
    pub fn handle_bin(&self, handle: BitVectorHandle) -> Result<u8> {
        let meta = self.meta(handle)?;
        let Some(profile) = &self.profile else {
            return Ok(1);
        };
        let geometry = *self.ctrl.geometry();
        let subarrays = geometry.subarrays_per_bank;
        let mut worst = 0u8;
        for chunk in &meta.chunks {
            let flat = chunk.bank.flat_index(&geometry) * subarrays + chunk.subarray;
            worst = worst.max(profile.bins[flat]);
        }
        Ok(worst)
    }

    /// Spare rows still unused across the whole device.
    pub fn spare_rows_free(&self) -> usize {
        let total =
            self.spares_per_subarray * self.next_free.len() * self.next_free[0].len();
        let used: usize = self.spares_used.iter().flatten().sum();
        total - used
    }

    /// The bad-row map: every permanently faulty row remapped so far.
    pub fn bad_rows(&self) -> &[BadRowEntry] {
        &self.bad_rows
    }

    /// Remaps the physical row backing the chunk that holds logical bit
    /// `bit` of `handle` onto a fresh spare row in the same subarray — the
    /// paper's Section 5.5.3 repair, driven at runtime by the resilient
    /// executor once a stuck-at cell is diagnosed. The row's current
    /// (faulty) contents are copied onto the spare so unaffected bits
    /// survive the repair.
    ///
    /// # Errors
    ///
    /// * [`AmbitError::SpareRowsExhausted`] if the subarray has no spare
    ///   left.
    /// * [`AmbitError::SizeMismatch`] if `bit` is out of range, or an
    ///   unknown-handle error.
    pub fn remap_bit(&mut self, handle: BitVectorHandle, bit: usize) -> Result<()> {
        let meta = self.meta(handle)?.clone();
        if bit >= meta.bits {
            return Err(AmbitError::SizeMismatch {
                left_bits: bit,
                right_bits: meta.bits,
            });
        }
        let chunk = meta.chunks[bit / self.row_bits()];
        let geometry = *self.ctrl.geometry();
        let flat = chunk.bank.flat_index(&geometry);
        let used = self.spares_used[flat][chunk.subarray];
        if used >= self.spares_per_subarray {
            return Err(AmbitError::SpareRowsExhausted {
                bank: flat,
                subarray: chunk.subarray,
            });
        }
        let data_rows = self.ctrl.layout().data_rows();
        let spare_d = data_rows - 1 - used;
        let from_row = self.ctrl.layout().data_row(chunk.d_index)?;
        let to_row = self.ctrl.layout().data_row(spare_d)?;
        // Preserve the row's contents across the remap (reads resolve
        // through the old mapping until remap_row lands).
        let current = self.ctrl.peek_data(chunk.bank, chunk.subarray, chunk.d_index)?;
        self.ctrl
            .device_mut()
            .bank_mut(chunk.bank)
            .subarray_mut(chunk.subarray)
            .remap_row(from_row, to_row)?;
        self.ctrl
            .poke_data(chunk.bank, chunk.subarray, chunk.d_index, &current)?;
        self.spares_used[flat][chunk.subarray] = used + 1;
        self.bad_rows.push(BadRowEntry {
            bank: flat,
            subarray: chunk.subarray,
            d_index: chunk.d_index,
            spare_d_index: spare_d,
        });
        Ok(())
    }

    /// Executes `dst = op(src1, src2)` across all chunks of the operands,
    /// entirely in DRAM. Chunks in different banks overlap in time
    /// (bank-level parallelism); the receipt covers the whole operation.
    ///
    /// # Errors
    ///
    /// * [`AmbitError::SizeMismatch`] if operand lengths differ.
    /// * [`AmbitError::NotColocated`] if some chunk pair is not in the same
    ///   subarray (operands from different allocation groups).
    /// * [`AmbitError::WrongOperandCount`] on arity mismatch.
    pub fn bitwise(
        &mut self,
        op: BitwiseOp,
        src1: BitVectorHandle,
        src2: Option<BitVectorHandle>,
        dst: BitVectorHandle,
    ) -> Result<OpReceipt> {
        let entry = BatchOp::Bitwise { op, src1, src2, dst };
        let chunks = self.plan_op(&entry)?;
        let receipt = self.issue_chunks(&chunks)?;
        if let Some(tel) = &mut self.telemetry {
            tel.record_op(op.mnemonic(), &receipt, chunks.len());
        }
        Ok(receipt)
    }

    /// Executes `dst = majority(a, b, c)` bitwise across all chunks — the
    /// raw triple-row activation as an operation (one 4-AAP program per
    /// chunk, the same cost as an AND). The carry step of a bit-serial
    /// adder is exactly this.
    ///
    /// # Errors
    ///
    /// Same conditions as [`bitwise`](Self::bitwise).
    pub fn bitwise_maj3(
        &mut self,
        a: BitVectorHandle,
        b: BitVectorHandle,
        c: BitVectorHandle,
        dst: BitVectorHandle,
    ) -> Result<OpReceipt> {
        let entry = BatchOp::Maj3 { a, b, c, dst };
        let chunks = self.plan_op(&entry)?;
        let receipt = self.issue_chunks(&chunks)?;
        if let Some(tel) = &mut self.telemetry {
            tel.record_op("maj3", &receipt, chunks.len());
        }
        Ok(receipt)
    }

    /// Executes an optimized k-way accumulation `dst = srcs[0] op … op
    /// srcs[k−1]` (associative `op`: AND or OR), keeping the running
    /// accumulator in the designated rows chunk by chunk — the Section 5.2
    /// copy-elimination applied at the driver level.
    ///
    /// # Errors
    ///
    /// * [`AmbitError::WrongOperandCount`] for unsupported ops or < 2
    ///   sources.
    /// * [`AmbitError::SizeMismatch`] / [`AmbitError::NotColocated`] as for
    ///   [`bitwise`](Self::bitwise).
    pub fn bitwise_fold(
        &mut self,
        op: BitwiseOp,
        srcs: &[BitVectorHandle],
        dst: BitVectorHandle,
    ) -> Result<OpReceipt> {
        let entry = BatchOp::Fold {
            op,
            srcs: srcs.to_vec(),
            dst,
        };
        let mnemonic = entry.mnemonic();
        let chunks = self.plan_op(&entry)?;
        let receipt = self.issue_chunks(&chunks)?;
        if let Some(tel) = &mut self.telemetry {
            tel.record_op(mnemonic, &receipt, chunks.len());
        }
        Ok(receipt)
    }

    /// Executes a [`BatchBuilder`]'s operations as one planned batch.
    ///
    /// The batch is first split into dependency waves
    /// ([`BatchBuilder::waves`]-style hazard analysis), and every op is
    /// validated and compiled *before* any command issues — a malformed
    /// batch fails without touching the device. Under
    /// [`IssuePolicy::BankParallel`] the chunk programs of a wave issue
    /// back-to-back, so ops placed in different banks overlap in simulated
    /// time on their per-bank pipelines; [`IssuePolicy::Serial`] advances
    /// the clock past each op before issuing the next (the baseline the
    /// bank-parallel speedup is measured against);
    /// [`IssuePolicy::BankParallelThreaded`] keeps `BankParallel`'s
    /// simulated-time semantics but runs the functional work on one OS
    /// thread per bank, so wall-clock time also scales with cores (it
    /// falls back to `BankParallel` while transient TRA faults are armed,
    /// keeping the pinned per-bit RNG streams). Results are bit-identical
    /// across policies: ops within a wave touch disjoint destinations, so
    /// functional order is immaterial.
    ///
    /// # Errors
    ///
    /// * [`AmbitError::EmptyBatch`] / [`AmbitError::DependencyCycle`] from
    ///   planning.
    /// * Any validation error the eager entry points raise
    ///   ([`AmbitError::SizeMismatch`], [`AmbitError::NotColocated`],
    ///   [`AmbitError::WrongOperandCount`], unknown handles).
    pub fn execute_batch(
        &mut self,
        batch: &BatchBuilder,
        policy: IssuePolicy,
    ) -> Result<BatchReceipt> {
        self.execute_batch_inner(batch, policy, None)
    }

    /// Like [`execute_batch`](Self::execute_batch), but interleaves regular
    /// read/write traffic from a [`FrFcfsScheduler`] on the same command
    /// timer (paper Section 5.5.2): between chunk programs, every traffic
    /// request that has already arrived is serviced, and any row the
    /// traffic left open is precharged before the next AAP program targets
    /// that bank. Traffic arriving after the batch finishes stays queued in
    /// the scheduler.
    ///
    /// # Errors
    ///
    /// As [`execute_batch`](Self::execute_batch), plus scheduler errors.
    pub fn execute_batch_with_traffic(
        &mut self,
        batch: &BatchBuilder,
        policy: IssuePolicy,
        traffic: &mut FrFcfsScheduler,
    ) -> Result<BatchReceipt> {
        self.execute_batch_inner(batch, policy, Some(traffic))
    }

    fn execute_batch_inner(
        &mut self,
        batch: &BatchBuilder,
        policy: IssuePolicy,
        mut traffic: Option<&mut FrFcfsScheduler>,
    ) -> Result<BatchReceipt> {
        let waves = batch.waves()?;
        // Upfront validation and compilation: no command issues unless the
        // whole batch is well-formed.
        let plans: Vec<Vec<ChunkProgram>> = batch
            .ops
            .iter()
            .map(|entry| self.plan_op(entry))
            .collect::<Result<_>>()?;

        let busy_before: Vec<u64> = (0..self.ctrl.timer().tracked_banks())
            .map(|b| self.ctrl.timer().bank_busy_ps(b))
            .collect();

        // The threaded policy splits execution in two: a timing pass
        // (serial, or channel-sharded when a wave spans multiple channels)
        // issuing exactly the command sequence the plain bank-parallel path
        // issues, then a parallel functional pass over per-bank queues.
        // Two degradations keep it byte-identical and never slower:
        // fault-armed devices fall back to the single-phase path so charge
        // shares consume each subarray's pinned per-bit RNG stream through
        // the one code path it was pinned against (see
        // `IssuePolicy::BankParallelThreaded`), and a single-worker pool
        // (one-core host, or `AMBIT_POOL_THREADS=1`) degrades to plain
        // `BankParallel` — with no second core there is only spawn overhead
        // to pay.
        let threaded = policy == IssuePolicy::BankParallelThreaded
            && self.pool.target_workers() >= 2
            && !self.ctrl.device().tra_fault_armed();

        let mut per_op: Vec<Option<OpReceipt>> = vec![None; batch.len()];
        for wave in &waves {
            let mut wave_end = 0u64;
            // A fully-elided plan's noop receipt reads `now_ps` at its
            // mid-wave position in the serial loop; waves containing one
            // keep the serial path so that timestamp stays byte-identical.
            let wave_has_noop = wave.iter().any(|&i| plans[i].is_empty());
            if threaded && traffic.is_none() && !wave_has_noop {
                // Sharded timing: every chunk of the wave in serial issue
                // order (op index, then chunk index), timed one shard per
                // channel and merged back deterministically. Receipts come
                // back in the same serial order, so absorbing them here is
                // indistinguishable from the serial loop below.
                let mut chunk_ops: Vec<usize> = Vec::new();
                let mut chunks: Vec<(BankId, usize, &[AmbitCmd])> = Vec::new();
                for &i in wave {
                    for chunk in &plans[i] {
                        chunk_ops.push(i);
                        chunks.push((chunk.bank, chunk.subarray, chunk.program.as_slice()));
                    }
                }
                let receipts = self.ctrl.time_chunks_sharded(&chunks, &self.pool)?;
                for (&i, receipt) in chunk_ops.iter().zip(&receipts) {
                    match &mut per_op[i] {
                        Some(t) => t.absorb(receipt),
                        None => per_op[i] = Some(*receipt),
                    }
                }
                for &i in wave {
                    let receipt = per_op[i].expect("every wave op has chunks here");
                    wave_end = wave_end.max(receipt.end_ps);
                }
            } else {
                for &i in wave {
                    let mut op_total: Option<OpReceipt> = None;
                    for chunk in &plans[i] {
                        if let Some(tr) = traffic.as_deref_mut() {
                            tr.service_arrived(self.ctrl.timer_mut())?;
                        }
                        // Traffic (or prior external use) may have left a row
                        // open; AAP programs must start precharged.
                        self.ctrl.close_open_row(chunk.bank, chunk.subarray)?;
                        let receipt = if threaded {
                            self.ctrl.time_program(chunk.bank, chunk.subarray, &chunk.program)?
                        } else {
                            self.ctrl.run_program(chunk.bank, chunk.subarray, &chunk.program)?
                        };
                        match &mut op_total {
                            Some(t) => t.absorb(&receipt),
                            None => op_total = Some(receipt),
                        }
                    }
                    // A fully-elided plan (self-copy) issues nothing.
                    let receipt = op_total.unwrap_or_else(|| self.noop_receipt());
                    if policy == IssuePolicy::Serial {
                        self.ctrl.timer_mut().advance_to(receipt.end_ps);
                    }
                    wave_end = wave_end.max(receipt.end_ps);
                    per_op[i] = Some(receipt);
                }
            }
            // Wave barrier: dependent ops start only after every producer's
            // final precharge has completed.
            if policy != IssuePolicy::Serial {
                self.ctrl.timer_mut().advance_to(wave_end);
            }
        }
        if let Some(tr) = traffic {
            tr.service_arrived(self.ctrl.timer_mut())?;
        }

        if threaded {
            // Functional pass: queue every chunk program on its bank in the
            // order the serial path would have run it (wave, then op index,
            // then chunk index), and fan the queues out one pool job per
            // bank. Co-location guarantees every program only touches its
            // own (bank, subarray), so per-bank FIFO order is the only
            // ordering the device can observe.
            let geometry = *self.ctrl.geometry();
            let mut queues: Vec<Vec<(usize, &[AmbitCmd])>> =
                vec![Vec::new(); geometry.total_banks()];
            for wave in &waves {
                for &i in wave {
                    for chunk in &plans[i] {
                        queues[chunk.bank.flat_index(&geometry)]
                            .push((chunk.subarray, chunk.program.as_slice()));
                    }
                }
            }
            self.ctrl.run_bank_queues(&queues, &self.pool)?;
        }

        let per_op: Vec<OpReceipt> = per_op
            .into_iter()
            .map(|r| r.ok_or(AmbitError::EmptyAllocation))
            .collect::<Result<_>>()?;
        let mut total = per_op[0];
        for receipt in &per_op[1..] {
            total.absorb(receipt);
        }
        let bank_busy_ps: Vec<u64> = (0..self.ctrl.timer().tracked_banks())
            .map(|b| {
                self.ctrl.timer().bank_busy_ps(b) - busy_before.get(b).copied().unwrap_or(0)
            })
            .collect();

        let receipt = BatchReceipt {
            total,
            per_op,
            waves: waves.len(),
            bank_busy_ps,
        };
        if let Some(tel) = &mut self.telemetry {
            let mnemonics: Vec<&'static str> =
                batch.ops.iter().map(|op| op.mnemonic()).collect();
            tel.record_batch(&receipt, &mnemonics);
        }
        Ok(receipt)
    }

    /// Validates one batch operation against the allocator state and
    /// compiles its per-chunk command programs, consulting the plan cache
    /// first. Shared by the eager entry points and the batch engine, so
    /// batched execution is semantically identical to serial execution by
    /// construction.
    ///
    /// Failed plans are not cached: an op that validated badly once is
    /// recompiled (and re-fails) on retry, so error reporting stays exact.
    fn plan_op(&self, entry: &BatchOp) -> Result<Vec<ChunkProgram>> {
        let cached = self
            .plan_cache
            .lock()
            .expect("plan cache lock poisoned")
            .get(entry)
            .cloned();
        if let Some(hit) = cached {
            self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(tel) = &self.telemetry {
                tel.plan_cache_hits.inc();
            }
            return Ok(hit);
        }
        // Compile outside the lock: validation walks allocator metadata and
        // can be slow, and a concurrent planner hitting a different shape
        // should not wait on it. A racing miss on the same shape just
        // compiles twice and last-insert wins — both compiles are
        // deterministic functions of immutable chunk layouts.
        let chunks = self.plan_op_uncached(entry)?;
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(tel) = &self.telemetry {
            tel.plan_cache_misses.inc();
        }
        self.plan_cache
            .lock()
            .expect("plan cache lock poisoned")
            .insert(entry.clone(), chunks.clone());
        Ok(chunks)
    }

    /// Plan-cache hit and miss counts since construction (hits, misses).
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (
            self.plan_cache_hits.load(Ordering::Relaxed),
            self.plan_cache_misses.load(Ordering::Relaxed),
        )
    }

    fn plan_op_uncached(&self, entry: &BatchOp) -> Result<Vec<ChunkProgram>> {
        match entry {
            BatchOp::Bitwise { op, src1, src2, dst } => {
                if op.source_count() == 2 && src2.is_none() {
                    return Err(AmbitError::WrongOperandCount {
                        op: op.mnemonic(),
                        expected: 2,
                        provided: 1,
                    });
                }
                let m1 = self.meta(*src1)?;
                let m2 = match src2 {
                    Some(h) => Some(self.meta(*h)?),
                    None => None,
                };
                let md = self.meta(*dst)?;
                if m1.bits != md.bits {
                    return Err(AmbitError::SizeMismatch {
                        left_bits: m1.bits,
                        right_bits: md.bits,
                    });
                }
                if let Some(m2) = m2 {
                    if m2.bits != m1.bits {
                        return Err(AmbitError::SizeMismatch {
                            left_bits: m1.bits,
                            right_bits: m2.bits,
                        });
                    }
                }
                let mut chunks = Vec::with_capacity(m1.chunks.len());
                for chunk in 0..m1.chunks.len() {
                    let c1 = m1.chunks[chunk];
                    let cd = md.chunks[chunk];
                    let c2 = m2.map(|m| m.chunks[chunk]);
                    let colocated = c1.bank == cd.bank
                        && c1.subarray == cd.subarray
                        && c2.is_none_or(|c| c.bank == c1.bank && c.subarray == c1.subarray);
                    if !colocated {
                        return Err(AmbitError::NotColocated { chunk });
                    }
                    // A self-copy is a no-op: eliding it avoids the
                    // degenerate AAP(x, x), which re-activates the row
                    // already open (wasted restore cycles, and a redundant
                    // copy activation on the command trace).
                    if *op == BitwiseOp::Copy && c1.d_index == cd.d_index {
                        continue;
                    }
                    let program = compile(
                        *op,
                        RowAddress::D(c1.d_index),
                        c2.map(|c| RowAddress::D(c.d_index)),
                        RowAddress::D(cd.d_index),
                    )?;
                    chunks.push(ChunkProgram {
                        bank: c1.bank,
                        subarray: c1.subarray,
                        program,
                    });
                }
                Ok(chunks)
            }
            BatchOp::Maj3 { a, b, c, dst } => {
                let ma = self.meta(*a)?;
                let mb = self.meta(*b)?;
                let mc = self.meta(*c)?;
                let md = self.meta(*dst)?;
                for m in [mb, mc, md] {
                    if m.bits != ma.bits {
                        return Err(AmbitError::SizeMismatch {
                            left_bits: ma.bits,
                            right_bits: m.bits,
                        });
                    }
                }
                let mut chunks = Vec::with_capacity(ma.chunks.len());
                for chunk in 0..ma.chunks.len() {
                    let (ca, cb, cc, cd) = (
                        ma.chunks[chunk],
                        mb.chunks[chunk],
                        mc.chunks[chunk],
                        md.chunks[chunk],
                    );
                    let colocated = [cb, cc, cd]
                        .iter()
                        .all(|c| c.bank == ca.bank && c.subarray == ca.subarray);
                    if !colocated {
                        return Err(AmbitError::NotColocated { chunk });
                    }
                    let program = compile_majority(
                        RowAddress::D(ca.d_index),
                        RowAddress::D(cb.d_index),
                        RowAddress::D(cc.d_index),
                        RowAddress::D(cd.d_index),
                    );
                    chunks.push(ChunkProgram {
                        bank: ca.bank,
                        subarray: ca.subarray,
                        program,
                    });
                }
                Ok(chunks)
            }
            BatchOp::Fold { op, srcs, dst } => {
                if !fold_supported(*op) || srcs.len() < 2 {
                    return Err(AmbitError::WrongOperandCount {
                        op: op.mnemonic(),
                        expected: 2,
                        provided: srcs.len(),
                    });
                }
                let metas: Vec<&VectorMeta> = srcs
                    .iter()
                    .map(|&h| self.meta(h))
                    .collect::<Result<_>>()?;
                let md = self.meta(*dst)?;
                for m in &metas {
                    if m.bits != md.bits {
                        return Err(AmbitError::SizeMismatch {
                            left_bits: m.bits,
                            right_bits: md.bits,
                        });
                    }
                }
                let mut chunks = Vec::with_capacity(md.chunks.len());
                for chunk in 0..md.chunks.len() {
                    let cd = md.chunks[chunk];
                    let mut src_addrs = Vec::with_capacity(metas.len());
                    for m in &metas {
                        let c = m.chunks[chunk];
                        if c.bank != cd.bank || c.subarray != cd.subarray {
                            return Err(AmbitError::NotColocated { chunk });
                        }
                        src_addrs.push(RowAddress::D(c.d_index));
                    }
                    let program = compile_fold(*op, &src_addrs, RowAddress::D(cd.d_index))?;
                    chunks.push(ChunkProgram {
                        bank: cd.bank,
                        subarray: cd.subarray,
                        program,
                    });
                }
                Ok(chunks)
            }
        }
    }

    /// Issues an op's chunk programs in order. Chunks live in different
    /// banks (the allocator stripes them), so their pipelines overlap on
    /// the shared timeline.
    fn issue_chunks(&mut self, chunks: &[ChunkProgram]) -> Result<OpReceipt> {
        let mut total: Option<OpReceipt> = None;
        for chunk in chunks {
            let receipt = self.ctrl.run_program(chunk.bank, chunk.subarray, &chunk.program)?;
            match &mut total {
                Some(t) => t.absorb(&receipt),
                None => total = Some(receipt),
            }
        }
        // A fully-elided plan (e.g. a self-copy, which is a no-op) issues
        // no commands and costs nothing.
        Ok(total.unwrap_or_else(|| self.noop_receipt()))
    }

    /// A zero-cost receipt at the current simulated time, for operations
    /// whose plan elides every command (e.g. a self-copy).
    fn noop_receipt(&self) -> OpReceipt {
        let now = self.ctrl.timer().now_ps();
        OpReceipt {
            start_ps: now,
            end_ps: now,
            energy_nj: 0.0,
            aaps: 0,
            aps: 0,
        }
    }

    /// Writes host bits into the vector through the DRAM protocol (timed).
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::SizeMismatch`] if `bits.len()` differs from the
    /// allocation, or an unknown-handle error.
    pub fn write_bits(&mut self, handle: BitVectorHandle, bits: &[bool]) -> Result<()> {
        self.store_bits(handle, bits, false)
    }

    /// Backdoor write (no protocol, no timing) for workload setup.
    ///
    /// # Errors
    ///
    /// Same conditions as [`write_bits`](Self::write_bits).
    pub fn poke_bits(&mut self, handle: BitVectorHandle, bits: &[bool]) -> Result<()> {
        self.store_bits(handle, bits, true)
    }

    /// Backdoor write from a packed row-sized [`BitRow`] per chunk.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::SizeMismatch`] if the chunk count differs.
    pub fn poke_rows(&mut self, handle: BitVectorHandle, rows: &[BitRow]) -> Result<()> {
        let meta = self.meta(handle)?.clone();
        if rows.len() != meta.chunks.len() {
            return Err(AmbitError::SizeMismatch {
                left_bits: rows.len() * self.row_bits(),
                right_bits: meta.bits,
            });
        }
        for (row, chunk) in rows.iter().zip(&meta.chunks) {
            self.ctrl.poke_data(chunk.bank, chunk.subarray, chunk.d_index, row)?;
        }
        Ok(())
    }

    /// Reads the vector's bits back to the host through the DRAM protocol
    /// (timed).
    ///
    /// # Errors
    ///
    /// Returns an unknown-handle error for stale handles.
    pub fn read_bits(&mut self, handle: BitVectorHandle) -> Result<Vec<bool>> {
        let meta = self.meta(handle)?.clone();
        let mut out = Vec::with_capacity(meta.bits);
        for chunk in &meta.chunks {
            let row = self.ctrl.read_data(chunk.bank, chunk.subarray, chunk.d_index)?;
            for i in 0..row.len() {
                if out.len() == meta.bits {
                    break;
                }
                out.push(row.get(i));
            }
        }
        Ok(out)
    }

    /// Backdoor read (no protocol, no timing).
    ///
    /// # Errors
    ///
    /// Returns an unknown-handle error for stale handles.
    pub fn peek_bits(&self, handle: BitVectorHandle) -> Result<Vec<bool>> {
        let meta = self.meta(handle)?;
        let mut out = Vec::with_capacity(meta.bits);
        for chunk in &meta.chunks {
            let row = self.ctrl.peek_data(chunk.bank, chunk.subarray, chunk.d_index)?;
            for i in 0..row.len() {
                if out.len() == meta.bits {
                    break;
                }
                out.push(row.get(i));
            }
        }
        Ok(out)
    }

    /// Population count of the vector, masking any padding in the final
    /// chunk. This models the CPU-side `bitcount` the paper's applications
    /// perform (the count itself is not an in-DRAM operation).
    ///
    /// # Errors
    ///
    /// Returns an unknown-handle error for stale handles.
    pub fn popcount(&self, handle: BitVectorHandle) -> Result<usize> {
        let meta = self.meta(handle)?;
        let row_bits = self.row_bits();
        let mut count = 0;
        for (i, chunk) in meta.chunks.iter().enumerate() {
            let row = self.ctrl.peek_data(chunk.bank, chunk.subarray, chunk.d_index)?;
            let valid = (meta.bits - i * row_bits).min(row_bits);
            if valid == row_bits {
                count += row.count_ones();
            } else {
                count += (0..valid).filter(|&b| row.get(b)).count();
            }
        }
        Ok(count)
    }

    /// Frees the allocation. Freed rows are not currently recycled (the
    /// allocator is an arena, sufficient for experiment workloads).
    ///
    /// Evicts from the plan cache exactly the entries whose op references
    /// the freed handle: those cached programs must not short-circuit the
    /// unknown-handle validation on later calls. Unrelated cached plans
    /// survive — handles are never reused after `free`, so a plan that
    /// does not mention the freed handle can never go stale through it,
    /// and long-lived query loops keep their warm cache across unrelated
    /// frees.
    ///
    /// # Errors
    ///
    /// Returns an unknown-handle error if already freed.
    pub fn free(&mut self, handle: BitVectorHandle) -> Result<()> {
        self.plan_cache
            .lock()
            .expect("plan cache lock poisoned")
            .retain(|op, _| !op.involves(handle));
        self.vectors
            .remove(&handle.0)
            .map(|_| ())
            .ok_or(AmbitError::UnknownHandle { id: handle.0 })
    }

    fn meta(&self, handle: BitVectorHandle) -> Result<&VectorMeta> {
        self.vectors
            .get(&handle.0)
            .ok_or(AmbitError::UnknownHandle { id: handle.0 })
    }

    fn store_bits(
        &mut self,
        handle: BitVectorHandle,
        bits: &[bool],
        backdoor: bool,
    ) -> Result<()> {
        let meta = self.meta(handle)?.clone();
        if bits.len() != meta.bits {
            return Err(AmbitError::SizeMismatch {
                left_bits: bits.len(),
                right_bits: meta.bits,
            });
        }
        let row_bits = self.row_bits();
        for (i, chunk) in meta.chunks.iter().enumerate() {
            let lo = i * row_bits;
            let hi = (lo + row_bits).min(bits.len());
            let row = BitRow::from_fn(row_bits, |b| lo + b < hi && bits[lo + b]);
            if backdoor {
                self.ctrl.poke_data(chunk.bank, chunk.subarray, chunk.d_index, &row)?;
            } else {
                self.ctrl.write_data(chunk.bank, chunk.subarray, chunk.d_index, &row)?;
            }
        }
        Ok(())
    }

    /// Placement sequence for the first `chunks` chunk indices of `group`:
    /// stripe across banks first, then subarrays — or, when a
    /// characterization profile is installed, walk its strongest-first
    /// order so the earliest (hottest) allocations get the most reliable
    /// subarrays. Groups keep their distinct starting offsets in both
    /// modes, so cross-group non-co-location is preserved.
    fn group_placements(&mut self, group: AllocGroup, chunks: usize) -> Vec<(usize, usize)> {
        let geometry = *self.ctrl.geometry();
        let banks = geometry.total_banks();
        let subarrays = geometry.subarrays_per_bank;
        let order = self.profile.as_ref().map(|p| p.order.clone());
        let seq = self.group_sequences.entry(group.0).or_default();
        while seq.len() < chunks {
            // Different groups start at different banks so that vectors from
            // unrelated groups do not collide in the same subarrays — and so
            // that cross-group operations genuinely fail co-location.
            let i = seq.len() + group.0 as usize;
            match &order {
                Some(order) => seq.push(order[i % order.len()]),
                None => {
                    let bank = i % banks;
                    let subarray = (i / banks) % subarrays;
                    seq.push((bank, subarray));
                }
            }
        }
        seq[..chunks].to_vec()
    }
}

// The driver is the top of the data plane: everything below it is plain
// owned data or already-atomic telemetry, and its own shared state is a
// lock-guarded plan cache plus atomic counters. `Send + Sync` here is what
// lets callers share one memory across OS threads (e.g. a `Mutex` of
// submitters plus lock-free readers); assert it at compile time so a
// `Cell`/`RefCell` regression fails here, not at a distant spawn site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AmbitMemory>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn memory() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    #[test]
    fn alloc_read_write_roundtrip() {
        let mut mem = memory();
        let bits = mem.row_bits() * 2 + 17; // unaligned tail
        let h = mem.alloc(bits).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let data: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
        mem.write_bits(h, &data).unwrap();
        assert_eq!(mem.read_bits(h).unwrap(), data);
        assert_eq!(mem.len_bits(h).unwrap(), bits);
        assert_eq!(mem.chunk_count(h).unwrap(), 3);
    }

    #[test]
    fn same_group_vectors_are_colocated_and_operable() {
        let mut mem = memory();
        let bits = mem.row_bits() * 4;
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let c = mem.alloc(bits).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
        let db: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
        mem.poke_bits(a, &da).unwrap();
        mem.poke_bits(b, &db).unwrap();
        mem.bitwise(BitwiseOp::And, a, Some(b), c).unwrap();
        let got = mem.peek_bits(c).unwrap();
        for i in 0..bits {
            assert_eq!(got[i], da[i] && db[i], "bit {i}");
        }
    }

    #[test]
    fn different_groups_are_not_colocated() {
        let mut mem = memory();
        let bits = mem.row_bits();
        let a = mem.alloc_in_group(bits, AllocGroup(0)).unwrap();
        let b = mem.alloc_in_group(bits, AllocGroup(1)).unwrap();
        let dst = mem.alloc_in_group(bits, AllocGroup(0)).unwrap();
        // Group 1 starts in a different bank: the driver cannot use
        // RowClone-FPM between these operands.
        assert_eq!(
            mem.bitwise(BitwiseOp::Or, a, Some(b), dst).unwrap_err(),
            AmbitError::NotColocated { chunk: 0 }
        );
        // Operands within group 0 still work.
        let c = mem.alloc_in_group(bits, AllocGroup(0)).unwrap();
        assert!(mem.bitwise(BitwiseOp::Or, a, Some(c), dst).is_ok());
    }

    #[test]
    fn chunks_stripe_across_banks() {
        let mut mem = memory();
        let bits = mem.row_bits() * 2; // tiny geometry has 2 banks
        let h = mem.alloc(bits).unwrap();
        let meta = mem.meta(h).unwrap();
        assert_ne!(meta.chunks[0].bank, meta.chunks[1].bank);
    }

    #[test]
    fn multi_chunk_ops_overlap_across_banks() {
        let mut mem = memory();
        let row = mem.row_bits();
        let a = mem.alloc(row * 2).unwrap();
        let b = mem.alloc(row * 2).unwrap();
        let c = mem.alloc(row * 2).unwrap();
        let receipt = mem.bitwise(BitwiseOp::And, a, Some(b), c).unwrap();
        // Two AND chunk-programs of 4 AAPs each: serial would be 2×196 ns;
        // bank overlap should keep the makespan well under that.
        assert!(
            receipt.latency_ps() < 2 * 196_000,
            "latency {} should reflect bank parallelism",
            receipt.latency_ps()
        );
        assert_eq!(receipt.aaps, 8);
    }

    #[test]
    fn popcount_masks_padding() {
        let mut mem = memory();
        let bits = mem.row_bits() + 3;
        let h = mem.alloc(bits).unwrap();
        mem.poke_bits(h, &vec![true; bits]).unwrap();
        // NOT the vector: padding bits in DRAM become 1, but popcount of the
        // complement must still be 0 over the logical length.
        let out = mem.alloc(bits).unwrap();
        mem.bitwise(BitwiseOp::Not, h, None, out).unwrap();
        assert_eq!(mem.popcount(out).unwrap(), 0);
        assert_eq!(mem.popcount(h).unwrap(), bits);
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut mem = memory();
        let a = mem.alloc(64).unwrap();
        let b = mem.alloc(128).unwrap();
        let c = mem.alloc(64).unwrap();
        assert!(matches!(
            mem.bitwise(BitwiseOp::And, a, Some(b), c).unwrap_err(),
            AmbitError::SizeMismatch { .. }
        ));
    }

    #[test]
    fn missing_operand_rejected() {
        let mut mem = memory();
        let a = mem.alloc(64).unwrap();
        let c = mem.alloc(64).unwrap();
        assert!(matches!(
            mem.bitwise(BitwiseOp::And, a, None, c).unwrap_err(),
            AmbitError::WrongOperandCount { .. }
        ));
    }

    #[test]
    fn out_of_memory_detected() {
        let mut mem = memory();
        // tiny: 32 rows/subarray → 14 data rows per subarray, 2 banks × 2
        // subarrays. One giant vector per subarray slot exhausts them.
        let row = mem.row_bits();
        let capacity_rows = 14 * 4;
        let h = mem.alloc(row * capacity_rows);
        assert!(h.is_ok());
        assert!(matches!(
            mem.alloc(row).unwrap_err(),
            AmbitError::OutOfMemory { .. }
        ));
    }

    #[test]
    fn stale_handle_rejected() {
        let mut mem = memory();
        let h = mem.alloc(10).unwrap();
        mem.free(h).unwrap();
        assert!(matches!(
            mem.popcount(h).unwrap_err(),
            AmbitError::UnknownHandle { .. }
        ));
        assert!(mem.free(h).is_err());
    }

    #[test]
    fn bitwise_fold_matches_chained_ops() {
        let mut mem = memory();
        let bits = mem.row_bits() * 2;
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let srcs: Vec<BitVectorHandle> = (0..5).map(|_| mem.alloc(bits).unwrap()).collect();
        let data: Vec<Vec<bool>> = (0..5)
            .map(|_| (0..bits).map(|_| rng.gen()).collect())
            .collect();
        for (&h, d) in srcs.iter().zip(&data) {
            mem.poke_bits(h, d).unwrap();
        }
        let folded = mem.alloc(bits).unwrap();
        let fold_receipt = mem.bitwise_fold(BitwiseOp::Or, &srcs, folded).unwrap();

        let chained = mem.alloc(bits).unwrap();
        let mut chain_receipt = mem
            .bitwise(BitwiseOp::Copy, srcs[0], None, chained)
            .unwrap();
        for &h in &srcs[1..] {
            chain_receipt.absorb(&mem.bitwise(BitwiseOp::Or, chained, Some(h), chained).unwrap());
        }
        assert_eq!(mem.peek_bits(folded).unwrap(), mem.peek_bits(chained).unwrap());
        assert!(fold_receipt.energy_nj < chain_receipt.energy_nj, "fold saves energy");
    }

    #[test]
    fn maj3_computes_bitwise_majority() {
        let mut mem = memory();
        let bits = mem.row_bits();
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let handles: Vec<BitVectorHandle> = (0..4).map(|_| mem.alloc(bits).unwrap()).collect();
        let data: Vec<Vec<bool>> = (0..3)
            .map(|_| (0..bits).map(|_| rng.gen()).collect())
            .collect();
        for (h, d) in handles.iter().zip(&data) {
            mem.poke_bits(*h, d).unwrap();
        }
        let receipt = mem
            .bitwise_maj3(handles[0], handles[1], handles[2], handles[3])
            .unwrap();
        assert_eq!(receipt.aaps, 4, "same cost as an AND");
        let got = mem.peek_bits(handles[3]).unwrap();
        for i in 0..bits {
            let votes = data[0][i] as u8 + data[1][i] as u8 + data[2][i] as u8;
            assert_eq!(got[i], votes >= 2, "bit {i}");
        }
    }

    #[test]
    fn bitwise_fold_rejects_bad_shapes() {
        let mut mem = memory();
        let a = mem.alloc(64).unwrap();
        let b = mem.alloc(64).unwrap();
        let d = mem.alloc(64).unwrap();
        assert!(matches!(
            mem.bitwise_fold(BitwiseOp::Xor, &[a, b], d).unwrap_err(),
            AmbitError::WrongOperandCount { .. }
        ));
        assert!(matches!(
            mem.bitwise_fold(BitwiseOp::Or, &[a], d).unwrap_err(),
            AmbitError::WrongOperandCount { .. }
        ));
        let long = mem.alloc(128).unwrap();
        assert!(matches!(
            mem.bitwise_fold(BitwiseOp::Or, &[a, long], d).unwrap_err(),
            AmbitError::SizeMismatch { .. }
        ));
    }

    #[test]
    fn salp_overlaps_chunks_within_one_bank() {
        let geometry = DramGeometry {
            banks: 1,
            subarrays_per_bank: 4,
            rows_per_subarray: 32,
            row_bytes: 16,
            ..DramGeometry::tiny()
        };
        let run = |salp: bool| {
            let mut mem =
                AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
            mem.set_salp(salp);
            let bits = 4 * mem.row_bits();
            let a = mem.alloc(bits).unwrap();
            let b = mem.alloc(bits).unwrap();
            let d = mem.alloc(bits).unwrap();
            mem.poke_bits(a, &vec![true; bits]).unwrap();
            mem.poke_bits(b, &vec![true; bits]).unwrap();
            let r = mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
            assert_eq!(mem.popcount(d).unwrap(), bits, "correctness unchanged");
            r.latency_ps()
        };
        let base = run(false);
        let salp = run(true);
        assert!(
            (salp as f64) < 0.4 * base as f64,
            "4 subarrays should overlap: {salp} vs {base}"
        );
    }

    #[test]
    fn telemetry_records_ops_and_spans() {
        let mut mem = memory();
        mem.set_telemetry(Registry::default());
        let bits = mem.row_bits() * 2;
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let d = mem.alloc(bits).unwrap();
        mem.poke_bits(a, &vec![true; bits]).unwrap();
        mem.poke_bits(b, &vec![false; bits]).unwrap();
        let r1 = mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
        let r2 = mem.bitwise(BitwiseOp::Xor, a, Some(b), d).unwrap();
        mem.bitwise(BitwiseOp::Xor, a, Some(b), d).unwrap();

        let reg = mem.telemetry().unwrap().clone();
        assert_eq!(
            reg.counter_value("ambit_ops_total", &[("op", "bbop_and")]),
            Some(1)
        );
        assert_eq!(
            reg.counter_value("ambit_ops_total", &[("op", "bbop_xor")]),
            Some(2)
        );
        // Per-op energy histogram sums to the receipts' energies; the
        // controller-level per-command histogram agrees with the timer's
        // energy account.
        let snap = reg.histogram_snapshot("ambit_op_energy_nj", &[]).unwrap();
        assert_eq!(snap.count, 3);
        assert!((snap.sum - (r1.energy_nj + 2.0 * r2.energy_nj)).abs() < 1e-6);
        // One span per operation, denominated in simulated nanoseconds.
        let spans = reg.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "driver.bitwise");
        assert_eq!(spans[0].duration_ns(), r1.latency_ps() / PS_PER_NS);
        // Per-bank ACT counters flowed through to the controller level.
        assert!(reg.counter_family_total("ambit_acts_total").unwrap() > 0);
    }

    #[test]
    fn plan_cache_hits_repeated_ops_and_evicts_on_free() {
        let mut mem = memory();
        mem.set_telemetry(Registry::default());
        let bits = mem.row_bits() * 2;
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let d = mem.alloc(bits).unwrap();
        mem.poke_bits(a, &vec![true; bits]).unwrap();
        mem.poke_bits(b, &vec![false; bits]).unwrap();

        // Same-shape query loop: first iteration compiles, the rest hit.
        for _ in 0..4 {
            mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
        }
        assert_eq!(mem.plan_cache_stats(), (3, 1));
        // A different shape misses separately.
        mem.bitwise(BitwiseOp::Or, a, Some(b), d).unwrap();
        assert_eq!(mem.plan_cache_stats(), (3, 2));

        // Cached plans are bit-identical to freshly compiled ones.
        assert_eq!(mem.popcount(d).unwrap(), bits);

        let reg = mem.telemetry().unwrap().clone();
        assert_eq!(reg.counter_value("ambit_driver_plan_cache_hits", &[]), Some(3));
        assert_eq!(reg.counter_value("ambit_driver_plan_cache_misses", &[]), Some(2));

        // Freeing a handle evicts every entry referencing it: the stale
        // programs must not bypass unknown-handle validation.
        mem.free(b).unwrap();
        assert!(mem.bitwise(BitwiseOp::And, a, Some(b), d).is_err());
        mem.poke_bits(a, &vec![true; bits]).unwrap();
        mem.bitwise(BitwiseOp::Not, a, None, d).unwrap();
        assert_eq!(mem.plan_cache_stats().0, 3, "no hits after the eviction");
    }

    #[test]
    fn accumulating_ops_in_place() {
        // dst == src1 works: or-accumulate a sequence of vectors.
        let mut mem = memory();
        let bits = mem.row_bits();
        let acc = mem.alloc(bits).unwrap();
        let parts: Vec<_> = (0..3).map(|_| mem.alloc(bits).unwrap()).collect();
        for (i, &p) in parts.iter().enumerate() {
            let data: Vec<bool> = (0..bits).map(|b| b % 3 == i).collect();
            mem.poke_bits(p, &data).unwrap();
            mem.bitwise(BitwiseOp::Or, acc, Some(p), acc).unwrap();
        }
        assert_eq!(mem.popcount(acc).unwrap(), bits);
    }

    /// A full-permutation profile for the tiny geometry whose strongest
    /// subarray is `(1, 1)` (flat 3).
    fn tiny_profile(weak_cells: Vec<Vec<(usize, usize)>>) -> PlacementProfile {
        PlacementProfile {
            order: vec![(1, 1), (0, 0), (0, 1), (1, 0)],
            weak_cells,
            bins: vec![1, 2, 1, 0],
        }
    }

    #[test]
    fn profile_steers_placement_to_strongest_subarray() {
        let mut mem = memory();
        mem.install_profile(tiny_profile(vec![vec![]; 4])).unwrap();
        let bits = mem.row_bits();
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let geometry = *mem.ctrl.geometry();
        for h in [a, b] {
            let chunk = mem.meta(h).unwrap().chunks[0];
            assert_eq!(
                (chunk.bank.flat_index(&geometry), chunk.subarray),
                (1, 1),
                "single-chunk allocations in the default group follow order[0]"
            );
        }
        // Multi-chunk allocations walk the order, not the default stripe.
        let wide = mem.alloc(bits * 3).unwrap();
        let placements: Vec<(usize, usize)> = mem.meta(wide).unwrap().chunks
            [..3]
            .iter()
            .map(|c| (c.bank.flat_index(&geometry), c.subarray))
            .collect();
        assert_eq!(placements, vec![(1, 1), (0, 0), (0, 1)]);
        // Ops still work under profiled placement.
        let d = mem.alloc(bits).unwrap();
        mem.poke_bits(a, &vec![true; bits]).unwrap();
        mem.poke_bits(b, &vec![true; bits]).unwrap();
        mem.bitwise(BitwiseOp::And, a, Some(b), d).unwrap();
        assert_eq!(mem.popcount(d).unwrap(), bits);
        // Bin codes: (1,1) is flat 3 → bin 0; the wide vector also touches
        // flat 0 (bin 1) and flat 1 (bin 2).
        assert_eq!(mem.handle_bin(a).unwrap(), 0);
        assert_eq!(mem.handle_bin(wide).unwrap(), 2);
    }

    #[test]
    fn handle_bin_defaults_to_nominal_without_profile() {
        let mut mem = memory();
        let h = mem.alloc(32).unwrap();
        assert_eq!(mem.handle_bin(h).unwrap(), 1);
        assert!(mem.handle_bin(BitVectorHandle(999)).is_err());
    }

    #[test]
    fn profile_preremaps_weak_rows_at_alloc_time() {
        let mut mem = memory();
        mem.set_telemetry(Registry::default());
        mem.reserve_spare_rows(2).unwrap();
        // Poison the first two data rows of the strongest subarray (1, 1).
        let weak_row_0 = mem.ctrl.layout().data_row(0).unwrap();
        let weak_row_1 = mem.ctrl.layout().data_row(1).unwrap();
        let mut weak = vec![vec![]; 4];
        weak[3] = vec![(weak_row_0, 5), (weak_row_1, 17)];
        mem.install_profile(tiny_profile(weak)).unwrap();

        let bits = mem.row_bits();
        let a = mem.alloc(bits).unwrap(); // lands on d0 → pre-remapped
        let b = mem.alloc(bits).unwrap(); // lands on d1 → pre-remapped
        assert_eq!(mem.bad_rows().len(), 2);
        assert_eq!(mem.spare_rows_free(), 2 * 4 - 2);
        let reg = mem.telemetry().unwrap().clone();
        assert_eq!(
            reg.counter_value("ambit_characterization_preremaps_total", &[]),
            Some(2)
        );
        assert_eq!(
            reg.gauge_value("ambit_characterization_profile_armed", &[]),
            Some(1.0)
        );
        // The remapped rows behave like clean memory.
        let d = mem.alloc(bits).unwrap();
        mem.poke_bits(a, &vec![true; bits]).unwrap();
        mem.poke_bits(b, &vec![true; bits]).unwrap();
        mem.bitwise(BitwiseOp::Xor, a, Some(b), d).unwrap();
        assert_eq!(mem.popcount(d).unwrap(), 0);
    }

    #[test]
    fn preremap_surfaces_spare_exhaustion_at_alloc_not_mid_op() {
        let mut mem = memory();
        mem.reserve_spare_rows(1).unwrap();
        // More weak rows in the strongest subarray than spares.
        let weak_row_0 = mem.ctrl.layout().data_row(0).unwrap();
        let weak_row_1 = mem.ctrl.layout().data_row(1).unwrap();
        let mut weak = vec![vec![]; 4];
        weak[3] = vec![(weak_row_0, 0), (weak_row_1, 0)];
        mem.install_profile(tiny_profile(weak)).unwrap();

        let bits = mem.row_bits();
        let a = mem.alloc(bits).unwrap(); // consumes the only spare
        assert_eq!(
            mem.alloc(bits).unwrap_err(),
            AmbitError::SpareRowsExhausted { bank: 1, subarray: 1 },
            "exhaustion must surface at placement time"
        );
        // The failed allocation was rolled back; the earlier handle and
        // later allocations still work.
        assert_eq!(mem.bad_rows().len(), 1);
        mem.poke_bits(a, &vec![true; bits]).unwrap();
        assert_eq!(mem.popcount(a).unwrap(), bits);
    }

    #[test]
    fn install_profile_validates_shape_and_timing() {
        let reason = |err: AmbitError| match err {
            AmbitError::ProfileRejected { reason } => reason,
            other => panic!("expected ProfileRejected, got {other:?}"),
        };
        // Too-short order.
        let mut mem = memory();
        let mut p = tiny_profile(vec![vec![]; 4]);
        p.order.pop();
        assert!(reason(mem.install_profile(p).unwrap_err()).contains("exactly once"));
        // Duplicate entry.
        let mut p = tiny_profile(vec![vec![]; 4]);
        p.order[1] = (1, 1);
        assert!(reason(mem.install_profile(p).unwrap_err()).contains("twice"));
        // Out-of-geometry entry.
        let mut p = tiny_profile(vec![vec![]; 4]);
        p.order[2] = (5, 0);
        assert!(reason(mem.install_profile(p).unwrap_err()).contains("outside"));
        // Weak cell out of range.
        let mut weak = vec![vec![]; 4];
        weak[0] = vec![(1000, 0)];
        let p = tiny_profile(weak);
        assert!(reason(mem.install_profile(p).unwrap_err()).contains("weak cell"));
        // Bad bin code.
        let mut p = tiny_profile(vec![vec![]; 4]);
        p.bins[0] = 7;
        assert!(reason(mem.install_profile(p).unwrap_err()).contains("bins"));
        // After an allocation it is too late.
        mem.alloc(8).unwrap();
        let p = tiny_profile(vec![vec![]; 4]);
        assert!(reason(mem.install_profile(p).unwrap_err()).contains("before any allocation"));
    }

    mod preremap_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Satellite invariant: pre-remapping a row and then operating
            /// is byte-for-byte identical to the same ops on a clean,
            /// never-remapped device.
            #[test]
            fn preremap_then_op_matches_clean_device(
                seed in 0u64..500,
                bit in 0usize..256,
                op_idx in 0usize..3,
            ) {
                let op = [BitwiseOp::And, BitwiseOp::Or, BitwiseOp::Xor][op_idx];
                let bits = 256; // two chunks on the tiny geometry
                let run = |remap: bool| {
                    let mut mem = memory();
                    mem.reserve_spare_rows(2).unwrap();
                    let a = mem.alloc(bits).unwrap();
                    let b = mem.alloc(bits).unwrap();
                    let d = mem.alloc(bits).unwrap();
                    if remap {
                        mem.remap_bit(a, bit).unwrap();
                    }
                    let mut rng = ChaCha8Rng::seed_from_u64(seed);
                    let da: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
                    let db: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
                    mem.poke_bits(a, &da).unwrap();
                    mem.poke_bits(b, &db).unwrap();
                    mem.bitwise(op, a, Some(b), d).unwrap();
                    (mem.peek_bits(a).unwrap(), mem.peek_bits(d).unwrap())
                };
                prop_assert_eq!(run(true), run(false));
            }
        }
    }
}
