//! Error types for the Ambit accelerator layer.

use std::error::Error as StdError;
use std::fmt;

use ambit_dram::DramError;

/// Errors raised by the Ambit controller, driver, and ISA layers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AmbitError {
    /// The underlying DRAM model rejected a command (protocol or analog
    /// failure).
    Dram(DramError),
    /// A D-group row address was out of range for the subarray layout.
    DataRowOutOfRange {
        /// Offending D-group index.
        index: usize,
        /// Number of D-group addresses per subarray.
        available: usize,
    },
    /// The driver could not find enough free rows to place an allocation.
    OutOfMemory {
        /// Rows requested.
        requested_rows: usize,
        /// Rows still free.
        available_rows: usize,
    },
    /// Two bitvectors participating in one operation have different lengths.
    SizeMismatch {
        /// First operand length in bits.
        left_bits: usize,
        /// Second operand length in bits.
        right_bits: usize,
    },
    /// Operands of an in-DRAM operation are not co-located: chunk `chunk`
    /// of the vectors lives in different subarrays, so RowClone-FPM cannot
    /// move them to the designated rows.
    NotColocated {
        /// Index of the first offending chunk.
        chunk: usize,
    },
    /// A bbop instruction was malformed (unaligned addresses or a size
    /// that is not a multiple of the row size). The CPU must execute the
    /// operation itself (paper Section 5.4.3).
    NotRowAligned {
        /// The offending byte count or address.
        value: usize,
        /// The row size in bytes.
        row_bytes: usize,
    },
    /// An operation that requires two sources was given one, or vice versa.
    WrongOperandCount {
        /// The operation's mnemonic.
        op: &'static str,
        /// Sources expected.
        expected: usize,
        /// Sources provided.
        provided: usize,
    },
    /// A handle referred to a bitvector that does not exist (stale handle).
    UnknownHandle {
        /// The raw handle id.
        id: u64,
    },
    /// An operation tried to overwrite a pre-initialized control row
    /// (C0/C1), which must keep their constant contents.
    ControlRowWrite,
    /// The resilient executor exhausted its retry budget without the
    /// operation's replicas converging, and CPU fallback was disabled.
    RetriesExhausted {
        /// Retries performed before giving up.
        retries: u32,
        /// Suspect bits still disagreeing after the final retry.
        suspect_bits: usize,
    },
    /// A permanent-fault remap was requested but the subarray has no spare
    /// rows left (paper Section 5.5.3 repairs are a finite resource).
    SpareRowsExhausted {
        /// Flat bank index of the exhausted subarray.
        bank: usize,
        /// Subarray index within the bank.
        subarray: usize,
    },
    /// An allocation of zero bits was requested.
    EmptyAllocation,
    /// A batch was submitted with no operations in it.
    EmptyBatch,
    /// Batch dependencies (explicit edges plus handle-inferred hazards)
    /// form a cycle, so no execution order satisfies them.
    DependencyCycle {
        /// Index of an operation on the cycle.
        op: usize,
    },
    /// A batch dependency referenced an [`OpId`](crate::OpId) that does not
    /// belong to the builder it was passed to.
    UnknownOp {
        /// The raw op index.
        id: usize,
    },
    /// A placement profile could not be installed into the driver (wrong
    /// shape for the device geometry, or allocations already exist).
    ProfileRejected {
        /// What was wrong with the profile.
        reason: &'static str,
    },
    /// A job running on the persistent [`ExecutorPool`](crate::ExecutorPool)
    /// panicked. The panic was caught on the worker thread (the pool stays
    /// usable) and its payload is carried here instead of aborting the
    /// process.
    ExecutorPanicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// The boolean microprogram synthesizer rejected its input or produced
    /// a program violating a caller-imposed budget (see
    /// [`synth`](crate::synth)).
    Synthesis {
        /// What the synthesizer objected to.
        detail: String,
    },
}

impl fmt::Display for AmbitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmbitError::Dram(e) => write!(f, "dram: {e}"),
            AmbitError::DataRowOutOfRange { index, available } => {
                write!(f, "data row D{index} out of range ({available} D-group addresses)")
            }
            AmbitError::OutOfMemory {
                requested_rows,
                available_rows,
            } => write!(
                f,
                "out of Ambit memory: {requested_rows} rows requested, {available_rows} free"
            ),
            AmbitError::SizeMismatch {
                left_bits,
                right_bits,
            } => write!(f, "operand size mismatch: {left_bits} vs {right_bits} bits"),
            AmbitError::NotColocated { chunk } => write!(
                f,
                "operands not co-located in the same subarray at chunk {chunk}"
            ),
            AmbitError::NotRowAligned { value, row_bytes } => write!(
                f,
                "{value} is not a multiple of the {row_bytes}-byte row size; CPU must execute this operation"
            ),
            AmbitError::WrongOperandCount {
                op,
                expected,
                provided,
            } => write!(f, "{op} expects {expected} source operand(s), got {provided}"),
            AmbitError::UnknownHandle { id } => write!(f, "unknown bitvector handle {id}"),
            AmbitError::ControlRowWrite => {
                write!(f, "control rows C0/C1 are read-only to operations")
            }
            AmbitError::RetriesExhausted {
                retries,
                suspect_bits,
            } => write!(
                f,
                "retry budget exhausted after {retries} retries with {suspect_bits} suspect bit(s) remaining"
            ),
            AmbitError::SpareRowsExhausted { bank, subarray } => write!(
                f,
                "no spare rows left in bank {bank} subarray {subarray}"
            ),
            AmbitError::EmptyAllocation => write!(f, "cannot allocate an empty bitvector"),
            AmbitError::EmptyBatch => write!(f, "batch contains no operations"),
            AmbitError::DependencyCycle { op } => {
                write!(f, "batch dependencies form a cycle through op {op}")
            }
            AmbitError::UnknownOp { id } => {
                write!(f, "op id {id} does not belong to this batch")
            }
            AmbitError::ProfileRejected { reason } => {
                write!(f, "placement profile rejected: {reason}")
            }
            AmbitError::ExecutorPanicked { message } => {
                write!(f, "executor pool job panicked: {message}")
            }
            AmbitError::Synthesis { detail } => {
                write!(f, "boolean synthesis failed: {detail}")
            }
        }
    }
}

impl StdError for AmbitError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            AmbitError::Dram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DramError> for AmbitError {
    fn from(e: DramError) -> Self {
        AmbitError::Dram(e)
    }
}

/// Convenience alias used throughout the Ambit crate.
pub type Result<T> = std::result::Result<T, AmbitError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let errors = vec![
            AmbitError::Dram(DramError::EmptyActivation),
            AmbitError::DataRowOutOfRange { index: 2000, available: 1006 },
            AmbitError::OutOfMemory { requested_rows: 10, available_rows: 2 },
            AmbitError::SizeMismatch { left_bits: 64, right_bits: 128 },
            AmbitError::NotColocated { chunk: 3 },
            AmbitError::NotRowAligned { value: 100, row_bytes: 8192 },
            AmbitError::WrongOperandCount { op: "and", expected: 2, provided: 1 },
            AmbitError::UnknownHandle { id: 9 },
            AmbitError::RetriesExhausted { retries: 3, suspect_bits: 12 },
            AmbitError::SpareRowsExhausted { bank: 1, subarray: 0 },
            AmbitError::EmptyAllocation,
            AmbitError::EmptyBatch,
            AmbitError::DependencyCycle { op: 4 },
            AmbitError::UnknownOp { id: 7 },
            AmbitError::ProfileRejected { reason: "wrong shape" },
            AmbitError::ExecutorPanicked { message: "boom".into() },
            AmbitError::Synthesis { detail: "no functions".into() },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn dram_errors_convert_and_chain() {
        let e: AmbitError = DramError::EmptyActivation.into();
        assert!(e.source().is_some());
    }
}
