//! Analytic Ambit throughput: the accelerator side of the paper's Figure 9.
//!
//! For a continuous stream of bulk bitwise operations, every row-pair
//! processed costs a fixed command program (Figure 8) whose latency is a
//! function of the AAP/AP counts and the DRAM timing. Each bank sustains an
//! independent pipeline of programs, so (as the paper argues in Section 5.5
//! and assumes in Section 7) throughput scales linearly with both the row
//! size (internal bandwidth) and the number of banks (memory-level
//! parallelism).

use ambit_dram::{AapMode, TimingParams};
use ambit_telemetry::Registry;

use crate::addressing::RowAddress;
use crate::error::Result;
use crate::ops::{command_counts, compile, BitwiseOp};

/// An Ambit throughput configuration: a DRAM module (or 3D stack) running
/// bulk bitwise programs on all banks in parallel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmbitConfig {
    /// Banks operating in parallel.
    pub banks: usize,
    /// Row size in bytes.
    pub row_bytes: usize,
    /// DRAM timing.
    pub timing: TimingParams,
    /// AAP implementation.
    pub mode: AapMode,
}

impl AmbitConfig {
    /// The paper's "Ambit" configuration: a regular DDR3-1600 module with
    /// 8 banks and 8 KB rows.
    pub fn ddr3_module() -> Self {
        AmbitConfig {
            banks: 8,
            row_bytes: 8192,
            timing: TimingParams::ddr3_1600(),
            mode: AapMode::Overlapped,
        }
    }

    /// An Ambit module with SALP: every (bank, subarray) pair is an
    /// independent AAP pipeline, so throughput scales with their product
    /// (the "number of banks or subarrays" parallelism of Section 1).
    pub fn with_salp(banks: usize, subarrays_per_bank: usize) -> Self {
        AmbitConfig {
            banks: banks * subarrays_per_bank,
            ..AmbitConfig::ddr3_module()
        }
    }

    /// The paper's "Ambit-3D" configuration: Ambit integrated into a
    /// 3D-stacked device with HMC-like bank counts (256 banks in the 4 GB
    /// HMC 2.0).
    pub fn hmc_3d() -> Self {
        AmbitConfig {
            banks: 256,
            row_bytes: 8192,
            timing: TimingParams::ddr3_1600(),
            mode: AapMode::Overlapped,
        }
    }

    /// Latency of one command program for `op` on one row set, picoseconds.
    ///
    /// # Errors
    ///
    /// Propagates program-compilation errors (never for the standard ops).
    pub fn op_latency_ps(&self, op: BitwiseOp) -> Result<u64> {
        let src2 = (op.source_count() == 2).then_some(RowAddress::D(1));
        let program = compile(op, RowAddress::D(0), src2, RowAddress::D(2))?;
        let (aaps, aps) = command_counts(&program);
        Ok(aaps as u64 * self.mode.aap_ps(&self.timing) + aps as u64 * self.timing.ap_ps())
    }

    /// Steady-state throughput in bytes of output produced per second,
    /// across all banks.
    ///
    /// # Errors
    ///
    /// Propagates program-compilation errors (never for the standard ops).
    pub fn throughput_bytes_per_s(&self, op: BitwiseOp) -> Result<f64> {
        let latency_s = self.op_latency_ps(op)? as f64 * 1e-12;
        Ok(self.banks as f64 * self.row_bytes as f64 / latency_s)
    }

    /// Throughput in 8-bit giga-operations per second (GOps/s), the unit of
    /// the paper's Figure 9: one "operation" is one output byte.
    ///
    /// # Errors
    ///
    /// Propagates program-compilation errors (never for the standard ops).
    pub fn throughput_gops(&self, op: BitwiseOp) -> Result<f64> {
        Ok(self.throughput_bytes_per_s(op)? / 1e9)
    }

    /// Geometric-mean throughput across the seven Figure 9 operations.
    ///
    /// # Errors
    ///
    /// Propagates program-compilation errors (never for the standard ops).
    pub fn mean_throughput_gops(&self) -> Result<f64> {
        let mut product = 1.0;
        for op in BitwiseOp::FIGURE9_OPS {
            product *= self.throughput_gops(op)?;
        }
        Ok(product.powf(1.0 / BitwiseOp::FIGURE9_OPS.len() as f64))
    }

    /// Exports the configuration's analytic envelope as gauges:
    /// `ambit_config_banks`, `ambit_config_row_bytes`, and per Figure 9
    /// operation `ambit_analytic_throughput_gops{op=...}` and
    /// `ambit_analytic_op_latency_ns{op=...}` — so measured runs can be
    /// compared against the model on one scrape.
    ///
    /// # Errors
    ///
    /// Propagates program-compilation errors (never for the standard ops).
    pub fn export_telemetry(&self, registry: &Registry) -> Result<()> {
        registry
            .gauge("ambit_config_banks", "Banks operating in parallel", &[])
            .set(self.banks as f64);
        registry
            .gauge("ambit_config_row_bytes", "Row size in bytes", &[])
            .set(self.row_bytes as f64);
        for op in BitwiseOp::FIGURE9_OPS {
            let labels = &[("op", op.mnemonic())];
            registry
                .gauge(
                    "ambit_analytic_throughput_gops",
                    "Analytic Figure 9 throughput, 8-bit GOps/s",
                    labels,
                )
                .set(self.throughput_gops(op)?);
            registry
                .gauge(
                    "ambit_analytic_op_latency_ns",
                    "Analytic per-row-pair program latency, nanoseconds",
                    labels,
                )
                .set(self.op_latency_ps(op)? as f64 / 1000.0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_latencies_match_paper_arithmetic() {
        // DDR3-1600 overlapped: AAP 49 ns, AP 45 ns.
        let c = AmbitConfig::ddr3_module();
        assert_eq!(c.op_latency_ps(BitwiseOp::Not).unwrap(), 2 * 49_000);
        assert_eq!(c.op_latency_ps(BitwiseOp::And).unwrap(), 4 * 49_000);
        assert_eq!(c.op_latency_ps(BitwiseOp::Nand).unwrap(), 5 * 49_000);
        assert_eq!(
            c.op_latency_ps(BitwiseOp::Xor).unwrap(),
            5 * 49_000 + 2 * 45_000
        );
    }

    #[test]
    fn throughput_scales_linearly_with_banks() {
        let one = AmbitConfig { banks: 1, ..AmbitConfig::ddr3_module() };
        let eight = AmbitConfig::ddr3_module();
        let r = eight.throughput_gops(BitwiseOp::And).unwrap()
            / one.throughput_gops(BitwiseOp::And).unwrap();
        assert!((r - 8.0).abs() < 1e-9);
    }

    #[test]
    fn and_throughput_order_of_magnitude() {
        // 8 banks × 8 KB / 196 ns ≈ 334 GB/s.
        let gops = AmbitConfig::ddr3_module().throughput_gops(BitwiseOp::And).unwrap();
        assert!((gops - 334.0).abs() < 10.0, "got {gops}");
    }

    #[test]
    fn not_is_fastest_xor_is_slowest() {
        let c = AmbitConfig::ddr3_module();
        let not = c.throughput_gops(BitwiseOp::Not).unwrap();
        let and = c.throughput_gops(BitwiseOp::And).unwrap();
        let xor = c.throughput_gops(BitwiseOp::Xor).unwrap();
        assert!(not > and && and > xor);
    }

    #[test]
    fn ambit_3d_is_an_order_of_magnitude_above_module() {
        let module = AmbitConfig::ddr3_module().mean_throughput_gops().unwrap();
        let stacked = AmbitConfig::hmc_3d().mean_throughput_gops().unwrap();
        assert!((stacked / module - 32.0).abs() < 1e-6, "256/8 banks = 32×");
    }

    #[test]
    fn naive_mode_is_slower() {
        let fast = AmbitConfig::ddr3_module();
        let slow = AmbitConfig { mode: AapMode::Naive, ..fast };
        assert!(
            fast.throughput_gops(BitwiseOp::And).unwrap()
                > 1.5 * slow.throughput_gops(BitwiseOp::And).unwrap()
        );
    }
}
