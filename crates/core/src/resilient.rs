//! Resilient execution layer: detect → retry → remap → degrade.
//!
//! Triple-row activation is an analog operation; under process variation
//! it fails at the rates of the paper's Table 2 (0.29 % per TRA at ±10 %
//! variation, 26.19 % at ±25 %). The paper's answer is a layered defence:
//! TMR as the only bitwise-homomorphic ECC (Section 5.4.5), spare rows for
//! permanent faults (Section 5.5.3), and a CPU fallback path for
//! operations the accelerator cannot run (Section 5.4.3). This module
//! composes those mechanisms into a policy engine:
//!
//! 1. **Detect.** Every operation runs on a [`TmrVector`] triple; a voted
//!    read of the destination flags *suspect* bits (bits where at least
//!    one replica disagrees — for independent per-replica flip rate `p`,
//!    a fraction `≈ 3p` of bits).
//! 2. **Retry.** Suspect results are retried after scrubbing the sources,
//!    under a *command budget*: backoff is paid in AAP primitives, not
//!    wall-clock sleeps, so recovery cost shows up in the timing model.
//! 3. **Repair.** When the estimated flip rate is low, remaining suspect
//!    bits are repaired from CPU-computed ground truth; voting leaves only
//!    silent triple flips (probability `p³` per bit, < 2 × 10⁻⁷ at the
//!    default degrade threshold) uncorrected, and those are exactly what
//!    the repair-from-truth pass removes for flagged bits.
//! 4. **Remap.** Suspect bits that survive a scrub are permanent (scrubs
//!    use the backdoor store path, which transient TRA noise cannot
//!    touch): the faulty replica's row is remapped to a spare row.
//! 5. **Degrade.** If the estimated flip rate exceeds
//!    [`ResilientConfig::degrade_threshold`], or spare rows run out, the
//!    executor falls back to CPU-side software execution (sticky for the
//!    device or the affected vector respectively) instead of erroring.
//!
//! Every operation returns a [`RecoveryReport`] accounting faults seen,
//! retries, remaps, scrubs, CPU fallbacks, and the added latency/energy.

use std::collections::BTreeMap;

use ambit_dram::{DramError, FaultCampaign, RefreshParams, RefreshScheduler, PS_PER_NS};
use ambit_telemetry::{Counter, Event, Gauge, Histogram, Registry, Span};

use crate::driver::{AmbitMemory, BitVectorHandle};
use crate::ecc::{bitwise_tmr, TmrVector};
use crate::error::{AmbitError, Result};
use crate::ops::BitwiseOp;

/// Policy knobs for the resilient executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilientConfig {
    /// Maximum in-DRAM retries per operation before repairing or
    /// degrading.
    pub max_retries: u32,
    /// Retry backoff budget in AAP primitives per operation: a retry is
    /// only attempted while the AAPs already spent stay within budget.
    pub retry_aap_budget: u64,
    /// Scrub every vector after this many operations (0 disables periodic
    /// scrubbing; faults are then only healed on detection).
    pub scrub_interval_ops: u32,
    /// Per-replica per-bit TRA flip rate above which in-DRAM execution is
    /// abandoned for the device (sticky CPU degradation). The decision is
    /// a Poisson-style significance test on the suspect count, so small
    /// vectors do not degrade on sampling noise. Below the threshold,
    /// voting plus repair-from-truth bounds the silent-error probability
    /// per bit by roughly the cube of the rate.
    pub degrade_threshold: f64,
    /// Remap attempts per permanent faulty bit (spare rows can themselves
    /// contain stuck cells).
    pub max_remap_attempts: u32,
    /// Permit graceful degradation to CPU-side execution (paper Section
    /// 5.4.3). When `false`, exhausted retries raise
    /// [`AmbitError::RetriesExhausted`] instead.
    pub allow_cpu_fallback: bool,
    /// Per-reliability-bin multipliers applied to `max_retries` and
    /// `retry_aap_budget`, indexed by the characterization bin of the
    /// operation's vectors (0 strong, 1 nominal, 2 weak; an operation uses
    /// the worst bin among its operands). A strong-bin multiplier below 1
    /// makes healthy subarrays fail fast into the remap path; a weak-bin
    /// multiplier above 1 buys known-marginal subarrays extra retries
    /// before degrading. Without an installed
    /// [`PlacementProfile`](crate::PlacementProfile) every vector is
    /// nominal, so the default `[1.0, 1.0, 1.0]` leaves behavior unchanged.
    pub bin_retry_multipliers: [f64; 3],
}

/// The public name for the executor's tunable recovery policy — one entry
/// point for retry budgets and per-bin de-rating.
pub type ResilienceConfig = ResilientConfig;

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            max_retries: 3,
            retry_aap_budget: 256,
            scrub_interval_ops: 8,
            degrade_threshold: 0.005,
            max_remap_attempts: 4,
            allow_cpu_fallback: true,
            bin_retry_multipliers: [1.0, 1.0, 1.0],
        }
    }
}

/// Handle to a bitvector managed by the [`ResilientExecutor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResilientHandle(u64);

/// Recovery accounting for one operation (or cumulatively, from
/// [`ResilientExecutor::report`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryReport {
    /// Operations executed.
    pub ops: u64,
    /// Suspect bits observed across all voted reads.
    pub faults_detected: u64,
    /// In-DRAM retries performed.
    pub retries: u64,
    /// Permanent-fault row remaps to spare rows.
    pub remaps: u64,
    /// Scrub passes (source, destination, and periodic).
    pub scrubs: u64,
    /// Operations completed by CPU-side software fallback.
    pub cpu_fallbacks: u64,
    /// Bits corrected by voting/scrubbing/repair.
    pub corrected_bits: u64,
    /// Refresh commands issued while catching the campaign clock up.
    pub refreshes: u64,
    /// Retention-decay flips armed by the campaign.
    pub decay_flips: u64,
    /// Latency of recovery work (retry attempts) in picoseconds. Scrubs
    /// and CPU fallback use untimed backdoor accesses and contribute zero.
    pub added_latency_ps: u64,
    /// Energy of recovery work (retry attempts) in nanojoules.
    pub added_energy_nj: f64,
    /// Whether the device is in sticky CPU-degraded mode.
    pub degraded: bool,
}

impl RecoveryReport {
    fn delta(&self, later: &RecoveryReport) -> RecoveryReport {
        RecoveryReport {
            ops: later.ops - self.ops,
            faults_detected: later.faults_detected - self.faults_detected,
            retries: later.retries - self.retries,
            remaps: later.remaps - self.remaps,
            scrubs: later.scrubs - self.scrubs,
            cpu_fallbacks: later.cpu_fallbacks - self.cpu_fallbacks,
            corrected_bits: later.corrected_bits - self.corrected_bits,
            refreshes: later.refreshes - self.refreshes,
            decay_flips: later.decay_flips - self.decay_flips,
            added_latency_ps: later.added_latency_ps - self.added_latency_ps,
            added_energy_nj: later.added_energy_nj - self.added_energy_nj,
            degraded: later.degraded,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tmr: TmrVector,
    /// Vector-level degradation: spares ran out while repairing it, so
    /// operations writing it run on the CPU (voting still masks its bad
    /// replica on reads).
    degraded: bool,
    /// Characterization bin of the vector (worst bin over its three
    /// replicas' subarrays), cached at allocation time; 1 (nominal) when no
    /// placement profile is installed.
    bin: u8,
}

enum AttemptOutcome {
    /// The destination holds correct data (possibly after repair).
    Done,
    /// In-DRAM execution cannot or should not complete; fall back to CPU.
    Fallback { retries: u32, suspects: usize },
}

/// Fault-tolerant front end over [`AmbitMemory`].
///
/// # Examples
///
/// ```
/// use ambit_core::{BitwiseOp, ResilientConfig, ResilientExecutor};
/// use ambit_dram::{AapMode, DramGeometry, TimingParams};
///
/// let mut exec = ResilientExecutor::new(
///     ambit_core::AmbitMemory::new(
///         DramGeometry::tiny(),
///         TimingParams::ddr3_1600(),
///         AapMode::Overlapped,
///     ),
///     ResilientConfig::default(),
/// );
/// let bits = exec.memory().row_bits();
/// let a = exec.alloc(bits)?;
/// let b = exec.alloc(bits)?;
/// let out = exec.alloc(bits)?;
/// exec.write(a, &vec![true; bits])?;
/// exec.write(b, &vec![false; bits])?;
/// let report = exec.bitwise(BitwiseOp::Or, a, Some(b), out)?;
/// assert_eq!(report.ops, 1);
/// assert!(exec.read(out)?.iter().all(|&v| v));
/// # Ok::<(), ambit_core::AmbitError>(())
/// ```
#[derive(Debug)]
pub struct ResilientExecutor {
    mem: AmbitMemory,
    cfg: ResilientConfig,
    campaign: Option<FaultCampaign>,
    refresh: RefreshScheduler,
    vectors: BTreeMap<u64, Entry>,
    next_id: u64,
    ops_since_scrub: u32,
    /// Device-level sticky degradation: the observed TRA flip rate was too
    /// high for voting to bound the silent-error probability.
    degraded: bool,
    report: RecoveryReport,
    telemetry: Option<ResilientTelemetry>,
}

/// Cached telemetry handles mirroring [`RecoveryReport`] as counters, plus
/// recovery-path histograms and a per-operation span.
#[derive(Debug)]
struct ResilientTelemetry {
    registry: Registry,
    ops: Counter,
    faults_detected: Counter,
    retries: Counter,
    remaps: Counter,
    scrubs: Counter,
    cpu_fallbacks: Counter,
    corrected_bits: Counter,
    refreshes: Counter,
    decay_flips: Counter,
    degraded: Gauge,
    /// Operations whose retry budget was de-rated (multiplier ≠ 1) by the
    /// characterization bin of their vectors.
    derated_ops: Counter,
    /// Wall interval of operations that detected at least one suspect bit,
    /// simulated nanoseconds.
    detection_latency_ns: Histogram,
    /// Added latency of retry attempts per operation, simulated
    /// nanoseconds.
    recovery_latency_ns: Histogram,
}

impl ResilientTelemetry {
    fn new(registry: Registry) -> Self {
        let c = |name: &str, help: &str| registry.counter(name, help, &[]);
        ResilientTelemetry {
            ops: c(
                "ambit_resilient_ops_total",
                "Operations executed by the resilient executor",
            ),
            faults_detected: c(
                "ambit_resilient_faults_detected_total",
                "Suspect bits observed across voted reads",
            ),
            retries: c(
                "ambit_resilient_retries_total",
                "In-DRAM retries performed",
            ),
            remaps: c(
                "ambit_resilient_remaps_total",
                "Permanent-fault row remaps to spare rows",
            ),
            scrubs: c(
                "ambit_resilient_scrubs_total",
                "Scrub passes (source, destination, and periodic)",
            ),
            cpu_fallbacks: c(
                "ambit_resilient_cpu_fallbacks_total",
                "Operations completed by CPU-side software fallback",
            ),
            corrected_bits: c(
                "ambit_resilient_corrected_bits_total",
                "Bits corrected by voting, scrubbing, or repair",
            ),
            refreshes: c(
                "ambit_resilient_refreshes_total",
                "Refresh commands issued while catching the campaign clock up",
            ),
            decay_flips: c(
                "ambit_resilient_decay_flips_total",
                "Retention-decay flips armed by the fault campaign",
            ),
            degraded: registry.gauge(
                "ambit_resilient_degraded",
                "1 when the device has degraded to sticky CPU-only execution",
                &[],
            ),
            derated_ops: c(
                "ambit_characterization_derated_ops_total",
                "Operations whose retry budget was de-rated by their characterization bin",
            ),
            detection_latency_ns: registry.histogram(
                "ambit_fault_detection_latency_ns",
                "Wall interval of operations that detected suspect bits, simulated ns",
                &[],
                &[200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0, 12800.0, 25600.0, 51200.0],
            ),
            recovery_latency_ns: registry.histogram(
                "ambit_recovery_latency_ns",
                "Added latency of retry attempts per operation, simulated ns",
                &[],
                &[100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0, 12800.0, 25600.0],
            ),
            registry,
        }
    }

    /// Brings every counter up to the cumulative report (counters are
    /// monotonic, so the sync adds the difference) and mirrors the sticky
    /// degradation flag into the gauge.
    fn sync(&self, report: &RecoveryReport) {
        let catch_up = |c: &Counter, v: u64| {
            let cur = c.get();
            if v > cur {
                c.add(v - cur);
            }
        };
        catch_up(&self.ops, report.ops);
        catch_up(&self.faults_detected, report.faults_detected);
        catch_up(&self.retries, report.retries);
        catch_up(&self.remaps, report.remaps);
        catch_up(&self.scrubs, report.scrubs);
        catch_up(&self.cpu_fallbacks, report.cpu_fallbacks);
        catch_up(&self.corrected_bits, report.corrected_bits);
        catch_up(&self.refreshes, report.refreshes);
        catch_up(&self.decay_flips, report.decay_flips);
        self.degraded
            .set(if report.degraded { 1.0 } else { 0.0 });
    }

    /// Records the span and latency histograms for one completed
    /// operation, given its report delta and wall interval.
    fn record_op(
        &self,
        mnemonic: &'static str,
        delta: &RecoveryReport,
        start_ns: u64,
        end_ns: u64,
    ) {
        if delta.faults_detected > 0 {
            self.detection_latency_ns
                .observe(end_ns.saturating_sub(start_ns) as f64);
        }
        if delta.added_latency_ps > 0 {
            self.recovery_latency_ns
                .observe(delta.added_latency_ps as f64 / PS_PER_NS as f64);
        }
        self.registry.record_span(
            Span::new("resilient.op", start_ns, end_ns)
                .attr("op", mnemonic)
                .attr("faults_detected", delta.faults_detected)
                .attr("retries", delta.retries)
                .attr("remaps", delta.remaps)
                .attr("cpu_fallbacks", delta.cpu_fallbacks)
                .attr("degraded", delta.degraded),
        );
    }
}

impl ResilientExecutor {
    /// Wraps an Ambit memory with the default refresh schedule and no
    /// fault campaign.
    pub fn new(mem: AmbitMemory, cfg: ResilientConfig) -> Self {
        ResilientExecutor {
            mem,
            cfg,
            campaign: None,
            refresh: RefreshScheduler::new(RefreshParams::ddr3_4gb()),
            vectors: BTreeMap::new(),
            next_id: 0,
            ops_since_scrub: 0,
            degraded: false,
            report: RecoveryReport::default(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry registry: every [`RecoveryReport`] field is
    /// mirrored into an `ambit_resilient_*` counter, the sticky degradation
    /// flag into a gauge, detection/recovery latencies into histograms, and
    /// each operation records a `resilient.op` span. The registry is also
    /// forwarded to the driver and controller, so one registry observes the
    /// whole stack.
    pub fn set_telemetry(&mut self, registry: Registry) {
        self.mem.set_telemetry(registry.clone());
        self.telemetry = Some(ResilientTelemetry::new(registry));
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// Current simulated time in nanoseconds (for event timestamps).
    fn now_ns(&self) -> u64 {
        self.mem.now_ps() / PS_PER_NS
    }

    /// Emits a recovery-path event if telemetry is attached.
    fn emit_event(&self, event: Event) {
        if let Some(tel) = &self.telemetry {
            tel.registry.record_event(event);
        }
    }

    /// Wraps an Ambit memory and applies a fault campaign to it: stuck
    /// cells are injected, per-subarray TRA rates set, and retention decay
    /// armed on every operation as refresh windows elapse.
    ///
    /// # Errors
    ///
    /// Propagates campaign application errors (geometry mismatch).
    pub fn with_campaign(
        mem: AmbitMemory,
        cfg: ResilientConfig,
        campaign: FaultCampaign,
    ) -> Result<Self> {
        let mut exec = ResilientExecutor::new(mem, cfg);
        exec.mem.apply_campaign(&campaign)?;
        exec.campaign = Some(campaign);
        Ok(exec)
    }

    /// The wrapped memory (read-only).
    pub fn memory(&self) -> &AmbitMemory {
        &self.mem
    }

    /// Mutable access to the wrapped memory, for configuration and tests.
    pub fn memory_mut(&mut self) -> &mut AmbitMemory {
        &mut self.mem
    }

    /// Cumulative recovery accounting since construction.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Whether the executor has degraded to CPU-only execution.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The raw driver handles of the vector's three replicas — for
    /// fault-injection campaigns that target specific replicas.
    ///
    /// # Errors
    ///
    /// [`AmbitError::UnknownHandle`] for stale handles.
    pub fn replicas(&mut self, handle: ResilientHandle) -> Result<[BitVectorHandle; 3]> {
        Ok(self.entry(handle)?.tmr.replicas())
    }

    /// Allocates a TMR-protected bitvector.
    ///
    /// # Errors
    ///
    /// [`AmbitError::EmptyAllocation`] for zero bits; out-of-memory if the
    /// device cannot hold three replicas.
    pub fn alloc(&mut self, bits: usize) -> Result<ResilientHandle> {
        let tmr = TmrVector::alloc(&mut self.mem, bits)?;
        let mut bin = 0u8;
        for &replica in tmr.replicas().iter() {
            bin = bin.max(self.mem.handle_bin(replica)?);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.vectors.insert(
            id,
            Entry {
                tmr,
                degraded: false,
                bin,
            },
        );
        Ok(ResilientHandle(id))
    }

    /// Writes `data` to all replicas of the vector.
    ///
    /// # Errors
    ///
    /// [`AmbitError::UnknownHandle`] or a size mismatch from the driver.
    pub fn write(&mut self, handle: ResilientHandle, data: &[bool]) -> Result<()> {
        let tmr = self.entry(handle)?.tmr;
        tmr.write(&mut self.mem, data)
    }

    /// Voted read. Detected corruption is healed in place: the vector is
    /// scrubbed, and bits that survive the scrub are treated as permanent
    /// faults and remapped to spare rows.
    ///
    /// # Errors
    ///
    /// [`AmbitError::UnknownHandle`] or driver errors.
    pub fn read(&mut self, handle: ResilientHandle) -> Result<Vec<bool>> {
        let entry = self.entry(handle)?;
        let tmr = entry.tmr;
        let read = tmr.read_voted(&self.mem)?;
        if !read.corrected.is_empty() {
            self.report.faults_detected += read.corrected.len() as u64;
            self.heal(handle)?;
        }
        if let Some(tel) = &self.telemetry {
            tel.sync(&self.report);
        }
        Ok(read.data)
    }

    /// Executes `dst = op(a, b)` with the full detect → retry → remap →
    /// degrade pipeline, returning the recovery accounting for this
    /// operation alone. Structurally impossible in-DRAM operations
    /// (operands not co-located, not row-aligned) fall back to the CPU
    /// path silently, as the paper's driver does.
    ///
    /// # Errors
    ///
    /// * [`AmbitError::RetriesExhausted`] if retries run out and
    ///   [`ResilientConfig::allow_cpu_fallback`] is `false`.
    /// * [`AmbitError::UnknownHandle`], size mismatches, and other driver
    ///   errors that no amount of retrying can fix.
    pub fn bitwise(
        &mut self,
        op: BitwiseOp,
        a: ResilientHandle,
        b: Option<ResilientHandle>,
        dst: ResilientHandle,
    ) -> Result<RecoveryReport> {
        let before = self.report;
        self.tick();
        let start_ns = self.now_ns();

        let ea = *self.entry(a)?;
        let eb = match b {
            Some(h) => Some(*self.entry(h)?),
            None => None,
        };
        let ed = *self.entry(dst)?;
        let operand_degraded =
            ea.degraded || ed.degraded || eb.as_ref().is_some_and(|e| e.degraded);

        // When `dst` aliases a source, a failed in-DRAM attempt overwrites
        // that source, so every recovery path (retry, repair-from-truth,
        // CPU fallback) must start from the pre-op operand value, not the
        // clobbered one. Snapshot the voted operand up front in that case.
        let a_snap = if ea.tmr.replicas() == ed.tmr.replicas() {
            Some(ea.tmr.read_voted(&self.mem)?.data)
        } else {
            None
        };
        let b_snap = match &eb {
            Some(e) if e.tmr.replicas() == ed.tmr.replicas() => {
                Some(e.tmr.read_voted(&self.mem)?.data)
            }
            _ => None,
        };

        // De-rate the retry budget by the operation's characterization bin
        // (the worst bin among its vectors): strong subarrays fail fast to
        // the remap path, known-weak subarrays get extra retries.
        let op_bin = ea
            .bin
            .max(ed.bin)
            .max(eb.as_ref().map_or(0, |e| e.bin))
            .min(2) as usize;
        let multiplier = self.cfg.bin_retry_multipliers[op_bin].max(0.0);
        let max_retries = (self.cfg.max_retries as f64 * multiplier).round() as u32;
        let aap_budget = (self.cfg.retry_aap_budget as f64 * multiplier).round() as u64;
        if multiplier != 1.0 {
            if let Some(tel) = &self.telemetry {
                tel.derated_ops.inc();
            }
        }

        let mut completed = false;
        if !self.degraded && !operand_degraded {
            match self.try_in_dram(
                op,
                &ea.tmr,
                eb.as_ref().map(|e| &e.tmr),
                &ed.tmr,
                a_snap.as_deref(),
                b_snap.as_deref(),
                max_retries,
                aap_budget,
            )? {
                AttemptOutcome::Done => completed = true,
                AttemptOutcome::Fallback { retries, suspects } => {
                    if !self.cfg.allow_cpu_fallback {
                        return Err(AmbitError::RetriesExhausted {
                            retries,
                            suspect_bits: suspects,
                        });
                    }
                }
            }
        }
        if !completed {
            let truth = self.cpu_compute(
                op,
                &ea.tmr,
                eb.as_ref().map(|e| &e.tmr),
                a_snap.as_deref(),
                b_snap.as_deref(),
            )?;
            ed.tmr.write(&mut self.mem, &truth)?;
            self.report.cpu_fallbacks += 1;
        }

        // Classify any residual destination disagreement: what survives a
        // scrub is permanent and gets remapped.
        self.heal(dst)?;
        self.report.ops += 1;
        self.ops_since_scrub += 1;
        if self.cfg.scrub_interval_ops > 0 && self.ops_since_scrub >= self.cfg.scrub_interval_ops
        {
            self.ops_since_scrub = 0;
            self.scrub_all()?;
        }
        let delta = before.delta(&self.report);
        if let Some(tel) = &self.telemetry {
            tel.sync(&self.report);
            tel.record_op(op.mnemonic(), &delta, start_ns, self.mem.now_ps() / PS_PER_NS);
        }
        Ok(delta)
    }

    /// Scrubs every vector now (also runs periodically per
    /// [`ResilientConfig::scrub_interval_ops`]). Returns bits repaired.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn scrub_all(&mut self) -> Result<u64> {
        let tmrs: Vec<TmrVector> = self.vectors.values().map(|e| e.tmr).collect();
        let mut repaired = 0u64;
        for tmr in tmrs {
            repaired += tmr.scrub(&mut self.mem)? as u64;
            self.report.scrubs += 1;
        }
        self.report.corrected_bits += repaired;
        if let Some(tel) = &self.telemetry {
            tel.sync(&self.report);
        }
        Ok(repaired)
    }

    fn entry(&mut self, handle: ResilientHandle) -> Result<&mut Entry> {
        self.vectors
            .get_mut(&handle.0)
            .ok_or(AmbitError::UnknownHandle { id: handle.0 })
    }

    /// Advances the fault-campaign clock (refresh + retention decay).
    fn tick(&mut self) {
        if let Some(campaign) = self.campaign.as_mut() {
            let tick = self.mem.campaign_tick(campaign, &mut self.refresh);
            self.report.refreshes += tick.refreshes;
            self.report.decay_flips += tick.decay_flips;
        } else {
            self.report.refreshes += self
                .refresh
                .catch_up(self.mem.controller_mut().timer_mut());
        }
    }

    /// One in-DRAM execution attempt loop: TMR op, voted verification,
    /// budgeted retries with source scrubs, then repair-from-truth or
    /// degradation.
    ///
    /// `a_snap` / `b_snap` carry the pre-op voted value of a source that
    /// aliases `dst` (see [`ResilientExecutor::bitwise`]); retries restore
    /// such a source from its snapshot instead of scrubbing it in place.
    /// `max_retries` and `aap_budget` are the configured limits already
    /// de-rated by the operation's characterization bin.
    #[allow(clippy::too_many_arguments)]
    fn try_in_dram(
        &mut self,
        op: BitwiseOp,
        a: &TmrVector,
        b: Option<&TmrVector>,
        dst: &TmrVector,
        a_snap: Option<&[bool]>,
        b_snap: Option<&[bool]>,
        max_retries: u32,
        aap_budget: u64,
    ) -> Result<AttemptOutcome> {
        let bits = dst.len_bits();
        let mut retries = 0u32;
        let mut aaps_spent = 0u64;
        loop {
            let first_attempt = retries == 0;
            let receipt = match bitwise_tmr(&mut self.mem, op, a, b, dst) {
                Ok(r) => r,
                // Structural impossibility: the paper's driver executes
                // these on the CPU (Section 5.4.3).
                Err(AmbitError::NotColocated { .. }) | Err(AmbitError::NotRowAligned { .. }) => {
                    return Ok(AttemptOutcome::Fallback {
                        retries,
                        suspects: 0,
                    });
                }
                // A stale operand row: scrubbing rewrites (and thereby
                // refreshes) the operands, then the op is retried.
                Err(AmbitError::Dram(DramError::RetentionViolation { .. }))
                    if retries < max_retries =>
                {
                    retries += 1;
                    self.report.retries += 1;
                    self.emit_event(
                        Event::new("resilient.retry", self.now_ns())
                            .attr("cause", "retention")
                            .attr("attempt", retries as u64),
                    );
                    self.scrub_sources(a, b, a_snap, b_snap)?;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let last_attempt_aaps = receipt.aaps as u64;
            if !first_attempt {
                // Only recovery work counts as "added" cost; the first
                // attempt is the operation's baseline.
                self.report.added_latency_ps += receipt.latency_ps();
                self.report.added_energy_nj += receipt.energy_nj;
            }
            aaps_spent += last_attempt_aaps;

            let read = dst.read_voted(&self.mem)?;
            let suspects = read.corrected.len();
            if suspects == 0 {
                return Ok(AttemptOutcome::Done);
            }
            self.report.faults_detected += suspects as u64;

            // Each independently-flipped bit disagrees in one replica, so
            // at the threshold rate the expected suspect count is
            // 3 · threshold · bits. Degrade only on a statistically clear
            // excess (mean + 3σ + slack), so small vectors don't trip on
            // Poisson noise.
            let expected_at_threshold = 3.0 * self.cfg.degrade_threshold * bits as f64;
            let degrade_bound = expected_at_threshold + 3.0 * expected_at_threshold.sqrt() + 3.0;
            let budget_ok = aaps_spent + last_attempt_aaps <= aap_budget;
            if retries < max_retries && budget_ok {
                retries += 1;
                self.report.retries += 1;
                self.emit_event(
                    Event::new("resilient.retry", self.now_ns())
                        .attr("cause", "suspects")
                        .attr("suspects", suspects)
                        .attr("attempt", retries as u64),
                );
                // Backoff in commands: scrub the sources so the retry
                // starts from consistent replicas.
                self.scrub_sources(a, b, a_snap, b_snap)?;
                continue;
            }

            if suspects as f64 > degrade_bound {
                // Too unreliable for voting to bound silent errors:
                // degrade the whole device to CPU execution (sticky).
                self.degraded = true;
                self.report.degraded = true;
                self.emit_event(
                    Event::new("resilient.degrade", self.now_ns())
                        .attr("suspects", suspects)
                        .attr("bound", degrade_bound),
                );
                return Ok(AttemptOutcome::Fallback { retries, suspects });
            }

            // Low rate: repair the flagged bits from ground truth and
            // accept. Unflagged bits are wrong only if all three replicas
            // flipped identically — probability `rate³` per bit.
            let truth = self.cpu_compute(op, a, b, a_snap, b_snap)?;
            let mut data = read.data;
            for &i in &read.corrected {
                data[i] = truth[i];
            }
            dst.write(&mut self.mem, &data)?;
            self.report.scrubs += 1;
            self.report.corrected_bits += suspects as u64;
            return Ok(AttemptOutcome::Done);
        }
    }

    /// Scrubs both sources before a retry. A source that aliases the
    /// destination (snapshot present) holds the previous attempt's result,
    /// so it is restored from its pre-op snapshot instead of scrubbed.
    fn scrub_sources(
        &mut self,
        a: &TmrVector,
        b: Option<&TmrVector>,
        a_snap: Option<&[bool]>,
        b_snap: Option<&[bool]>,
    ) -> Result<()> {
        let mut repaired = match a_snap {
            Some(data) => {
                a.write(&mut self.mem, data)?;
                0
            }
            None => a.scrub(&mut self.mem)?,
        };
        self.report.scrubs += 1;
        if let Some(b) = b {
            repaired += match b_snap {
                Some(data) => {
                    b.write(&mut self.mem, data)?;
                    0
                }
                None => b.scrub(&mut self.mem)?,
            };
            self.report.scrubs += 1;
        }
        self.report.corrected_bits += repaired as u64;
        Ok(())
    }

    /// Computes the operation CPU-side from the voted source values, using
    /// the pre-op snapshot for any source that aliases the destination.
    fn cpu_compute(
        &self,
        op: BitwiseOp,
        a: &TmrVector,
        b: Option<&TmrVector>,
        a_snap: Option<&[bool]>,
        b_snap: Option<&[bool]>,
    ) -> Result<Vec<bool>> {
        let va = match a_snap {
            Some(data) => data.to_vec(),
            None => a.read_voted(&self.mem)?.data,
        };
        let vb = match (b, b_snap) {
            (Some(_), Some(data)) => Some(data.to_vec()),
            (Some(b), None) => Some(b.read_voted(&self.mem)?.data),
            (None, _) => None,
        };
        Ok((0..va.len())
            .map(|i| {
                let x = va[i] as u64;
                let y = vb.as_ref().map_or(0, |v| v[i] as u64);
                op.apply_words(x, y) & 1 == 1
            })
            .collect())
    }

    /// Scrub-then-classify: disagreement that survives a scrub is a
    /// permanent fault (the scrub path bypasses TRA entirely), and the
    /// faulty replica's row is remapped to a spare. When spares run out
    /// the vector is marked degraded instead of erroring.
    fn heal(&mut self, handle: ResilientHandle) -> Result<()> {
        let tmr = self.entry(handle)?.tmr;
        if tmr.read_voted(&self.mem)?.corrected.is_empty() {
            return Ok(());
        }
        let repaired = tmr.scrub(&mut self.mem)?;
        self.report.scrubs += 1;
        self.report.corrected_bits += repaired as u64;
        let persistent = tmr.read_voted(&self.mem)?.corrected;
        for bit in persistent {
            if !self.remap_faulty_bit(tmr, bit)? {
                self.entry(handle)?.degraded = true;
            }
        }
        Ok(())
    }

    /// Remaps whichever replica disagrees at `bit` until the bit votes
    /// cleanly or attempts run out. Returns `false` if spare rows are
    /// exhausted (the caller degrades the vector).
    fn remap_faulty_bit(&mut self, tmr: TmrVector, bit: usize) -> Result<bool> {
        let replicas = tmr.replicas();
        for _ in 0..self.cfg.max_remap_attempts {
            let values: Vec<bool> = replicas
                .iter()
                .map(|&r| Ok(self.mem.peek_bits(r)?[bit]))
                .collect::<Result<_>>()?;
            let voted = values.iter().filter(|&&v| v).count() >= 2;
            let Some(faulty) = (0..3).find(|&i| values[i] != voted) else {
                return Ok(true); // a spare took the write; bit is clean
            };
            match self.mem.remap_bit(replicas[faulty], bit) {
                Ok(()) => {
                    self.report.remaps += 1;
                    self.emit_event(
                        Event::new("resilient.remap", self.now_ns())
                            .attr("bit", bit)
                            .attr("replica", faulty as u64),
                    );
                    // The spare row inherited the old (faulty) contents;
                    // rewrite the voted value through the new mapping.
                    let healed = tmr.scrub(&mut self.mem)?;
                    self.report.scrubs += 1;
                    self.report.corrected_bits += healed as u64;
                }
                Err(AmbitError::SpareRowsExhausted { .. }) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        // Attempts exhausted (e.g. stuck spares): give up on remapping.
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, CampaignConfig, CellFault, DramGeometry, TimingParams};

    fn memory() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    fn pattern(bits: usize, stride: usize) -> Vec<bool> {
        (0..bits).map(|i| i % stride == 0).collect()
    }

    fn expected(op: BitwiseOp, a: &[bool], b: &[bool]) -> Vec<bool> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| op.apply_words(x as u64, y as u64) & 1 == 1)
            .collect()
    }

    #[test]
    fn clean_device_runs_without_recovery() {
        let mut exec = ResilientExecutor::new(memory(), ResilientConfig::default());
        let bits = exec.memory().row_bits();
        let (a, b, out) = (
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
        );
        let da = pattern(bits, 2);
        let db = pattern(bits, 3);
        exec.write(a, &da).unwrap();
        exec.write(b, &db).unwrap();
        let report = exec.bitwise(BitwiseOp::Xor, a, Some(b), out).unwrap();
        assert_eq!(exec.read(out).unwrap(), expected(BitwiseOp::Xor, &da, &db));
        assert_eq!(report.retries, 0);
        assert_eq!(report.cpu_fallbacks, 0);
        assert_eq!(report.remaps, 0);
        assert_eq!(report.added_latency_ps, 0);
        assert!(!report.degraded);
    }

    #[test]
    fn transient_faults_are_retried_and_result_is_correct() {
        let mut mem = memory();
        mem.set_tra_fault_rate(0.003).unwrap(); // Table 2 ±10 %ish
        let mut exec = ResilientExecutor::new(mem, ResilientConfig::default());
        let bits = exec.memory().row_bits();
        let (a, b, out) = (
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
        );
        let da = pattern(bits, 2);
        let db = pattern(bits, 5);
        exec.write(a, &da).unwrap();
        exec.write(b, &db).unwrap();
        let mut total = RecoveryReport::default();
        for _ in 0..16 {
            let r = exec.bitwise(BitwiseOp::And, a, Some(b), out).unwrap();
            total.retries += r.retries;
            total.faults_detected += r.faults_detected;
            assert_eq!(
                exec.read(out).unwrap(),
                expected(BitwiseOp::And, &da, &db),
                "resilient AND must be exact despite transient TRA faults"
            );
        }
        assert!(
            total.faults_detected > 0,
            "at 0.3 % per TRA over 16 ops some faults should fire"
        );
        assert!(!exec.is_degraded());
    }

    #[test]
    fn catastrophic_rate_degrades_to_cpu_and_stays_correct() {
        let mut mem = memory();
        mem.set_tra_fault_rate(0.26).unwrap(); // Table 2 ±25 %
        let mut exec = ResilientExecutor::new(mem, ResilientConfig::default());
        let bits = exec.memory().row_bits();
        let (a, b, out) = (
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
        );
        let da = pattern(bits, 3);
        let db = pattern(bits, 4);
        exec.write(a, &da).unwrap();
        exec.write(b, &db).unwrap();
        let report = exec.bitwise(BitwiseOp::Or, a, Some(b), out).unwrap();
        assert!(report.degraded, "26 % flip rate must trigger degradation");
        assert_eq!(report.cpu_fallbacks, 1);
        assert_eq!(exec.read(out).unwrap(), expected(BitwiseOp::Or, &da, &db));
        // Subsequent ops short-circuit to the CPU path.
        let r2 = exec.bitwise(BitwiseOp::Xor, a, Some(b), out).unwrap();
        assert_eq!(r2.retries, 0);
        assert_eq!(r2.cpu_fallbacks, 1);
        assert_eq!(exec.read(out).unwrap(), expected(BitwiseOp::Xor, &da, &db));
    }

    #[test]
    fn fallback_disabled_surfaces_retries_exhausted() {
        let mut mem = memory();
        mem.set_tra_fault_rate(0.26).unwrap();
        let cfg = ResilientConfig {
            allow_cpu_fallback: false,
            ..ResilientConfig::default()
        };
        let mut exec = ResilientExecutor::new(mem, cfg);
        let bits = exec.memory().row_bits();
        let (a, b, out) = (
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
        );
        exec.write(a, &pattern(bits, 2)).unwrap();
        exec.write(b, &pattern(bits, 3)).unwrap();
        let err = exec.bitwise(BitwiseOp::And, a, Some(b), out).unwrap_err();
        assert!(matches!(err, AmbitError::RetriesExhausted { .. }), "{err}");
    }

    #[test]
    fn stuck_cell_is_classified_permanent_and_remapped() {
        let mut mem = memory();
        mem.reserve_spare_rows(2).unwrap();
        let mut exec = ResilientExecutor::new(mem, ResilientConfig::default());
        let bits = exec.memory().row_bits();
        let (a, b, out) = (
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
        );
        let da = vec![true; bits];
        let db = pattern(bits, 2);
        exec.write(a, &da).unwrap();
        exec.write(b, &db).unwrap();
        // Stick a bit of the destination's replica 0 at the wrong value.
        let victim = {
            let tmr = exec.vectors.get(&out.0).unwrap().tmr;
            tmr.replicas()[0]
        };
        exec.memory_mut()
            .inject_fault(victim, 1, CellFault::StuckAtOne)
            .unwrap();
        let report = exec.bitwise(BitwiseOp::And, a, Some(b), out).unwrap();
        // bit 1 of AND(1..., 101010...) is 0; stuck-at-1 disagrees, the
        // scrub can't fix it, so it must have been remapped.
        assert!(report.remaps >= 1, "stuck cell should be remapped: {report:?}");
        assert_eq!(exec.read(out).unwrap(), expected(BitwiseOp::And, &da, &db));
        assert_eq!(exec.memory().bad_rows().len(), report.remaps as usize);
        // After the remap the fault is gone for good.
        let r2 = exec.bitwise(BitwiseOp::And, a, Some(b), out).unwrap();
        assert_eq!(r2.remaps, 0);
        assert_eq!(exec.read(out).unwrap(), expected(BitwiseOp::And, &da, &db));
    }

    #[test]
    fn spare_exhaustion_degrades_vector_not_errors() {
        let mut exec = ResilientExecutor::new(memory(), ResilientConfig::default());
        let bits = exec.memory().row_bits();
        let (a, b, out) = (
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
        );
        let da = vec![true; bits];
        let db = pattern(bits, 2);
        exec.write(a, &da).unwrap();
        exec.write(b, &db).unwrap();
        let victim = exec.vectors.get(&out.0).unwrap().tmr.replicas()[0];
        exec.memory_mut()
            .inject_fault(victim, 1, CellFault::StuckAtOne)
            .unwrap();
        // No spare rows were reserved, so remapping must fail — gracefully.
        let report = exec.bitwise(BitwiseOp::And, a, Some(b), out).unwrap();
        assert_eq!(report.remaps, 0);
        assert_eq!(exec.read(out).unwrap(), expected(BitwiseOp::And, &da, &db));
        assert!(exec.vectors.get(&out.0).unwrap().degraded);
        // Later ops on the degraded vector run on the CPU but stay exact.
        let r2 = exec.bitwise(BitwiseOp::Or, a, Some(b), out).unwrap();
        assert_eq!(r2.cpu_fallbacks, 1);
        assert_eq!(exec.read(out).unwrap(), expected(BitwiseOp::Or, &da, &db));
    }

    #[test]
    fn campaign_decay_is_ticked_through_ops() {
        let geometry = DramGeometry::tiny();
        let campaign = FaultCampaign::plan(
            CampaignConfig {
                seed: 42,
                base_tra_rate: 0.0,
                weak_cells_per_subarray: 4,
                decay_probability: 1.0,
                first_eligible_row: 8,
                ..CampaignConfig::default()
            },
            &geometry,
        )
        .unwrap();
        let mem = AmbitMemory::new(geometry, TimingParams::ddr3_1600(), AapMode::Overlapped);
        let mut exec =
            ResilientExecutor::with_campaign(mem, ResilientConfig::default(), campaign).unwrap();
        let bits = exec.memory().row_bits();
        let (a, out) = (exec.alloc(bits).unwrap(), exec.alloc(bits).unwrap());
        exec.write(a, &pattern(bits, 2)).unwrap();
        // Run enough timed ops to cross refresh intervals (tREFI 7.8 µs,
        // each TMR NOT ≈ 0.3 µs) and observe decay flips being armed.
        let mut saw_refresh = false;
        for _ in 0..200 {
            exec.bitwise(BitwiseOp::Not, a, None, out).unwrap();
            if exec.report().refreshes > 0 {
                saw_refresh = true;
                break;
            }
        }
        assert!(saw_refresh, "ops should advance time past a refresh window");
        assert_eq!(exec.read(a).unwrap(), pattern(bits, 2), "reads self-heal");
    }

    #[test]
    fn per_op_report_is_a_delta_not_cumulative() {
        let mut exec = ResilientExecutor::new(memory(), ResilientConfig::default());
        let bits = exec.memory().row_bits();
        let (a, out) = (exec.alloc(bits).unwrap(), exec.alloc(bits).unwrap());
        exec.write(a, &pattern(bits, 2)).unwrap();
        let r1 = exec.bitwise(BitwiseOp::Not, a, None, out).unwrap();
        let r2 = exec.bitwise(BitwiseOp::Not, a, None, out).unwrap();
        assert_eq!(r1.ops, 1);
        assert_eq!(r2.ops, 1);
        assert_eq!(exec.report().ops, 2);
    }

    #[test]
    fn telemetry_counters_mirror_the_report() {
        let mut mem = memory();
        mem.set_tra_fault_rate(0.26).unwrap();
        let mut exec = ResilientExecutor::new(mem, ResilientConfig::default());
        exec.set_telemetry(Registry::default());
        let bits = exec.memory().row_bits();
        let (a, b, out) = (
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
        );
        exec.write(a, &pattern(bits, 2)).unwrap();
        exec.write(b, &pattern(bits, 3)).unwrap();
        exec.bitwise(BitwiseOp::And, a, Some(b), out).unwrap();
        exec.bitwise(BitwiseOp::Or, a, Some(b), out).unwrap();

        let reg = exec.telemetry().unwrap().clone();
        let report = *exec.report();
        let value = |name: &str| reg.counter_value(name, &[]).unwrap();
        assert_eq!(value("ambit_resilient_ops_total"), report.ops);
        assert_eq!(
            value("ambit_resilient_faults_detected_total"),
            report.faults_detected
        );
        assert_eq!(value("ambit_resilient_retries_total"), report.retries);
        assert_eq!(value("ambit_resilient_scrubs_total"), report.scrubs);
        assert_eq!(
            value("ambit_resilient_cpu_fallbacks_total"),
            report.cpu_fallbacks
        );
        assert_eq!(reg.gauge_value("ambit_resilient_degraded", &[]), Some(1.0));
        // At a 26 % flip rate the first op must have detected faults,
        // retried, and degraded — all visible as events and spans.
        assert!(report.retries > 0);
        let events = reg.events();
        assert!(events.iter().any(|e| e.name == "resilient.retry"));
        assert!(events.iter().any(|e| e.name == "resilient.degrade"));
        assert_eq!(reg.spans().iter().filter(|s| s.name == "resilient.op").count(), 2);
    }

    #[test]
    fn resilience_config_alias_and_defaults_pin_current_behavior() {
        // Satellite: `ResilienceConfig` is the public entry point; the
        // default multipliers must leave the pre-characterization policy
        // untouched.
        let cfg: ResilienceConfig = ResilienceConfig::default();
        assert_eq!(cfg, ResilientConfig::default());
        assert_eq!(cfg.bin_retry_multipliers, [1.0, 1.0, 1.0]);
        assert_eq!(cfg.max_retries, 3);
        assert_eq!(cfg.retry_aap_budget, 256);
    }

    /// A memory with a placement profile whose four subarrays carry `bins`
    /// and no weak cells; the order keeps the default stripe irrelevant by
    /// steering every allocation to subarray (0, 0) first.
    fn profiled_memory(bins: Vec<u8>) -> AmbitMemory {
        use crate::driver::PlacementProfile;
        let mut mem = memory();
        mem.install_profile(PlacementProfile {
            order: vec![(0, 0), (0, 1), (1, 0), (1, 1)],
            weak_cells: vec![Vec::new(); 4],
            bins,
        })
        .unwrap();
        mem
    }

    #[test]
    fn weak_bin_buys_more_retries_before_degrading() {
        let mut mem = profiled_memory(vec![2, 2, 2, 2]);
        mem.set_tra_fault_rate(0.26).unwrap();
        let cfg = ResilientConfig {
            bin_retry_multipliers: [1.0, 1.0, 3.0],
            ..ResilientConfig::default()
        };
        let mut exec = ResilientExecutor::new(mem, cfg);
        exec.set_telemetry(Registry::default());
        let bits = exec.memory().row_bits();
        let (a, b, out) = (
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
        );
        let da = pattern(bits, 2);
        let db = pattern(bits, 3);
        exec.write(a, &da).unwrap();
        exec.write(b, &db).unwrap();
        let report = exec.bitwise(BitwiseOp::And, a, Some(b), out).unwrap();
        // Effective retry ceiling is 3 × 3 = 9: at a 26 % flip rate every
        // attempt stays suspect, so the full de-rated budget is spent
        // before the degrade decision.
        assert_eq!(report.retries, 9, "{report:?}");
        assert_eq!(exec.read(out).unwrap(), expected(BitwiseOp::And, &da, &db));
        let reg = exec.telemetry().unwrap().clone();
        assert_eq!(
            reg.counter_value("ambit_characterization_derated_ops_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn strong_bin_fails_fast_into_fallback() {
        let mut mem = profiled_memory(vec![0, 0, 0, 0]);
        mem.set_tra_fault_rate(0.26).unwrap();
        let cfg = ResilientConfig {
            bin_retry_multipliers: [0.0, 1.0, 1.0],
            ..ResilientConfig::default()
        };
        let mut exec = ResilientExecutor::new(mem, cfg);
        let bits = exec.memory().row_bits();
        let (a, b, out) = (
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
        );
        let da = pattern(bits, 2);
        let db = pattern(bits, 5);
        exec.write(a, &da).unwrap();
        exec.write(b, &db).unwrap();
        let report = exec.bitwise(BitwiseOp::Or, a, Some(b), out).unwrap();
        // Strong subarrays should not burn retries on a clearly broken
        // device: zero retries, straight to the catastrophic-rate degrade.
        assert_eq!(report.retries, 0, "{report:?}");
        assert!(report.degraded);
        assert_eq!(exec.read(out).unwrap(), expected(BitwiseOp::Or, &da, &db));
    }

    #[test]
    fn unprofiled_vectors_are_nominal_so_defaults_are_unchanged() {
        // Without a profile every vector lands in bin 1, whose default
        // multiplier is 1.0 — the pre-characterization retry count.
        let mut mem = memory();
        mem.set_tra_fault_rate(0.26).unwrap();
        let mut exec = ResilientExecutor::new(mem, ResilientConfig::default());
        let bits = exec.memory().row_bits();
        let (a, b, out) = (
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
            exec.alloc(bits).unwrap(),
        );
        exec.write(a, &pattern(bits, 2)).unwrap();
        exec.write(b, &pattern(bits, 3)).unwrap();
        let report = exec.bitwise(BitwiseOp::And, a, Some(b), out).unwrap();
        assert_eq!(report.retries, 3, "{report:?}");
        assert_eq!(exec.vectors.get(&a.0).unwrap().bin, 1);
    }

    #[test]
    fn unknown_handle_is_rejected() {
        let mut exec = ResilientExecutor::new(memory(), ResilientConfig::default());
        let err = exec.read(ResilientHandle(99)).unwrap_err();
        assert!(matches!(err, AmbitError::UnknownHandle { id: 99 }));
    }
}
