//! The bbop ISA extension (paper Section 5.4.1) and its microarchitectural
//! dispatch rule (Section 5.4.3).
//!
//! Applications communicate bulk bitwise operations with instructions of
//! the form `bbop dst, src1, [src2], size`. The microarchitecture checks
//! row alignment: aligned, row-multiple operations are sent to the memory
//! controller (Ambit); anything else is executed by the CPU itself. This
//! module models the check and both execution paths against the same
//! functional memory, so tests can confirm the two paths agree bit for bit.

use crate::driver::{AmbitMemory, BitVectorHandle};
use crate::error::{AmbitError, Result};
use crate::ops::BitwiseOp;

/// A decoded bbop instruction operating on driver-allocated bitvectors.
///
/// The paper's instruction addresses memory directly; in this model the
/// operands are driver handles (the driver owns the virtual→row mapping),
/// and `size_bytes` plays the role of the instruction's `size` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbopInstruction {
    /// The operation.
    pub op: BitwiseOp,
    /// Destination bitvector.
    pub dst: BitVectorHandle,
    /// First source.
    pub src1: BitVectorHandle,
    /// Second source, for two-operand ops.
    pub src2: Option<BitVectorHandle>,
    /// Operation length in bytes (must be a multiple of the row size for
    /// Ambit execution).
    pub size_bytes: usize,
}

/// Where an instruction was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionPath {
    /// Offloaded to the Ambit memory controller (in-DRAM).
    Ambit,
    /// Executed by the CPU (fallback for non-row-aligned sizes).
    Cpu,
}

/// Result of executing a bbop instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BbopOutcome {
    /// Which path executed the instruction.
    pub path: ExecutionPath,
    /// In-DRAM latency in picoseconds (0 for the CPU path, whose cost is
    /// modelled by the system layer).
    pub dram_latency_ps: u64,
    /// In-DRAM energy in nanojoules (0 for the CPU path).
    pub dram_energy_nj: f64,
}

/// Validates the instruction per Section 5.4.3: Ambit requires the size to
/// be a whole number of DRAM rows and the operands to span exactly that
/// size.
///
/// # Errors
///
/// Returns [`AmbitError::NotRowAligned`] when the CPU must execute the
/// operation instead, or size/handle errors for malformed instructions.
pub fn validate_for_ambit(mem: &AmbitMemory, instr: &BbopInstruction) -> Result<()> {
    let row_bytes = mem.row_bits() / 8;
    if instr.size_bytes == 0 || !instr.size_bytes.is_multiple_of(row_bytes) {
        return Err(AmbitError::NotRowAligned {
            value: instr.size_bytes,
            row_bytes,
        });
    }
    let bits = instr.size_bytes * 8;
    let len1 = mem.len_bits(instr.src1)?;
    if len1 != bits {
        return Err(AmbitError::SizeMismatch {
            left_bits: len1,
            right_bits: bits,
        });
    }
    Ok(())
}

/// Executes a bbop instruction: through Ambit when the alignment check
/// passes, otherwise through the modelled CPU path (word-at-a-time on data
/// read from memory).
///
/// # Errors
///
/// Propagates driver/controller errors from either path.
pub fn execute(mem: &mut AmbitMemory, instr: &BbopInstruction) -> Result<BbopOutcome> {
    match validate_for_ambit(mem, instr) {
        Ok(()) => {
            let receipt = mem.bitwise(instr.op, instr.src1, instr.src2, instr.dst)?;
            Ok(BbopOutcome {
                path: ExecutionPath::Ambit,
                dram_latency_ps: receipt.latency_ps(),
                dram_energy_nj: receipt.energy_nj,
            })
        }
        Err(AmbitError::NotRowAligned { .. }) => {
            execute_on_cpu(mem, instr)?;
            Ok(BbopOutcome {
                path: ExecutionPath::Cpu,
                dram_latency_ps: 0,
                dram_energy_nj: 0.0,
            })
        }
        Err(e) => Err(e),
    }
}

/// The CPU fallback: read operands over the channel, compute, write back.
fn execute_on_cpu(mem: &mut AmbitMemory, instr: &BbopInstruction) -> Result<()> {
    if instr.op.source_count() == 2 && instr.src2.is_none() {
        return Err(AmbitError::WrongOperandCount {
            op: instr.op.mnemonic(),
            expected: 2,
            provided: 1,
        });
    }
    let a = mem.read_bits(instr.src1)?;
    let b = match instr.src2 {
        Some(h) => mem.read_bits(h)?,
        None => vec![false; a.len()],
    };
    if a.len() != b.len() {
        return Err(AmbitError::SizeMismatch {
            left_bits: a.len(),
            right_bits: b.len(),
        });
    }
    let out: Vec<bool> = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| instr.op.apply_words(x as u64, y as u64) & 1 == 1)
        .collect();
    mem.write_bits(instr.dst, &out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn memory() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn row_aligned_instructions_take_the_ambit_path() {
        let mut mem = memory();
        let bits = mem.row_bits();
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let d = mem.alloc(bits).unwrap();
        mem.poke_bits(a, &random_bits(bits, 1)).unwrap();
        mem.poke_bits(b, &random_bits(bits, 2)).unwrap();
        let out = execute(
            &mut mem,
            &BbopInstruction {
                op: BitwiseOp::And,
                dst: d,
                src1: a,
                src2: Some(b),
                size_bytes: bits / 8,
            },
        )
        .unwrap();
        assert_eq!(out.path, ExecutionPath::Ambit);
        assert!(out.dram_latency_ps > 0);
        assert!(out.dram_energy_nj > 0.0);
    }

    #[test]
    fn unaligned_instructions_fall_back_to_cpu_with_same_result() {
        let mut mem = memory();
        let bits = 100; // far from row-aligned
        let a = mem.alloc(bits).unwrap();
        let b = mem.alloc(bits).unwrap();
        let d = mem.alloc(bits).unwrap();
        let da = random_bits(bits, 3);
        let db = random_bits(bits, 4);
        mem.poke_bits(a, &da).unwrap();
        mem.poke_bits(b, &db).unwrap();
        let out = execute(
            &mut mem,
            &BbopInstruction {
                op: BitwiseOp::Xor,
                dst: d,
                src1: a,
                src2: Some(b),
                size_bytes: bits / 8, // 12 bytes: not a row multiple
            },
        )
        .unwrap();
        assert_eq!(out.path, ExecutionPath::Cpu);
        let got = mem.peek_bits(d).unwrap();
        // The CPU wrote 96 bits (12 bytes); compare the prefix it computed.
        for i in 0..96 {
            assert_eq!(got[i], da[i] ^ db[i], "bit {i}");
        }
    }

    #[test]
    fn ambit_and_cpu_paths_agree() {
        for op in BitwiseOp::FIGURE9_OPS {
            let mut mem = memory();
            let bits = mem.row_bits();
            let a = mem.alloc(bits).unwrap();
            let b = mem.alloc(bits).unwrap();
            let d_ambit = mem.alloc(bits).unwrap();
            let d_cpu = mem.alloc(bits).unwrap();
            let da = random_bits(bits, 5);
            let db = random_bits(bits, 6);
            mem.poke_bits(a, &da).unwrap();
            mem.poke_bits(b, &db).unwrap();
            let src2 = (op.source_count() == 2).then_some(b);

            let instr = BbopInstruction {
                op,
                dst: d_ambit,
                src1: a,
                src2,
                size_bytes: bits / 8,
            };
            assert_eq!(execute(&mut mem, &instr).unwrap().path, ExecutionPath::Ambit);

            let cpu_instr = BbopInstruction { dst: d_cpu, ..instr };
            execute_on_cpu(&mut mem, &cpu_instr).unwrap();

            assert_eq!(
                mem.peek_bits(d_ambit).unwrap(),
                mem.peek_bits(d_cpu).unwrap(),
                "{op}: Ambit and CPU paths disagree"
            );
        }
    }

    #[test]
    fn validation_rejects_zero_and_partial_sizes() {
        let mem = memory();
        let row_bytes = mem.row_bits() / 8;
        let mut mem = memory();
        let a = mem.alloc(mem.row_bits()).unwrap();
        for bad in [0, 1, row_bytes - 1, row_bytes + 1] {
            let instr = BbopInstruction {
                op: BitwiseOp::Not,
                dst: a,
                src1: a,
                src2: None,
                size_bytes: bad,
            };
            assert!(
                matches!(
                    validate_for_ambit(&mem, &instr).unwrap_err(),
                    AmbitError::NotRowAligned { .. }
                ),
                "size {bad}"
            );
        }
    }

    #[test]
    fn validation_rejects_size_not_matching_operand() {
        let mut mem = memory();
        let a = mem.alloc(mem.row_bits()).unwrap();
        let instr = BbopInstruction {
            op: BitwiseOp::Not,
            dst: a,
            src1: a,
            src2: None,
            size_bytes: 2 * mem.row_bits() / 8,
        };
        assert!(matches!(
            validate_for_ambit(&mem, &instr).unwrap_err(),
            AmbitError::SizeMismatch { .. }
        ));
    }
}
