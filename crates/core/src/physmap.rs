//! Physical-address interleaving for the D-group (paper Section 5.1):
//! "To ensure that the software stack has a contiguous view of memory, the
//! Ambit controller interleaves the row addresses such that the D-group
//! addresses across all subarrays are mapped contiguously to the
//! processor's physical address space."
//!
//! The B- and C-group rows are invisible to software; this module provides
//! the bijection between processor physical row numbers and Ambit's
//! `(bank, subarray, D-index)` coordinates, striped bank-first so that
//! consecutive physical rows land in different banks (the usual
//! channel/bank interleaving that also gives Ambit its chunk parallelism).

use ambit_dram::{BankId, DramGeometry};

use crate::addressing::SubarrayLayout;
use crate::error::{AmbitError, Result};

/// The D-group physical address map for a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalMap {
    geometry: DramGeometry,
    data_rows_per_subarray: usize,
}

/// A decoded physical row location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataRowLocation {
    /// Owning bank.
    pub bank: BankId,
    /// Subarray within the bank.
    pub subarray: usize,
    /// D-group index within the subarray.
    pub d_index: usize,
}

impl PhysicalMap {
    /// Builds the map for a device geometry.
    pub fn new(geometry: DramGeometry) -> Self {
        let layout = SubarrayLayout::new(geometry.rows_per_subarray);
        PhysicalMap {
            geometry,
            data_rows_per_subarray: layout.data_rows(),
        }
    }

    /// Total data rows the processor sees.
    pub fn total_data_rows(&self) -> usize {
        self.geometry.total_banks() * self.geometry.subarrays_per_bank * self.data_rows_per_subarray
    }

    /// Bytes of physical memory exposed to software (the capacity *minus*
    /// Ambit's reserved rows — the <1 % cost of Section 5.5.1).
    pub fn software_visible_bytes(&self) -> usize {
        self.total_data_rows() * self.geometry.row_bytes
    }

    /// Fraction of raw capacity consumed by the reserved rows.
    pub fn reserved_fraction(&self) -> f64 {
        1.0 - self.total_data_rows() as f64 / self.geometry.total_rows() as f64
    }

    /// Maps a processor physical row number to its device location,
    /// striping consecutive rows across banks first, then subarrays.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::DataRowOutOfRange`] past the end of memory.
    pub fn decode(&self, physical_row: usize) -> Result<DataRowLocation> {
        if physical_row >= self.total_data_rows() {
            return Err(AmbitError::DataRowOutOfRange {
                index: physical_row,
                available: self.total_data_rows(),
            });
        }
        let banks = self.geometry.total_banks();
        let subarrays = self.geometry.subarrays_per_bank;
        let bank = physical_row % banks;
        let rest = physical_row / banks;
        let subarray = rest % subarrays;
        let d_index = rest / subarrays;
        Ok(DataRowLocation {
            bank: BankId::from_flat_index(bank, &self.geometry),
            subarray,
            d_index,
        })
    }

    /// Inverse of [`decode`](Self::decode).
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::DataRowOutOfRange`] for out-of-range
    /// coordinates.
    pub fn encode(&self, loc: DataRowLocation) -> Result<usize> {
        let banks = self.geometry.total_banks();
        let subarrays = self.geometry.subarrays_per_bank;
        if loc.subarray >= subarrays || loc.d_index >= self.data_rows_per_subarray {
            return Err(AmbitError::DataRowOutOfRange {
                index: loc.d_index,
                available: self.data_rows_per_subarray,
            });
        }
        let bank = loc.bank.flat_index(&self.geometry);
        Ok((loc.d_index * subarrays + loc.subarray) * banks + bank)
    }

    /// The physical byte address of the start of a physical row.
    pub fn row_base_address(&self, physical_row: usize) -> u64 {
        physical_row as u64 * self.geometry.row_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> PhysicalMap {
        PhysicalMap::new(DramGeometry::micro17())
    }

    #[test]
    fn contiguous_view_covers_all_data_rows_exactly_once() {
        let m = PhysicalMap::new(DramGeometry::tiny());
        let total = m.total_data_rows();
        let mut seen = std::collections::HashSet::new();
        for row in 0..total {
            let loc = m.decode(row).unwrap();
            assert!(seen.insert(loc), "row {row} decoded to duplicate {loc:?}");
            assert_eq!(m.encode(loc).unwrap(), row, "bijection at {row}");
        }
        assert!(m.decode(total).is_err());
    }

    #[test]
    fn consecutive_rows_stripe_across_banks() {
        let m = map();
        let l0 = m.decode(0).unwrap();
        let l1 = m.decode(1).unwrap();
        assert_ne!(l0.bank, l1.bank, "adjacent physical rows hit different banks");
        assert_eq!(l0.subarray, l1.subarray);
        assert_eq!(l0.d_index, l1.d_index);
    }

    #[test]
    fn reserved_overhead_is_under_two_percent() {
        // Paper Section 5.5.1: < 1 % chip area; our address-space loss is
        // 18/1024 ≈ 1.8 % of rows (8 special rows + address reservations).
        let m = map();
        let f = m.reserved_fraction();
        assert!(f > 0.0 && f < 0.02, "reserved fraction {f}");
    }

    #[test]
    fn micro17_software_capacity() {
        let m = map();
        // 16 banks × 16 subarrays × 1006 rows × 8 KB.
        assert_eq!(m.total_data_rows(), 16 * 16 * 1006);
        assert_eq!(m.software_visible_bytes(), 16 * 16 * 1006 * 8192);
    }

    #[test]
    fn row_addresses_are_row_sized_apart() {
        let m = map();
        assert_eq!(m.row_base_address(0), 0);
        assert_eq!(m.row_base_address(1), 8192);
        assert_eq!(m.row_base_address(100), 819200);
    }

    #[test]
    fn encode_validates_coordinates() {
        let m = map();
        let bad = DataRowLocation {
            bank: BankId::zero(),
            subarray: 0,
            d_index: 1006,
        };
        assert!(m.encode(bad).is_err());
    }
}
