//! Triple modular redundancy ECC for Ambit memory (paper Section 5.4.5).
//!
//! Conventional SECDED ECC breaks when data is modified in place by the
//! memory: the controller never sees the new value, so it cannot recompute
//! the code. The paper observes that an ECC scheme must be *homomorphic*
//! over the bitwise operations — `ECC(A op B) = ECC(A) op ECC(B)` — and
//! that the only known such scheme is triple modular redundancy (TMR),
//! where `ECC(A) = AA` (replication).
//!
//! [`TmrVector`] stores three co-located replicas. Bulk operations run on
//! all three (replication commutes with every bitwise op, so the replicas
//! stay consistent by construction); reads majority-vote the replicas,
//! correcting any single-replica fault and reporting which bits needed
//! correction. A scrub pass rewrites all replicas with the voted value.

use crate::driver::{AmbitMemory, BitVectorHandle};
use crate::error::{AmbitError, Result};
use crate::ops::BitwiseOp;
use crate::OpReceipt;

/// A triple-modular-redundant bitvector: three replicas in Ambit memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmrVector {
    replicas: [BitVectorHandle; 3],
    bits: usize,
}

/// Result of a voted read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VotedRead {
    /// The majority-voted data.
    pub data: Vec<bool>,
    /// Bit positions where at least one replica disagreed (corrected).
    pub corrected: Vec<usize>,
}

impl TmrVector {
    /// Allocates a TMR vector of `bits` logical bits (3× physical storage,
    /// the paper's noted overhead for TMR).
    ///
    /// # Errors
    ///
    /// Returns out-of-memory if the device cannot hold three replicas.
    pub fn alloc(mem: &mut AmbitMemory, bits: usize) -> Result<TmrVector> {
        Ok(TmrVector {
            replicas: [mem.alloc(bits)?, mem.alloc(bits)?, mem.alloc(bits)?],
            bits,
        })
    }

    /// Logical length in bits.
    pub fn len_bits(&self) -> usize {
        self.bits
    }

    /// The raw replica handles (for fault-injection campaigns).
    pub fn replicas(&self) -> [BitVectorHandle; 3] {
        self.replicas
    }

    /// Writes data to all three replicas.
    ///
    /// # Errors
    ///
    /// Propagates driver errors (size mismatch, stale handle).
    pub fn write(&self, mem: &mut AmbitMemory, data: &[bool]) -> Result<()> {
        for r in self.replicas {
            mem.poke_bits(r, data)?;
        }
        Ok(())
    }

    /// Majority-voted read with per-bit correction reporting.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn read_voted(&self, mem: &AmbitMemory) -> Result<VotedRead> {
        let a = mem.peek_bits(self.replicas[0])?;
        let b = mem.peek_bits(self.replicas[1])?;
        let c = mem.peek_bits(self.replicas[2])?;
        let mut data = Vec::with_capacity(self.bits);
        let mut corrected = Vec::new();
        for i in 0..self.bits {
            let votes = a[i] as u8 + b[i] as u8 + c[i] as u8;
            let value = votes >= 2;
            if votes == 1 || votes == 2 {
                corrected.push(i);
            }
            data.push(value);
        }
        Ok(VotedRead { data, corrected })
    }

    /// Rewrites all replicas with the voted value (scrubbing), healing any
    /// single-replica transient corruption. Returns how many bits were
    /// repaired. Stuck-at hardware faults will of course re-corrupt.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    pub fn scrub(&self, mem: &mut AmbitMemory) -> Result<usize> {
        let voted = self.read_voted(mem)?;
        self.write(mem, &voted.data)?;
        Ok(voted.corrected.len())
    }
}

/// Executes `dst = op(a, b)` on TMR vectors: the operation runs on each
/// replica independently (homomorphism: replication commutes with every
/// bitwise op), costing exactly 3× the plain operation.
///
/// # Errors
///
/// Returns [`AmbitError::SizeMismatch`] on length mismatch and propagates
/// driver/controller errors.
pub fn bitwise_tmr(
    mem: &mut AmbitMemory,
    op: BitwiseOp,
    a: &TmrVector,
    b: Option<&TmrVector>,
    dst: &TmrVector,
) -> Result<OpReceipt> {
    if a.bits != dst.bits || b.is_some_and(|b| b.bits != a.bits) {
        return Err(AmbitError::SizeMismatch {
            left_bits: a.bits,
            right_bits: dst.bits,
        });
    }
    let mut total: Option<OpReceipt> = None;
    for i in 0..3 {
        let receipt = mem.bitwise(
            op,
            a.replicas[i],
            b.map(|b| b.replicas[i]),
            dst.replicas[i],
        )?;
        match &mut total {
            Some(t) => t.absorb(&receipt),
            None => total = Some(receipt),
        }
    }
    Ok(total.expect("three replicas"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, CellFault, DramGeometry, TimingParams};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn memory() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn write_read_roundtrip_without_faults() {
        let mut mem = memory();
        let bits = mem.row_bits();
        let v = TmrVector::alloc(&mut mem, bits).unwrap();
        let data = random_bits(bits, 1);
        v.write(&mut mem, &data).unwrap();
        let read = v.read_voted(&mem).unwrap();
        assert_eq!(read.data, data);
        assert!(read.corrected.is_empty());
    }

    #[test]
    fn single_replica_fault_is_corrected() {
        let mut mem = memory();
        let bits = mem.row_bits();
        let v = TmrVector::alloc(&mut mem, bits).unwrap();
        let data = vec![true; bits];
        v.write(&mut mem, &data).unwrap();
        // Stuck-at-zero in one replica.
        mem.inject_fault(v.replicas()[1], 7, CellFault::StuckAtZero).unwrap();
        mem.poke_bits(v.replicas()[1], &data).unwrap(); // re-store: bit 7 sticks low
        let read = v.read_voted(&mem).unwrap();
        assert_eq!(read.data, data, "vote masks the fault");
        assert_eq!(read.corrected, vec![7]);
    }

    #[test]
    fn double_replica_fault_is_uncorrectable_and_visible() {
        let mut mem = memory();
        let bits = mem.row_bits();
        let v = TmrVector::alloc(&mut mem, bits).unwrap();
        let data = vec![true; bits];
        v.write(&mut mem, &data).unwrap();
        for r in [0, 1] {
            mem.inject_fault(v.replicas()[r], 3, CellFault::StuckAtZero).unwrap();
            mem.poke_bits(v.replicas()[r], &data).unwrap();
        }
        let read = v.read_voted(&mem).unwrap();
        assert!(!read.data[3], "two bad replicas outvote the good one");
        assert!(read.corrected.contains(&3), "but the disagreement is flagged");
    }

    #[test]
    fn operations_are_homomorphic_over_replication() {
        // ECC(A op B) == ECC(A) op ECC(B): operating replica-wise equals
        // replicating the plain result.
        for op in BitwiseOp::FIGURE9_OPS {
            let mut mem = memory();
            let bits = mem.row_bits();
            let da = random_bits(bits, 2);
            let db = random_bits(bits, 3);
            let a = TmrVector::alloc(&mut mem, bits).unwrap();
            let b = TmrVector::alloc(&mut mem, bits).unwrap();
            let d = TmrVector::alloc(&mut mem, bits).unwrap();
            a.write(&mut mem, &da).unwrap();
            b.write(&mut mem, &db).unwrap();
            let src2 = (op.source_count() == 2).then_some(&b);
            bitwise_tmr(&mut mem, op, &a, src2, &d).unwrap();
            let read = d.read_voted(&mem).unwrap();
            for i in 0..bits {
                let expect = op.apply_words(da[i] as u64, db[i] as u64) & 1 == 1;
                assert_eq!(read.data[i], expect, "{op} bit {i}");
            }
            assert!(read.corrected.is_empty(), "{op}: replicas stayed consistent");
        }
    }

    #[test]
    fn tmr_op_costs_exactly_three_times_plain() {
        let mut mem = memory();
        let bits = mem.row_bits();
        let a = TmrVector::alloc(&mut mem, bits).unwrap();
        let b = TmrVector::alloc(&mut mem, bits).unwrap();
        let d = TmrVector::alloc(&mut mem, bits).unwrap();
        let receipt = bitwise_tmr(&mut mem, BitwiseOp::And, &a, Some(&b), &d).unwrap();
        assert_eq!(receipt.aaps, 3 * 4, "3 replicas x 4 AAPs");
    }

    #[test]
    fn transient_corruption_survives_an_op_then_scrubs_away() {
        let mut mem = memory();
        let bits = mem.row_bits();
        let a = TmrVector::alloc(&mut mem, bits).unwrap();
        let data = random_bits(bits, 4);
        a.write(&mut mem, &data).unwrap();
        // Transiently corrupt one replica (no hardware fault): flip bit 11.
        let mut bad = data.clone();
        bad[11] = !bad[11];
        mem.poke_bits(a.replicas()[2], &bad).unwrap();

        let read = a.read_voted(&mem).unwrap();
        assert_eq!(read.data, data);
        assert_eq!(read.corrected, vec![11]);

        let repaired = a.scrub(&mut mem).unwrap();
        assert_eq!(repaired, 1);
        let after = a.read_voted(&mem).unwrap();
        assert!(after.corrected.is_empty(), "scrub healed the replica");
    }

    #[test]
    fn size_mismatch_rejected() {
        let mut mem = memory();
        let a = TmrVector::alloc(&mut mem, 64).unwrap();
        let d = TmrVector::alloc(&mut mem, 128).unwrap();
        assert!(matches!(
            bitwise_tmr(&mut mem, BitwiseOp::Not, &a, None, &d),
            Err(AmbitError::SizeMismatch { .. })
        ));
    }
}
