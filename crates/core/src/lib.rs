//! # ambit-core — the Ambit in-memory accelerator
//!
//! This crate implements the contribution of *Ambit: In-Memory Accelerator
//! for Bulk Bitwise Operations Using Commodity DRAM Technology* (Seshadri
//! et al., MICRO-50 2017) on top of the `ambit-dram` substrate:
//!
//! * [`addressing`] — the B/C/D row-address grouping and the B-group
//!   decode table (paper Table 1, Figure 7);
//! * [`ops`] — the AAP/AP command programs for every bulk bitwise
//!   operation (Figure 8), including the derived `or`/`nor`/`xnor` forms;
//! * [`AmbitController`] — executes programs against the functional DRAM
//!   model with cycle-style timing (49 ns split-decoder AAPs) and Table 3
//!   energy accounting;
//! * [`AmbitMemory`] — the driver of Section 5.4.2: subarray-aware
//!   allocation that keeps operand bitvectors chunk-wise co-located so all
//!   copies use RowClone-FPM, striped across banks for parallelism;
//! * [`isa`] — the `bbop` instructions of Section 5.4.1 with the
//!   row-alignment dispatch rule and the CPU fallback path;
//! * [`AmbitConfig`] — analytic steady-state throughput (the Ambit and
//!   Ambit-3D series of Figure 9).
//!
//! # Quick start
//!
//! ```
//! use ambit_core::{AmbitMemory, BitwiseOp};
//! use ambit_dram::{AapMode, DramGeometry, TimingParams};
//!
//! // An Ambit-enabled DDR3 module.
//! let mut mem = AmbitMemory::new(
//!     DramGeometry::tiny(),
//!     TimingParams::ddr3_1600(),
//!     AapMode::Overlapped,
//! );
//! let bits = mem.row_bits();
//! let a = mem.alloc(bits)?;
//! let b = mem.alloc(bits)?;
//! let out = mem.alloc(bits)?;
//! mem.poke_bits(a, &(0..bits).map(|i| i % 2 == 0).collect::<Vec<_>>())?;
//! mem.poke_bits(b, &(0..bits).map(|i| i % 3 == 0).collect::<Vec<_>>())?;
//!
//! // One bulk AND, computed entirely inside DRAM by triple-row activation.
//! let receipt = mem.bitwise(BitwiseOp::And, a, Some(b), out)?;
//! assert_eq!(receipt.aaps, 4); // Figure 8a
//! assert_eq!(mem.popcount(out)?, (0..bits).filter(|i| i % 6 == 0).count());
//! # Ok::<(), ambit_core::AmbitError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addressing;
mod batch;
pub mod compiler;
mod controller;
mod driver;
pub mod ecc;
mod error;
pub mod isa;
pub mod ops;
mod physmap;
mod pool;
pub mod resilient;
pub mod synth;
mod throughput;

pub use addressing::{RowAddress, SubarrayLayout};
pub use batch::{BatchBuilder, BatchOpView, BatchReceipt, IssuePolicy, OpId};
pub use compiler::{compile_fold, fold_savings, fold_supported};
pub use controller::{AmbitController, OpReceipt};
pub use driver::{AllocGroup, AmbitMemory, BadRowEntry, BitVectorHandle, PlacementProfile};
pub use error::{AmbitError, Result};
pub use ecc::{bitwise_tmr, TmrVector, VotedRead};
pub use resilient::{
    RecoveryReport, ResilienceConfig, ResilientConfig, ResilientExecutor, ResilientHandle,
};
pub use isa::{BbopInstruction, BbopOutcome, ExecutionPath};
pub use ops::{compile_majority, AmbitCmd, BitwiseOp};
pub use physmap::{DataRowLocation, PhysicalMap};
pub use synth::{
    synthesize, synthesize_exprs, BoolFunc, Expr, SlotRef, SynthOptions, SynthProgram, SynthStats,
    SynthStep,
};
pub use pool::{ExecutorPool, PoolStats};
pub use throughput::AmbitConfig;
