//! Property-based tests for the Ambit command programs: for arbitrary row
//! contents, every Figure 8 program computes exactly its specification
//! when executed through the full controller + subarray stack.

use ambit_core::{AmbitController, BitwiseOp, RowAddress};
use ambit_dram::{AapMode, BankId, BitRow, DramGeometry, TimingParams};
use proptest::prelude::*;

fn controller() -> AmbitController {
    AmbitController::new(
        DramGeometry::tiny(),
        TimingParams::ddr3_1600(),
        AapMode::Overlapped,
    )
}

fn bits() -> usize {
    DramGeometry::tiny().row_bits()
}

fn row_strategy() -> impl Strategy<Value = BitRow> {
    let n = bits();
    proptest::collection::vec(any::<bool>(), n).prop_map(move |v| BitRow::from_fn(n, |i| v[i]))
}

fn op_strategy() -> impl Strategy<Value = BitwiseOp> {
    prop_oneof![
        Just(BitwiseOp::Not),
        Just(BitwiseOp::And),
        Just(BitwiseOp::Or),
        Just(BitwiseOp::Nand),
        Just(BitwiseOp::Nor),
        Just(BitwiseOp::Xor),
        Just(BitwiseOp::Xnor),
        Just(BitwiseOp::Copy),
        Just(BitwiseOp::InitZero),
        Just(BitwiseOp::InitOne),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_program_matches_its_specification(
        op in op_strategy(),
        a in row_strategy(),
        b in row_strategy(),
    ) {
        let mut ctrl = controller();
        let bank = BankId::zero();
        ctrl.poke_data(bank, 0, 0, &a).unwrap();
        ctrl.poke_data(bank, 0, 1, &b).unwrap();
        let src2 = (op.source_count() == 2).then_some(RowAddress::D(1));
        ctrl.execute(op, bank, 0, RowAddress::D(0), src2, RowAddress::D(2)).unwrap();
        let got = ctrl.peek_data(bank, 0, 2).unwrap();
        let n = bits();
        let expect = BitRow::from_fn(n, |i| {
            op.apply_words(a.get(i) as u64, b.get(i) as u64) & 1 == 1
        });
        prop_assert_eq!(got, expect, "{}", op);
    }

    #[test]
    fn programs_never_corrupt_unrelated_rows(
        op in op_strategy(),
        a in row_strategy(),
        b in row_strategy(),
        bystander in row_strategy(),
    ) {
        // A row not mentioned by the program must be untouched, even
        // though the program cycles data through the shared B-group rows.
        let mut ctrl = controller();
        let bank = BankId::zero();
        ctrl.poke_data(bank, 0, 0, &a).unwrap();
        ctrl.poke_data(bank, 0, 1, &b).unwrap();
        ctrl.poke_data(bank, 0, 7, &bystander).unwrap();
        let src2 = (op.source_count() == 2).then_some(RowAddress::D(1));
        ctrl.execute(op, bank, 0, RowAddress::D(0), src2, RowAddress::D(2)).unwrap();
        prop_assert_eq!(ctrl.peek_data(bank, 0, 7).unwrap(), bystander);
    }

    #[test]
    fn control_rows_hold_their_constants(
        op in op_strategy(),
        a in row_strategy(),
        b in row_strategy(),
    ) {
        let mut ctrl = controller();
        let bank = BankId::zero();
        ctrl.poke_data(bank, 0, 0, &a).unwrap();
        ctrl.poke_data(bank, 0, 1, &b).unwrap();
        let src2 = (op.source_count() == 2).then_some(RowAddress::D(1));
        ctrl.execute(op, bank, 0, RowAddress::D(0), src2, RowAddress::D(2)).unwrap();
        // C0 and C1 are never clobbered by any program (they are only ever
        // the *first* address of an AAP).
        let n = bits();
        let device = ctrl.device();
        let sa = device.bank(bank).subarray(0);
        prop_assert_eq!(sa.peek_row(ambit_core::addressing::ROW_C0), BitRow::zeros(n));
        prop_assert_eq!(sa.peek_row(ambit_core::addressing::ROW_C1), BitRow::ones(n));
    }

    #[test]
    fn dst_equals_src_works_in_place(
        op in prop_oneof![Just(BitwiseOp::And), Just(BitwiseOp::Or), Just(BitwiseOp::Xor)],
        a in row_strategy(),
        b in row_strategy(),
    ) {
        let mut ctrl = controller();
        let bank = BankId::zero();
        ctrl.poke_data(bank, 0, 0, &a).unwrap();
        ctrl.poke_data(bank, 0, 1, &b).unwrap();
        // dst == src1: accumulate in place.
        ctrl.execute(op, bank, 0, RowAddress::D(0), Some(RowAddress::D(1)), RowAddress::D(0))
            .unwrap();
        let n = bits();
        let expect = BitRow::from_fn(n, |i| {
            op.apply_words(a.get(i) as u64, b.get(i) as u64) & 1 == 1
        });
        prop_assert_eq!(ctrl.peek_data(bank, 0, 0).unwrap(), expect);
        prop_assert_eq!(ctrl.peek_data(bank, 0, 1).unwrap(), b);
    }

    #[test]
    fn latency_and_energy_are_data_independent(
        op in op_strategy(),
        a1 in row_strategy(), b1 in row_strategy(),
        a2 in row_strategy(), b2 in row_strategy(),
    ) {
        // Ambit is constant-time in the data (a security-relevant property
        // for the XOR-cipher use case): identical programs, identical cost.
        let run = |a: &BitRow, b: &BitRow| {
            let mut ctrl = controller();
            let bank = BankId::zero();
            ctrl.poke_data(bank, 0, 0, a).unwrap();
            ctrl.poke_data(bank, 0, 1, b).unwrap();
            let src2 = (op.source_count() == 2).then_some(RowAddress::D(1));
            let r = ctrl.execute(op, bank, 0, RowAddress::D(0), src2, RowAddress::D(2)).unwrap();
            (r.latency_ps(), r.energy_nj)
        };
        let (l1, e1) = run(&a1, &b1);
        let (l2, e2) = run(&a2, &b2);
        prop_assert_eq!(l1, l2);
        prop_assert!((e1 - e2).abs() < 1e-12);
    }
}
