//! Seeded fault-injection campaigns over a whole DRAM device.
//!
//! The paper's reliability discussion (Sections 5.5 and 6) names three
//! distinct failure mechanisms that an Ambit deployment must absorb:
//!
//! 1. **Manufacturing stuck-at cells** — found during post-production
//!    testing and repaired by remapping the row to a spare row in the same
//!    subarray (Section 5.5.3);
//! 2. **Transient triple-row-activation failures** — process variation
//!    shifts cell capacitance and sense-amplifier offset so a TRA
//!    occasionally senses the wrong majority (Section 6, Table 2). The
//!    failure probability differs from subarray to subarray because
//!    variation is spatially correlated;
//! 3. **Retention decay** — cells leak charge and weak cells flip if a
//!    refresh window elapses without the row being rewritten
//!    (Section 3.2, issue 4).
//!
//! [`FaultCampaign`] packages all three into one deterministic, seeded
//! plan. Planning samples *per-subarray* TRA fault rates (feed the base
//! rate from `ambit_circuit::montecarlo`, or supply one measured rate per
//! subarray via [`FaultCampaign::plan_with_rates`]), a set of stuck-at
//! cells, and a set of retention-weak cells. Applying the plan installs
//! the stuck cells and rates into a [`DramDevice`]; the retention-weak
//! cells are *armed* over time by piggy-backing on the
//! [`RefreshScheduler`]: every refresh interval that elapses on the
//! command timeline gives each weak cell a chance to flip.
//!
//! The same seed always reproduces the same plan and the same decay
//! schedule, so campaigns replay deterministically.

use std::collections::HashSet;

use ambit_telemetry::{Counter, Event, Registry};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::controller::CommandTimer;
use crate::device::DramDevice;
use crate::error::{DramError, Result};
use crate::geometry::{BankId, DramGeometry, RowLocation};
use crate::refresh::RefreshScheduler;
use crate::subarray::CellFault;

/// Parameters of a fault campaign, all deterministic given `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Seed for the campaign's private RNG (plan sampling and decay).
    pub seed: u64,
    /// Device-average per-bitline transient TRA failure probability.
    /// Derive this from `ambit_circuit::montecarlo::run_monte_carlo`'s
    /// `failure_rate()` at the process-variation level under study.
    pub base_tra_rate: f64,
    /// Relative spread of the per-subarray TRA rate around the base rate:
    /// each subarray's rate is sampled uniformly from
    /// `base_tra_rate * [1 - spread, 1 + spread]` (clamped to `[0, 1]`),
    /// modelling spatially correlated process variation.
    pub tra_rate_spread: f64,
    /// Stuck-at cells to plant per subarray.
    pub stuck_cells_per_subarray: usize,
    /// Retention-weak cells to plant per subarray.
    pub weak_cells_per_subarray: usize,
    /// Probability that a weak cell flips per elapsed refresh interval.
    pub decay_probability: f64,
    /// Rows below this index are exempt from stuck/weak cell placement.
    /// Set this to the first data row so reserved control rows (whose
    /// constants the accelerator depends on) stay clean.
    pub first_eligible_row: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xA3B1_7C0D_E001,
            base_tra_rate: 0.0,
            tra_rate_spread: 0.25,
            stuck_cells_per_subarray: 0,
            weak_cells_per_subarray: 0,
            decay_probability: 0.0,
            first_eligible_row: 0,
        }
    }
}

/// A stuck-at cell planted by the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckCell {
    /// Physical row within the subarray.
    pub row: usize,
    /// Bit position within the row.
    pub bit: usize,
    /// The pinned value.
    pub fault: CellFault,
}

/// The sampled fault profile of one subarray.
#[derive(Debug, Clone, PartialEq)]
pub struct SubarrayFaultPlan {
    /// Flat bank index (see [`BankId::flat_index`]).
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// This subarray's transient TRA failure probability per bitline.
    pub tra_rate: f64,
    /// Stuck-at cells to install.
    pub stuck: Vec<StuckCell>,
    /// Retention-weak cells, as `(row, bit)`.
    pub weak: Vec<(usize, usize)>,
}

/// What one [`FaultCampaign::catch_up`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CampaignTick {
    /// Refresh commands issued by the piggy-backed scheduler.
    pub refreshes: u64,
    /// Weak-cell flips injected for the elapsed refresh intervals.
    pub decay_flips: u64,
}

/// A seeded, deterministic fault-injection campaign.
///
/// Build one with [`plan`](Self::plan) (or
/// [`plan_with_rates`](Self::plan_with_rates)), install it with
/// [`apply`](Self::apply), then drive retention decay by replacing direct
/// `RefreshScheduler::catch_up` calls with [`catch_up`](Self::catch_up).
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    config: CampaignConfig,
    geometry: DramGeometry,
    plans: Vec<SubarrayFaultPlan>,
    rng: StdRng,
    decay_flips: u64,
    telemetry: Option<CampaignTelemetry>,
    /// Simulated time attached to emitted telemetry events; updated by
    /// [`catch_up`](FaultCampaign::catch_up) from the command timer.
    event_ns: u64,
}

/// Cached telemetry handles for the campaign.
#[derive(Debug, Clone)]
struct CampaignTelemetry {
    registry: Registry,
    stuck_cells: Counter,
    decay_flips: Counter,
    refreshes: Counter,
}

impl CampaignTelemetry {
    fn new(registry: Registry) -> Self {
        let stuck_cells = registry.counter(
            "ambit_campaign_stuck_cells_total",
            "Manufacturing stuck-at cells installed by fault campaigns",
            &[],
        );
        let decay_flips = registry.counter(
            "ambit_campaign_decay_flips_total",
            "Retention-decay bit flips injected by fault campaigns",
            &[],
        );
        let refreshes = registry.counter(
            "ambit_campaign_refreshes_total",
            "Refresh commands issued through campaign catch-up",
            &[],
        );
        CampaignTelemetry {
            registry,
            stuck_cells,
            decay_flips,
            refreshes,
        }
    }
}

impl FaultCampaign {
    /// Samples a campaign plan for `geometry` from `config.seed`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidFaultRate`] if `base_tra_rate` or
    /// `decay_probability` is not a probability, or
    /// [`DramError::RowOutOfRange`] if `first_eligible_row` leaves no
    /// eligible rows.
    pub fn plan(config: CampaignConfig, geometry: &DramGeometry) -> Result<Self> {
        Self::plan_inner(config, geometry, None)
    }

    /// Like [`plan`](Self::plan), but with one externally measured TRA
    /// rate per subarray (row-major over `flat_bank * subarrays_per_bank +
    /// subarray`) instead of sampling rates around `base_tra_rate` — use
    /// this to feed each subarray its own Monte Carlo result.
    ///
    /// # Errors
    ///
    /// As [`plan`](Self::plan); additionally rejects a `rates` slice whose
    /// length differs from the device's subarray count or that contains a
    /// non-probability.
    pub fn plan_with_rates(
        config: CampaignConfig,
        geometry: &DramGeometry,
        rates: &[f64],
    ) -> Result<Self> {
        let expected = geometry.total_banks() * geometry.subarrays_per_bank;
        if rates.len() != expected {
            return Err(DramError::RowOutOfRange {
                row: rates.len(),
                rows: expected,
            });
        }
        Self::plan_inner(config, geometry, Some(rates))
    }

    /// Arms a campaign from a device characterization map: one measured
    /// TRA rate per subarray plus per-subarray weak cells (row-major over
    /// `flat_bank * subarrays_per_bank + subarray`, each cell a
    /// `(row, bit)` pair). The weak cells are installed as stuck-at
    /// faults with a seed-deterministic polarity, *in addition to* any
    /// stuck/weak cells the config itself asks to sample — feed
    /// `ambit_circuit::ChipProfile::rates()` / `weak_cells()` here to
    /// replay a characterized chip instead of a synthetic one.
    ///
    /// # Errors
    ///
    /// As [`plan_with_rates`](Self::plan_with_rates); additionally rejects
    /// a `weak_cells` slice of the wrong length
    /// ([`DramError::RowOutOfRange`]) or a cell outside the subarray
    /// ([`DramError::CellOutOfRange`]).
    pub fn from_profile(
        config: CampaignConfig,
        geometry: &DramGeometry,
        rates: &[f64],
        weak_cells: &[Vec<(usize, usize)>],
    ) -> Result<Self> {
        let expected = geometry.total_banks() * geometry.subarrays_per_bank;
        if weak_cells.len() != expected {
            return Err(DramError::RowOutOfRange {
                row: weak_cells.len(),
                rows: expected,
            });
        }
        let rows = geometry.rows_per_subarray;
        let bits = geometry.row_bits();
        for cells in weak_cells {
            for &(row, bit) in cells {
                if row >= rows || bit >= bits {
                    return Err(DramError::CellOutOfRange {
                        row,
                        bit,
                        rows,
                        bits,
                    });
                }
            }
        }
        let mut campaign = Self::plan_with_rates(config, geometry, rates)?;
        for (flat, cells) in weak_cells.iter().enumerate() {
            for &(row, bit) in cells {
                let fault = if campaign.rng.gen::<bool>() {
                    CellFault::StuckAtOne
                } else {
                    CellFault::StuckAtZero
                };
                campaign.plans[flat].stuck.push(StuckCell { row, bit, fault });
            }
        }
        Ok(campaign)
    }

    fn plan_inner(
        config: CampaignConfig,
        geometry: &DramGeometry,
        rates: Option<&[f64]>,
    ) -> Result<Self> {
        for rate in [config.base_tra_rate, config.decay_probability] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(DramError::invalid_fault_rate(rate));
            }
        }
        if let Some(rates) = rates {
            for &rate in rates {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(DramError::invalid_fault_rate(rate));
                }
            }
        }
        let rows = geometry.rows_per_subarray;
        let planting = config.stuck_cells_per_subarray + config.weak_cells_per_subarray;
        if planting > 0 && config.first_eligible_row >= rows {
            return Err(DramError::RowOutOfRange {
                row: config.first_eligible_row,
                rows,
            });
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let bits = geometry.row_bits();
        let mut plans = Vec::new();
        for bank in 0..geometry.total_banks() {
            for subarray in 0..geometry.subarrays_per_bank {
                let tra_rate = match rates {
                    Some(rates) => rates[bank * geometry.subarrays_per_bank + subarray],
                    None => {
                        let jitter = 1.0 + config.tra_rate_spread * (rng.gen::<f64>() * 2.0 - 1.0);
                        (config.base_tra_rate * jitter).clamp(0.0, 1.0)
                    }
                };
                // Sample distinct cells so stuck and weak populations never
                // overlap (a stuck cell cannot also decay).
                let mut taken = HashSet::new();
                let mut sample_cells = |rng: &mut StdRng, count: usize| -> Vec<(usize, usize)> {
                    let mut cells = Vec::with_capacity(count);
                    while cells.len() < count {
                        let row = rng.gen_range(config.first_eligible_row..rows);
                        let bit = rng.gen_range(0..bits);
                        if taken.insert((row, bit)) {
                            cells.push((row, bit));
                        }
                    }
                    cells
                };
                let stuck = sample_cells(&mut rng, config.stuck_cells_per_subarray)
                    .into_iter()
                    .map(|(row, bit)| StuckCell {
                        row,
                        bit,
                        fault: if rng.gen::<bool>() {
                            CellFault::StuckAtOne
                        } else {
                            CellFault::StuckAtZero
                        },
                    })
                    .collect();
                let weak = sample_cells(&mut rng, config.weak_cells_per_subarray);
                plans.push(SubarrayFaultPlan {
                    bank,
                    subarray,
                    tra_rate,
                    stuck,
                    weak,
                });
            }
        }
        Ok(FaultCampaign {
            config,
            geometry: *geometry,
            plans,
            rng,
            decay_flips: 0,
            telemetry: None,
            event_ns: 0,
        })
    }

    /// Attaches a telemetry registry: [`apply`](Self::apply) then emits one
    /// `campaign.stuck_cell` event per installed fault, and decay/refresh
    /// activity is counted and emitted as `campaign.decay_flip` events.
    pub fn set_telemetry(&mut self, registry: Registry) {
        self.telemetry = Some(CampaignTelemetry::new(registry));
    }

    /// The campaign's configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The sampled per-subarray fault profiles.
    pub fn plans(&self) -> &[SubarrayFaultPlan] {
        &self.plans
    }

    /// Total stuck-at cells across the device.
    pub fn stuck_cell_count(&self) -> usize {
        self.plans.iter().map(|p| p.stuck.len()).sum()
    }

    /// Retention-decay flips injected so far.
    pub fn decay_flips(&self) -> u64 {
        self.decay_flips
    }

    /// Installs the plan into `device`: plants every stuck-at cell and
    /// sets each subarray's transient TRA fault rate. This replaces the
    /// old single-knob global rate — every subarray gets its own sampled
    /// probability.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError::CellOutOfRange`] /
    /// [`DramError::InvalidFaultRate`] if the plan does not fit `device`
    /// (it always fits the geometry it was planned for).
    pub fn apply(&self, device: &mut DramDevice) -> Result<()> {
        let geometry = *device.geometry();
        for plan in &self.plans {
            let id = BankId::from_flat_index(plan.bank, &geometry);
            let sa = device.bank_mut(id).subarray_mut(plan.subarray);
            sa.set_tra_fault_rate(plan.tra_rate)?;
            for cell in &plan.stuck {
                sa.inject_fault(cell.row, cell.bit, cell.fault)?;
                if let Some(tel) = &self.telemetry {
                    tel.stuck_cells.inc();
                    tel.registry.record_event(
                        Event::new("campaign.stuck_cell", self.event_ns)
                            .attr("bank", plan.bank)
                            .attr("subarray", plan.subarray)
                            .attr("row", cell.row)
                            .attr("bit", cell.bit)
                            .attr("stuck_at_one", cell.fault == CellFault::StuckAtOne),
                    );
                }
            }
        }
        Ok(())
    }

    /// Piggy-backs on the refresh scheduler: issues every due refresh
    /// against `timer`, then arms retention decay for the elapsed refresh
    /// intervals — each weak cell flips with the configured probability
    /// per interval. Call this wherever plain
    /// [`RefreshScheduler::catch_up`] would be called.
    pub fn catch_up(
        &mut self,
        scheduler: &mut RefreshScheduler,
        timer: &mut CommandTimer,
        device: &mut DramDevice,
    ) -> CampaignTick {
        let refreshes = scheduler.catch_up(timer);
        self.event_ns = timer.now_ps() / crate::timing::PS_PER_NS;
        if let Some(tel) = &self.telemetry {
            tel.refreshes.add(refreshes);
        }
        let decay_flips = self.decay(device, refreshes);
        CampaignTick {
            refreshes,
            decay_flips,
        }
    }

    /// Arms retention decay directly for `windows` elapsed refresh
    /// intervals, flipping each weak cell with the configured probability
    /// per interval. Returns the number of flips injected.
    pub fn decay(&mut self, device: &mut DramDevice, windows: u64) -> u64 {
        if windows == 0
            || self.config.decay_probability <= 0.0
            || self.config.weak_cells_per_subarray == 0
        {
            return 0;
        }
        let mut flips = 0;
        for _ in 0..windows {
            for plan in &self.plans {
                let id = BankId::from_flat_index(plan.bank, &self.geometry);
                for &(row, bit) in &plan.weak {
                    if self.rng.gen_bool(self.config.decay_probability) {
                        let loc = RowLocation {
                            bank: id,
                            subarray: plan.subarray,
                            row,
                        };
                        let mut data = device.peek(loc);
                        data.set(bit, !data.get(bit));
                        device.poke(loc, data);
                        flips += 1;
                        if let Some(tel) = &self.telemetry {
                            tel.decay_flips.inc();
                            tel.registry.record_event(
                                Event::new("campaign.decay_flip", self.event_ns)
                                    .attr("bank", plan.bank)
                                    .attr("subarray", plan.subarray)
                                    .attr("row", row)
                                    .attr("bit", bit),
                            );
                        }
                    }
                }
            }
        }
        self.decay_flips += flips;
        flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refresh::RefreshParams;
    use crate::timing::{AapMode, TimingParams};

    fn config() -> CampaignConfig {
        CampaignConfig {
            seed: 7,
            base_tra_rate: 0.01,
            tra_rate_spread: 0.5,
            stuck_cells_per_subarray: 2,
            weak_cells_per_subarray: 3,
            decay_probability: 0.25,
            first_eligible_row: 8,
        }
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let g = DramGeometry::tiny();
        let a = FaultCampaign::plan(config(), &g).unwrap();
        let b = FaultCampaign::plan(config(), &g).unwrap();
        assert_eq!(a.plans(), b.plans());
        let c = FaultCampaign::plan(CampaignConfig { seed: 8, ..config() }, &g).unwrap();
        assert_ne!(a.plans(), c.plans(), "different seed, different plan");
    }

    #[test]
    fn rates_vary_per_subarray_and_respect_bounds() {
        let g = DramGeometry::tiny();
        let campaign = FaultCampaign::plan(config(), &g).unwrap();
        let rates: Vec<f64> = campaign.plans().iter().map(|p| p.tra_rate).collect();
        assert_eq!(rates.len(), 4, "2 banks x 2 subarrays");
        assert!(rates.iter().all(|r| (0.0..=1.0).contains(r)));
        assert!(
            rates.windows(2).any(|w| w[0] != w[1]),
            "spread should differentiate subarrays: {rates:?}"
        );
        for p in campaign.plans() {
            let lo = 0.01 * (1.0 - 0.5);
            let hi = 0.01 * (1.0 + 0.5);
            assert!(p.tra_rate >= lo && p.tra_rate <= hi, "{}", p.tra_rate);
        }
    }

    #[test]
    fn stuck_cells_avoid_reserved_rows_and_install() {
        let g = DramGeometry::tiny();
        let campaign = FaultCampaign::plan(config(), &g).unwrap();
        assert_eq!(campaign.stuck_cell_count(), 2 * 4);
        for p in campaign.plans() {
            for c in &p.stuck {
                assert!(c.row >= 8, "stuck cell in reserved row {}", c.row);
            }
            for &(row, _) in &p.weak {
                assert!(row >= 8);
            }
        }
        let mut device = DramDevice::new(g);
        campaign.apply(&mut device).unwrap();
        // Every subarray got its sampled rate.
        for p in campaign.plans() {
            let id = BankId::from_flat_index(p.bank, &g);
            let got = device.bank(id).subarray(p.subarray).tra_fault_rate();
            assert!((got - p.tra_rate).abs() < 1e-9);
        }
    }

    #[test]
    fn explicit_rates_override_sampling() {
        let g = DramGeometry::tiny();
        let rates = [0.1, 0.2, 0.3, 0.4];
        let campaign =
            FaultCampaign::plan_with_rates(config(), &g, &rates).unwrap();
        let got: Vec<f64> = campaign.plans().iter().map(|p| p.tra_rate).collect();
        assert_eq!(got, rates);
        assert!(FaultCampaign::plan_with_rates(config(), &g, &rates[..2]).is_err());
        assert!(matches!(
            FaultCampaign::plan_with_rates(config(), &g, &[0.1, 0.2, 0.3, 1.5]),
            Err(DramError::InvalidFaultRate { .. })
        ));
    }

    #[test]
    fn from_profile_arms_rates_and_weak_cells_deterministically() {
        let g = DramGeometry::tiny();
        let rates = [0.001, 0.02, 0.0003, 0.15];
        let weak: Vec<Vec<(usize, usize)>> =
            vec![vec![(9, 3)], vec![], vec![(12, 77), (30, 0)], vec![(8, 127)]];
        let cfg = CampaignConfig { stuck_cells_per_subarray: 1, ..config() };
        let a = FaultCampaign::from_profile(cfg, &g, &rates, &weak).unwrap();
        let b = FaultCampaign::from_profile(cfg, &g, &rates, &weak).unwrap();
        assert_eq!(a.plans(), b.plans(), "profile replay is deterministic");
        let got: Vec<f64> = a.plans().iter().map(|p| p.tra_rate).collect();
        assert_eq!(got, rates);
        // Profile weak cells land on top of the config's own sampled stuck cells.
        assert_eq!(a.stuck_cell_count(), 4 + weak.iter().map(Vec::len).sum::<usize>());
        assert!(a.plans()[2].stuck.iter().any(|c| (c.row, c.bit) == (12, 77)));
        // Installs cleanly into a device of the planned geometry.
        let mut device = DramDevice::new(g);
        a.apply(&mut device).unwrap();
    }

    #[test]
    fn from_profile_rejects_bad_shapes() {
        let g = DramGeometry::tiny();
        let rates = [0.0; 4];
        assert!(matches!(
            FaultCampaign::from_profile(config(), &g, &rates, &[vec![], vec![]]),
            Err(DramError::RowOutOfRange { .. })
        ));
        let weak = vec![vec![(40, 0)], vec![], vec![], vec![]];
        assert!(matches!(
            FaultCampaign::from_profile(config(), &g, &rates, &weak),
            Err(DramError::CellOutOfRange { row: 40, .. })
        ));
        let weak = vec![vec![(9, 200)], vec![], vec![], vec![]];
        assert!(matches!(
            FaultCampaign::from_profile(config(), &g, &rates, &weak),
            Err(DramError::CellOutOfRange { bit: 200, .. })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let g = DramGeometry::tiny();
        let bad_rate = CampaignConfig { base_tra_rate: 1.5, ..config() };
        assert!(matches!(
            FaultCampaign::plan(bad_rate, &g),
            Err(DramError::InvalidFaultRate { .. })
        ));
        let bad_row = CampaignConfig { first_eligible_row: 32, ..config() };
        assert!(matches!(
            FaultCampaign::plan(bad_row, &g),
            Err(DramError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn decay_flips_weak_cells_deterministically() {
        let g = DramGeometry::tiny();
        let run = || {
            let mut campaign = FaultCampaign::plan(config(), &g).unwrap();
            let mut device = DramDevice::new(g);
            campaign.apply(&mut device).unwrap();
            let flips = campaign.decay(&mut device, 16);
            (flips, campaign.decay_flips())
        };
        let (flips_a, total_a) = run();
        let (flips_b, total_b) = run();
        assert_eq!(flips_a, flips_b, "seeded decay replays identically");
        assert_eq!(total_a, total_b);
        assert!(flips_a > 0, "16 windows x 12 weak cells x p=0.25 must flip");
    }

    #[test]
    fn telemetry_counts_injections_and_decay() {
        use ambit_telemetry::Registry;
        let g = DramGeometry::tiny();
        let reg = Registry::new();
        let mut campaign = FaultCampaign::plan(config(), &g).unwrap();
        campaign.set_telemetry(reg.clone());
        let mut device = DramDevice::new(g);
        campaign.apply(&mut device).unwrap();
        assert_eq!(
            reg.counter_value("ambit_campaign_stuck_cells_total", &[]),
            Some(campaign.stuck_cell_count() as u64)
        );
        let flips = campaign.decay(&mut device, 16);
        assert_eq!(
            reg.counter_value("ambit_campaign_decay_flips_total", &[]),
            Some(flips)
        );
        let events = reg.events();
        let stuck_events = events.iter().filter(|e| e.name == "campaign.stuck_cell").count();
        let decay_events = events.iter().filter(|e| e.name == "campaign.decay_flip").count();
        assert_eq!(stuck_events, campaign.stuck_cell_count());
        assert_eq!(decay_events as u64, flips);
    }

    #[test]
    fn catch_up_piggybacks_on_refresh_scheduler() {
        let g = DramGeometry::tiny();
        let mut campaign = FaultCampaign::plan(config(), &g).unwrap();
        let mut device = DramDevice::new(g);
        campaign.apply(&mut device).unwrap();
        let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Overlapped);
        let mut sched = RefreshScheduler::new(RefreshParams::ddr3_4gb());
        // Nothing due yet: no refreshes, no decay.
        let tick = campaign.catch_up(&mut sched, &mut timer, &mut device);
        assert_eq!(tick, CampaignTick::default());
        // Jump ~20 refresh intervals ahead.
        timer.advance_to(20 * 7_800_000 + 1);
        let tick = campaign.catch_up(&mut sched, &mut timer, &mut device);
        assert_eq!(tick.refreshes, 20);
        assert!(tick.decay_flips > 0);
        assert_eq!(campaign.decay_flips(), tick.decay_flips);
    }
}
