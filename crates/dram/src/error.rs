//! Error types for the DRAM simulator.

use std::error::Error as StdError;
use std::fmt;

use crate::subarray::Wordline;

/// Errors raised by the functional DRAM model.
///
/// Protocol violations (e.g. reading from a precharged bank) are errors, not
/// panics: the Ambit controller built on top of this crate is expected to
/// issue only legal command sequences, and tests assert that illegal ones are
/// rejected rather than silently producing garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A command referenced a row index outside the subarray.
    RowOutOfRange {
        /// Offending row index.
        row: usize,
        /// Number of rows in the subarray.
        rows: usize,
    },
    /// An ACTIVATE was issued with no wordlines raised.
    EmptyActivation,
    /// A single activation raised both the d-wordline and n-wordline of the
    /// same dual-contact cell, shorting the capacitor across the sense
    /// amplifier. No legal Ambit address maps to such a combination.
    ConflictingWordlines {
        /// The row whose two wordlines were raised together.
        row: usize,
    },
    /// ACTIVATE targeted a subarray in a bank that already has a different
    /// subarray open (a real bank can only drive one open subarray per
    /// bank-level access without subarray-level parallelism support).
    SubarrayConflict {
        /// The subarray that is currently open.
        open: usize,
        /// The subarray the command targeted.
        requested: usize,
    },
    /// READ/WRITE was issued while the bank was precharged.
    BankNotActivated,
    /// PRECHARGE/ACTIVATE ordering violation.
    BankAlreadyActivated,
    /// Charge sharing between the raised cells produced zero bitline
    /// deviation on at least one bitline, so the sensed value is undefined.
    ///
    /// This occurs when an even number of cells with perfectly opposing
    /// values are activated from the precharged state — a sequence the Ambit
    /// protocol never issues. See [`TieBreak`](crate::subarray::TieBreak)
    /// for opting into nondeterministic resolution instead.
    AmbiguousChargeSharing {
        /// Index of the first undefined bitline.
        bitline: usize,
        /// Wordlines that were raised.
        wordlines: Vec<Wordline>,
    },
    /// A row participating in a charge-sharing activation has exceeded the
    /// retention window since its last refresh, so the analog result is
    /// unreliable (paper Section 3.2, issue 4). Only raised in strict
    /// retention mode.
    RetentionViolation {
        /// The stale row.
        row: usize,
        /// Nanoseconds since the row was last refreshed or rewritten.
        elapsed_ns: u64,
        /// Configured retention window in nanoseconds.
        retention_ns: u64,
    },
    /// A column access was out of range for the row buffer.
    ColumnOutOfRange {
        /// Offending byte offset.
        byte_offset: usize,
        /// Row size in bytes.
        row_bytes: usize,
    },
    /// A timing constraint would be violated by issuing the command at the
    /// requested time (only raised by the strict-timing controller).
    TimingViolation {
        /// Human-readable constraint name, e.g. `"tRAS"`.
        constraint: &'static str,
        /// Earliest legal issue time in picoseconds.
        earliest_ps: u64,
        /// Requested issue time in picoseconds.
        requested_ps: u64,
    },
    /// Address decoding failed (e.g. a reserved address with no mapping).
    UnmappedAddress {
        /// The raw row address.
        address: usize,
    },
    /// A fault-injection rate was not a probability in `[0, 1]` (or was
    /// NaN). The rate is carried as raw IEEE-754 bits so the error type
    /// keeps its `Eq` implementation.
    InvalidFaultRate {
        /// The offending rate, as [`f64::to_bits`].
        rate_bits: u64,
    },
    /// Scheduler accounting produced a completion earlier than the
    /// request's arrival. Latencies are finish − arrival by construction;
    /// a negative value can only come from an accounting bug (e.g. a stale
    /// clock), so it is surfaced as a typed error instead of being clamped.
    NegativeLatency {
        /// Arrival time of the request, picoseconds.
        arrival_ps: u64,
        /// Computed finish time, picoseconds.
        finish_ps: u64,
    },
    /// A fault-injection target referenced a cell outside the subarray.
    CellOutOfRange {
        /// Offending row index.
        row: usize,
        /// Offending bit index.
        bit: usize,
        /// Number of rows in the subarray.
        rows: usize,
        /// Row width in bits.
        bits: usize,
    },
}

impl DramError {
    /// Builds an [`DramError::InvalidFaultRate`] from the offending rate.
    pub fn invalid_fault_rate(rate: f64) -> Self {
        DramError::InvalidFaultRate {
            rate_bits: rate.to_bits(),
        }
    }
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for subarray with {rows} rows")
            }
            DramError::EmptyActivation => write!(f, "activation raised no wordlines"),
            DramError::ConflictingWordlines { row } => write!(
                f,
                "activation raised both wordlines of dual-contact row {row}"
            ),
            DramError::SubarrayConflict { open, requested } => write!(
                f,
                "subarray {requested} requested while subarray {open} is open"
            ),
            DramError::BankNotActivated => write!(f, "bank is precharged; activate a row first"),
            DramError::BankAlreadyActivated => {
                write!(f, "bank already has an open row; precharge first")
            }
            DramError::AmbiguousChargeSharing { bitline, .. } => write!(
                f,
                "charge sharing produced zero deviation on bitline {bitline}; sensed value undefined"
            ),
            DramError::RetentionViolation {
                row,
                elapsed_ns,
                retention_ns,
            } => write!(
                f,
                "row {row} stale: {elapsed_ns} ns since refresh exceeds retention window {retention_ns} ns"
            ),
            DramError::ColumnOutOfRange {
                byte_offset,
                row_bytes,
            } => write!(
                f,
                "column byte offset {byte_offset} out of range for {row_bytes}-byte row"
            ),
            DramError::TimingViolation {
                constraint,
                earliest_ps,
                requested_ps,
            } => write!(
                f,
                "{constraint} violated: earliest legal issue {earliest_ps} ps, requested {requested_ps} ps"
            ),
            DramError::UnmappedAddress { address } => {
                write!(f, "row address {address} has no wordline mapping")
            }
            DramError::InvalidFaultRate { rate_bits } => write!(
                f,
                "fault rate {} is not a probability in [0, 1]",
                f64::from_bits(*rate_bits)
            ),
            DramError::NegativeLatency {
                arrival_ps,
                finish_ps,
            } => write!(
                f,
                "scheduler accounting bug: request arriving at {arrival_ps} ps finished at {finish_ps} ps"
            ),
            DramError::CellOutOfRange {
                row,
                bit,
                rows,
                bits,
            } => write!(
                f,
                "cell ({row}, {bit}) out of range for {rows}x{bits} subarray"
            ),
        }
    }
}

impl StdError for DramError {}

/// Convenience alias used throughout the DRAM crate.
pub type Result<T> = std::result::Result<T, DramError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors: Vec<DramError> = vec![
            DramError::RowOutOfRange { row: 5, rows: 4 },
            DramError::EmptyActivation,
            DramError::SubarrayConflict { open: 0, requested: 1 },
            DramError::BankNotActivated,
            DramError::BankAlreadyActivated,
            DramError::AmbiguousChargeSharing { bitline: 3, wordlines: vec![] },
            DramError::RetentionViolation { row: 1, elapsed_ns: 100, retention_ns: 64 },
            DramError::ColumnOutOfRange { byte_offset: 9000, row_bytes: 8192 },
            DramError::TimingViolation { constraint: "tRAS", earliest_ps: 100, requested_ps: 50 },
            DramError::UnmappedAddress { address: 12 },
            DramError::invalid_fault_rate(1.5),
            DramError::NegativeLatency { arrival_ps: 100, finish_ps: 50 },
            DramError::CellOutOfRange { row: 40, bit: 3, rows: 32, bits: 128 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: StdError + Send + Sync + 'static>(_: E) {}
        takes_error(DramError::EmptyActivation);
    }
}
