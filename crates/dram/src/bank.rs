//! A DRAM bank: a set of subarrays sharing command/address logic.
//!
//! The bank enforces the one-open-row discipline of the DRAM protocol: all
//! ACTIVATEs between two PRECHARGEs must target the same subarray (the
//! paper's AAP primitive relies on exactly this — the second ACTIVATE of an
//! AAP reaches a subarray whose sense amplifiers are already driving data).

use crate::bitrow::BitRow;
use crate::error::{DramError, Result};
use crate::subarray::{Subarray, SubarrayStats, Wordline};

/// A bank of subarrays with at most one subarray activated at a time.
///
/// # Examples
///
/// ```
/// use ambit_dram::{Bank, BitRow, Wordline};
///
/// let mut bank = Bank::new(2, 16, 64);
/// bank.subarray_mut(0).poke_row(3, BitRow::ones(64));
/// // RowClone-FPM within subarray 0: copy row 3 into row 4.
/// bank.activate(0, &[Wordline::data(3)])?;
/// bank.activate(0, &[Wordline::data(4)])?;
/// bank.precharge()?;
/// assert_eq!(bank.subarray(0).peek_row(4), BitRow::ones(64));
/// # Ok::<(), ambit_dram::DramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Bank {
    subarrays: Vec<Subarray>,
    /// Currently activated subarrays, in activation order (the last one is
    /// the column-access target). Without SALP at most one is open.
    open: Vec<usize>,
    /// Subarray-level parallelism (SALP, Kim et al. ISCA'12): when enabled,
    /// multiple subarrays of the bank may hold open rows simultaneously.
    salp: bool,
}

impl Bank {
    /// Creates a bank of `subarrays` subarrays, each with `rows` rows of
    /// `bits` bits.
    pub fn new(subarrays: usize, rows: usize, bits: usize) -> Self {
        Bank {
            subarrays: (0..subarrays).map(|_| Subarray::new(rows, bits)).collect(),
            open: Vec::new(),
            salp: false,
        }
    }

    /// Enables or disables subarray-level parallelism (SALP). Must be
    /// toggled while the bank is precharged.
    ///
    /// # Panics
    ///
    /// Panics if any subarray is currently activated.
    pub fn set_salp(&mut self, salp: bool) {
        assert!(self.open.is_empty(), "toggle SALP on a precharged bank");
        self.salp = salp;
    }

    /// Whether SALP is enabled.
    pub fn salp(&self) -> bool {
        self.salp
    }

    /// Number of subarrays.
    pub fn subarray_count(&self) -> usize {
        self.subarrays.len()
    }

    /// Immutable access to a subarray.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn subarray(&self, index: usize) -> &Subarray {
        &self.subarrays[index]
    }

    /// Mutable access to a subarray (for test setup / driver backdoors).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn subarray_mut(&mut self, index: usize) -> &mut Subarray {
        &mut self.subarrays[index]
    }

    /// Index of the current column-access subarray (the most recently
    /// activated one), if any.
    pub fn open_subarray(&self) -> Option<usize> {
        self.open.last().copied()
    }

    /// All currently open subarrays, in activation order.
    pub fn open_subarrays(&self) -> &[usize] {
        &self.open
    }

    /// Returns `true` if some subarray in the bank is activated.
    pub fn is_activated(&self) -> bool {
        !self.open.is_empty()
    }

    /// Issues an ACTIVATE to `subarray`, raising `wordlines`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayConflict`] if a different subarray is
    /// already open, plus any error from
    /// [`Subarray::activate`].
    pub fn activate(&mut self, subarray: usize, wordlines: &[Wordline]) -> Result<&BitRow> {
        if subarray >= self.subarrays.len() {
            return Err(DramError::RowOutOfRange {
                row: subarray,
                rows: self.subarrays.len(),
            });
        }
        if !self.salp {
            if let Some(&open) = self.open.last() {
                if open != subarray {
                    return Err(DramError::SubarrayConflict {
                        open,
                        requested: subarray,
                    });
                }
            }
        }
        let sense = self.subarrays[subarray].activate(wordlines)?;
        if !self.open.contains(&subarray) {
            self.open.push(subarray);
        }
        Ok(sense)
    }

    /// Issues a SALP-style precharge to one subarray, leaving others open.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActivated`] if that subarray is not
    /// open.
    pub fn precharge_subarray(&mut self, subarray: usize) -> Result<()> {
        match self.open.iter().position(|&s| s == subarray) {
            Some(pos) => {
                self.open.remove(pos);
                self.subarrays[subarray].precharge()
            }
            None => Err(DramError::BankNotActivated),
        }
    }

    /// Issues a bank-level PRECHARGE, closing every open subarray.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActivated`] if no subarray is open.
    pub fn precharge(&mut self) -> Result<()> {
        if self.open.is_empty() {
            return Err(DramError::BankNotActivated);
        }
        for idx in std::mem::take(&mut self.open) {
            self.subarrays[idx].precharge()?;
        }
        Ok(())
    }

    /// Reads bytes from the open row buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActivated`] if no subarray is open, or a
    /// column-range error.
    pub fn read_bytes(&mut self, byte_offset: usize, out: &mut [u8]) -> Result<()> {
        match self.open.last().copied() {
            Some(idx) => self.subarrays[idx].read_bytes(byte_offset, out),
            None => Err(DramError::BankNotActivated),
        }
    }

    /// Writes bytes into the open row buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActivated`] if no subarray is open, or a
    /// column-range error.
    pub fn write_bytes(&mut self, byte_offset: usize, data: &[u8]) -> Result<()> {
        match self.open.last().copied() {
            Some(idx) => self.subarrays[idx].write_bytes(byte_offset, data),
            None => Err(DramError::BankNotActivated),
        }
    }

    /// Sense-amplifier contents of the column-access subarray, if any.
    pub fn sense(&self) -> Option<&BitRow> {
        self.open
            .last()
            .and_then(|&idx| self.subarrays[idx].sense())
    }

    /// Aggregated command statistics across all subarrays.
    pub fn stats(&self) -> SubarrayStats {
        let mut total = SubarrayStats::default();
        for sa in &self.subarrays {
            let s = sa.stats();
            total.activations += s.activations;
            total.multi_row_activations += s.multi_row_activations;
            total.triple_row_activations += s.triple_row_activations;
            total.copy_activations += s.copy_activations;
            total.precharges += s.precharges;
            total.column_reads += s.column_reads;
            total.column_writes += s.column_writes;
            total.word_parallel_charge_shares += s.word_parallel_charge_shares;
            total.scalar_charge_shares += s.scalar_charge_shares;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subarray_conflict_detected() {
        let mut bank = Bank::new(2, 8, 8);
        bank.activate(0, &[Wordline::data(0)]).unwrap();
        let err = bank.activate(1, &[Wordline::data(0)]).unwrap_err();
        assert_eq!(
            err,
            DramError::SubarrayConflict {
                open: 0,
                requested: 1
            }
        );
        bank.precharge().unwrap();
        bank.activate(1, &[Wordline::data(0)]).unwrap();
        assert_eq!(bank.open_subarray(), Some(1));
    }

    #[test]
    fn same_subarray_back_to_back_is_allowed() {
        let mut bank = Bank::new(2, 8, 8);
        bank.subarray_mut(0).poke_row(1, BitRow::ones(8));
        bank.activate(0, &[Wordline::data(1)]).unwrap();
        bank.activate(0, &[Wordline::data(2)]).unwrap();
        bank.precharge().unwrap();
        assert_eq!(bank.subarray(0).peek_row(2), BitRow::ones(8));
        assert!(!bank.is_activated());
    }

    #[test]
    fn reads_and_writes_require_open_row() {
        let mut bank = Bank::new(1, 4, 64);
        let mut buf = [0u8; 4];
        assert_eq!(
            bank.read_bytes(0, &mut buf).unwrap_err(),
            DramError::BankNotActivated
        );
        bank.activate(0, &[Wordline::data(0)]).unwrap();
        bank.write_bytes(0, &[1, 2, 3, 4]).unwrap();
        bank.read_bytes(0, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        assert!(bank.sense().is_some());
    }

    #[test]
    fn salp_allows_multiple_open_subarrays() {
        let mut bank = Bank::new(4, 8, 8);
        bank.set_salp(true);
        bank.subarray_mut(0).poke_row(1, BitRow::ones(8));
        bank.subarray_mut(2).poke_row(1, BitRow::ones(8));
        bank.activate(0, &[Wordline::data(1)]).unwrap();
        bank.activate(2, &[Wordline::data(1)]).unwrap();
        assert_eq!(bank.open_subarrays(), &[0, 2]);
        // Copy in each open subarray independently.
        bank.activate(0, &[Wordline::data(3)]).unwrap();
        bank.activate(2, &[Wordline::data(4)]).unwrap();
        bank.precharge_subarray(0).unwrap();
        assert_eq!(bank.open_subarrays(), &[2]);
        bank.precharge().unwrap();
        assert_eq!(bank.subarray(0).peek_row(3), BitRow::ones(8));
        assert_eq!(bank.subarray(2).peek_row(4), BitRow::ones(8));
    }

    #[test]
    fn salp_toggle_requires_precharged_bank() {
        let mut bank = Bank::new(2, 8, 8);
        bank.activate(0, &[Wordline::data(0)]).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            bank.set_salp(true);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn precharge_subarray_requires_open() {
        let mut bank = Bank::new(2, 8, 8);
        assert_eq!(
            bank.precharge_subarray(0).unwrap_err(),
            DramError::BankNotActivated
        );
    }

    #[test]
    fn invalid_subarray_index() {
        let mut bank = Bank::new(2, 8, 8);
        assert!(bank.activate(5, &[Wordline::data(0)]).is_err());
    }

    #[test]
    fn stats_aggregate_across_subarrays() {
        let mut bank = Bank::new(2, 8, 8);
        bank.activate(0, &[Wordline::data(0)]).unwrap();
        bank.precharge().unwrap();
        bank.activate(1, &[Wordline::data(0)]).unwrap();
        bank.precharge().unwrap();
        assert_eq!(bank.stats().activations, 2);
        assert_eq!(bank.stats().precharges, 2);
    }
}
