//! DRAM energy model calibrated to the paper's Table 3.
//!
//! The paper estimates energy with the Rambus power model for DDR3-1333 and
//! reports that raising each *additional* wordline increases activation
//! energy by 22 %. We model:
//!
//! * activation energy `E_act · (1 + 0.22·(wordlines − 1))`,
//! * a small precharge energy,
//! * per-byte channel transfer energy for data moved over the DDR bus.
//!
//! The two free coefficients (`E_act`, channel energy) are calibrated so the
//! model reproduces Table 3 (see the table tests below and the
//! `table3_energy` harness in `ambit-bench`).

/// Energy coefficients for DRAM operations. All values in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of one single-wordline ACTIVATE (row activation + restore).
    pub activate_nj: f64,
    /// Fractional energy increase per additional wordline raised
    /// (paper: 0.22).
    pub extra_wordline_factor: f64,
    /// Energy of one PRECHARGE.
    pub precharge_nj: f64,
    /// Channel + I/O energy per kilobyte transferred over the DDR bus.
    /// The paper's DDR3 baseline spends ~46 nJ/KB per direction, derived
    /// from Table 3 (93.7 nJ/KB for copy = one read + one write per byte).
    pub channel_nj_per_kb: f64,
}

impl EnergyModel {
    /// Coefficients calibrated against the paper's Table 3 (DDR3-1333).
    pub fn ddr3_1333() -> Self {
        EnergyModel {
            activate_nj: 2.95,
            extra_wordline_factor: 0.22,
            precharge_nj: 0.40,
            channel_nj_per_kb: 46.3,
        }
    }

    /// Energy of an ACTIVATE raising `wordlines` wordlines.
    ///
    /// # Panics
    ///
    /// Panics if `wordlines` is zero.
    pub fn activate_nj(&self, wordlines: usize) -> f64 {
        assert!(wordlines > 0, "activation must raise at least one wordline");
        self.activate_nj * (1.0 + self.extra_wordline_factor * (wordlines as f64 - 1.0))
    }

    /// Energy of one PRECHARGE.
    pub fn precharge_nj(&self) -> f64 {
        self.precharge_nj
    }

    /// Channel energy to move `bytes` over the DDR bus (one direction).
    pub fn transfer_nj(&self, bytes: u64) -> f64 {
        self.channel_nj_per_kb * bytes as f64 / 1024.0
    }

    /// Energy per kilobyte of a conventional (non-Ambit) bitwise operation
    /// that moves `transfers_per_byte` bytes over the channel per byte of
    /// output: 2 for copy/NOT (read src, write dst), 3 for two-operand ops.
    pub fn conventional_nj_per_kb(&self, transfers_per_byte: u64) -> f64 {
        self.channel_nj_per_kb * transfers_per_byte as f64
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::ddr3_1333()
    }
}

/// Running energy account for a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyAccount {
    /// Accumulated activation energy (nJ).
    pub activate_nj: f64,
    /// Accumulated precharge energy (nJ).
    pub precharge_nj: f64,
    /// Accumulated channel transfer energy (nJ).
    pub transfer_nj: f64,
    /// Number of ACTIVATE commands recorded.
    pub activations: u64,
    /// Number of PRECHARGE commands recorded.
    pub precharges: u64,
    /// Bytes moved over the channel.
    pub bytes_transferred: u64,
}

impl EnergyAccount {
    /// A zeroed account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an ACTIVATE raising `wordlines` wordlines.
    pub fn record_activate(&mut self, model: &EnergyModel, wordlines: usize) {
        self.activate_nj += model.activate_nj(wordlines);
        self.activations += 1;
    }

    /// Records a PRECHARGE.
    pub fn record_precharge(&mut self, model: &EnergyModel) {
        self.precharge_nj += model.precharge_nj();
        self.precharges += 1;
    }

    /// Records a channel transfer of `bytes`.
    pub fn record_transfer(&mut self, model: &EnergyModel, bytes: u64) {
        self.transfer_nj += model.transfer_nj(bytes);
        self.bytes_transferred += bytes;
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.activate_nj + self.precharge_nj + self.transfer_nj
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &EnergyAccount) {
        self.activate_nj += other.activate_nj;
        self.precharge_nj += other.precharge_nj;
        self.transfer_nj += other.transfer_nj;
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.bytes_transferred += other.bytes_transferred;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW_KB: f64 = 8.0; // 8 KB row

    /// Helper: total energy of a sequence of (first-act wordlines,
    /// second-act wordlines) AAPs plus (wordlines,) APs, per KB of row.
    fn per_kb(aaps: &[(usize, usize)], aps: &[usize]) -> f64 {
        let m = EnergyModel::ddr3_1333();
        let mut total = 0.0;
        for &(w1, w2) in aaps {
            total += m.activate_nj(w1) + m.activate_nj(w2) + m.precharge_nj();
        }
        for &w in aps {
            total += m.activate_nj(w) + m.precharge_nj();
        }
        total / ROW_KB
    }

    #[test]
    fn table3_not_energy() {
        // not = AAP(Di,B5); AAP(B4,Dk): all single/single. Paper: 1.6 nJ/KB.
        let e = per_kb(&[(1, 1), (1, 1)], &[]);
        assert!((e - 1.6).abs() < 0.12, "not: {e} nJ/KB vs paper 1.6");
    }

    #[test]
    fn table3_and_or_energy() {
        // and = 3 plain AAPs + AAP(B12 → triple, Dk). Paper: 3.2 nJ/KB.
        let e = per_kb(&[(1, 1), (1, 1), (1, 1), (3, 1)], &[]);
        assert!((e - 3.2).abs() < 0.25, "and/or: {e} nJ/KB vs paper 3.2");
    }

    #[test]
    fn table3_nand_nor_energy() {
        // nand = 3 plain AAPs + AAP(B12, B5) + AAP(B4, Dk). Paper: 4.0 nJ/KB.
        let e = per_kb(&[(1, 1), (1, 1), (1, 1), (3, 1), (1, 1)], &[]);
        assert!((e - 4.0).abs() < 0.3, "nand/nor: {e} nJ/KB vs paper 4.0");
    }

    #[test]
    fn table3_xor_xnor_energy() {
        // xor = AAP(Di,B8:2wl); AAP(Dj,B9:2wl); AAP(C0,B10:2wl); AP(B14:3wl);
        //       AP(B15:3wl); AAP(C1,B2); AAP(B12:3wl,Dk). Paper: 5.5 nJ/KB.
        let e = per_kb(&[(1, 2), (1, 2), (1, 2), (1, 1), (3, 1)], &[3, 3]);
        assert!((e - 5.5).abs() < 0.45, "xor/xnor: {e} nJ/KB vs paper 5.5");
    }

    #[test]
    fn table3_ddr3_baseline_energies() {
        let m = EnergyModel::ddr3_1333();
        // NOT moves 2 bytes per output byte (read + write): paper 93.7 nJ/KB.
        let not = m.conventional_nj_per_kb(2);
        assert!((not - 93.7).abs() < 1.5, "ddr3 not: {not}");
        // Two-operand ops move 3 bytes per output byte: paper 137.9 nJ/KB.
        let two = m.conventional_nj_per_kb(3);
        assert!((two - 137.9).abs() < 1.5, "ddr3 and: {two}");
    }

    #[test]
    fn table3_reduction_factors() {
        // Paper: Ambit reduces energy 25.1X–59.5X vs DDR3.
        let not_red = 93.7 / per_kb(&[(1, 1), (1, 1)], &[]);
        let xor_red = 137.9 / per_kb(&[(1, 2), (1, 2), (1, 2), (1, 1), (3, 1)], &[3, 3]);
        assert!(not_red > 50.0 && not_red < 70.0, "not reduction {not_red}");
        assert!(xor_red > 20.0 && xor_red < 30.0, "xor reduction {xor_red}");
    }

    #[test]
    fn extra_wordlines_cost_22_percent_each() {
        let m = EnergyModel::ddr3_1333();
        let e1 = m.activate_nj(1);
        let e3 = m.activate_nj(3);
        assert!((e3 / e1 - 1.44).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one wordline")]
    fn zero_wordline_activation_panics() {
        EnergyModel::ddr3_1333().activate_nj(0);
    }

    #[test]
    fn account_accumulates_and_merges() {
        let m = EnergyModel::ddr3_1333();
        let mut a = EnergyAccount::new();
        a.record_activate(&m, 1);
        a.record_precharge(&m);
        a.record_transfer(&m, 1024);
        let mut b = EnergyAccount::new();
        b.record_activate(&m, 3);
        b.merge(&a);
        assert_eq!(b.activations, 2);
        assert_eq!(b.precharges, 1);
        assert_eq!(b.bytes_transferred, 1024);
        assert!((b.total_nj() - (m.activate_nj(1) + m.activate_nj(3) + m.precharge_nj() + m.transfer_nj(1024))).abs() < 1e-9);
    }
}
