//! # ambit-dram — commodity DRAM substrate for the Ambit reproduction
//!
//! This crate models the parts of a DRAM device that the Ambit accelerator
//! (Seshadri et al., MICRO-50 2017) builds upon:
//!
//! * a **functional array model** ([`Subarray`], [`Bank`], [`DramDevice`])
//!   with the analog activation semantics Ambit exploits — multi-wordline
//!   charge sharing (triple-row activation computes a bitwise majority) and
//!   dual-contact n-wordlines (sensing/storing through bitline-bar negates);
//! * a **timing model** ([`TimingParams`], [`CommandTimer`]) with JEDEC-style
//!   constraints and the two AAP latencies of paper Section 5.3 (naive
//!   80 ns, split-row-decoder 49 ns on DDR3-1600);
//! * an **energy model** ([`EnergyModel`]) calibrated to the paper's Table 3
//!   (+22 % activation energy per extra wordline);
//! * **RowClone** in-DRAM copy ([`rowclone`]) in FPM/PSM/controller modes;
//! * an **FR-FCFS scheduler** ([`FrFcfsScheduler`]) for baseline traffic.
//!
//! The crate deliberately knows nothing about Ambit's reserved-row layout or
//! command programs — those live in `ambit-core`, which drives these
//! primitives.
//!
//! # Example: triple-row activation is a bitwise majority
//!
//! ```
//! use ambit_dram::{BitRow, Subarray, Wordline};
//!
//! let mut sa = Subarray::new(16, 32);
//! sa.poke_row(0, BitRow::ones(32));   // A = 1
//! sa.poke_row(1, BitRow::zeros(32));  // B = 0
//! sa.poke_row(2, BitRow::ones(32));   // C = 1
//! let sensed = sa.activate(&[
//!     Wordline::data(0),
//!     Wordline::data(1),
//!     Wordline::data(2),
//! ])?;
//! assert_eq!(sensed.count_ones(), 32); // majority(1, 0, 1) = 1
//! # Ok::<(), ambit_dram::DramError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bank;
mod bitrow;
mod campaign;
mod controller;
mod device;
mod energy;
mod error;
mod geometry;
mod refresh;
pub mod rowclone;
mod scheduler;
mod subarray;
mod timing;

pub use bank::Bank;
pub use bitrow::{BitRow, IterOnes};
pub use campaign::{
    CampaignConfig, CampaignTick, FaultCampaign, StuckCell, SubarrayFaultPlan,
};
pub use controller::{
    CommandTimer, TimerShard, TimerStats, TraceCommand, TraceEntry, DEFAULT_TRACE_CAPACITY,
};
pub use device::DramDevice;
pub use energy::{EnergyAccount, EnergyModel};
pub use error::{DramError, Result};
pub use geometry::{BankId, DramGeometry, RowLocation};
pub use scheduler::{Completion, FrFcfsScheduler, MemoryRequest, ScheduleStats};
pub use refresh::{refreshed_throughput, RefreshParams, RefreshScheduler};
pub use subarray::{BitlineSide, CellFault, Subarray, SubarrayStats, TieBreak, Wordline};
pub use timing::{AapMode, TimingParams, PS_PER_NS};
