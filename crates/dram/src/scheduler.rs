//! FR-FCFS memory request scheduling (Rixner et al., ISCA'00), the
//! controller policy listed in the paper's Table 4 configuration.
//!
//! The scheduler is a timing-level model (no data movement): it consumes a
//! queue of row/column requests and drives a [`CommandTimer`], preferring
//! ready row-buffer hits over older row-buffer misses. It is used to
//! validate the streaming-bandwidth assumptions behind the baseline machine
//! models in `ambit-sys` and to measure the latency impact of Ambit
//! operations interleaved with regular traffic (paper Section 5.5.2 notes
//! the Ambit controller interleaves AAPs with ordinary requests).
//!
//! The scheduler does not own the timer: every service call borrows the
//! [`CommandTimer`] it drives, so a driver can alternate AAP programs and
//! regular traffic on *one* timeline (`AmbitMemory::execute_batch_with_
//! traffic` in `ambit-core` does exactly that). Open-row state is derived
//! from the timer — [`CommandTimer::bank_active`] is authoritative, and a
//! cached row identity is trusted only while the bank's ACT generation
//! counter ([`CommandTimer::bank_acts`]) still matches the value recorded
//! when this scheduler opened the row. A timer that arrives with rows
//! already open from prior use is therefore handled correctly (precharge
//! first), instead of issuing a protocol-violating ACTIVATE-on-open-bank.

use crate::controller::CommandTimer;
use crate::error::{DramError, Result};

/// One memory request: a 64 B cache-line read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRequest {
    /// Arrival time at the controller, picoseconds.
    pub arrival_ps: u64,
    /// Target bank (flat index).
    pub bank: usize,
    /// Target row within the bank.
    pub row: usize,
    /// Write (true) or read (false).
    pub is_write: bool,
}

/// Completion record for a serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request that was serviced.
    pub request: MemoryRequest,
    /// Time the data burst finished, picoseconds.
    pub finish_ps: u64,
    /// Whether the request hit the open row buffer.
    pub row_hit: bool,
}

/// Aggregate statistics from a scheduling run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScheduleStats {
    /// Requests serviced.
    pub serviced: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (including conflicts).
    pub row_misses: u64,
    /// Time the last request finished, picoseconds.
    pub makespan_ps: u64,
    /// Mean request latency (arrival to data) in picoseconds.
    pub mean_latency_ps: f64,
}

impl ScheduleStats {
    /// Effective data bandwidth of the run in bytes/second (64 B per
    /// request).
    pub fn bandwidth_bytes_per_s(&self) -> f64 {
        if self.makespan_ps == 0 {
            return 0.0;
        }
        (self.serviced * 64) as f64 / (self.makespan_ps as f64 * 1e-12)
    }
}

/// Row identity this scheduler last opened on a bank, tagged with the
/// timer's ACT generation at open time so external activity invalidates it.
#[derive(Debug, Clone, Copy)]
struct OpenRow {
    row: usize,
    generation: u64,
}

/// First-Ready, First-Come-First-Served scheduler over a [`CommandTimer`].
///
/// The timer is borrowed per call ([`run`](Self::run) /
/// [`service_arrived`](Self::service_arrived)) rather than owned, so AAP
/// streams and regular traffic can interleave on the same timeline.
#[derive(Debug, Default)]
pub struct FrFcfsScheduler {
    /// Rows this scheduler opened, trusted only while the timer's bank
    /// state still matches (see [`OpenRow`]).
    open_rows: Vec<Option<OpenRow>>,
    queue: Vec<MemoryRequest>,
    serviced: u64,
    row_hits: u64,
    row_misses: u64,
    makespan_ps: u64,
    total_latency_ps: u128,
}

impl FrFcfsScheduler {
    /// Creates an empty scheduler. Bank open-row state is derived from the
    /// timer at service time, so a timer with pre-existing open rows is
    /// safe: the first access to such a bank precharges it before
    /// activating.
    pub fn new() -> Self {
        FrFcfsScheduler::default()
    }

    /// Enqueues a request.
    pub fn enqueue(&mut self, request: MemoryRequest) {
        self.queue.push(request);
    }

    /// Requests still waiting to be serviced.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Cumulative statistics over everything serviced so far.
    pub fn stats(&self) -> ScheduleStats {
        ScheduleStats {
            serviced: self.serviced,
            row_hits: self.row_hits,
            row_misses: self.row_misses,
            makespan_ps: self.makespan_ps,
            mean_latency_ps: if self.serviced > 0 {
                self.total_latency_ps as f64 / self.serviced as f64
            } else {
                0.0
            },
        }
    }

    /// Services every queued request to completion, returning the new
    /// completions in service order plus cumulative stats.
    ///
    /// # Errors
    ///
    /// Propagates timing-model protocol errors (which indicate a scheduler
    /// bug rather than a workload property).
    pub fn run(&mut self, timer: &mut CommandTimer) -> Result<(Vec<Completion>, ScheduleStats)> {
        let mut completions = Vec::with_capacity(self.queue.len());
        loop {
            completions.extend(self.service_arrived(timer)?);
            // Nothing arrived is serviceable: jump to the next arrival.
            match self.queue.iter().map(|r| r.arrival_ps).min() {
                Some(next) => timer.advance_to(next),
                None => break,
            }
        }
        Ok((completions, self.stats()))
    }

    /// Services only the requests that have already arrived at the timer's
    /// current clock, without advancing time to future arrivals. This is
    /// the interleaving entry point: a driver issuing AAP programs calls it
    /// between programs so regular traffic shares the timeline (paper
    /// Section 5.5.2).
    ///
    /// # Errors
    ///
    /// Propagates timing-model protocol errors.
    pub fn service_arrived(&mut self, timer: &mut CommandTimer) -> Result<Vec<Completion>> {
        let mut completions = Vec::new();
        loop {
            let now = timer.now_ps();
            // FR-FCFS: oldest arrived row-hit first, else oldest arrived.
            let mut arrived: Vec<usize> = (0..self.queue.len())
                .filter(|&i| self.queue[i].arrival_ps <= now)
                .collect();
            if arrived.is_empty() {
                return Ok(completions);
            }
            arrived.sort_by_key(|&i| (self.queue[i].arrival_ps, i));
            let pick = arrived
                .iter()
                .copied()
                .find(|&i| {
                    let r = &self.queue[i];
                    self.open_row(timer, r.bank) == Some(r.row)
                })
                .unwrap_or(arrived[0]);
            let req = self.queue.remove(pick);
            completions.push(self.service_one(timer, req)?);
        }
    }

    /// Issues the commands for one request and records its completion.
    fn service_one(&mut self, timer: &mut CommandTimer, req: MemoryRequest) -> Result<Completion> {
        let row_hit = self.open_row(timer, req.bank) == Some(req.row);
        if !row_hit {
            // The timer, not our cache, decides whether a PRECHARGE is
            // needed: a row opened by prior/external use must be closed
            // even though we never recorded it.
            if timer.bank_active(req.bank) {
                timer.issue_precharge(req.bank)?;
            }
            timer.issue_activate_tagged(req.bank, 1, Some(req.row))?;
            self.set_open_row(
                req.bank,
                OpenRow {
                    row: req.row,
                    generation: timer.bank_acts(req.bank),
                },
            );
        }
        let finish = if req.is_write {
            timer.issue_write(req.bank)?
        } else {
            timer.issue_read(req.bank)?
        };

        // Completions cannot precede arrivals: commands issue at or after
        // the current clock, and the clock never runs ahead of an arrived
        // request's arrival time. A violation is an accounting bug, so it
        // is a typed error — not a silently clamped latency.
        let latency = finish
            .checked_sub(req.arrival_ps)
            .ok_or(DramError::NegativeLatency {
                arrival_ps: req.arrival_ps,
                finish_ps: finish,
            })?;
        self.serviced += 1;
        if row_hit {
            self.row_hits += 1;
        } else {
            self.row_misses += 1;
        }
        self.makespan_ps = self.makespan_ps.max(finish);
        self.total_latency_ps += latency as u128;
        Ok(Completion {
            request: req,
            finish_ps: finish,
            row_hit,
        })
    }

    /// The row known to be open on `bank`, derived from the timer: `None`
    /// unless the bank is active *and* our record is from the bank's
    /// current ACT generation.
    fn open_row(&self, timer: &CommandTimer, bank: usize) -> Option<usize> {
        if !timer.bank_active(bank) {
            return None;
        }
        match self.open_rows.get(bank).copied().flatten() {
            Some(open) if timer.bank_acts(bank) == open.generation => Some(open.row),
            _ => None,
        }
    }

    fn set_open_row(&mut self, bank: usize, open: OpenRow) {
        if bank >= self.open_rows.len() {
            self.open_rows.resize(bank + 1, None);
        }
        self.open_rows[bank] = Some(open);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::TraceCommand;
    use crate::timing::{AapMode, TimingParams};

    fn timer() -> CommandTimer {
        CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Overlapped)
    }

    #[test]
    fn services_all_requests() {
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new();
        for i in 0..10 {
            sched.enqueue(MemoryRequest {
                arrival_ps: 0,
                bank: 0,
                row: i % 2,
                is_write: false,
            });
        }
        let (completions, stats) = sched.run(&mut t).unwrap();
        assert_eq!(completions.len(), 10);
        assert_eq!(stats.serviced, 10);
        assert_eq!(stats.row_hits + stats.row_misses, 10);
        assert_eq!(sched.pending(), 0);
    }

    #[test]
    fn prefers_row_hits_over_older_misses() {
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new();
        // Open row 0 with the first request, then an older miss (row 1)
        // and a younger hit (row 0): FR-FCFS services the hit first.
        sched.enqueue(MemoryRequest { arrival_ps: 0, bank: 0, row: 0, is_write: false });
        sched.enqueue(MemoryRequest { arrival_ps: 1, bank: 0, row: 1, is_write: false });
        sched.enqueue(MemoryRequest { arrival_ps: 2, bank: 0, row: 0, is_write: false });
        let (completions, _) = sched.run(&mut t).unwrap();
        assert_eq!(completions[1].request.row, 0, "hit serviced before miss");
        assert!(completions[1].row_hit);
        assert_eq!(completions[2].request.row, 1);
    }

    #[test]
    fn streaming_reads_approach_peak_bandwidth() {
        // A single bank streaming one row of 64 B bursts is tCCD-limited:
        // 64 B / 5 ns = 12.8 GB/s = DDR3-1600 peak.
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new();
        for _ in 0..512 {
            sched.enqueue(MemoryRequest { arrival_ps: 0, bank: 0, row: 0, is_write: false });
        }
        let (_, stats) = sched.run(&mut t).unwrap();
        let peak = TimingParams::ddr3_1600().channel_bandwidth_bytes_per_s();
        let eff = stats.bandwidth_bytes_per_s();
        assert!(eff > 0.9 * peak, "effective {eff:.3e} vs peak {peak:.3e}");
    }

    #[test]
    fn row_conflicts_cost_bandwidth() {
        // Alternating rows in one bank forces PRE+ACT per access.
        let run = |alternate: bool| {
            let mut t = timer();
            let mut sched = FrFcfsScheduler::new();
            for i in 0..64 {
                sched.enqueue(MemoryRequest {
                    arrival_ps: i as u64 * 100_000, // spaced: no reorder help
                    bank: 0,
                    row: if alternate { i % 2 } else { 0 },
                    is_write: false,
                });
            }
            sched.run(&mut t).unwrap().1
        };
        let hit = run(false);
        let conflict = run(true);
        assert!(conflict.mean_latency_ps > hit.mean_latency_ps);
        assert_eq!(hit.row_misses, 1);
        assert_eq!(conflict.row_misses, 64);
    }

    #[test]
    fn respects_arrival_times() {
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new();
        sched.enqueue(MemoryRequest { arrival_ps: 1_000_000, bank: 0, row: 0, is_write: true });
        let (completions, _) = sched.run(&mut t).unwrap();
        assert!(completions[0].finish_ps >= 1_000_000);
    }

    #[test]
    fn reconciles_with_preexisting_timer_state() {
        // Regression: a timer that arrives with a row already open (here
        // from a raw ACTIVATE issued before the scheduler existed) used to
        // make the scheduler issue ACT-without-PRE, because its shadow
        // open_rows state started all-closed and diverged from the timer.
        let mut t = timer();
        t.issue_activate(0, 1).unwrap();
        t.set_tracing(true);
        let mut sched = FrFcfsScheduler::new();
        sched.enqueue(MemoryRequest { arrival_ps: 0, bank: 0, row: 3, is_write: false });
        let (completions, _) = sched.run(&mut t).unwrap();
        assert!(!completions[0].row_hit, "unknown open row cannot be a hit");
        let trace = t.trace().unwrap();
        assert_eq!(
            trace[0].command,
            TraceCommand::Precharge,
            "the open row must be closed before the scheduler's ACTIVATE"
        );
        assert!(matches!(trace[1].command, TraceCommand::Activate { .. }));
    }

    #[test]
    fn external_activity_invalidates_cached_row_identity() {
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new();
        sched.enqueue(MemoryRequest { arrival_ps: 0, bank: 0, row: 5, is_write: false });
        sched.run(&mut t).unwrap();
        // The scheduler left row 5 open. External code now recycles the
        // bank for a different row: PRE + ACT bumps the generation.
        t.issue_precharge(0).unwrap();
        t.issue_activate(0, 1).unwrap();
        // A request for row 5 must NOT count as a hit — the open row is no
        // longer the one the scheduler recorded.
        sched.enqueue(MemoryRequest { arrival_ps: 0, bank: 0, row: 5, is_write: false });
        let (completions, _) = sched.run(&mut t).unwrap();
        assert!(!completions[0].row_hit, "stale row identity must not hit");
    }

    #[test]
    fn service_arrived_leaves_future_requests_queued() {
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new();
        sched.enqueue(MemoryRequest { arrival_ps: 0, bank: 0, row: 0, is_write: false });
        sched.enqueue(MemoryRequest {
            arrival_ps: 1_000_000_000, // 1 ms out: far beyond this test
            bank: 0,
            row: 0,
            is_write: false,
        });
        let completions = sched.service_arrived(&mut t).unwrap();
        assert_eq!(completions.len(), 1);
        assert_eq!(sched.pending(), 1, "future arrival stays queued");
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new();
        sched.enqueue(MemoryRequest { arrival_ps: 0, bank: 0, row: 0, is_write: false });
        sched.run(&mut t).unwrap();
        sched.enqueue(MemoryRequest { arrival_ps: 0, bank: 0, row: 0, is_write: false });
        let (_, stats) = sched.run(&mut t).unwrap();
        assert_eq!(stats.serviced, 2);
        assert_eq!(stats.row_hits, 1, "second access hits the row we opened");
        assert!(stats.mean_latency_ps > 0.0);
    }
}
