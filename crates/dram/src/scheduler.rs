//! FR-FCFS memory request scheduling (Rixner et al., ISCA'00), the
//! controller policy listed in the paper's Table 4 configuration.
//!
//! The scheduler is a timing-level model (no data movement): it consumes a
//! queue of row/column requests and drives a [`CommandTimer`], preferring
//! ready row-buffer hits over older row-buffer misses. It is used to
//! validate the streaming-bandwidth assumptions behind the baseline machine
//! models in `ambit-sys` and to measure the latency impact of Ambit
//! operations interleaved with regular traffic (paper Section 5.5.2 notes
//! the Ambit controller interleaves AAPs with ordinary requests).

use crate::controller::CommandTimer;
use crate::error::Result;

/// One memory request: a 64 B cache-line read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRequest {
    /// Arrival time at the controller, picoseconds.
    pub arrival_ps: u64,
    /// Target bank (flat index).
    pub bank: usize,
    /// Target row within the bank.
    pub row: usize,
    /// Write (true) or read (false).
    pub is_write: bool,
}

/// Completion record for a serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request that was serviced.
    pub request: MemoryRequest,
    /// Time the data burst finished, picoseconds.
    pub finish_ps: u64,
    /// Whether the request hit the open row buffer.
    pub row_hit: bool,
}

/// Aggregate statistics from a scheduling run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScheduleStats {
    /// Requests serviced.
    pub serviced: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (including conflicts).
    pub row_misses: u64,
    /// Time the last request finished, picoseconds.
    pub makespan_ps: u64,
    /// Mean request latency (arrival to data) in picoseconds.
    pub mean_latency_ps: f64,
}

impl ScheduleStats {
    /// Effective data bandwidth of the run in bytes/second (64 B per
    /// request).
    pub fn bandwidth_bytes_per_s(&self) -> f64 {
        if self.makespan_ps == 0 {
            return 0.0;
        }
        (self.serviced * 64) as f64 / (self.makespan_ps as f64 * 1e-12)
    }
}

/// First-Ready, First-Come-First-Served scheduler over a [`CommandTimer`].
#[derive(Debug)]
pub struct FrFcfsScheduler<'a> {
    timer: &'a mut CommandTimer,
    /// Open row per bank, from this scheduler's perspective.
    open_rows: Vec<Option<usize>>,
    queue: Vec<MemoryRequest>,
}

impl<'a> FrFcfsScheduler<'a> {
    /// Creates a scheduler driving `timer`.
    pub fn new(timer: &'a mut CommandTimer) -> Self {
        FrFcfsScheduler {
            timer,
            open_rows: vec![None; 16],
            queue: Vec::new(),
        }
    }

    /// Enqueues a request.
    pub fn enqueue(&mut self, request: MemoryRequest) {
        self.queue.push(request);
    }

    /// Services every queued request to completion, returning per-request
    /// completions in service order.
    ///
    /// # Errors
    ///
    /// Propagates timing-model protocol errors (which indicate a scheduler
    /// bug rather than a workload property).
    pub fn run(&mut self) -> Result<(Vec<Completion>, ScheduleStats)> {
        // Stable order: by arrival time, ties by insertion order.
        self.queue.sort_by_key(|r| r.arrival_ps);
        let mut completions = Vec::with_capacity(self.queue.len());
        let mut stats = ScheduleStats::default();
        let mut total_latency = 0u128;

        while !self.queue.is_empty() {
            let now = self.timer.now_ps();
            // FR-FCFS: oldest *arrived* row-hit first, else oldest arrived.
            let arrived: Vec<usize> = (0..self.queue.len())
                .filter(|&i| self.queue[i].arrival_ps <= now)
                .collect();
            let pick = if arrived.is_empty() {
                // Nothing has arrived; jump to the next arrival (queue is
                // sorted, so index 0 is the oldest).
                self.timer.advance_to(self.queue[0].arrival_ps);
                0
            } else {
                arrived
                    .iter()
                    .copied()
                    .find(|&i| {
                        let r = &self.queue[i];
                        self.bank_open_row(r.bank) == Some(r.row)
                    })
                    .unwrap_or(arrived[0])
            };
            let req = self.queue.remove(pick);
            let row_hit = self.bank_open_row(req.bank) == Some(req.row);

            if !row_hit {
                if self.bank_open_row(req.bank).is_some() {
                    self.timer.issue_precharge(req.bank)?;
                }
                self.timer.issue_activate(req.bank, 1)?;
                self.set_open_row(req.bank, Some(req.row));
            }
            let finish = if req.is_write {
                self.timer.issue_write(req.bank)?
            } else {
                self.timer.issue_read(req.bank)?
            };

            stats.serviced += 1;
            if row_hit {
                stats.row_hits += 1;
            } else {
                stats.row_misses += 1;
            }
            stats.makespan_ps = stats.makespan_ps.max(finish);
            total_latency += (finish - req.arrival_ps.min(finish)) as u128;
            completions.push(Completion {
                request: req,
                finish_ps: finish,
                row_hit,
            });
        }
        if stats.serviced > 0 {
            stats.mean_latency_ps = total_latency as f64 / stats.serviced as f64;
        }
        Ok((completions, stats))
    }

    fn bank_open_row(&self, bank: usize) -> Option<usize> {
        self.open_rows.get(bank).copied().flatten()
    }

    fn set_open_row(&mut self, bank: usize, row: Option<usize>) {
        if bank >= self.open_rows.len() {
            self.open_rows.resize(bank + 1, None);
        }
        self.open_rows[bank] = row;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{AapMode, TimingParams};

    fn timer() -> CommandTimer {
        CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Overlapped)
    }

    #[test]
    fn services_all_requests() {
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new(&mut t);
        for i in 0..10 {
            sched.enqueue(MemoryRequest {
                arrival_ps: 0,
                bank: 0,
                row: i % 2,
                is_write: false,
            });
        }
        let (completions, stats) = sched.run().unwrap();
        assert_eq!(completions.len(), 10);
        assert_eq!(stats.serviced, 10);
        assert_eq!(stats.row_hits + stats.row_misses, 10);
    }

    #[test]
    fn prefers_row_hits_over_older_misses() {
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new(&mut t);
        // Open row 0 with the first request, then an older miss (row 1)
        // and a younger hit (row 0): FR-FCFS services the hit first.
        sched.enqueue(MemoryRequest { arrival_ps: 0, bank: 0, row: 0, is_write: false });
        sched.enqueue(MemoryRequest { arrival_ps: 1, bank: 0, row: 1, is_write: false });
        sched.enqueue(MemoryRequest { arrival_ps: 2, bank: 0, row: 0, is_write: false });
        let (completions, _) = sched.run().unwrap();
        assert_eq!(completions[1].request.row, 0, "hit serviced before miss");
        assert!(completions[1].row_hit);
        assert_eq!(completions[2].request.row, 1);
    }

    #[test]
    fn streaming_reads_approach_peak_bandwidth() {
        // A single bank streaming one row of 64 B bursts is tCCD-limited:
        // 64 B / 5 ns = 12.8 GB/s = DDR3-1600 peak.
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new(&mut t);
        for _ in 0..512 {
            sched.enqueue(MemoryRequest { arrival_ps: 0, bank: 0, row: 0, is_write: false });
        }
        let (_, stats) = sched.run().unwrap();
        let peak = TimingParams::ddr3_1600().channel_bandwidth_bytes_per_s();
        let eff = stats.bandwidth_bytes_per_s();
        assert!(eff > 0.9 * peak, "effective {eff:.3e} vs peak {peak:.3e}");
    }

    #[test]
    fn row_conflicts_cost_bandwidth() {
        // Alternating rows in one bank forces PRE+ACT per access.
        let run = |alternate: bool| {
            let mut t = timer();
            let mut sched = FrFcfsScheduler::new(&mut t);
            for i in 0..64 {
                sched.enqueue(MemoryRequest {
                    arrival_ps: i as u64 * 100_000, // spaced: no reorder help
                    bank: 0,
                    row: if alternate { i % 2 } else { 0 },
                    is_write: false,
                });
            }
            sched.run().unwrap().1
        };
        let hit = run(false);
        let conflict = run(true);
        assert!(conflict.mean_latency_ps > hit.mean_latency_ps);
        assert_eq!(hit.row_misses, 1);
        assert_eq!(conflict.row_misses, 64);
    }

    #[test]
    fn respects_arrival_times() {
        let mut t = timer();
        let mut sched = FrFcfsScheduler::new(&mut t);
        sched.enqueue(MemoryRequest { arrival_ps: 1_000_000, bank: 0, row: 0, is_write: true });
        let (completions, _) = sched.run().unwrap();
        assert!(completions[0].finish_ps >= 1_000_000);
    }
}
