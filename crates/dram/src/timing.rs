//! DDR timing parameters and the latencies of Ambit's command primitives.
//!
//! All times are held in picoseconds to keep integer arithmetic exact for
//! DDR clock periods that are not whole nanoseconds (e.g. DDR3-1600's
//! 1.25 ns). Section 5.3 of the paper derives the two AAP latencies modelled
//! here:
//!
//! * naive AAP = 2·tRAS + tRP = 80 ns for DDR3-1600 (8-8-8), and
//! * split-decoder AAP = tRAS + 4 ns + tRP = 49 ns, because the second
//!   ACTIVATE overlaps with the first and needs no full sense amplification.

/// Picoseconds per nanosecond, for readability at call sites.
pub const PS_PER_NS: u64 = 1_000;

/// A DDR timing parameter set (the subset that governs row commands plus
/// the column timings needed for data transfer modelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// Clock period in picoseconds.
    pub t_ck_ps: u64,
    /// ACTIVATE to READ/WRITE delay (row to column delay).
    pub t_rcd_ps: u64,
    /// Column access strobe latency.
    pub t_cl_ps: u64,
    /// ACTIVATE to PRECHARGE minimum (row active time).
    pub t_ras_ps: u64,
    /// PRECHARGE to next ACTIVATE on the same bank.
    pub t_rp_ps: u64,
    /// Column-to-column delay (burst gap).
    pub t_ccd_ps: u64,
    /// ACTIVATE-to-ACTIVATE delay across different banks.
    pub t_rrd_ps: u64,
    /// Four-activate window.
    pub t_faw_ps: u64,
    /// Write recovery time.
    pub t_wr_ps: u64,
    /// Extra latency of the overlapped second ACTIVATE in an AAP beyond
    /// tRAS (paper Section 5.3: "only 4 ns larger than tRAS" per SPICE).
    pub t_overlap_extra_ps: u64,
    /// Data bus width in bits for one channel.
    pub bus_bits: u64,
    /// Data rate multiplier (2 for DDR).
    pub data_rate: u64,
}

impl TimingParams {
    /// DDR3-1600 with 8-8-8 timings (JESD79-3D), the configuration the paper
    /// uses for its AAP latency arithmetic: tCK = 1.25 ns, CL = tRCD = tRP =
    /// 10 ns, tRAS = 35 ns.
    pub fn ddr3_1600() -> Self {
        TimingParams {
            t_ck_ps: 1_250,
            t_rcd_ps: 10_000,
            t_cl_ps: 10_000,
            t_ras_ps: 35_000,
            t_rp_ps: 10_000,
            t_ccd_ps: 4 * 1_250,
            t_rrd_ps: 6_000,
            t_faw_ps: 30_000,
            t_wr_ps: 15_000,
            t_overlap_extra_ps: 4_000,
            bus_bits: 64,
            data_rate: 2,
        }
    }

    /// DDR3-1333, used by the paper's energy analysis (Section 7).
    pub fn ddr3_1333() -> Self {
        TimingParams {
            t_ck_ps: 1_500,
            t_rcd_ps: 13_500,
            t_cl_ps: 13_500,
            t_ras_ps: 36_000,
            t_rp_ps: 13_500,
            t_ccd_ps: 4 * 1_500,
            t_rrd_ps: 6_000,
            t_faw_ps: 30_000,
            t_wr_ps: 15_000,
            t_overlap_extra_ps: 4_000,
            bus_bits: 64,
            data_rate: 2,
        }
    }

    /// DDR4-2400 (Table 4 full-system configuration).
    pub fn ddr4_2400() -> Self {
        TimingParams {
            t_ck_ps: 833,
            t_rcd_ps: 13_320,
            t_cl_ps: 13_320,
            t_ras_ps: 32_000,
            t_rp_ps: 13_320,
            t_ccd_ps: 4 * 833,
            t_rrd_ps: 4_900,
            t_faw_ps: 21_000,
            t_wr_ps: 15_000,
            t_overlap_extra_ps: 4_000,
            bus_bits: 64,
            data_rate: 2,
        }
    }

    /// Peak channel bandwidth in bytes per second.
    pub fn channel_bandwidth_bytes_per_s(&self) -> f64 {
        let transfers_per_s = self.data_rate as f64 / (self.t_ck_ps as f64 * 1e-12);
        transfers_per_s * (self.bus_bits as f64 / 8.0)
    }

    /// Latency of a full row cycle: ACTIVATE + restore + PRECHARGE (tRC).
    pub fn t_rc_ps(&self) -> u64 {
        self.t_ras_ps + self.t_rp_ps
    }

    /// Latency of the AP primitive (ACTIVATE → PRECHARGE): tRAS + tRP.
    pub fn ap_ps(&self) -> u64 {
        self.t_ras_ps + self.t_rp_ps
    }

    /// Latency of a naive AAP executed as three serial operations:
    /// 2·tRAS + tRP (80 ns on DDR3-1600 8-8-8).
    pub fn aap_naive_ps(&self) -> u64 {
        2 * self.t_ras_ps + self.t_rp_ps
    }

    /// Latency of an AAP with the split row decoder of Section 5.3, where
    /// the second ACTIVATE overlaps the first: tRAS + 4 ns + tRP
    /// (49 ns on DDR3-1600 8-8-8).
    pub fn aap_overlapped_ps(&self) -> u64 {
        self.t_ras_ps + self.t_overlap_extra_ps + self.t_rp_ps
    }

    /// Latency of a RowClone-FPM copy (two back-to-back ACTIVATEs plus a
    /// precharge). The paper quotes ~80 ns [RowClone, MICRO'13], which is
    /// exactly the naive AAP latency; with Ambit's split decoder the copy
    /// itself is an AAP and benefits from the same overlap.
    pub fn rowclone_fpm_ps(&self) -> u64 {
        self.aap_naive_ps()
    }

    /// Time to move `bytes` over the channel at peak bandwidth (used by
    /// RowClone-PSM and baseline traffic modelling), in picoseconds.
    pub fn transfer_ps(&self, bytes: u64) -> u64 {
        let bytes_per_transfer = self.bus_bits / 8;
        let transfers = bytes.div_ceil(bytes_per_transfer);
        // Each transfer takes half a clock (double data rate).
        transfers * self.t_ck_ps / self.data_rate
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr3_1600()
    }
}

/// Which AAP implementation the controller uses (Section 5.3 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AapMode {
    /// Serial ACTIVATE, ACTIVATE, PRECHARGE: 2·tRAS + tRP.
    Naive,
    /// Split-decoder overlapped ACTIVATEs: tRAS + Δ + tRP (default).
    #[default]
    Overlapped,
}

impl AapMode {
    /// AAP latency in picoseconds under this mode.
    pub fn aap_ps(&self, t: &TimingParams) -> u64 {
        match self {
            AapMode::Naive => t.aap_naive_ps(),
            AapMode::Overlapped => t.aap_overlapped_ps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_1600_matches_paper_aap_latencies() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.aap_naive_ps(), 80 * PS_PER_NS, "paper: naive AAP is 80 ns");
        assert_eq!(
            t.aap_overlapped_ps(),
            49 * PS_PER_NS,
            "paper: split-decoder AAP is 49 ns"
        );
        assert_eq!(t.ap_ps(), 45 * PS_PER_NS);
    }

    #[test]
    fn rowclone_fpm_is_80ns_on_ddr3_1600() {
        assert_eq!(TimingParams::ddr3_1600().rowclone_fpm_ps(), 80_000);
    }

    #[test]
    fn channel_bandwidth_sane() {
        // DDR3-1600 x64: 1600 MT/s × 8 B = 12.8 GB/s.
        let bw = TimingParams::ddr3_1600().channel_bandwidth_bytes_per_s();
        assert!((bw - 12.8e9).abs() / 12.8e9 < 0.01, "got {bw}");
        // DDR4-2400 x64: ~19.2 GB/s.
        let bw4 = TimingParams::ddr4_2400().channel_bandwidth_bytes_per_s();
        assert!((bw4 - 19.2e9).abs() / 19.2e9 < 0.01, "got {bw4}");
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let t = TimingParams::ddr3_1600();
        let one_line = t.transfer_ps(64);
        assert_eq!(t.transfer_ps(128), 2 * one_line);
        // 64 B at 12.8 GB/s = 5 ns.
        assert_eq!(one_line, 5 * PS_PER_NS);
    }

    #[test]
    fn aap_mode_dispatch() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(AapMode::Naive.aap_ps(&t), 80_000);
        assert_eq!(AapMode::Overlapped.aap_ps(&t), 49_000);
        assert_eq!(AapMode::default(), AapMode::Overlapped);
    }
}
