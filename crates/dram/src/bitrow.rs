//! Fixed-width bit vectors representing the contents of one DRAM row.
//!
//! A DRAM row is a horizontal slice of a subarray: one bit per bitline. All
//! in-DRAM computation in this workspace (triple-row activation, RowClone,
//! Ambit command programs) manipulates whole rows at a time, so [`BitRow`] is
//! the fundamental data type of the functional simulator.
//!
//! The representation is a dense `Vec<u64>` with the row length tracked in
//! bits; any trailing bits of the last word beyond `len` are kept zero so
//! that equality, hashing and popcounts are well defined.

use std::fmt;

use rand::Rng;

/// Contents of a single DRAM row: `len` bits, one per bitline.
///
/// `BitRow` supports the word-parallel operations needed to model in-DRAM
/// computation, most importantly the bitwise three-way [`majority`] used by
/// triple-row activation.
///
/// # Examples
///
/// ```
/// use ambit_dram::BitRow;
///
/// let a = BitRow::from_fn(8, |i| i % 2 == 0); // 0b01010101 (LSB first)
/// let b = BitRow::zeros(8);
/// let c = BitRow::ones(8);
/// // majority(a, 0, 1) == a: the control row turns majority into a pass-through
/// assert_eq!(BitRow::majority(&a, &b, &c), a);
/// ```
///
/// [`majority`]: BitRow::majority
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitRow {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitRow {
    /// Creates a row of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitRow {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Creates a row of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut row = BitRow {
            words: vec![u64::MAX; words_for(len)],
            len,
        };
        row.mask_tail();
        row
    }

    /// Creates a row whose bit `i` equals `f(i)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut row = BitRow::zeros(len);
        for i in 0..len {
            if f(i) {
                row.set(i, true);
            }
        }
        row
    }

    /// Creates a row from the low bits of the given words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is shorter than `len` requires.
    pub fn from_words(len: usize, words: &[u64]) -> Self {
        assert!(
            words.len() >= words_for(len),
            "from_words: {} words cannot hold {} bits",
            words.len(),
            len
        );
        let mut row = BitRow {
            words: words[..words_for(len)].to_vec(),
            len,
        };
        row.mask_tail();
        row
    }

    /// Creates a row of `len` uniformly random bits.
    pub fn random(len: usize, rng: &mut impl Rng) -> Self {
        let mut row = BitRow {
            words: (0..words_for(len)).map(|_| rng.gen()).collect(),
            len,
        };
        row.mask_tail();
        row
    }

    /// Number of bits in the row (the subarray's bitline count).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the row holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {} out of range {}", i, self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {} out of range {}", i, self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Backing words (LSB-first bit order within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise NOT of the row (within `len` bits).
    pub fn not(&self) -> BitRow {
        let mut row = BitRow {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        row.mask_tail();
        row
    }

    /// Bitwise AND with another row of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and(&self, other: &BitRow) -> BitRow {
        self.zip_with(other, |a, b| a & b)
    }

    /// Bitwise OR with another row of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or(&self, other: &BitRow) -> BitRow {
        self.zip_with(other, |a, b| a | b)
    }

    /// Bitwise XOR with another row of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor(&self, other: &BitRow) -> BitRow {
        self.zip_with(other, |a, b| a ^ b)
    }

    /// Bitwise majority of three rows: bit `i` of the result is 1 iff at
    /// least two of the three input bits are 1.
    ///
    /// This is exactly the function computed on the bitlines by a triple-row
    /// activation (paper Section 3.1): `AB + BC + CA`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn majority(a: &BitRow, b: &BitRow, c: &BitRow) -> BitRow {
        assert_eq!(a.len, b.len, "majority: length mismatch");
        assert_eq!(a.len, c.len, "majority: length mismatch");
        let words = a
            .words
            .iter()
            .zip(&b.words)
            .zip(&c.words)
            .map(|((&x, &y), &z)| (x & y) | (y & z) | (z & x))
            .collect();
        BitRow { words, len: a.len }
    }

    /// In-place bitwise NOT of the row (within `len` bits).
    ///
    /// The allocation-free counterpart of [`not`](BitRow::not), used on the
    /// simulator's restore path where a fresh row per wordline would
    /// dominate the cost of an activation.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Overwrites this row with the contents of `src`, reusing the existing
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, src: &BitRow) {
        assert_eq!(self.len, src.len, "copy_from: length mismatch");
        self.words.copy_from_slice(&src.words);
    }

    /// Writes the bitwise majority of `a`, `b`, `c` into this row, reusing
    /// the existing allocation ([`majority`](BitRow::majority) without the
    /// output allocation).
    ///
    /// # Panics
    ///
    /// Panics if any length differs from this row's.
    pub fn majority_into(&mut self, a: &BitRow, b: &BitRow, c: &BitRow) {
        self.majority_signed_into(a, false, b, false, c, false);
    }

    /// Writes the bitwise majority of the three inputs — each optionally
    /// complemented first — into this row, 64 bitlines per word operation.
    ///
    /// This is the charge-sharing outcome of a triple-row activation with
    /// `invert_*` marking inputs connected through bitline-bar (n-wordlines
    /// of dual-contact cells, paper Section 4): a cell on the negated side
    /// pulls the *sensed* value toward the complement of its contents.
    ///
    /// # Panics
    ///
    /// Panics if any length differs from this row's.
    pub fn majority_signed_into(
        &mut self,
        a: &BitRow,
        invert_a: bool,
        b: &BitRow,
        invert_b: bool,
        c: &BitRow,
        invert_c: bool,
    ) {
        assert_eq!(self.len, a.len, "majority: length mismatch");
        assert_eq!(self.len, b.len, "majority: length mismatch");
        assert_eq!(self.len, c.len, "majority: length mismatch");
        let flip = |w: u64, invert: bool| if invert { !w } else { w };
        for (i, out) in self.words.iter_mut().enumerate() {
            let x = flip(a.words[i], invert_a);
            let y = flip(b.words[i], invert_b);
            let z = flip(c.words[i], invert_c);
            *out = (x & y) | (y & z) | (z & x);
        }
        self.mask_tail();
    }

    /// Combines this row with `other` word-by-word in place:
    /// `self[i] = f(self[i], other[i])` for each backing word. Tail bits
    /// beyond `len` are re-masked afterwards, so `f` may produce them
    /// freely.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn zip_with_into(&mut self, other: &BitRow, f: impl Fn(u64, u64) -> u64) {
        assert_eq!(self.len, other.len, "bitwise op: length mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a = f(*a, b);
        }
        self.mask_tail();
    }

    /// Copies `bytes.len()` bytes into the row starting at bit offset
    /// `bit_offset` (which must be byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `bit_offset` is not a
    /// multiple of 8.
    pub fn write_bytes(&mut self, bit_offset: usize, bytes: &[u8]) {
        assert_eq!(bit_offset % 8, 0, "bit_offset must be byte aligned");
        assert!(
            bit_offset + bytes.len() * 8 <= self.len,
            "write_bytes: range [{}, {}) exceeds row of {} bits",
            bit_offset,
            bit_offset + bytes.len() * 8,
            self.len
        );
        for (k, &byte) in bytes.iter().enumerate() {
            let bit = bit_offset + k * 8;
            let word = bit / WORD_BITS;
            let shift = bit % WORD_BITS;
            self.words[word] &= !(0xffu64 << shift);
            self.words[word] |= (byte as u64) << shift;
        }
        self.mask_tail();
    }

    /// Reads `out.len()` bytes from the row starting at bit offset
    /// `bit_offset` (which must be byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or `bit_offset` is not a
    /// multiple of 8.
    pub fn read_bytes(&self, bit_offset: usize, out: &mut [u8]) {
        assert_eq!(bit_offset % 8, 0, "bit_offset must be byte aligned");
        assert!(
            bit_offset + out.len() * 8 <= self.len,
            "read_bytes: range [{}, {}) exceeds row of {} bits",
            bit_offset,
            bit_offset + out.len() * 8,
            self.len
        );
        for (k, byte) in out.iter_mut().enumerate() {
            let bit = bit_offset + k * 8;
            *byte = (self.words[bit / WORD_BITS] >> (bit % WORD_BITS)) as u8;
        }
    }

    /// Returns the whole row as bytes (LSB-first within each byte).
    pub fn to_bytes(&self) -> Vec<u8> {
        assert_eq!(self.len % 8, 0, "to_bytes requires byte-aligned length");
        let mut out = vec![0u8; self.len / 8];
        self.read_bytes(0, &mut out);
        out
    }

    /// Iterates over the indices of the set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            row: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn zip_with(&self, other: &BitRow, f: impl Fn(u64, u64) -> u64) -> BitRow {
        assert_eq!(self.len, other.len, "bitwise op: length mismatch");
        BitRow {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            len: self.len,
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitRow[{} bits; ", self.len)?;
        let shown = self.len.min(64);
        for i in 0..shown {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.len > shown {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

/// Iterator over set-bit indices, returned by [`BitRow::iter_ones`].
#[derive(Debug)]
pub struct IterOnes<'a> {
    row: &'a BitRow,
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.row.words.len() {
                return None;
            }
            self.current = self.row.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zeros_and_ones() {
        let z = BitRow::zeros(100);
        let o = BitRow::ones(100);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 100);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
        assert!(BitRow::zeros(0).is_empty());
    }

    #[test]
    fn ones_masks_tail_bits() {
        let o = BitRow::ones(65);
        assert_eq!(o.words()[1], 1);
        assert_eq!(o.not().count_ones(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut r = BitRow::zeros(130);
        r.set(0, true);
        r.set(64, true);
        r.set(129, true);
        assert!(r.get(0) && r.get(64) && r.get(129));
        assert!(!r.get(1) && !r.get(128));
        assert_eq!(r.count_ones(), 3);
        r.set(64, false);
        assert_eq!(r.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitRow::zeros(8).get(8);
    }

    #[test]
    fn not_respects_length() {
        let r = BitRow::from_fn(10, |i| i < 5);
        let n = r.not();
        assert_eq!(n.count_ones(), 5);
        for i in 0..10 {
            assert_eq!(n.get(i), !r.get(i));
        }
    }

    #[test]
    fn majority_matches_bitwise_definition() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = BitRow::random(200, &mut rng);
        let b = BitRow::random(200, &mut rng);
        let c = BitRow::random(200, &mut rng);
        let m = BitRow::majority(&a, &b, &c);
        for i in 0..200 {
            let expect =
                (a.get(i) as u8 + b.get(i) as u8 + c.get(i) as u8) >= 2;
            assert_eq!(m.get(i), expect, "bit {}", i);
        }
    }

    #[test]
    fn majority_with_control_rows_is_and_or() {
        // Paper Section 3.1: majority(A, B, 0) = A AND B; majority(A, B, 1) = A OR B.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = BitRow::random(128, &mut rng);
        let b = BitRow::random(128, &mut rng);
        assert_eq!(
            BitRow::majority(&a, &b, &BitRow::zeros(128)),
            a.and(&b)
        );
        assert_eq!(BitRow::majority(&a, &b, &BitRow::ones(128)), a.or(&b));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = BitRow::zeros(256);
        let data: Vec<u8> = (0..16).map(|i| i as u8 * 7 + 3).collect();
        r.write_bytes(64, &data);
        let mut out = vec![0u8; 16];
        r.read_bytes(64, &mut out);
        assert_eq!(out, data);
        // Bits outside the written range stay zero.
        assert_eq!(r.count_ones(), data.iter().map(|b| b.count_ones() as usize).sum());
    }

    #[test]
    fn to_bytes_lsb_first() {
        let mut r = BitRow::zeros(16);
        r.set(0, true);
        r.set(9, true);
        assert_eq!(r.to_bytes(), vec![0x01, 0x02]);
    }

    #[test]
    fn iter_ones_ascending() {
        let r = BitRow::from_fn(300, |i| i % 37 == 0);
        let got: Vec<usize> = r.iter_ones().collect();
        let expect: Vec<usize> = (0..300).filter(|i| i % 37 == 0).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn not_assign_matches_not_and_masks_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for len in [1usize, 63, 64, 65, 130, 512] {
            let r = BitRow::random(len, &mut rng);
            let mut m = r.clone();
            m.not_assign();
            assert_eq!(m, r.not(), "len {len}");
            m.not_assign();
            assert_eq!(m, r, "double negation, len {len}");
        }
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let src = BitRow::random(200, &mut rng);
        let mut dst = BitRow::ones(200);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_length_mismatch_panics() {
        BitRow::zeros(8).copy_from(&BitRow::zeros(16));
    }

    #[test]
    fn majority_into_matches_majority() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a = BitRow::random(321, &mut rng);
        let b = BitRow::random(321, &mut rng);
        let c = BitRow::random(321, &mut rng);
        let mut out = BitRow::zeros(321);
        out.majority_into(&a, &b, &c);
        assert_eq!(out, BitRow::majority(&a, &b, &c));
    }

    #[test]
    fn majority_signed_matches_scalar_definition() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // 65 bits: exercises the masked tail, where complemented inputs
        // would otherwise leak ones past `len`.
        let a = BitRow::random(65, &mut rng);
        let b = BitRow::random(65, &mut rng);
        let c = BitRow::random(65, &mut rng);
        for mask in 0u8..8 {
            let (ia, ib, ic) = (mask & 1 != 0, mask & 2 != 0, mask & 4 != 0);
            let mut out = BitRow::zeros(65);
            out.majority_signed_into(&a, ia, &b, ib, &c, ic);
            for i in 0..65 {
                let votes = (a.get(i) ^ ia) as u8 + (b.get(i) ^ ib) as u8 + (c.get(i) ^ ic) as u8;
                assert_eq!(out.get(i), votes >= 2, "mask {mask:03b} bit {i}");
            }
            assert_eq!(out, {
                let sel = |r: &BitRow, inv: bool| if inv { r.not() } else { r.clone() };
                BitRow::majority(&sel(&a, ia), &sel(&b, ib), &sel(&c, ic))
            });
        }
    }

    #[test]
    fn zip_with_into_matches_allocating_ops() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let a = BitRow::random(190, &mut rng);
        let b = BitRow::random(190, &mut rng);
        let mut x = a.clone();
        x.zip_with_into(&b, |p, q| p ^ q);
        assert_eq!(x, a.xor(&b));
        // NAND produces tail bits; zip_with_into must re-mask them.
        let mut n = a.clone();
        n.zip_with_into(&b, |p, q| !(p & q));
        assert_eq!(n, a.and(&b).not());
    }

    #[test]
    fn xor_and_or_consistency() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = BitRow::random(512, &mut rng);
        let b = BitRow::random(512, &mut rng);
        // a ^ b == (a | b) & !(a & b)
        assert_eq!(a.xor(&b), a.or(&b).and(&a.and(&b).not()));
    }
}
