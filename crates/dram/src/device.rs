//! A whole DRAM device: channels → ranks → banks → subarrays.

use ambit_telemetry::Registry;

use crate::bank::Bank;
use crate::bitrow::BitRow;
use crate::error::Result;
use crate::geometry::{BankId, DramGeometry, RowLocation};
use crate::subarray::{SubarrayStats, TieBreak, Wordline};

/// A functional DRAM device laid out per a [`DramGeometry`].
///
/// Rows are stored sparsely, so instantiating a multi-gigabyte geometry is
/// cheap until rows are actually written.
///
/// # Examples
///
/// ```
/// use ambit_dram::{DramDevice, DramGeometry, RowLocation, BitRow, Wordline};
///
/// let mut dev = DramDevice::new(DramGeometry::tiny());
/// let loc = RowLocation::in_bank0(0, 5);
/// dev.poke(loc, BitRow::ones(dev.geometry().row_bits()));
/// assert_eq!(dev.peek(loc).count_ones(), dev.geometry().row_bits());
/// ```
#[derive(Debug, Clone)]
pub struct DramDevice {
    geometry: DramGeometry,
    banks: Vec<Bank>,
}

impl DramDevice {
    /// Creates a device with all cells zero.
    pub fn new(geometry: DramGeometry) -> Self {
        let banks = (0..geometry.total_banks())
            .map(|bank| {
                let mut b = Bank::new(
                    geometry.subarrays_per_bank,
                    geometry.rows_per_subarray,
                    geometry.row_bits(),
                );
                // Decorrelate each subarray's tie/fault RNG: physically
                // independent arrays must not share a fault stream, or one
                // transient fault pattern repeats across TMR replicas and
                // defeats majority voting. Flat index 0 keeps the
                // documented default stream.
                for s in 0..geometry.subarrays_per_bank {
                    b.subarray_mut(s)
                        .reseed_rng((bank * geometry.subarrays_per_bank + s) as u64);
                }
                b
            })
            .collect();
        DramDevice { geometry, banks }
    }

    /// The device geometry.
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Immutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the geometry.
    pub fn bank(&self, id: BankId) -> &Bank {
        &self.banks[id.flat_index(&self.geometry)]
    }

    /// Mutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the geometry.
    pub fn bank_mut(&mut self, id: BankId) -> &mut Bank {
        let idx = id.flat_index(&self.geometry);
        &mut self.banks[idx]
    }

    /// Iterates over all bank ids in flat order.
    pub fn bank_ids(&self) -> impl Iterator<Item = BankId> + '_ {
        (0..self.geometry.total_banks()).map(|i| BankId::from_flat_index(i, &self.geometry))
    }

    /// Mutable access to every bank at once, in flat-index order.
    ///
    /// This is the ownership-splitting hook for wall-clock parallel
    /// execution: banks share no state, so `iter_mut()` over this slice
    /// hands each OS thread exclusive `&mut Bank` access to a distinct
    /// bank while the borrow checker proves the split is race-free.
    pub fn banks_mut(&mut self) -> &mut [Bank] {
        &mut self.banks
    }

    /// Whether any subarray has a nonzero transient TRA fault rate armed.
    ///
    /// Fault-armed charge shares draw from the subarray's pinned per-bit
    /// RNG stream; callers that replay command streams out of the default
    /// order (e.g. the threaded batch path) consult this to fall back to
    /// serial issue and keep the draw streams byte-identical.
    pub fn tra_fault_armed(&self) -> bool {
        self.banks.iter().any(|bank| {
            (0..bank.subarray_count()).any(|s| bank.subarray(s).tra_fault_rate() > 0.0)
        })
    }

    /// Issues an ACTIVATE to the subarray holding `location.bank`,
    /// raising `wordlines` in `location.subarray`.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors from the bank/subarray model.
    pub fn activate(&mut self, bank: BankId, subarray: usize, wordlines: &[Wordline]) -> Result<()> {
        self.bank_mut(bank).activate(subarray, wordlines)?;
        Ok(())
    }

    /// Issues a PRECHARGE to a bank.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors from the bank model.
    pub fn precharge(&mut self, bank: BankId) -> Result<()> {
        self.bank_mut(bank).precharge()
    }

    /// Reads a full row through the command protocol: ACTIVATE, column reads,
    /// PRECHARGE. Returns the row contents.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors; the bank must be precharged on entry.
    pub fn read_row(&mut self, loc: RowLocation) -> Result<BitRow> {
        let bank = self.bank_mut(loc.bank);
        bank.activate(loc.subarray, &[Wordline::data(loc.row)])?;
        let sense = bank
            .sense()
            .expect("bank is activated; sense buffer present")
            .clone();
        bank.precharge()?;
        Ok(sense)
    }

    /// Writes a full row through the command protocol: ACTIVATE, column
    /// writes, PRECHARGE.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors; the bank must be precharged on entry.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not match the row width.
    pub fn write_row(&mut self, loc: RowLocation, data: &BitRow) -> Result<()> {
        assert_eq!(data.len(), self.geometry.row_bits(), "row width mismatch");
        let bank = self.bank_mut(loc.bank);
        bank.activate(loc.subarray, &[Wordline::data(loc.row)])?;
        bank.write_bytes(0, &data.to_bytes())?;
        bank.precharge()
    }

    /// Direct cell read bypassing the protocol (test/initialization path).
    pub fn peek(&self, loc: RowLocation) -> BitRow {
        self.bank(loc.bank).subarray(loc.subarray).peek_row(loc.row)
    }

    /// Direct cell write bypassing the protocol (test/initialization path).
    ///
    /// # Panics
    ///
    /// Panics if `data` does not match the row width.
    pub fn poke(&mut self, loc: RowLocation, data: BitRow) {
        self.bank_mut(loc.bank)
            .subarray_mut(loc.subarray)
            .poke_row(loc.row, data);
    }

    /// Applies a tie-break policy to every subarray.
    pub fn set_tie_break(&mut self, policy: TieBreak) {
        for bank in &mut self.banks {
            for i in 0..bank.subarray_count() {
                bank.subarray_mut(i).set_tie_break(policy);
            }
        }
    }

    /// Applies a retention window (or disables checking) device-wide.
    pub fn set_retention_window(&mut self, window_ns: Option<u64>) {
        for bank in &mut self.banks {
            for i in 0..bank.subarray_count() {
                bank.subarray_mut(i).set_retention_window(window_ns);
            }
        }
    }

    /// Advances simulated time device-wide (for retention checks).
    pub fn advance_time_ns(&mut self, delta_ns: u64) {
        for bank in &mut self.banks {
            for i in 0..bank.subarray_count() {
                bank.subarray_mut(i).advance_time_ns(delta_ns);
            }
        }
    }

    /// Refreshes every row in the device.
    pub fn refresh_all(&mut self) {
        for bank in &mut self.banks {
            for i in 0..bank.subarray_count() {
                bank.subarray_mut(i).refresh_all();
            }
        }
    }

    /// Aggregated statistics over all banks.
    pub fn stats(&self) -> SubarrayStats {
        let mut total = SubarrayStats::default();
        for bank in &self.banks {
            let s = bank.stats();
            total.activations += s.activations;
            total.multi_row_activations += s.multi_row_activations;
            total.triple_row_activations += s.triple_row_activations;
            total.copy_activations += s.copy_activations;
            total.precharges += s.precharges;
            total.column_reads += s.column_reads;
            total.column_writes += s.column_writes;
            total.word_parallel_charge_shares += s.word_parallel_charge_shares;
            total.scalar_charge_shares += s.scalar_charge_shares;
        }
        total
    }

    /// Registers the charge-share path-split counters
    /// (`ambit_charge_share_path_total{path=...}`) with `registry` and
    /// installs them in every subarray, making the word-parallel vs scalar
    /// split observable in the Prometheus exposition.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        let help = "Multi-row charge shares by resolution path";
        let word_parallel = registry.counter(
            "ambit_charge_share_path_total",
            help,
            &[("path", "word_parallel")],
        );
        let scalar = registry.counter("ambit_charge_share_path_total", help, &[("path", "scalar")]);
        for bank in &mut self.banks {
            for i in 0..bank.subarray_count() {
                bank.subarray_mut(i)
                    .set_charge_share_counters(word_parallel.clone(), scalar.clone());
            }
        }
    }
}

// The data plane is plain owned data (telemetry counters are atomics
// behind `Arc`), so the whole device hierarchy is `Send + Sync` by
// construction. Assert it at compile time: a field regressing to `Rc`,
// `Cell`, or a raw pointer would break the threaded batch path.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<crate::subarray::Subarray>();
    assert_send_sync::<crate::bank::Bank>();
    assert_send_sync::<DramDevice>();
    assert_send_sync::<crate::controller::CommandTimer>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_row_roundtrip() {
        let g = DramGeometry::tiny();
        let mut dev = DramDevice::new(g);
        let loc = RowLocation::in_bank0(1, 7);
        let data = BitRow::from_fn(g.row_bits(), |i| i % 3 == 0);
        dev.write_row(loc, &data).unwrap();
        assert_eq!(dev.read_row(loc).unwrap(), data);
    }

    #[test]
    fn banks_are_independent() {
        let g = DramGeometry::tiny();
        let mut dev = DramDevice::new(g);
        let b0 = BankId::zero();
        let b1 = BankId {
            channel: 0,
            rank: 0,
            bank: 1,
        };
        // Both banks can hold an open row simultaneously.
        dev.activate(b0, 0, &[Wordline::data(0)]).unwrap();
        dev.activate(b1, 1, &[Wordline::data(3)]).unwrap();
        assert!(dev.bank(b0).is_activated());
        assert!(dev.bank(b1).is_activated());
        dev.precharge(b0).unwrap();
        dev.precharge(b1).unwrap();
    }

    #[test]
    fn peek_poke_roundtrip_sparse() {
        let g = DramGeometry::micro17();
        let mut dev = DramDevice::new(g); // 2 GiB logical; sparse storage
        let loc = RowLocation {
            bank: BankId {
                channel: 0,
                rank: 0,
                bank: 15,
            },
            subarray: 15,
            row: 1023,
        };
        assert_eq!(dev.peek(loc).count_ones(), 0);
        dev.poke(loc, BitRow::ones(g.row_bits()));
        assert_eq!(dev.peek(loc).count_ones(), g.row_bits());
    }

    #[test]
    fn stats_aggregate_device_wide() {
        let mut dev = DramDevice::new(DramGeometry::tiny());
        for id in dev.bank_ids().collect::<Vec<_>>() {
            dev.activate(id, 0, &[Wordline::data(0)]).unwrap();
            dev.precharge(id).unwrap();
        }
        assert_eq!(dev.stats().activations, 2);
    }
}
