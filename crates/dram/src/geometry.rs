//! DRAM organization: channels, ranks, banks, subarrays, rows.
//!
//! Mirrors the hierarchy of Section 2 of the paper: a rank is divided into
//! banks; each bank consists of subarrays; each subarray has many rows
//! (typically 512 or 1024) sharing one set of sense amplifiers.

/// Shape of a simulated DRAM device.
///
/// # Examples
///
/// ```
/// use ambit_dram::DramGeometry;
///
/// let g = DramGeometry::micro17();
/// assert_eq!(g.banks, 16);
/// assert_eq!(g.row_bytes, 8192);
/// assert_eq!(g.row_bits(), 65536);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Independent memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Rows per subarray (data + reserved).
    pub rows_per_subarray: usize,
    /// Row size in bytes across the rank (paper: 8 KB).
    pub row_bytes: usize,
}

impl DramGeometry {
    /// Configuration used by the paper's full-system evaluation (Table 4):
    /// DDR4-2400, 1 channel, 1 rank, 16 banks, 8 KB rows; subarrays of
    /// 1024 rows.
    pub fn micro17() -> Self {
        DramGeometry {
            channels: 1,
            ranks: 1,
            banks: 16,
            subarrays_per_bank: 16,
            rows_per_subarray: 1024,
            row_bytes: 8192,
        }
    }

    /// The 8-bank DDR3 module used for the raw throughput comparison
    /// (Section 7, "Ambit" configuration).
    pub fn ddr3_module() -> Self {
        DramGeometry {
            channels: 1,
            ranks: 1,
            banks: 8,
            subarrays_per_bank: 16,
            rows_per_subarray: 1024,
            row_bytes: 8192,
        }
    }

    /// Two-channel variant of [`tiny`](Self::tiny): the smallest geometry
    /// with more than one command bus, so it exercises per-channel timing
    /// lanes and the channel-sharded timing pass. 2 channels × 2 banks ×
    /// 2 subarrays × 32 rows of 16 bytes.
    pub fn tiny_dual_channel() -> Self {
        DramGeometry {
            channels: 2,
            ranks: 1,
            banks: 2,
            subarrays_per_bank: 2,
            rows_per_subarray: 32,
            row_bytes: 16,
        }
    }

    /// A small geometry for fast unit tests: 2 banks × 2 subarrays ×
    /// 32 rows of 16 bytes.
    pub fn tiny() -> Self {
        DramGeometry {
            channels: 1,
            ranks: 1,
            banks: 2,
            subarrays_per_bank: 2,
            rows_per_subarray: 32,
            row_bytes: 16,
        }
    }

    /// Row width in bits (the number of bitlines spanned by one activation).
    pub fn row_bits(&self) -> usize {
        self.row_bytes * 8
    }

    /// Total banks in the device across channels and ranks.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.banks
    }

    /// Total rows in the device.
    pub fn total_rows(&self) -> usize {
        self.total_banks() * self.subarrays_per_bank * self.rows_per_subarray
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.total_rows() * self.row_bytes
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        DramGeometry::micro17()
    }
}

/// Physical location of a bank within the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankId {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
}

impl BankId {
    /// Bank 0 of rank 0 of channel 0.
    pub fn zero() -> Self {
        BankId {
            channel: 0,
            rank: 0,
            bank: 0,
        }
    }

    /// Flat index of this bank given the device geometry.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for `geometry`.
    pub fn flat_index(&self, geometry: &DramGeometry) -> usize {
        assert!(self.channel < geometry.channels, "channel out of range");
        assert!(self.rank < geometry.ranks, "rank out of range");
        assert!(self.bank < geometry.banks, "bank out of range");
        (self.channel * geometry.ranks + self.rank) * geometry.banks + self.bank
    }

    /// Inverse of [`flat_index`](Self::flat_index).
    pub fn from_flat_index(index: usize, geometry: &DramGeometry) -> Self {
        let bank = index % geometry.banks;
        let rest = index / geometry.banks;
        BankId {
            channel: rest / geometry.ranks,
            rank: rest % geometry.ranks,
            bank,
        }
    }
}

/// Physical location of a row: bank, subarray within the bank, and row
/// index within the subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowLocation {
    /// Owning bank.
    pub bank: BankId,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// Row index within the subarray.
    pub row: usize,
}

impl RowLocation {
    /// Creates a location in bank 0 — convenient for single-bank tests.
    pub fn in_bank0(subarray: usize, row: usize) -> Self {
        RowLocation {
            bank: BankId::zero(),
            subarray,
            row,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro17_capacity() {
        let g = DramGeometry::micro17();
        // 16 banks × 16 subarrays × 1024 rows × 8 KB = 2 GiB.
        assert_eq!(g.capacity_bytes(), 2 * 1024 * 1024 * 1024);
    }

    #[test]
    fn flat_index_roundtrip() {
        let g = DramGeometry {
            channels: 2,
            ranks: 2,
            banks: 8,
            subarrays_per_bank: 4,
            rows_per_subarray: 64,
            row_bytes: 128,
        };
        for i in 0..g.total_banks() {
            let id = BankId::from_flat_index(i, &g);
            assert_eq!(id.flat_index(&g), i);
        }
    }

    #[test]
    #[should_panic(expected = "bank out of range")]
    fn flat_index_validates() {
        let g = DramGeometry::tiny();
        BankId {
            channel: 0,
            rank: 0,
            bank: 5,
        }
        .flat_index(&g);
    }

    #[test]
    fn tiny_is_small() {
        assert!(DramGeometry::tiny().capacity_bytes() < 64 * 1024);
    }
}
