//! Functional model of a DRAM subarray with multi-wordline activation.
//!
//! A subarray is a grid of cells: one row per wordline, one column per
//! bitline, with a single row of sense amplifiers shared by all rows
//! (paper Section 2). This module models the *analog outcome* of DRAM
//! commands at bit granularity:
//!
//! * **Single-row ACTIVATE** latches the row into the sense amplifiers and
//!   restores the cells (Figure 3).
//! * **Multi-row ACTIVATE from the precharged state** charge-shares all
//!   raised cells on each bitline; the sense amplifier resolves the sign of
//!   the deviation, which for three rows is the bitwise majority function —
//!   triple-row activation, the first Ambit mechanism (Figure 4).
//! * **ACTIVATE while the subarray is already activated** (back-to-back
//!   ACTIVATE) overwrites the newly raised rows with the value the sense
//!   amplifiers currently drive — the copy mechanism behind RowClone-FPM and
//!   the second ACTIVATE of Ambit's AAP primitive (Section 5.2).
//! * **n-wordlines** connect a dual-contact cell's capacitor to the *negated*
//!   side of the sense amplifier (bitline-bar), implementing Ambit-NOT
//!   (Section 4, Figures 5 and 6).
//!
//! Charge retention is modelled optionally: rows stale beyond a configurable
//! retention window make charge-sharing activations fail in strict mode
//! (paper Section 3.2, issue 4 — Ambit avoids this by copying, and thereby
//! refreshing, operands immediately before each TRA).

use std::collections::HashMap;

use ambit_telemetry::Counter;

use crate::bitrow::BitRow;
use crate::error::{DramError, Result};

/// Which side of the sense amplifier a wordline connects its cells to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitlineSide {
    /// The data side: the sensed value equals the cell value.
    Bitline,
    /// The negated side (bitline-bar): a dual-contact cell's n-wordline.
    /// Sensing through this side yields the complement of the cell, and
    /// copying through it stores the complement of the sensed value.
    BitlineBar,
}

/// One wordline of a subarray: a row index plus the sense-amplifier side it
/// connects to. Regular rows only have a [`BitlineSide::Bitline`] wordline;
/// dual-contact rows have both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wordline {
    /// Row index within the subarray.
    pub row: usize,
    /// Side of the sense amplifier the cells connect to.
    pub side: BitlineSide,
}

impl Wordline {
    /// A regular (data-side) wordline for `row`.
    pub fn data(row: usize) -> Self {
        Wordline {
            row,
            side: BitlineSide::Bitline,
        }
    }

    /// The negation-side wordline of dual-contact row `row`.
    pub fn negated(row: usize) -> Self {
        Wordline {
            row,
            side: BitlineSide::BitlineBar,
        }
    }
}

/// Policy for resolving a bitline whose charge-sharing deviation is exactly
/// zero (equal pull toward 0 and 1).
///
/// The Ambit protocol never issues such an activation; the default policy
/// treats it as an error so that protocol bugs surface in tests. `Random`
/// models the physical nondeterminism of a metastable sense amplifier and is
/// useful for failure-injection testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TieBreak {
    /// Return [`DramError::AmbiguousChargeSharing`].
    #[default]
    Error,
    /// Resolve every tied bitline to 0.
    Zero,
    /// Resolve every tied bitline to 1.
    One,
    /// Resolve each tied bitline pseudo-randomly (deterministic per seed).
    Random,
}

/// A manufacturing fault pinning one cell to a fixed value
/// (paper Section 5.5.3: faulty rows are found during testing and mapped
/// to spare rows within the same subarray).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellFault {
    /// The cell always reads 0 regardless of what was written.
    StuckAtZero,
    /// The cell always reads 1.
    StuckAtOne,
}

/// Counters describing the commands a subarray has served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubarrayStats {
    /// ACTIVATEs issued from the precharged state.
    pub activations: u64,
    /// Of those, activations that raised ≥ 2 wordlines (charge sharing
    /// between multiple cells; includes TRAs).
    pub multi_row_activations: u64,
    /// Of those, exactly-three-wordline activations (TRAs).
    pub triple_row_activations: u64,
    /// Back-to-back ACTIVATEs onto an already-activated subarray (copies).
    pub copy_activations: u64,
    /// PRECHARGE commands.
    pub precharges: u64,
    /// Column reads served from the row buffer.
    pub column_reads: u64,
    /// Column writes into the row buffer.
    pub column_writes: u64,
    /// Multi-row charge shares resolved on the word-parallel fast path
    /// (64 bitlines per u64 operation).
    pub word_parallel_charge_shares: u64,
    /// Multi-row charge shares resolved by the bit-serial scalar reference
    /// path (non-TRA arities, forced-scalar mode, or armed fault RNG).
    pub scalar_charge_shares: u64,
}

/// Upper bound on simultaneously raised wordlines before the dedup list
/// spills to the heap. Ambit never raises more than three (a TRA), so the
/// inline capacity covers every protocol-issued activation without
/// allocating.
const INLINE_WORDLINES: usize = 4;

/// A small list of wordlines that stays inline (no heap allocation) for all
/// activations the Ambit command set can issue, spilling to a `Vec` only for
/// hypothetical wider activations driven directly through the model API.
#[derive(Debug, Clone)]
enum WordlineList {
    Inline {
        buf: [Wordline; INLINE_WORDLINES],
        len: usize,
    },
    Heap(Vec<Wordline>),
}

impl WordlineList {
    fn new() -> Self {
        WordlineList::Inline {
            buf: [Wordline {
                row: 0,
                side: BitlineSide::Bitline,
            }; INLINE_WORDLINES],
            len: 0,
        }
    }

    fn push(&mut self, wl: Wordline) {
        match self {
            WordlineList::Inline { buf, len } => {
                if *len < INLINE_WORDLINES {
                    buf[*len] = wl;
                    *len += 1;
                } else {
                    let mut spilled = buf[..*len].to_vec();
                    spilled.push(wl);
                    *self = WordlineList::Heap(spilled);
                }
            }
            WordlineList::Heap(v) => v.push(wl),
        }
    }

    fn as_slice(&self) -> &[Wordline] {
        match self {
            WordlineList::Inline { buf, len } => &buf[..*len],
            WordlineList::Heap(v) => v,
        }
    }
}

#[derive(Debug, Clone)]
enum State {
    Precharged,
    Activated {
        sense: BitRow,
        raised: WordlineList,
    },
}

/// Functional model of one DRAM subarray.
///
/// Row storage is sparse: rows never written hold all-zero cells. The model
/// is purely functional (no timing); timing and energy are accounted by
/// [`CommandTimer`](crate::controller::CommandTimer) and
/// [`EnergyModel`](crate::energy::EnergyModel) at the controller level.
///
/// # Examples
///
/// Triple-row activation computes a majority and overwrites all three rows
/// (paper Figure 4):
///
/// ```
/// use ambit_dram::{BitRow, Subarray, Wordline};
///
/// let mut sa = Subarray::new(16, 8);
/// sa.poke_row(0, BitRow::from_fn(8, |i| i < 4)); // A = 11110000
/// sa.poke_row(1, BitRow::from_fn(8, |i| i % 2 == 0)); // B = 10101010
/// sa.poke_row(2, BitRow::zeros(8)); // C = 0  =>  majority = A AND B
/// let sensed = sa
///     .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])?
///     .clone();
/// assert_eq!(sensed, BitRow::from_fn(8, |i| i < 4 && i % 2 == 0));
/// assert_eq!(sa.peek_row(0), sensed); // sources are overwritten
/// assert_eq!(sa.peek_row(2), sensed);
/// # sa.precharge()?;
/// # Ok::<(), ambit_dram::DramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Subarray {
    rows: usize,
    bits: usize,
    /// Dense physical-row-indexed storage; `None` means the row was never
    /// written and holds all-zero cells. Row payloads are still allocated
    /// lazily, so huge geometries stay cheap to instantiate.
    storage: Vec<Option<BitRow>>,
    state: State,
    tie_break: TieBreak,
    tie_rng: u64,
    retention_ns: Option<u64>,
    /// Last refresh timestamp per physical row. Only maintained while a
    /// retention window is armed; arming stamps every row (see
    /// [`set_retention_window`](Subarray::set_retention_window)).
    last_refresh_ns: Vec<u64>,
    now_ns: u64,
    stats: SubarrayStats,
    /// Stuck-at cell faults, keyed by (physical row, bit).
    faults: HashMap<(usize, usize), CellFault>,
    /// Row remapping (logical → physical) installed by post-test repair;
    /// identity unless a spare-row remap was installed.
    row_map: Vec<usize>,
    /// Per-bitline transient TRA failure probability (from the circuit
    /// model's Monte Carlo), in units of 2^-64.
    tra_fault_threshold: u64,
    /// When set, every multi-row charge share takes the bit-serial scalar
    /// reference path even if the word-parallel fast path would apply.
    force_scalar: bool,
    /// Shared all-zero row standing in for never-written storage slots on
    /// the fast path (avoids materializing a row per activation).
    zeros: BitRow,
    /// Optional telemetry counters for the fast/slow charge-share split.
    word_parallel_counter: Option<Counter>,
    scalar_counter: Option<Counter>,
}

impl Subarray {
    /// Creates a subarray of `rows` rows, each `bits` bits wide, with all
    /// cells initially empty (zero).
    pub fn new(rows: usize, bits: usize) -> Self {
        Subarray {
            rows,
            bits,
            storage: vec![None; rows],
            state: State::Precharged,
            tie_break: TieBreak::default(),
            tie_rng: 0x9e37_79b9_7f4a_7c15,
            retention_ns: None,
            last_refresh_ns: vec![0; rows],
            now_ns: 0,
            stats: SubarrayStats::default(),
            faults: HashMap::new(),
            row_map: (0..rows).collect(),
            tra_fault_threshold: 0,
            force_scalar: false,
            zeros: BitRow::zeros(bits),
            word_parallel_counter: None,
            scalar_counter: None,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row width in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Returns `true` if the subarray is activated (has an open row buffer).
    pub fn is_activated(&self) -> bool {
        matches!(self.state, State::Activated { .. })
    }

    /// Command counters.
    pub fn stats(&self) -> SubarrayStats {
        self.stats
    }

    /// Sets the tie-break policy for zero-deviation charge sharing.
    pub fn set_tie_break(&mut self, policy: TieBreak) {
        self.tie_break = policy;
    }

    /// Enables strict retention checking: charge-sharing activations on rows
    /// older than `window_ns` fail with [`DramError::RetentionViolation`].
    ///
    /// Refresh timestamps are only maintained while a window is armed (the
    /// disarmed hot path skips the bookkeeping entirely), so arming acts as
    /// a refresh boundary: every row is stamped as freshly refreshed at the
    /// moment the window is installed.
    pub fn set_retention_window(&mut self, window_ns: Option<u64>) {
        let arming = window_ns.is_some() && self.retention_ns.is_none();
        self.retention_ns = window_ns;
        if arming {
            self.last_refresh_ns.fill(self.now_ns);
        }
    }

    /// Forces every multi-row charge share through the bit-serial scalar
    /// reference path, even where the word-parallel fast path applies.
    ///
    /// The two paths are byte-identical for fault-free activations (pinned
    /// by the equivalence proptests); this switch exists so benchmarks and
    /// tests can measure and compare the retained reference implementation.
    pub fn set_scalar_reference(&mut self, force: bool) {
        self.force_scalar = force;
    }

    /// Whether multi-row charge shares are forced through the scalar
    /// reference path.
    pub fn scalar_reference(&self) -> bool {
        self.force_scalar
    }

    /// Installs telemetry counters incremented on each multi-row charge
    /// share, split by resolution path (word-parallel fast path vs the
    /// bit-serial scalar reference).
    pub fn set_charge_share_counters(&mut self, word_parallel: Counter, scalar: Counter) {
        self.word_parallel_counter = Some(word_parallel);
        self.scalar_counter = Some(scalar);
    }

    /// Injects a stuck-at fault at `(row, bit)` (physical coordinates).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::CellOutOfRange`] if the coordinates are out of
    /// range.
    pub fn inject_fault(&mut self, row: usize, bit: usize, fault: CellFault) -> Result<()> {
        if row >= self.rows || bit >= self.bits {
            return Err(DramError::CellOutOfRange {
                row,
                bit,
                rows: self.rows,
                bits: self.bits,
            });
        }
        self.faults.insert((row, bit), fault);
        // The fault takes effect immediately on the stored value.
        let data = self.peek_physical(row);
        self.storage[row] = Some(self.apply_faults(row, data));
        Ok(())
    }

    /// Removes all injected faults.
    pub fn clear_faults(&mut self) {
        self.faults.clear();
    }

    /// Remaps logical row `from` onto physical row `to` — the spare-row
    /// repair of paper Section 5.5.3. All subsequent accesses to `from`
    /// reach `to` instead.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] if either row is out of range.
    pub fn remap_row(&mut self, from: usize, to: usize) -> Result<()> {
        for row in [from, to] {
            if row >= self.rows {
                return Err(DramError::RowOutOfRange {
                    row,
                    rows: self.rows,
                });
            }
        }
        self.row_map[from] = to;
        Ok(())
    }

    /// The physical row that logical row `row` currently resolves to
    /// (identity unless a spare-row remap was installed).
    pub fn resolved_row(&self, row: usize) -> usize {
        self.resolve(row)
    }

    /// Sets the per-bitline probability that a multi-row activation senses
    /// the wrong value (transient TRA faults; feed this from
    /// `ambit_circuit`'s Monte Carlo failure rate). 0.0 disables.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidFaultRate`] unless `0.0 <= rate <= 1.0`
    /// (NaN is rejected).
    pub fn set_tra_fault_rate(&mut self, rate: f64) -> Result<()> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(DramError::invalid_fault_rate(rate));
        }
        self.tra_fault_threshold = (rate * u64::MAX as f64) as u64;
        Ok(())
    }

    /// The configured transient TRA fault probability.
    pub fn tra_fault_rate(&self) -> f64 {
        self.tra_fault_threshold as f64 / u64::MAX as f64
    }

    /// Mixes `salt` into the tie/fault RNG seed, decorrelating this
    /// subarray's draw stream from its siblings'. Physically independent
    /// subarrays must not share a fault stream: with identical streams, a
    /// transient TRA fault hits every TMR replica at the same bit in the
    /// same cycle, so majority voting silently agrees on the corrupted
    /// value. Salt 0 keeps the documented default stream (the one the
    /// reference-RNG equivalence tests replay).
    pub fn reseed_rng(&mut self, salt: u64) {
        if salt == 0 {
            return;
        }
        // splitmix64 finalizer: full-avalanche mixing so consecutive salts
        // yield unrelated xorshift64* start states.
        let mut z = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Never land on xorshift's absorbing zero state.
        self.tie_rng = if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z };
    }

    fn resolve(&self, row: usize) -> usize {
        self.row_map[row]
    }

    fn apply_faults(&self, physical_row: usize, mut data: BitRow) -> BitRow {
        // Fast path: the common case has no faults at all.
        if self.faults.is_empty() {
            return data;
        }
        for (&(r, bit), &fault) in &self.faults {
            if r == physical_row {
                data.set(
                    bit,
                    match fault {
                        CellFault::StuckAtZero => false,
                        CellFault::StuckAtOne => true,
                    },
                );
            }
        }
        data
    }

    fn peek_physical(&self, row: usize) -> BitRow {
        self.storage[row]
            .clone()
            .unwrap_or_else(|| BitRow::zeros(self.bits))
    }

    /// Borrowing read of a physical row, with never-written rows resolving
    /// to the shared all-zero row (the allocation-free fast-path sibling of
    /// [`peek_physical`](Subarray::peek_physical)).
    fn row_ref(&self, physical_row: usize) -> &BitRow {
        self.storage[physical_row].as_ref().unwrap_or(&self.zeros)
    }

    /// Advances the subarray's notion of time (used for retention checks).
    pub fn advance_time_ns(&mut self, delta_ns: u64) {
        self.now_ns += delta_ns;
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Refreshes every row (marks all cells fully charged/empty as stored).
    pub fn refresh_all(&mut self) {
        self.last_refresh_ns.fill(self.now_ns);
    }

    /// Directly reads a row's cell contents, bypassing the command protocol.
    ///
    /// Intended for test setup and for the driver's bulk initialization
    /// path; regular accesses should go through activate/read/precharge.
    pub fn peek_row(&self, row: usize) -> BitRow {
        assert!(row < self.rows, "row {} out of range {}", row, self.rows);
        self.peek_physical(self.resolve(row))
    }

    /// Directly overwrites a row's cell contents, bypassing the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `data` has the wrong width.
    pub fn poke_row(&mut self, row: usize, data: BitRow) {
        assert!(row < self.rows, "row {} out of range {}", row, self.rows);
        assert_eq!(data.len(), self.bits, "row width mismatch");
        let row = self.resolve(row);
        if self.retention_ns.is_some() {
            self.last_refresh_ns[row] = self.now_ns;
        }
        let data = self.apply_faults(row, data);
        self.storage[row] = Some(data);
    }

    /// Issues an ACTIVATE raising the given wordlines simultaneously.
    ///
    /// From the precharged state this performs charge sharing and sense
    /// amplification, returning the sensed row-buffer value; all raised
    /// cells are overwritten with the amplified result (restored). On an
    /// already-activated subarray this is a back-to-back ACTIVATE: the new
    /// rows are overwritten from the current sense amplifiers (the RowClone /
    /// AAP copy mechanism) and the sensed value is unchanged.
    ///
    /// # Errors
    ///
    /// * [`DramError::EmptyActivation`] if `wordlines` is empty.
    /// * [`DramError::RowOutOfRange`] for a bad row index.
    /// * [`DramError::ConflictingWordlines`] if both wordlines of the same
    ///   row are raised at once.
    /// * [`DramError::AmbiguousChargeSharing`] under the default tie-break
    ///   policy when a bitline's deviation is exactly zero.
    /// * [`DramError::RetentionViolation`] in strict retention mode when a
    ///   raised row is stale.
    pub fn activate(&mut self, wordlines: &[Wordline]) -> Result<&BitRow> {
        if wordlines.is_empty() {
            return Err(DramError::EmptyActivation);
        }
        // Dedup into a fixed-capacity inline list: Ambit raises at most
        // three wordlines, so this never allocates on the command path.
        let mut deduped = WordlineList::new();
        for &wl in wordlines {
            if wl.row >= self.rows {
                return Err(DramError::RowOutOfRange {
                    row: wl.row,
                    rows: self.rows,
                });
            }
            if deduped
                .as_slice()
                .iter()
                .any(|d| d.row == wl.row && d.side != wl.side)
            {
                return Err(DramError::ConflictingWordlines { row: wl.row });
            }
            if !deduped.as_slice().contains(&wl) {
                deduped.push(wl);
            }
        }

        match &self.state {
            State::Precharged => {
                self.check_retention(deduped.as_slice())?;
                let sense = self.charge_share(deduped.as_slice())?;
                self.stats.activations += 1;
                if deduped.as_slice().len() >= 2 {
                    self.stats.multi_row_activations += 1;
                }
                if deduped.as_slice().len() == 3 {
                    self.stats.triple_row_activations += 1;
                }
                self.restore(deduped.as_slice(), &sense);
                self.state = State::Activated {
                    sense,
                    raised: deduped,
                };
            }
            State::Activated { .. } => {
                // Take the state apart so restore can borrow the sense row
                // instead of cloning it for every back-to-back ACTIVATE.
                let State::Activated { sense, mut raised } =
                    std::mem::replace(&mut self.state, State::Precharged)
                else {
                    unreachable!("matched Activated above");
                };
                for &wl in deduped.as_slice() {
                    if raised
                        .as_slice()
                        .iter()
                        .any(|r| r.row == wl.row && r.side != wl.side)
                    {
                        self.state = State::Activated { sense, raised };
                        return Err(DramError::ConflictingWordlines { row: wl.row });
                    }
                    if !raised.as_slice().contains(&wl) {
                        raised.push(wl);
                    }
                }
                self.stats.copy_activations += 1;
                self.restore(deduped.as_slice(), &sense);
                self.state = State::Activated { sense, raised };
            }
        }

        match &self.state {
            State::Activated { sense, .. } => Ok(sense),
            State::Precharged => unreachable!("state set above"),
        }
    }

    /// Issues a PRECHARGE, closing the row buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActivated`] if the subarray is already
    /// precharged.
    pub fn precharge(&mut self) -> Result<()> {
        match self.state {
            State::Precharged => Err(DramError::BankNotActivated),
            State::Activated { .. } => {
                self.state = State::Precharged;
                self.stats.precharges += 1;
                Ok(())
            }
        }
    }

    /// The current sense-amplifier (row buffer) contents, if activated.
    pub fn sense(&self) -> Option<&BitRow> {
        match &self.state {
            State::Activated { sense, .. } => Some(sense),
            State::Precharged => None,
        }
    }

    /// Reads bytes from the open row buffer (a column READ).
    ///
    /// # Errors
    ///
    /// * [`DramError::BankNotActivated`] if precharged.
    /// * [`DramError::ColumnOutOfRange`] if the range exceeds the row.
    pub fn read_bytes(&mut self, byte_offset: usize, out: &mut [u8]) -> Result<()> {
        let row_bytes = self.bits / 8;
        match &self.state {
            State::Precharged => Err(DramError::BankNotActivated),
            State::Activated { sense, .. } => {
                if byte_offset + out.len() > row_bytes {
                    return Err(DramError::ColumnOutOfRange {
                        byte_offset: byte_offset + out.len(),
                        row_bytes,
                    });
                }
                sense.read_bytes(byte_offset * 8, out);
                self.stats.column_reads += 1;
                Ok(())
            }
        }
    }

    /// Writes bytes into the open row buffer (a column WRITE). The sense
    /// amplifiers drive all raised cells, so the write propagates to every
    /// open row immediately (negated through n-wordlines).
    ///
    /// # Errors
    ///
    /// * [`DramError::BankNotActivated`] if precharged.
    /// * [`DramError::ColumnOutOfRange`] if the range exceeds the row.
    pub fn write_bytes(&mut self, byte_offset: usize, data: &[u8]) -> Result<()> {
        let row_bytes = self.bits / 8;
        if !matches!(self.state, State::Activated { .. }) {
            return Err(DramError::BankNotActivated);
        }
        if byte_offset + data.len() > row_bytes {
            return Err(DramError::ColumnOutOfRange {
                byte_offset: byte_offset + data.len(),
                row_bytes,
            });
        }
        // Take the state apart so restore can borrow sense and raised in
        // place instead of cloning both per column write.
        let State::Activated { mut sense, raised } =
            std::mem::replace(&mut self.state, State::Precharged)
        else {
            unreachable!("checked Activated above");
        };
        sense.write_bytes(byte_offset * 8, data);
        self.stats.column_writes += 1;
        self.restore(raised.as_slice(), &sense);
        self.state = State::Activated { sense, raised };
        Ok(())
    }

    /// Computes the per-bitline charge-sharing outcome for an activation
    /// from the precharged state.
    ///
    /// The 3-row case — the only multi-row shape the Ambit protocol issues —
    /// normally takes a word-parallel fast path (64 bitlines per u64
    /// operation). The bit-serial loop is retained as the scalar reference:
    /// it handles every other arity, resolves ties, and owns the per-bit RNG
    /// draw used for transient fault injection, whose deterministic stream
    /// must not change shape. Fault-armed subarrays
    /// (`tra_fault_threshold > 0`) therefore always take the scalar path.
    fn charge_share(&mut self, wordlines: &[Wordline]) -> Result<BitRow> {
        if wordlines.len() == 1 {
            // Common case: single-row activation senses the row directly
            // (negated through an n-wordline).
            let wl = wordlines[0];
            let data = self.peek_row(wl.row);
            return Ok(match wl.side {
                BitlineSide::Bitline => data,
                BitlineSide::BitlineBar => data.not(),
            });
        }
        if wordlines.len() == 3 && self.tra_fault_threshold == 0 && !self.force_scalar {
            let sense = self.charge_share_tra_word_parallel(wordlines);
            self.stats.word_parallel_charge_shares += 1;
            if let Some(c) = &self.word_parallel_counter {
                c.inc();
            }
            return Ok(sense);
        }
        let sense = self.charge_share_scalar(wordlines)?;
        self.stats.scalar_charge_shares += 1;
        if let Some(c) = &self.scalar_counter {
            c.inc();
        }
        Ok(sense)
    }

    /// Word-parallel TRA charge share: the sensed row is the majority of
    /// the three raised rows, with bar-side inputs complemented word-wise.
    ///
    /// Three wordlines contribute an odd signed score per bitline (±1 each,
    /// so the total is ±1 or ±3) — a tie is arithmetically impossible, which
    /// is why this path needs no tie-break policy and, when fault injection
    /// is disarmed, consumes no RNG draws: it is bit-exact with the scalar
    /// reference by construction.
    fn charge_share_tra_word_parallel(&self, wordlines: &[Wordline]) -> BitRow {
        let bar = |wl: &Wordline| wl.side == BitlineSide::BitlineBar;
        let row = |wl: &Wordline| self.row_ref(self.resolve(wl.row));
        let mut sense = BitRow::zeros(self.bits);
        sense.majority_signed_into(
            row(&wordlines[0]),
            bar(&wordlines[0]),
            row(&wordlines[1]),
            bar(&wordlines[1]),
            row(&wordlines[2]),
            bar(&wordlines[2]),
        );
        sense
    }

    /// Bit-serial scalar reference for multi-row charge sharing: per-bitline
    /// signed deviation. A cell with value v on the bitline side pulls the
    /// bitline toward v; on the bitline-bar side it pulls the *sensed value*
    /// toward !v.
    fn charge_share_scalar(&mut self, wordlines: &[Wordline]) -> Result<BitRow> {
        let mut result = BitRow::zeros(self.bits);
        let rows: Vec<(BitRow, BitlineSide)> = wordlines
            .iter()
            .map(|wl| (self.peek_row(wl.row), wl.side))
            .collect();
        for bit in 0..self.bits {
            let mut score: i32 = 0;
            for (data, side) in &rows {
                let v = data.get(bit);
                let toward_one = match side {
                    BitlineSide::Bitline => v,
                    BitlineSide::BitlineBar => !v,
                };
                score += if toward_one { 1 } else { -1 };
            }
            let mut sensed = match score.cmp(&0) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => match self.tie_break {
                    TieBreak::Error => {
                        return Err(DramError::AmbiguousChargeSharing {
                            bitline: bit,
                            wordlines: wordlines.to_vec(),
                        })
                    }
                    TieBreak::Zero => false,
                    TieBreak::One => true,
                    TieBreak::Random => self.next_tie_bit(),
                },
            };
            // Transient TRA fault injection: with the configured
            // probability, process variation flips this bitline's outcome.
            if self.tra_fault_threshold > 0 && self.next_rng_u64() < self.tra_fault_threshold {
                sensed = !sensed;
            }
            result.set(bit, sensed);
        }
        Ok(result)
    }

    /// Drives the sense value back into all raised cells (restore phase).
    ///
    /// Each raised row is overwritten in place — copy then a single in-place
    /// negation for bar-side wordlines — so the steady state allocates
    /// nothing (a fresh row is cloned only the first time a slot is
    /// written).
    fn restore(&mut self, wordlines: &[Wordline], sense: &BitRow) {
        let retention_armed = self.retention_ns.is_some();
        for wl in wordlines {
            let row = self.resolve(wl.row);
            if retention_armed {
                self.last_refresh_ns[row] = self.now_ns;
            }
            match &mut self.storage[row] {
                Some(value) => {
                    value.copy_from(sense);
                    if wl.side == BitlineSide::BitlineBar {
                        value.not_assign();
                    }
                }
                slot @ None => {
                    let mut value = sense.clone();
                    if wl.side == BitlineSide::BitlineBar {
                        value.not_assign();
                    }
                    *slot = Some(value);
                }
            }
            if !self.faults.is_empty() {
                let value = self.storage[row].as_mut().expect("slot filled above");
                for (&(r, bit), &fault) in &self.faults {
                    if r == row {
                        value.set(bit, matches!(fault, CellFault::StuckAtOne));
                    }
                }
            }
        }
    }

    fn check_retention(&self, wordlines: &[Wordline]) -> Result<()> {
        // Retention matters for charge sharing between multiple cells; a
        // single-cell activation is ordinary DRAM sensing which tolerates
        // partial decay by design.
        let Some(window) = self.retention_ns else {
            return Ok(());
        };
        if wordlines.len() < 2 {
            return Ok(());
        }
        for wl in wordlines {
            let last = self.last_refresh_ns[self.resolve(wl.row)];
            let elapsed = self.now_ns.saturating_sub(last);
            if elapsed > window {
                return Err(DramError::RetentionViolation {
                    row: wl.row,
                    elapsed_ns: elapsed,
                    retention_ns: window,
                });
            }
        }
        Ok(())
    }

    fn next_rng_u64(&mut self) -> u64 {
        // xorshift64*: deterministic, clonable randomness stream shared by
        // tie-breaking and fault injection.
        let mut x = self.tie_rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.tie_rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_tie_bit(&mut self) -> bool {
        self.next_rng_u64() >> 63 & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn filled(bits: usize, seed: u64) -> BitRow {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        BitRow::random(bits, &mut rng)
    }

    #[test]
    fn single_activation_senses_and_preserves_row() {
        let mut sa = Subarray::new(8, 64);
        let data = filled(64, 7);
        sa.poke_row(3, data.clone());
        let sensed = sa.activate(&[Wordline::data(3)]).unwrap().clone();
        assert_eq!(sensed, data);
        sa.precharge().unwrap();
        assert_eq!(sa.peek_row(3), data, "restore keeps the cell value");
    }

    #[test]
    fn activation_of_empty_row_senses_zeros() {
        let mut sa = Subarray::new(8, 64);
        let sensed = sa.activate(&[Wordline::data(0)]).unwrap();
        assert_eq!(sensed.count_ones(), 0);
    }

    #[test]
    fn n_wordline_senses_negated_value_and_restores_original() {
        // Paper Figure 6: activating through the n-wordline exposes !cell.
        let mut sa = Subarray::new(8, 64);
        let data = filled(64, 9);
        sa.poke_row(2, data.clone());
        let sensed = sa.activate(&[Wordline::negated(2)]).unwrap().clone();
        assert_eq!(sensed, data.not());
        sa.precharge().unwrap();
        // The cell was restored through bitline-bar: !sense = original.
        assert_eq!(sa.peek_row(2), data);
    }

    #[test]
    fn tra_computes_majority_and_overwrites_sources() {
        let mut sa = Subarray::new(8, 128);
        let a = filled(128, 1);
        let b = filled(128, 2);
        let c = filled(128, 3);
        sa.poke_row(0, a.clone());
        sa.poke_row(1, b.clone());
        sa.poke_row(2, c.clone());
        let m = BitRow::majority(&a, &b, &c);
        let sensed = sa
            .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
            .unwrap()
            .clone();
        assert_eq!(sensed, m);
        sa.precharge().unwrap();
        for row in 0..3 {
            assert_eq!(sa.peek_row(row), m, "TRA destroys source row {row}");
        }
        assert_eq!(sa.stats().triple_row_activations, 1);
    }

    #[test]
    fn tra_with_zero_row_is_and() {
        let mut sa = Subarray::new(8, 64);
        let a = filled(64, 4);
        let b = filled(64, 5);
        sa.poke_row(0, a.clone());
        sa.poke_row(1, b.clone());
        // Row 2 left empty (all zeros).
        let sensed = sa
            .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
            .unwrap();
        assert_eq!(*sensed, a.and(&b));
    }

    #[test]
    fn back_to_back_activate_copies_sense_into_new_row() {
        // RowClone-FPM: ACTIVATE src; ACTIVATE dst copies src into dst.
        let mut sa = Subarray::new(8, 64);
        let data = filled(64, 6);
        sa.poke_row(1, data.clone());
        sa.activate(&[Wordline::data(1)]).unwrap();
        sa.activate(&[Wordline::data(5)]).unwrap();
        sa.precharge().unwrap();
        assert_eq!(sa.peek_row(5), data);
        assert_eq!(sa.peek_row(1), data, "source untouched");
        assert_eq!(sa.stats().copy_activations, 1);
    }

    #[test]
    fn back_to_back_activate_through_n_wordline_stores_complement() {
        // Ambit-NOT, steps 1-2 of Section 4: ACTIVATE src; ACTIVATE n-wordline.
        let mut sa = Subarray::new(8, 64);
        let data = filled(64, 8);
        sa.poke_row(0, data.clone());
        sa.activate(&[Wordline::data(0)]).unwrap();
        sa.activate(&[Wordline::negated(4)]).unwrap();
        sa.precharge().unwrap();
        assert_eq!(sa.peek_row(4), data.not(), "DCC holds negated source");
        // Reading the DCC through its d-wordline then yields !src.
        let sensed = sa.activate(&[Wordline::data(4)]).unwrap().clone();
        assert_eq!(sensed, data.not());
    }

    #[test]
    fn dual_copy_activation_b8_style() {
        // Address B8 raises {DCC0.n, T0} as the second ACTIVATE of an AAP:
        // DCC0 gets !src while T0 gets src (used by xor, Figure 8c).
        let mut sa = Subarray::new(8, 64);
        let data = filled(64, 11);
        sa.poke_row(0, data.clone());
        sa.activate(&[Wordline::data(0)]).unwrap();
        sa.activate(&[Wordline::negated(6), Wordline::data(7)]).unwrap();
        sa.precharge().unwrap();
        assert_eq!(sa.peek_row(6), data.not());
        assert_eq!(sa.peek_row(7), data);
    }

    #[test]
    fn ambiguous_charge_sharing_is_an_error_by_default() {
        let mut sa = Subarray::new(8, 8);
        sa.poke_row(0, BitRow::ones(8));
        sa.poke_row(1, BitRow::zeros(8));
        let err = sa
            .activate(&[Wordline::data(0), Wordline::data(1)])
            .unwrap_err();
        assert!(matches!(err, DramError::AmbiguousChargeSharing { bitline: 0, .. }));
    }

    #[test]
    fn tie_break_policies_resolve_ambiguity() {
        for (policy, expect) in [(TieBreak::Zero, 0usize), (TieBreak::One, 8)] {
            let mut sa = Subarray::new(8, 8);
            sa.set_tie_break(policy);
            sa.poke_row(0, BitRow::ones(8));
            sa.poke_row(1, BitRow::zeros(8));
            let sensed = sa
                .activate(&[Wordline::data(0), Wordline::data(1)])
                .unwrap();
            assert_eq!(sensed.count_ones(), expect);
        }
    }

    #[test]
    fn random_tie_break_is_deterministic_per_instance() {
        let mk = || {
            let mut sa = Subarray::new(8, 64);
            sa.set_tie_break(TieBreak::Random);
            sa.poke_row(0, BitRow::ones(64));
            sa.poke_row(1, BitRow::zeros(64));
            sa.activate(&[Wordline::data(0), Wordline::data(1)])
                .unwrap()
                .clone()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn conflicting_wordlines_rejected() {
        let mut sa = Subarray::new(8, 8);
        let err = sa
            .activate(&[Wordline::data(3), Wordline::negated(3)])
            .unwrap_err();
        assert_eq!(err, DramError::ConflictingWordlines { row: 3 });
    }

    #[test]
    fn conflicting_wordline_against_already_raised_rejected() {
        let mut sa = Subarray::new(8, 8);
        sa.activate(&[Wordline::data(3)]).unwrap();
        let err = sa.activate(&[Wordline::negated(3)]).unwrap_err();
        assert_eq!(err, DramError::ConflictingWordlines { row: 3 });
    }

    #[test]
    fn protocol_violations() {
        let mut sa = Subarray::new(4, 8);
        assert_eq!(sa.activate(&[]).unwrap_err(), DramError::EmptyActivation);
        assert_eq!(sa.precharge().unwrap_err(), DramError::BankNotActivated);
        assert!(matches!(
            sa.activate(&[Wordline::data(9)]).unwrap_err(),
            DramError::RowOutOfRange { row: 9, rows: 4 }
        ));
        let mut buf = [0u8; 1];
        assert_eq!(
            sa.read_bytes(0, &mut buf).unwrap_err(),
            DramError::BankNotActivated
        );
    }

    #[test]
    fn column_read_write_roundtrip_and_writethrough() {
        let mut sa = Subarray::new(4, 64);
        sa.activate(&[Wordline::data(1)]).unwrap();
        sa.write_bytes(2, &[0xAB, 0xCD]).unwrap();
        let mut buf = [0u8; 2];
        sa.read_bytes(2, &mut buf).unwrap();
        assert_eq!(buf, [0xAB, 0xCD]);
        sa.precharge().unwrap();
        // The write reached the open cells.
        let mut from_cells = [0u8; 2];
        sa.peek_row(1).read_bytes(16, &mut from_cells);
        assert_eq!(from_cells, [0xAB, 0xCD]);
    }

    #[test]
    fn column_bounds_checked() {
        let mut sa = Subarray::new(4, 64);
        sa.activate(&[Wordline::data(0)]).unwrap();
        let mut buf = [0u8; 9];
        assert!(matches!(
            sa.read_bytes(0, &mut buf).unwrap_err(),
            DramError::ColumnOutOfRange { .. }
        ));
        assert!(matches!(
            sa.write_bytes(8, &[0]).unwrap_err(),
            DramError::ColumnOutOfRange { .. }
        ));
    }

    #[test]
    fn retention_violation_in_strict_mode() {
        let mut sa = Subarray::new(8, 8);
        sa.set_retention_window(Some(64_000_000)); // 64 ms
        sa.poke_row(0, BitRow::ones(8));
        sa.poke_row(1, BitRow::ones(8));
        sa.poke_row(2, BitRow::ones(8));
        sa.advance_time_ns(65_000_000);
        let err = sa
            .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
            .unwrap_err();
        assert!(matches!(err, DramError::RetentionViolation { .. }));
        // Single-row activation still works (ordinary sensing).
        assert!(sa.activate(&[Wordline::data(0)]).is_ok());
        sa.precharge().unwrap();
        // Re-poking (copying) refreshes, so the TRA now succeeds — this is
        // exactly why Ambit copies operands right before each TRA (§3.3).
        sa.poke_row(0, BitRow::ones(8));
        sa.poke_row(1, BitRow::ones(8));
        sa.poke_row(2, BitRow::ones(8));
        assert!(sa
            .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
            .is_ok());
    }

    #[test]
    fn write_through_negated_wordline_stores_complement() {
        let mut sa = Subarray::new(8, 64);
        sa.activate(&[Wordline::negated(2)]).unwrap();
        sa.write_bytes(0, &[0xFF]).unwrap();
        sa.precharge().unwrap();
        let mut cell = [0u8; 1];
        sa.peek_row(2).read_bytes(0, &mut cell);
        assert_eq!(cell[0], 0x00, "n-wordline write stores the complement");
    }

    #[test]
    fn stats_count_commands() {
        let mut sa = Subarray::new(8, 8);
        sa.activate(&[Wordline::data(0)]).unwrap();
        sa.activate(&[Wordline::data(1)]).unwrap();
        sa.precharge().unwrap();
        sa.poke_row(2, BitRow::ones(8));
        sa.poke_row(3, BitRow::ones(8));
        sa.poke_row(4, BitRow::ones(8));
        sa.activate(&[Wordline::data(2), Wordline::data(3), Wordline::data(4)])
            .unwrap();
        sa.precharge().unwrap();
        let s = sa.stats();
        assert_eq!(s.activations, 2);
        assert_eq!(s.copy_activations, 1);
        assert_eq!(s.triple_row_activations, 1);
        assert_eq!(s.multi_row_activations, 1);
        assert_eq!(s.precharges, 2);
    }
}
