//! Command-level timing model: a DDR command bus with per-bank state and
//! timing-constraint enforcement.
//!
//! [`CommandTimer`] plays the role of the memory controller's timing engine:
//! commands are issued in program order on a shared command bus (one command
//! per clock), and each command is scheduled at the earliest cycle that
//! satisfies the JEDEC-style constraints (tRCD, tRAS, tRP, tCCD, tRRD,
//! tFAW). Ambit's AAP and AP primitives are built on top as helpers.
//!
//! Two aspects are configurable because they are the subject of paper
//! sections:
//!
//! * [`AapMode`]: naive serial AAP (2·tRAS + tRP) versus the split-row-
//!   decoder overlapped AAP (tRAS + 4 ns + tRP) of Section 5.3.
//! * Inter-bank constraint enforcement (tRRD/tFAW): the paper's throughput
//!   projections assume bank-level parallelism is unconstrained for in-DRAM
//!   operations (no data bursts leave the chip); enabling enforcement
//!   quantifies how much command-bus/power constraints would cost, which we
//!   report as an ablation.

use std::collections::VecDeque;

use ambit_telemetry::{Counter, Histogram, Registry};

use crate::energy::{EnergyAccount, EnergyModel};
use crate::error::{DramError, Result};
use crate::timing::{AapMode, TimingParams};

/// Default capacity of the always-on ring-buffer trace.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// One command on the trace a [`CommandTimer`] can record — the same
/// information a Ramulator-style trace file carries, useful for verifying
/// command sequences and for feeding external analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issue time in picoseconds.
    pub at_ps: u64,
    /// Target bank (flat index).
    pub bank: usize,
    /// The command.
    pub command: TraceCommand,
}

/// Command kinds recorded on the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCommand {
    /// ACTIVATE raising `wordlines` wordlines.
    Activate {
        /// Wordlines raised (1 = ordinary, 2/3 = Ambit multi-row).
        wordlines: usize,
        /// Row address of the first raised wordline, when the issuer knows
        /// it (the timer itself is address-free, so untagged issues record
        /// `None`). Trace validators use this to tell a legal AAP copy
        /// activation apart from an illegal re-ACTIVATE of a new row.
        row: Option<usize>,
    },
    /// PRECHARGE.
    Precharge,
    /// Column READ burst.
    Read,
    /// Column WRITE burst.
    Write,
}

/// Per-channel command-bus state: one DDR channel is one command bus, one
/// data bus, and one tRRD/tFAW activation window. Everything order-dependent
/// on a channel lives here, which is what lets a per-channel timing shard
/// replay its channel's commands bit-identically off the main timer.
#[derive(Debug, Clone, Default)]
struct ChannelLane {
    /// Current time on this channel's command bus (the cycle after the last
    /// issued command).
    now_ps: u64,
    /// Earliest time this channel's data bus can carry the next column
    /// burst: per-bank timelines overlap freely on row commands, but
    /// READ/WRITE bursts from any bank of the channel stay tCCD apart.
    bus_col_ready_ps: u64,
    /// Issue times of recent ACTIVATEs on this channel, for tFAW.
    recent_acts: VecDeque<u64>,
    /// Issue time of the most recent ACTIVATE on this channel, for tRRD.
    last_act_ps: Option<u64>,
    /// Energy accumulated by commands issued on this channel. Kept
    /// per-lane (and summed on read) so a receipt's energy delta is a pure
    /// function of that channel's own command sequence — independent of how
    /// other channels' f64 additions interleave with it.
    energy: EnergyAccount,
}

/// Per-bank timing state.
#[derive(Debug, Clone, Copy, Default)]
struct BankTiming {
    /// Earliest time a PRECHARGE may issue (ACT + tRAS, extended by
    /// overlapped copy-ACTs).
    pre_ready_ps: u64,
    /// Earliest time an ACTIVATE may issue (PRE + tRP).
    act_ready_ps: u64,
    /// Earliest time a column command may issue (ACT + tRCD).
    col_ready_ps: u64,
    /// Whether the bank currently has an open row.
    active: bool,
    /// Issue time of the first ACTIVATE of the current open interval.
    first_act_ps: u64,
    /// ACTIVATE commands ever issued to this bank — a generation counter
    /// external row-state caches (the FR-FCFS scheduler) reconcile against.
    acts: u64,
    /// Accumulated open-row occupancy over closed ACT→PRE+tRP intervals.
    busy_ps: u64,
}

/// Issue/occupancy statistics for a [`CommandTimer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStats {
    /// ACTIVATE commands issued.
    pub activates: u64,
    /// PRECHARGE commands issued.
    pub precharges: u64,
    /// Column READ bursts issued.
    pub reads: u64,
    /// Column WRITE bursts issued.
    pub writes: u64,
    /// AAP primitives completed.
    pub aaps: u64,
    /// AP primitives completed.
    pub aps: u64,
}

/// DDR command-bus timing engine with per-bank constraint tracking.
///
/// # Examples
///
/// An AAP on DDR3-1600 takes 49 ns with the split decoder and 80 ns without
/// (paper Section 5.3):
///
/// ```
/// use ambit_dram::{AapMode, CommandTimer, TimingParams};
///
/// let mut fast = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Overlapped);
/// let (start, end) = fast.aap(0, 1, 1)?;
/// assert_eq!(end - start, 49_000);
///
/// let mut slow = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Naive);
/// let (start, end) = slow.aap(0, 1, 1)?;
/// assert_eq!(end - start, 80_000);
/// # Ok::<(), ambit_dram::DramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CommandTimer {
    timing: TimingParams,
    mode: AapMode,
    energy_model: EnergyModel,
    /// Per-channel command-bus state. The DDR command/data buses are
    /// per-channel resources (`DramGeometry::channels`), so each lane keeps
    /// its own clock, column-bus slot, tRRD/tFAW window, and energy
    /// accumulator. With the default single-channel stride every bank maps
    /// to lane 0 and the timer behaves exactly like the historical
    /// one-global-bus model.
    lanes: Vec<ChannelLane>,
    /// Timing-pipeline indices per channel lane: lane = bank / stride.
    /// `usize::MAX` (the default) puts every bank on one lane.
    lane_stride: usize,
    /// Global clock floor established by [`advance_to`]
    /// (CommandTimer::advance_to); lanes created after an advance start
    /// here instead of at 0.
    floor_ps: u64,
    banks: Vec<BankTiming>,
    /// Whether tRRD/tFAW are enforced across banks (within a channel).
    enforce_inter_bank: bool,
    /// Latest command issue time seen on any bank (wall-clock horizon).
    horizon_ps: u64,
    stats: TimerStats,
    /// Unbounded full trace, when opted in via [`set_tracing`]
    /// (CommandTimer::set_tracing).
    trace: Option<Vec<TraceEntry>>,
    /// Always-on bounded ring of the most recent commands.
    ring: VecDeque<TraceEntry>,
    /// Ring capacity; 0 disables ring recording.
    ring_cap: usize,
    /// Entries evicted from the ring since the last capacity change.
    ring_dropped: u64,
    /// Registered instruments, when a telemetry registry is attached.
    telemetry: Option<TimerTelemetry>,
}

/// Cached telemetry handles for the command hot path. Instruments are
/// resolved once per bank (taking the registry lock); afterwards every
/// command issue is a couple of relaxed atomic operations.
#[derive(Debug, Clone)]
struct TimerTelemetry {
    registry: Registry,
    /// Per-bank instruments, indexed by flat bank id (grown lazily).
    banks: Vec<BankInstruments>,
    /// Distribution of wordlines raised per ACTIVATE (1 = ordinary,
    /// 2 = RowClone dual, 3 = triple-row activation).
    wordlines: Histogram,
    /// Per-command energy in nanojoules.
    command_energy_nj: Histogram,
    aaps: Counter,
    aps: Counter,
}

#[derive(Debug, Clone)]
struct BankInstruments {
    acts: Counter,
    precharges: Counter,
    reads: Counter,
    writes: Counter,
}

impl TimerTelemetry {
    fn new(registry: Registry) -> Self {
        let wordlines = registry.histogram(
            "ambit_wordlines_raised",
            "Wordlines raised per ACTIVATE (1 ordinary, 2 RowClone, 3 TRA)",
            &[],
            &[1.0, 2.0, 3.0],
        );
        let command_energy_nj = registry.histogram(
            "ambit_command_energy_nj",
            "Energy per DRAM command in nanojoules (EnergyModel coefficients)",
            &[],
            &[0.5, 1.0, 2.0, 3.0, 4.0, 5.0],
        );
        let aaps = registry.counter(
            "ambit_aaps_total",
            "AAP (ACTIVATE-ACTIVATE-PRECHARGE) primitives completed",
            &[],
        );
        let aps = registry.counter(
            "ambit_aps_total",
            "AP (ACTIVATE-PRECHARGE) primitives completed",
            &[],
        );
        TimerTelemetry {
            registry,
            banks: Vec::new(),
            wordlines,
            command_energy_nj,
            aaps,
            aps,
        }
    }

    fn bank(&mut self, bank: usize) -> &BankInstruments {
        while self.banks.len() <= bank {
            let id = self.banks.len().to_string();
            let labels: &[(&str, &str)] = &[("bank", &id)];
            self.banks.push(BankInstruments {
                acts: self.registry.counter(
                    "ambit_acts_total",
                    "ACTIVATE commands issued per bank",
                    labels,
                ),
                precharges: self.registry.counter(
                    "ambit_precharges_total",
                    "PRECHARGE commands issued per bank",
                    labels,
                ),
                reads: self.registry.counter(
                    "ambit_reads_total",
                    "Column READ bursts issued per bank",
                    labels,
                ),
                writes: self.registry.counter(
                    "ambit_writes_total",
                    "Column WRITE bursts issued per bank",
                    labels,
                ),
            });
        }
        &self.banks[bank]
    }
}

impl CommandTimer {
    /// Creates a timer with 16 bank slots (banks are created lazily beyond
    /// that) and the DDR3-1333 energy model.
    pub fn new(timing: TimingParams, mode: AapMode) -> Self {
        CommandTimer {
            timing,
            mode,
            energy_model: EnergyModel::ddr3_1333(),
            lanes: vec![ChannelLane::default()],
            lane_stride: usize::MAX,
            floor_ps: 0,
            banks: vec![BankTiming::default(); 16],
            enforce_inter_bank: false,
            horizon_ps: 0,
            stats: TimerStats::default(),
            trace: None,
            ring: VecDeque::with_capacity(DEFAULT_TRACE_CAPACITY),
            ring_cap: DEFAULT_TRACE_CAPACITY,
            ring_dropped: 0,
            telemetry: None,
        }
    }

    /// Enables or disables *full* (unbounded) command tracing. Enabling
    /// starts a fresh trace. Independent of the always-on ring buffer —
    /// see [`recent_trace`](CommandTimer::recent_trace).
    pub fn set_tracing(&mut self, enabled: bool) {
        self.trace = enabled.then(Vec::new);
    }

    /// The full recorded trace, if full tracing is enabled. For the
    /// always-on bounded view, use [`recent_trace`]
    /// (CommandTimer::recent_trace), which never returns `None`.
    pub fn trace(&self) -> Option<&[TraceEntry]> {
        self.trace.as_deref()
    }

    /// Resizes the always-on ring-buffer trace (default
    /// [`DEFAULT_TRACE_CAPACITY`] entries); a capacity of 0 disables ring
    /// recording. Existing entries beyond the new capacity are evicted
    /// oldest-first; the dropped-entry count resets.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.ring_cap = capacity;
        self.ring_dropped = 0;
        while self.ring.len() > capacity {
            self.ring.pop_front();
        }
    }

    /// The most recent commands (up to the ring capacity), oldest first.
    /// Always available — no opt-in required.
    pub fn recent_trace(&self) -> Vec<TraceEntry> {
        self.ring.iter().copied().collect()
    }

    /// Commands evicted from the ring buffer since the last
    /// [`set_trace_capacity`](CommandTimer::set_trace_capacity) call.
    pub fn trace_dropped(&self) -> u64 {
        self.ring_dropped
    }

    /// Attaches a telemetry registry: subsequent commands bump per-bank
    /// ACT/PRE/RD/WR counters, the wordlines-raised histogram, and the
    /// per-command energy histogram registered on it.
    pub fn set_telemetry(&mut self, registry: Registry) {
        self.telemetry = Some(TimerTelemetry::new(registry));
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    fn record(&mut self, at_ps: u64, bank: usize, command: TraceCommand) {
        let entry = TraceEntry { at_ps, bank, command };
        if let Some(trace) = &mut self.trace {
            trace.push(entry);
        }
        if self.ring_cap > 0 {
            if self.ring.len() == self.ring_cap {
                self.ring.pop_front();
                self.ring_dropped += 1;
            }
            self.ring.push_back(entry);
        }
    }

    /// The timing parameter set in use.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The AAP mode in use.
    pub fn mode(&self) -> AapMode {
        self.mode
    }

    /// Replaces the energy model.
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        self.energy_model = model;
    }

    /// Enables or disables cross-bank tRRD/tFAW enforcement (default: off,
    /// matching the paper's bank-parallel throughput projection).
    pub fn set_enforce_inter_bank(&mut self, enforce: bool) {
        self.enforce_inter_bank = enforce;
    }

    /// Partitions timing pipelines into channel lanes: pipeline `p` issues
    /// on the command bus of lane `p / stride`. The default (`usize::MAX`)
    /// keeps every pipeline on one lane — the historical single-bus model,
    /// correct for single-channel geometries. Multi-channel controllers set
    /// the stride to `ranks * banks` pipelines per channel (scaled by
    /// subarrays under SALP) so each channel gets its own independent
    /// command/data bus, which is what the hardware has.
    ///
    /// Call before issuing commands (or while all lanes are idle and
    /// equally advanced): re-striding does not migrate accumulated lane
    /// state between lanes.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn set_channel_stride(&mut self, stride: usize) {
        assert!(stride > 0, "channel stride must be nonzero");
        self.lane_stride = stride;
    }

    /// The channel lane a timing pipeline issues on under the current
    /// stride (see [`set_channel_stride`](Self::set_channel_stride)).
    pub fn lane_of(&self, bank: usize) -> usize {
        if self.lane_stride == usize::MAX {
            0
        } else {
            bank / self.lane_stride
        }
    }

    fn lane_mut(&mut self, lane: usize) -> &mut ChannelLane {
        while self.lanes.len() <= lane {
            self.lanes.push(ChannelLane {
                now_ps: self.floor_ps,
                ..ChannelLane::default()
            });
        }
        &mut self.lanes[lane]
    }

    fn lane_now(&self, bank: usize) -> u64 {
        self.lanes
            .get(self.lane_of(bank))
            .map_or(self.floor_ps, |l| l.now_ps)
    }

    /// Current time (the cycle after the last issued command), picoseconds.
    /// With multiple channel lanes this is the most advanced lane's clock;
    /// for the per-lane view use [`bank_now_ps`](Self::bank_now_ps).
    pub fn now_ps(&self) -> u64 {
        self.lanes.iter().map(|l| l.now_ps).max().unwrap_or(self.floor_ps)
    }

    /// Current time on the command bus that serves `bank`'s channel lane.
    /// Equal to [`now_ps`](Self::now_ps) on single-channel timers.
    pub fn bank_now_ps(&self, bank: usize) -> u64 {
        self.lane_now(bank)
    }

    /// Advances every channel lane's clock to at least `t_ps` (models idle
    /// gaps and wave barriers; lanes created later also start here).
    pub fn advance_to(&mut self, t_ps: u64) {
        self.floor_ps = self.floor_ps.max(t_ps);
        for lane in &mut self.lanes {
            lane.now_ps = lane.now_ps.max(t_ps);
        }
        self.horizon_ps = self.horizon_ps.max(t_ps);
    }

    /// Latest command issue time on any bank — the wall-clock horizon of
    /// the simulation (`now_ps` is only the command-bus floor).
    pub fn horizon_ps(&self) -> u64 {
        self.horizon_ps
    }

    /// Whether `bank` currently has an open row. This is the authoritative
    /// bank state: schedulers layered on top must derive their open-row
    /// bookkeeping from it rather than shadowing it (a shadow diverges as
    /// soon as anything else drives the same timer).
    pub fn bank_active(&self, bank: usize) -> bool {
        self.banks.get(bank).is_some_and(|b| b.active)
    }

    /// ACTIVATE commands issued to `bank` since the timer was created — a
    /// generation counter. A cached row identity recorded at generation `g`
    /// is only trustworthy while `bank_acts(bank) == g` (and the bank is
    /// still active): any ACTIVATE from another driver bumps the counter
    /// and invalidates the cache.
    pub fn bank_acts(&self, bank: usize) -> u64 {
        self.banks.get(bank).map_or(0, |b| b.acts)
    }

    /// Earliest time `bank` could start a fresh ACTIVATE, assuming any open
    /// row is precharged as early as legal. This is the per-bank ready-time
    /// batch planners use to reason about overlapping bank timelines.
    pub fn bank_ready_ps(&self, bank: usize) -> u64 {
        let now = self.lane_now(bank);
        let Some(b) = self.banks.get(bank) else {
            return now;
        };
        if b.active {
            now.max(b.pre_ready_ps) + self.timing.t_rp_ps
        } else {
            now.max(b.act_ready_ps)
        }
    }

    /// Accumulated row-occupancy time of `bank`: the sum of all closed
    /// ACTIVATE → PRECHARGE+tRP intervals. Divided by a measurement window
    /// this is the bank's utilization (the per-bank occupancy gauges the
    /// driver's batch engine exports).
    pub fn bank_busy_ps(&self, bank: usize) -> u64 {
        self.banks.get(bank).map_or(0, |b| b.busy_ps)
    }

    /// Number of bank timing slots currently tracked (banks are grown
    /// lazily as commands address them).
    pub fn tracked_banks(&self) -> usize {
        self.banks.len()
    }

    /// Accumulated energy account, aggregated across channel lanes in lane
    /// order (deterministic: each lane's f64 sums depend only on its own
    /// command sequence).
    pub fn energy(&self) -> EnergyAccount {
        let mut total = EnergyAccount::new();
        for lane in &self.lanes {
            total.merge(&lane.energy);
        }
        total
    }

    /// Total energy (nanojoules) accumulated on the channel lane that
    /// serves `bank`. Receipts compute per-program energy as a delta of
    /// this value: a program issues on exactly one pipeline, so the delta
    /// is a pure function of that lane's own command sequence and is
    /// identical whether the lane replays serially or on a shard.
    pub fn bank_energy_nj(&self, bank: usize) -> f64 {
        self.lanes
            .get(self.lane_of(bank))
            .map_or(0.0, |l| l.energy.total_nj())
    }

    /// Issue statistics.
    pub fn stats(&self) -> TimerStats {
        self.stats
    }

    fn bank_mut(&mut self, bank: usize) -> &mut BankTiming {
        if bank >= self.banks.len() {
            self.banks.resize(bank + 1, BankTiming::default());
        }
        &mut self.banks[bank]
    }

    fn inter_bank_ready(&self, lane: usize) -> u64 {
        if !self.enforce_inter_bank {
            return 0;
        }
        let Some(lane) = self.lanes.get(lane) else {
            return 0;
        };
        let mut ready = 0;
        if let Some(last) = lane.last_act_ps {
            ready = ready.max(last + self.timing.t_rrd_ps);
        }
        if lane.recent_acts.len() >= 4 {
            let oldest = lane.recent_acts[lane.recent_acts.len() - 4];
            ready = ready.max(oldest + self.timing.t_faw_ps);
        }
        ready
    }

    fn note_act(&mut self, lane: usize, t: u64) {
        let lane = self.lane_mut(lane);
        lane.last_act_ps = Some(t);
        lane.recent_acts.push_back(t);
        while lane.recent_acts.len() > 4 {
            lane.recent_acts.pop_front();
        }
    }

    /// Issues an ACTIVATE to `bank` raising `wordlines` wordlines, at the
    /// earliest legal time ≥ now. Returns the issue time.
    ///
    /// A second ACTIVATE to an already-active bank is the AAP/RowClone copy
    /// activation; in [`AapMode::Overlapped`] it extends the row-restore
    /// window by only `t_overlap_extra` beyond the first ACTIVATE's tRAS,
    /// while in [`AapMode::Naive`] it behaves as a full activation.
    ///
    /// # Errors
    ///
    /// This auto-scheduling path never fails; the `Result` is reserved for
    /// future strict-mode use and for API symmetry with the device model.
    pub fn issue_activate(&mut self, bank: usize, wordlines: usize) -> Result<u64> {
        self.issue_activate_tagged(bank, wordlines, None)
    }

    /// [`issue_activate`](Self::issue_activate) with the target row address
    /// recorded on the trace, so validators can check row-level sequencing
    /// (e.g. PRECHARGE before re-ACTIVATE of a different row). Timing is
    /// identical to the untagged form — the tag is trace metadata only.
    ///
    /// # Errors
    ///
    /// Same contract as [`issue_activate`](Self::issue_activate).
    pub fn issue_activate_tagged(
        &mut self,
        bank: usize,
        wordlines: usize,
        row: Option<usize>,
    ) -> Result<u64> {
        let timing = self.timing;
        let mode = self.mode;
        let lane = self.lane_of(bank);
        let floor = self.lane_mut(lane).now_ps;
        let inter = self.inter_bank_ready(lane);
        let b = self.bank_mut(bank);
        let t = if b.active {
            // Back-to-back ACTIVATE (copy).
            let earliest = match mode {
                // Full sense amplification must complete first.
                AapMode::Naive => b.first_act_ps + timing.t_ras_ps,
                // Split decoder: issue once the first activation has
                // sufficiently progressed (we use tRCD as the "data is in
                // the sense amps" point).
                AapMode::Overlapped => b.first_act_ps + timing.t_rcd_ps,
            };
            let t = floor.max(earliest).max(inter);
            match mode {
                AapMode::Naive => {
                    b.pre_ready_ps = t + timing.t_ras_ps;
                }
                AapMode::Overlapped => {
                    b.pre_ready_ps = b
                        .pre_ready_ps
                        .max(b.first_act_ps + timing.t_ras_ps + timing.t_overlap_extra_ps);
                }
            }
            b.col_ready_ps = b.col_ready_ps.max(t + timing.t_rcd_ps);
            t
        } else {
            let t = floor.max(b.act_ready_ps).max(inter);
            b.active = true;
            b.first_act_ps = t;
            b.pre_ready_ps = t + timing.t_ras_ps;
            b.col_ready_ps = t + timing.t_rcd_ps;
            t
        };
        self.bank_mut(bank).acts += 1;
        self.note_act(lane, t);
        self.record(t, bank, TraceCommand::Activate { wordlines, row });
        self.horizon_ps = self.horizon_ps.max(t);
        let model = self.energy_model;
        let l = self.lane_mut(lane);
        l.now_ps = floor + timing.t_ck_ps;
        l.energy.record_activate(&model, wordlines);
        self.stats.activates += 1;
        if let Some(tel) = &mut self.telemetry {
            tel.bank(bank).acts.inc();
            tel.wordlines.observe(wordlines as f64);
            let nj = self.energy_model.activate_nj(wordlines);
            tel.command_energy_nj.observe(nj);
        }
        Ok(t)
    }

    /// Issues a PRECHARGE to `bank` at the earliest legal time ≥ now.
    /// Returns the time at which the bank becomes ready for the next
    /// ACTIVATE (issue time + tRP).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActivated`] if the bank has no open row.
    pub fn issue_precharge(&mut self, bank: usize) -> Result<u64> {
        let timing = self.timing;
        let lane = self.lane_of(bank);
        let floor = self.lane_mut(lane).now_ps;
        let b = self.bank_mut(bank);
        if !b.active {
            return Err(DramError::BankNotActivated);
        }
        let t = floor.max(b.pre_ready_ps);
        b.active = false;
        b.act_ready_ps = t + timing.t_rp_ps;
        b.busy_ps += t + timing.t_rp_ps - b.first_act_ps;
        self.record(t, bank, TraceCommand::Precharge);
        self.horizon_ps = self.horizon_ps.max(t + timing.t_rp_ps);
        let model = self.energy_model;
        let l = self.lane_mut(lane);
        l.now_ps = floor + timing.t_ck_ps;
        l.energy.record_precharge(&model);
        self.stats.precharges += 1;
        if let Some(tel) = &mut self.telemetry {
            tel.bank(bank).precharges.inc();
            let nj = self.energy_model.precharge_nj();
            tel.command_energy_nj.observe(nj);
        }
        Ok(t + timing.t_rp_ps)
    }

    /// Issues one column READ burst (64 B) to `bank`. Returns the time the
    /// data burst completes on the bus.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActivated`] if the bank has no open row.
    pub fn issue_read(&mut self, bank: usize) -> Result<u64> {
        self.issue_column(bank, false)
    }

    /// Issues one column WRITE burst (64 B) to `bank`. Returns the time the
    /// data burst completes on the bus.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActivated`] if the bank has no open row.
    pub fn issue_write(&mut self, bank: usize) -> Result<u64> {
        self.issue_column(bank, true)
    }

    fn issue_column(&mut self, bank: usize, is_write: bool) -> Result<u64> {
        let timing = self.timing;
        let lane = self.lane_of(bank);
        let (floor, bus_ready) = {
            let l = self.lane_mut(lane);
            (l.now_ps, l.bus_col_ready_ps)
        };
        let b = self.bank_mut(bank);
        if !b.active {
            return Err(DramError::BankNotActivated);
        }
        // tCCD is a shared-bus constraint, not just a per-bank one: bursts
        // from different banks of a channel still serialize on its data bus.
        let t = floor.max(b.col_ready_ps).max(bus_ready);
        b.col_ready_ps = t + timing.t_ccd_ps;
        if is_write {
            // Write recovery gates the next precharge.
            b.pre_ready_ps = b.pre_ready_ps.max(t + timing.t_cl_ps + timing.t_wr_ps);
        }
        self.record(
            t,
            bank,
            if is_write { TraceCommand::Write } else { TraceCommand::Read },
        );
        self.horizon_ps = self.horizon_ps.max(t);
        let burst_bytes = 64;
        let done = t + timing.t_cl_ps + timing.transfer_ps(burst_bytes);
        let model = self.energy_model;
        let l = self.lane_mut(lane);
        l.bus_col_ready_ps = t + timing.t_ccd_ps;
        l.now_ps = floor + timing.t_ck_ps;
        l.energy.record_transfer(&model, burst_bytes);
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if let Some(tel) = &mut self.telemetry {
            let bank_instruments = tel.bank(bank);
            if is_write {
                bank_instruments.writes.inc();
            } else {
                bank_instruments.reads.inc();
            }
            let nj = self.energy_model.transfer_nj(burst_bytes);
            tel.command_energy_nj.observe(nj);
        }
        Ok(done)
    }

    /// Issues a linked READ (from `src_bank`) + WRITE (to `dst_bank`) burst
    /// pair modelling a RowClone-PSM pipelined transfer (Seshadri et al.,
    /// MICRO'13): the write consumes the data as the read drives it, so the
    /// pair occupies a *single* tCCD bus slot instead of two. Independent
    /// reads/writes issued via [`issue_read`](Self::issue_read)/
    /// [`issue_write`](Self::issue_write) still serialize on the shared bus.
    /// Returns the time the burst completes.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankNotActivated`] if either bank has no open
    /// row.
    pub fn issue_transfer(&mut self, src_bank: usize, dst_bank: usize) -> Result<u64> {
        let timing = self.timing;
        let src_lane = self.lane_of(src_bank);
        let dst_lane = self.lane_of(dst_bank);
        // A cross-channel transfer occupies both channels' buses for the
        // burst; same-channel transfers (the common case, and the only case
        // on single-channel geometries) see exactly the historical timing.
        let floor = self.lane_mut(src_lane).now_ps.max(self.lane_mut(dst_lane).now_ps);
        let bus_ready = self
            .lane_mut(src_lane)
            .bus_col_ready_ps
            .max(self.lane_mut(dst_lane).bus_col_ready_ps);
        if !self.bank_mut(src_bank).active || !self.bank_mut(dst_bank).active {
            return Err(DramError::BankNotActivated);
        }
        let src_ready = self.bank_mut(src_bank).col_ready_ps;
        let dst_ready = self.bank_mut(dst_bank).col_ready_ps;
        let t = floor.max(src_ready).max(dst_ready).max(bus_ready);
        self.bank_mut(src_bank).col_ready_ps = t + timing.t_ccd_ps;
        {
            let d = self.bank_mut(dst_bank);
            d.col_ready_ps = t + timing.t_ccd_ps;
            // Write recovery gates the destination bank's next precharge.
            d.pre_ready_ps = d.pre_ready_ps.max(t + timing.t_cl_ps + timing.t_wr_ps);
        }
        self.record(t, src_bank, TraceCommand::Read);
        self.record(t, dst_bank, TraceCommand::Write);
        self.horizon_ps = self.horizon_ps.max(t);
        let burst_bytes = 64;
        let model = self.energy_model;
        {
            let l = self.lane_mut(src_lane);
            l.bus_col_ready_ps = t + timing.t_ccd_ps;
            l.now_ps = floor + timing.t_ck_ps;
        }
        if dst_lane != src_lane {
            let l = self.lane_mut(dst_lane);
            l.bus_col_ready_ps = t + timing.t_ccd_ps;
            l.now_ps = floor + timing.t_ck_ps;
        }
        // Energy is attributed to the source channel's account.
        self.lane_mut(src_lane).energy.record_transfer(&model, burst_bytes);
        self.stats.reads += 1;
        self.stats.writes += 1;
        if let Some(tel) = &mut self.telemetry {
            tel.bank(src_bank).reads.inc();
            tel.bank(dst_bank).writes.inc();
            let nj = self.energy_model.transfer_nj(burst_bytes);
            tel.command_energy_nj.observe(nj);
        }
        Ok(t + timing.t_cl_ps + timing.transfer_ps(burst_bytes))
    }

    /// Executes the AAP primitive (ACTIVATE `addr1`; ACTIVATE `addr2`;
    /// PRECHARGE) on `bank`, with `w1`/`w2` wordlines raised by the two
    /// activations. Returns `(start_ps, end_ps)` where `end` is when the
    /// bank is ready for the next command.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankAlreadyActivated`] if the bank has an open
    /// row (AAP must start from the precharged state).
    pub fn aap(&mut self, bank: usize, w1: usize, w2: usize) -> Result<(u64, u64)> {
        self.aap_tagged(bank, (w1, None), (w2, None))
    }

    /// [`aap`](Self::aap) with the row address of each activation recorded
    /// on the trace (trace metadata only; timing is identical).
    ///
    /// # Errors
    ///
    /// Same contract as [`aap`](Self::aap).
    pub fn aap_tagged(
        &mut self,
        bank: usize,
        (w1, r1): (usize, Option<usize>),
        (w2, r2): (usize, Option<usize>),
    ) -> Result<(u64, u64)> {
        if self.bank_mut(bank).active {
            return Err(DramError::BankAlreadyActivated);
        }
        let start = self.issue_activate_tagged(bank, w1, r1)?;
        self.issue_activate_tagged(bank, w2, r2)?;
        let end = self.issue_precharge(bank)?;
        self.stats.aaps += 1;
        if let Some(tel) = &self.telemetry {
            tel.aaps.inc();
        }
        Ok((start, end))
    }

    /// Executes the AP primitive (ACTIVATE; PRECHARGE) on `bank` with `w`
    /// wordlines raised. Returns `(start_ps, end_ps)`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankAlreadyActivated`] if the bank has an open
    /// row.
    pub fn ap(&mut self, bank: usize, w: usize) -> Result<(u64, u64)> {
        self.ap_tagged(bank, (w, None))
    }

    /// [`ap`](Self::ap) with the activation's row address recorded on the
    /// trace (trace metadata only; timing is identical).
    ///
    /// # Errors
    ///
    /// Same contract as [`ap`](Self::ap).
    pub fn ap_tagged(&mut self, bank: usize, (w, r): (usize, Option<usize>)) -> Result<(u64, u64)> {
        if self.bank_mut(bank).active {
            return Err(DramError::BankAlreadyActivated);
        }
        let start = self.issue_activate_tagged(bank, w, r)?;
        let end = self.issue_precharge(bank)?;
        self.stats.aps += 1;
        if let Some(tel) = &self.telemetry {
            tel.aps.inc();
        }
        Ok((start, end))
    }

    /// Forks an independent timing shard for one channel lane.
    ///
    /// The shard is a snapshot of this timer that records a private delta
    /// trace; by convention the caller only issues commands for pipelines
    /// of `lane` on it. Because everything order-dependent on a channel
    /// (clock, column-bus slot, tRRD/tFAW window, energy accumulator, bank
    /// slots) lives in per-lane or per-bank state, replaying one channel's
    /// command sequence on its shard produces bit-identical timestamps,
    /// receipts, and energy to replaying the interleaved sequence serially
    /// on this timer. Disjoint lanes may therefore replay on shards in
    /// parallel and be absorbed back
    /// ([`absorb_channel_shard`](Self::absorb_channel_shard)) in any order.
    ///
    /// Shared telemetry instruments stay attached (they are atomic and
    /// order-independent); the shard's delta trace is returned at absorb
    /// time for the caller to merge into serial order.
    pub fn fork_channel_shard(&self, lane: usize) -> TimerShard {
        let timer = CommandTimer {
            timing: self.timing,
            mode: self.mode,
            energy_model: self.energy_model,
            lanes: self.lanes.clone(),
            lane_stride: self.lane_stride,
            floor_ps: self.floor_ps,
            banks: self.banks.clone(),
            enforce_inter_bank: self.enforce_inter_bank,
            horizon_ps: self.horizon_ps,
            stats: self.stats,
            // Always collect the delta trace (needed for the ordered merge)
            // and park the ring: merged entries re-enter the ring via
            // `append_trace_entries` so ring contents and drop counts stay
            // identical to a serial replay.
            trace: Some(Vec::new()),
            ring: VecDeque::new(),
            ring_cap: 0,
            ring_dropped: 0,
            telemetry: self.telemetry.clone(),
        };
        TimerShard {
            timer,
            lane,
            stats_base: self.stats,
        }
    }

    /// Merges a channel shard's state back: the lane's bus state and energy,
    /// the bank slots the lane serves, integer stat deltas, and the horizon.
    /// Returns the shard's delta trace (in the shard's issue order) for the
    /// caller to interleave into serial order and append via
    /// [`append_trace_entries`](Self::append_trace_entries).
    ///
    /// The caller must not have issued commands on the absorbed lane (or
    /// its banks) on this timer since the fork — shards own their channel
    /// exclusively between fork and absorb.
    pub fn absorb_channel_shard(&mut self, shard: TimerShard) -> Vec<TraceEntry> {
        let TimerShard {
            timer: t,
            lane,
            stats_base,
        } = shard;
        debug_assert_eq!(self.lane_stride, t.lane_stride, "stride changed across fork");
        let (lo, hi) = if self.lane_stride == usize::MAX {
            (0, t.banks.len())
        } else {
            (
                lane * self.lane_stride,
                ((lane + 1) * self.lane_stride).min(t.banks.len()),
            )
        };
        if hi > self.banks.len() {
            self.banks.resize(hi, BankTiming::default());
        }
        if lo < hi {
            self.banks[lo..hi].copy_from_slice(&t.banks[lo..hi]);
        }
        if let Some(l) = t.lanes.get(lane) {
            *self.lane_mut(lane) = l.clone();
        }
        self.stats.activates += t.stats.activates - stats_base.activates;
        self.stats.precharges += t.stats.precharges - stats_base.precharges;
        self.stats.reads += t.stats.reads - stats_base.reads;
        self.stats.writes += t.stats.writes - stats_base.writes;
        self.stats.aaps += t.stats.aaps - stats_base.aaps;
        self.stats.aps += t.stats.aps - stats_base.aps;
        self.horizon_ps = self.horizon_ps.max(t.horizon_ps);
        t.trace.unwrap_or_default()
    }

    /// Appends already-timed entries to this timer's trace sinks (the
    /// opt-in full trace and the always-on ring) in the given order — the
    /// write half of the shard-merge protocol.
    pub fn append_trace_entries(&mut self, entries: &[TraceEntry]) {
        for e in entries {
            self.record(e.at_ps, e.bank, e.command);
        }
    }
}

/// A per-channel timing shard forked from a [`CommandTimer`] via
/// [`fork_channel_shard`](CommandTimer::fork_channel_shard): an owned timer
/// restricted by convention to one channel lane's pipelines, collecting a
/// private delta trace. Issue commands through
/// [`timer_mut`](Self::timer_mut), then hand the shard back to
/// [`absorb_channel_shard`](CommandTimer::absorb_channel_shard).
#[derive(Debug)]
pub struct TimerShard {
    timer: CommandTimer,
    lane: usize,
    stats_base: TimerStats,
}

impl TimerShard {
    /// The shard's timer (read-only).
    pub fn timer(&self) -> &CommandTimer {
        &self.timer
    }

    /// The shard's timer; issue this lane's commands here.
    pub fn timer_mut(&mut self) -> &mut CommandTimer {
        &mut self.timer
    }

    /// The channel lane this shard owns.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Delta-trace entries recorded on this shard so far. Workers bracket
    /// each program with this to attribute trace spans to chunks for the
    /// ordered merge.
    pub fn trace_len(&self) -> usize {
        self.timer.trace.as_ref().map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::PS_PER_NS;

    fn timer(mode: AapMode) -> CommandTimer {
        CommandTimer::new(TimingParams::ddr3_1600(), mode)
    }

    #[test]
    fn aap_overlapped_is_49ns() {
        let mut t = timer(AapMode::Overlapped);
        let (s, e) = t.aap(0, 1, 1).unwrap();
        assert_eq!(e - s, 49 * PS_PER_NS);
    }

    #[test]
    fn aap_naive_is_80ns() {
        let mut t = timer(AapMode::Naive);
        let (s, e) = t.aap(0, 1, 1).unwrap();
        assert_eq!(e - s, 80 * PS_PER_NS);
    }

    #[test]
    fn ap_is_45ns() {
        let mut t = timer(AapMode::Overlapped);
        let (s, e) = t.ap(0, 3).unwrap();
        assert_eq!(e - s, 45 * PS_PER_NS);
    }

    #[test]
    fn back_to_back_aaps_pipeline_on_one_bank() {
        let mut t = timer(AapMode::Overlapped);
        let (s1, e1) = t.aap(0, 1, 1).unwrap();
        let (s2, e2) = t.aap(0, 1, 1).unwrap();
        assert_eq!(e1 - s1, e2 - s2);
        // Second AAP's first ACT waits for tRP after the first AAP's PRE.
        assert!(s2 >= e1, "s2={s2} e1={e1}");
    }

    #[test]
    fn banks_overlap_without_inter_bank_enforcement() {
        let mut t = timer(AapMode::Overlapped);
        let (s0, _) = t.aap(0, 1, 1).unwrap();
        // Bank 1's AAP can start almost immediately (command bus slots only).
        let (s1, _) = t.aap(1, 1, 1).unwrap();
        assert!(s1 - s0 < 10 * PS_PER_NS, "banks should overlap: {}", s1 - s0);
    }

    #[test]
    fn trrd_and_tfaw_enforced_when_enabled() {
        let mut t = timer(AapMode::Overlapped);
        t.set_enforce_inter_bank(true);
        let mut acts = Vec::new();
        for bank in 0..5 {
            acts.push(t.issue_activate(bank, 1).unwrap());
        }
        for w in acts.windows(2) {
            assert!(w[1] - w[0] >= 6 * PS_PER_NS, "tRRD violated: {:?}", w);
        }
        // Fifth ACT must clear the tFAW window of the first.
        assert!(acts[4] - acts[0] >= 30 * PS_PER_NS, "tFAW violated");
    }

    #[test]
    fn precharge_requires_open_row() {
        let mut t = timer(AapMode::Overlapped);
        assert_eq!(t.issue_precharge(0).unwrap_err(), DramError::BankNotActivated);
    }

    #[test]
    fn aap_requires_precharged_bank() {
        let mut t = timer(AapMode::Overlapped);
        t.issue_activate(0, 1).unwrap();
        assert_eq!(t.aap(0, 1, 1).unwrap_err(), DramError::BankAlreadyActivated);
    }

    #[test]
    fn column_read_respects_trcd() {
        let mut t = timer(AapMode::Overlapped);
        let act = t.issue_activate(0, 1).unwrap();
        let done = t.issue_read(0).unwrap();
        // Data can't be back before ACT + tRCD + CL + burst.
        assert!(done >= act + (10 + 10 + 5) * PS_PER_NS);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut t = timer(AapMode::Overlapped);
        let act = t.issue_activate(0, 1).unwrap();
        t.issue_write(0).unwrap();
        t.issue_write(0).unwrap(); // second burst lands tCCD later
        let ready = t.issue_precharge(0).unwrap();
        // PRE must wait for CL + tWR after the *last* write command, which
        // pushes it past the plain tRAS + tRP row cycle.
        assert!(ready > act + (35 + 10) * PS_PER_NS, "ready={ready} act={act}");
    }

    #[test]
    fn energy_accumulates_with_wordline_counts() {
        let mut t = timer(AapMode::Overlapped);
        t.aap(0, 3, 1).unwrap();
        let e = t.energy();
        assert_eq!(e.activations, 2);
        assert_eq!(e.precharges, 1);
        let m = EnergyModel::ddr3_1333();
        let expect = m.activate_nj(3) + m.activate_nj(1) + m.precharge_nj();
        assert!((e.total_nj() - expect).abs() < 1e-9);
    }

    #[test]
    fn stats_track_primitives() {
        let mut t = timer(AapMode::Overlapped);
        t.aap(0, 1, 1).unwrap();
        t.ap(0, 3).unwrap();
        let s = t.stats();
        assert_eq!(s.aaps, 1);
        assert_eq!(s.aps, 1);
        assert_eq!(s.activates, 3);
        assert_eq!(s.precharges, 2);
    }

    #[test]
    fn trace_records_aap_as_act_act_pre() {
        let mut t = timer(AapMode::Overlapped);
        t.set_tracing(true);
        t.aap(2, 1, 3).unwrap();
        let trace = t.trace().unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].command, TraceCommand::Activate { wordlines: 1, row: None });
        assert_eq!(trace[1].command, TraceCommand::Activate { wordlines: 3, row: None });
        assert_eq!(trace[2].command, TraceCommand::Precharge);
        assert!(trace.iter().all(|e| e.bank == 2));
        // Per-bank trace times are monotone.
        assert!(trace.windows(2).all(|w| w[0].at_ps <= w[1].at_ps));
    }

    #[test]
    fn tagged_issues_record_row_addresses() {
        let mut t = timer(AapMode::Overlapped);
        t.set_tracing(true);
        t.aap_tagged(0, (1, Some(8)), (1, Some(9))).unwrap();
        t.ap_tagged(0, (3, Some(0))).unwrap();
        let trace = t.trace().unwrap();
        assert_eq!(trace[0].command, TraceCommand::Activate { wordlines: 1, row: Some(8) });
        assert_eq!(trace[1].command, TraceCommand::Activate { wordlines: 1, row: Some(9) });
        assert_eq!(trace[3].command, TraceCommand::Activate { wordlines: 3, row: Some(0) });
        // Tagging is metadata only: stats and timing match the plain forms.
        assert_eq!(t.stats().aaps, 1);
        assert_eq!(t.stats().aps, 1);
    }

    #[test]
    fn tracing_off_by_default_and_resettable() {
        let mut t = timer(AapMode::Overlapped);
        t.aap(0, 1, 1).unwrap();
        assert!(t.trace().is_none());
        t.set_tracing(true);
        t.aap(0, 1, 1).unwrap();
        assert_eq!(t.trace().unwrap().len(), 3);
        t.set_tracing(true); // re-enabling clears
        assert!(t.trace().unwrap().is_empty());
        t.set_tracing(false);
        assert!(t.trace().is_none());
    }

    #[test]
    fn ring_trace_is_always_on_and_bounded() {
        let mut t = timer(AapMode::Overlapped);
        // No opt-in: the ring already records.
        t.aap(0, 1, 1).unwrap();
        assert_eq!(t.recent_trace().len(), 3);
        assert_eq!(t.trace_dropped(), 0);
        assert!(t.trace().is_none(), "full trace stays opt-in");

        t.set_trace_capacity(4);
        assert_eq!(t.recent_trace().len(), 3, "entries under cap survive");
        t.aap(0, 1, 1).unwrap(); // 3 more commands, 2 evicted
        let recent = t.recent_trace();
        assert_eq!(recent.len(), 4);
        assert_eq!(t.trace_dropped(), 2);
        // Oldest-first: the tail of the command stream.
        assert_eq!(recent[3].command, TraceCommand::Precharge);
        // Times stay monotone on the single bank.
        assert!(recent.windows(2).all(|w| w[0].at_ps <= w[1].at_ps));

        t.set_trace_capacity(0);
        assert!(t.recent_trace().is_empty());
        t.aap(0, 1, 1).unwrap();
        assert!(t.recent_trace().is_empty(), "capacity 0 disables the ring");
        assert_eq!(t.trace_dropped(), 0);
    }

    #[test]
    fn telemetry_counts_commands_per_bank() {
        use ambit_telemetry::Registry;
        let reg = Registry::new();
        let mut t = timer(AapMode::Overlapped);
        t.set_telemetry(reg.clone());
        t.aap(0, 1, 3).unwrap();
        t.ap(2, 3).unwrap();
        t.issue_activate(1, 1).unwrap();
        t.issue_read(1).unwrap();
        t.issue_write(1).unwrap();

        assert_eq!(reg.counter_value("ambit_acts_total", &[("bank", "0")]), Some(2));
        assert_eq!(reg.counter_value("ambit_acts_total", &[("bank", "2")]), Some(1));
        assert_eq!(reg.counter_value("ambit_reads_total", &[("bank", "1")]), Some(1));
        assert_eq!(reg.counter_value("ambit_writes_total", &[("bank", "1")]), Some(1));
        assert_eq!(reg.counter_family_total("ambit_acts_total"), Some(4));
        assert_eq!(reg.counter_value("ambit_aaps_total", &[]), Some(1));
        assert_eq!(reg.counter_value("ambit_aps_total", &[]), Some(1));

        // Wordlines histogram saw 1, 3, 3, 1 (le-buckets 1/2/3).
        let wl = reg.histogram_snapshot("ambit_wordlines_raised", &[]).unwrap();
        assert_eq!(wl.counts, vec![2, 0, 2, 0]);

        // The energy histogram's sum equals the EnergyAccount total.
        let e = reg.histogram_snapshot("ambit_command_energy_nj", &[]).unwrap();
        assert!((e.sum - t.energy().total_nj()).abs() < 1e-9);
    }

    #[test]
    fn bank_state_accessors_track_activity() {
        let mut t = timer(AapMode::Overlapped);
        assert!(!t.bank_active(0));
        assert_eq!(t.bank_acts(0), 0);
        assert_eq!(t.bank_busy_ps(0), 0);
        let act = t.issue_activate(0, 1).unwrap();
        assert!(t.bank_active(0));
        assert_eq!(t.bank_acts(0), 1);
        // While open, the bank's next fresh ACT must clear PRE + tRP.
        assert!(t.bank_ready_ps(0) >= act + (35 + 10) * PS_PER_NS);
        let ready = t.issue_precharge(0).unwrap();
        assert!(!t.bank_active(0));
        // The closed interval counts toward occupancy: ACT → PRE + tRP.
        assert_eq!(t.bank_busy_ps(0), ready - act);
        assert_eq!(t.bank_ready_ps(0), ready);
        // Out-of-range banks read as idle rather than panicking.
        assert!(!t.bank_active(99));
        assert_eq!(t.bank_acts(99), 0);
        assert!(t.tracked_banks() >= 1);
    }

    #[test]
    fn column_bursts_share_one_bus_across_banks() {
        let mut t = timer(AapMode::Overlapped);
        t.issue_activate(0, 1).unwrap();
        t.issue_activate(1, 1).unwrap();
        let d0 = t.issue_read(0).unwrap();
        let d1 = t.issue_read(1).unwrap();
        // Bank 1's burst is tCCD behind bank 0's despite independent
        // per-bank column readiness: the data bus is shared.
        assert!(d1 >= d0 + t.timing().t_ccd_ps, "d0={d0} d1={d1}");
    }

    #[test]
    fn and_operation_latency_matches_paper_arithmetic() {
        // 4 AAPs at 49 ns = 196 ns for a bulk AND of one row pair (§5.2-5.3).
        let mut t = timer(AapMode::Overlapped);
        let start = t.now_ps();
        for _ in 0..3 {
            t.aap(0, 1, 1).unwrap();
        }
        let (_, end) = t.aap(0, 3, 1).unwrap();
        assert_eq!(end - start, 4 * 49 * PS_PER_NS);
    }
}
