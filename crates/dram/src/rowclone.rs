//! RowClone: in-DRAM bulk copy and initialization (Seshadri et al.,
//! MICRO'13), the substrate Ambit uses to move operands into the designated
//! rows (paper Section 3.4).
//!
//! Two modes are modelled:
//!
//! * **FPM (Fast Parallel Mode)** — two back-to-back ACTIVATEs within one
//!   subarray copy an entire row through the sense amplifiers in ~80 ns
//!   (one AAP).
//! * **PSM (Pipelined Serial Mode)** — copies between banks over the
//!   internal bus, one cache line at a time; functionally a read-modify-
//!   write loop, an order of magnitude slower than FPM.
//!
//! A third fallback, `Controller`, models copying through the memory
//! controller over the channel (read out, write back), which is what a
//! system without RowClone would do — useful as a baseline.

use crate::controller::CommandTimer;
use crate::device::DramDevice;
use crate::error::{DramError, Result};
use crate::geometry::RowLocation;
use crate::subarray::Wordline;

/// Which copy mechanism a [`copy`] call ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyMode {
    /// In-subarray copy via back-to-back ACTIVATE (one AAP).
    Fpm,
    /// Bank-to-bank copy over the internal bus.
    Psm,
    /// Read out to the controller and write back (no RowClone).
    Controller,
}

/// Outcome of a copy: the mechanism used and its latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyOutcome {
    /// Mechanism chosen.
    pub mode: CopyMode,
    /// Latency in picoseconds.
    pub latency_ps: u64,
}

/// Copies `src` to `dst` using RowClone-FPM.
///
/// Both rows must live in the same subarray (they share sense amplifiers).
/// Performs the functional copy on `device` and accounts ACT-ACT-PRE timing
/// and energy on `timer`.
///
/// # Errors
///
/// Returns [`DramError::SubarrayConflict`] if the rows are not in the same
/// bank and subarray, and propagates protocol errors.
pub fn copy_fpm(
    device: &mut DramDevice,
    timer: &mut CommandTimer,
    src: RowLocation,
    dst: RowLocation,
) -> Result<CopyOutcome> {
    if src.bank != dst.bank || src.subarray != dst.subarray {
        return Err(DramError::SubarrayConflict {
            open: src.subarray,
            requested: dst.subarray,
        });
    }
    let bank = device.bank_mut(src.bank);
    bank.activate(src.subarray, &[Wordline::data(src.row)])?;
    bank.activate(src.subarray, &[Wordline::data(dst.row)])?;
    bank.precharge()?;
    let flat = src.bank.flat_index(device.geometry());
    let (start, end) = timer.aap(flat, 1, 1)?;
    Ok(CopyOutcome {
        mode: CopyMode::Fpm,
        latency_ps: end - start,
    })
}

/// Copies `src` to `dst` using RowClone-PSM (bank-to-bank over the internal
/// bus, one 64 B cache line at a time).
///
/// # Errors
///
/// Returns [`DramError::SubarrayConflict`] if the rows are in the same bank
/// (PSM requires two distinct banks), and propagates protocol errors.
pub fn copy_psm(
    device: &mut DramDevice,
    timer: &mut CommandTimer,
    src: RowLocation,
    dst: RowLocation,
) -> Result<CopyOutcome> {
    if src.bank == dst.bank {
        return Err(DramError::SubarrayConflict {
            open: src.subarray,
            requested: dst.subarray,
        });
    }
    // Functional transfer.
    let data = device.read_row(src)?;
    device.write_row(dst, &data)?;

    // Timing: activate both banks, then pipeline line-sized transfers on the
    // internal bus (overlapped read/write), then precharge both.
    let src_flat = src.bank.flat_index(device.geometry());
    let dst_flat = dst.bank.flat_index(device.geometry());
    let start = timer.issue_activate(src_flat, 1)?;
    timer.issue_activate(dst_flat, 1)?;
    let lines = device.geometry().row_bytes.div_ceil(64);
    let mut last_burst = timer.now_ps();
    for _ in 0..lines {
        last_burst = timer.issue_transfer(src_flat, dst_flat)?;
    }
    timer.advance_to(last_burst);
    timer.issue_precharge(src_flat)?;
    let end = timer.issue_precharge(dst_flat)?;
    Ok(CopyOutcome {
        mode: CopyMode::Psm,
        latency_ps: end - start,
    })
}

/// Copies `src` to `dst` through the memory controller (no RowClone): the
/// row is read out over the channel and written back.
///
/// # Errors
///
/// Propagates protocol errors from the device model.
pub fn copy_via_controller(
    device: &mut DramDevice,
    timer: &mut CommandTimer,
    src: RowLocation,
    dst: RowLocation,
) -> Result<CopyOutcome> {
    let data = device.read_row(src)?;
    device.write_row(dst, &data)?;

    let src_flat = src.bank.flat_index(device.geometry());
    let dst_flat = dst.bank.flat_index(device.geometry());
    let lines = device.geometry().row_bytes.div_ceil(64);
    let start = timer.issue_activate(src_flat, 1)?;
    for _ in 0..lines {
        timer.issue_read(src_flat)?;
    }
    timer.issue_precharge(src_flat)?;
    timer.issue_activate(dst_flat, 1)?;
    let mut last = timer.now_ps();
    for _ in 0..lines {
        last = timer.issue_write(dst_flat)?;
    }
    timer.advance_to(last);
    let end = timer.issue_precharge(dst_flat)?;
    Ok(CopyOutcome {
        mode: CopyMode::Controller,
        latency_ps: end - start,
    })
}

/// Copies `src` to `dst`, automatically selecting the fastest legal
/// mechanism: FPM within a subarray, PSM across banks, controller copy
/// otherwise (same bank, different subarray).
///
/// # Errors
///
/// Propagates protocol errors from the chosen mechanism.
pub fn copy(
    device: &mut DramDevice,
    timer: &mut CommandTimer,
    src: RowLocation,
    dst: RowLocation,
) -> Result<CopyOutcome> {
    if src.bank == dst.bank && src.subarray == dst.subarray {
        copy_fpm(device, timer, src, dst)
    } else if src.bank != dst.bank {
        copy_psm(device, timer, src, dst)
    } else {
        copy_via_controller(device, timer, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitrow::BitRow;
    use crate::geometry::{BankId, DramGeometry};
    use crate::timing::{AapMode, TimingParams};

    fn setup() -> (DramDevice, CommandTimer) {
        (
            DramDevice::new(DramGeometry::tiny()),
            CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Naive),
        )
    }

    fn pattern(bits: usize) -> BitRow {
        BitRow::from_fn(bits, |i| i % 5 == 0 || i % 3 == 1)
    }

    #[test]
    fn fpm_copies_within_subarray_in_80ns() {
        let (mut dev, mut timer) = setup();
        let bits = dev.geometry().row_bits();
        let src = RowLocation::in_bank0(0, 2);
        let dst = RowLocation::in_bank0(0, 9);
        dev.poke(src, pattern(bits));
        let out = copy_fpm(&mut dev, &mut timer, src, dst).unwrap();
        assert_eq!(out.mode, CopyMode::Fpm);
        assert_eq!(out.latency_ps, 80_000, "paper: RowClone-FPM ≈ 80 ns");
        assert_eq!(dev.peek(dst), pattern(bits));
        assert_eq!(dev.peek(src), pattern(bits), "source preserved");
    }

    #[test]
    fn fpm_rejects_cross_subarray() {
        let (mut dev, mut timer) = setup();
        let src = RowLocation::in_bank0(0, 2);
        let dst = RowLocation::in_bank0(1, 2);
        assert!(copy_fpm(&mut dev, &mut timer, src, dst).is_err());
    }

    #[test]
    fn psm_copies_across_banks_and_is_much_slower() {
        // Use full-size 8 KB rows: PSM cost scales with row size.
        let mut dev = DramDevice::new(DramGeometry::ddr3_module());
        let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Naive);
        let bits = dev.geometry().row_bits();
        let src = RowLocation::in_bank0(0, 2);
        let dst = RowLocation {
            bank: BankId {
                channel: 0,
                rank: 0,
                bank: 1,
            },
            subarray: 1,
            row: 4,
        };
        dev.poke(src, pattern(bits));
        let out = copy_psm(&mut dev, &mut timer, src, dst).unwrap();
        assert_eq!(out.mode, CopyMode::Psm);
        assert_eq!(dev.peek(dst), pattern(bits));
        assert!(
            out.latency_ps > 80_000,
            "PSM ({}) should be slower than FPM",
            out.latency_ps
        );
    }

    #[test]
    fn psm_rejects_same_bank() {
        let (mut dev, mut timer) = setup();
        let src = RowLocation::in_bank0(0, 2);
        let dst = RowLocation::in_bank0(1, 4);
        assert!(copy_psm(&mut dev, &mut timer, src, dst).is_err());
    }

    #[test]
    fn auto_copy_selects_modes() {
        let (mut dev, mut timer) = setup();
        let bits = dev.geometry().row_bits();
        let a = RowLocation::in_bank0(0, 1);
        dev.poke(a, pattern(bits));
        // Same subarray → FPM.
        let same = copy(&mut dev, &mut timer, a, RowLocation::in_bank0(0, 3)).unwrap();
        assert_eq!(same.mode, CopyMode::Fpm);
        // Same bank, different subarray → controller.
        let ctrl = copy(&mut dev, &mut timer, a, RowLocation::in_bank0(1, 3)).unwrap();
        assert_eq!(ctrl.mode, CopyMode::Controller);
        assert_eq!(dev.peek(RowLocation::in_bank0(1, 3)), pattern(bits));
        // Different bank → PSM.
        let dst = RowLocation {
            bank: BankId {
                channel: 0,
                rank: 0,
                bank: 1,
            },
            subarray: 0,
            row: 0,
        };
        let psm = copy(&mut dev, &mut timer, a, dst).unwrap();
        assert_eq!(psm.mode, CopyMode::Psm);
    }

    #[test]
    fn mode_latency_ordering_fpm_psm_controller() {
        // FPM < PSM < controller copy, as the RowClone paper reports.
        let g = DramGeometry::ddr3_module();
        let mut dev = DramDevice::new(g);
        let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Naive);
        let bits = g.row_bits();
        let a = RowLocation::in_bank0(0, 1);
        dev.poke(a, pattern(bits));

        let fpm = copy_fpm(&mut dev, &mut timer, a, RowLocation::in_bank0(0, 2)).unwrap();
        let psm_dst = RowLocation {
            bank: BankId {
                channel: 0,
                rank: 0,
                bank: 1,
            },
            subarray: 0,
            row: 1,
        };
        let psm = copy_psm(&mut dev, &mut timer, a, psm_dst).unwrap();
        let ctrl =
            copy_via_controller(&mut dev, &mut timer, a, RowLocation::in_bank0(1, 1)).unwrap();
        assert!(fpm.latency_ps < psm.latency_ps);
        assert!(psm.latency_ps < ctrl.latency_ps);
    }
}
