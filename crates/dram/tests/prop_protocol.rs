//! Protocol fuzzing: arbitrary command sequences against the subarray,
//! bank, and timer models. The models must never panic, must reject
//! illegal transitions with the right error, and must keep their timing
//! invariants under any interleaving.

use ambit_dram::{
    AapMode, Bank, BitRow, CommandTimer, DramError, Subarray, TieBreak, TimingParams, Wordline,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cmd {
    Activate(Vec<u8>),
    ActivateNegated(u8),
    Precharge,
    Read(u8),
    Write(u8, u8),
    Poke(u8, u64),
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        proptest::collection::vec(0u8..8, 1..4).prop_map(Cmd::Activate),
        (0u8..8).prop_map(Cmd::ActivateNegated),
        Just(Cmd::Precharge),
        (0u8..8).prop_map(Cmd::Read),
        (0u8..8, any::<u8>()).prop_map(|(o, v)| Cmd::Write(o, v)),
        (0u8..8, any::<u64>()).prop_map(|(r, v)| Cmd::Poke(r, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn subarray_survives_any_command_sequence(cmds in proptest::collection::vec(cmd_strategy(), 1..60)) {
        let mut sa = Subarray::new(8, 64);
        sa.set_tie_break(TieBreak::Random); // never error on ambiguity
        for cmd in cmds {
            match cmd {
                Cmd::Activate(rows) => {
                    let wls: Vec<Wordline> = rows.iter().map(|&r| Wordline::data(r as usize)).collect();
                    let _ = sa.activate(&wls);
                }
                Cmd::ActivateNegated(row) => {
                    let _ = sa.activate(&[Wordline::negated(row as usize)]);
                }
                Cmd::Precharge => {
                    let result = sa.precharge();
                    if result.is_err() {
                        prop_assert!(!sa.is_activated(), "precharge only fails when idle");
                    }
                }
                Cmd::Read(offset) => {
                    let mut buf = [0u8; 1];
                    let result = sa.read_bytes(offset as usize, &mut buf);
                    if offset < 8 && sa.is_activated() {
                        prop_assert!(result.is_ok());
                    }
                }
                Cmd::Write(offset, value) => {
                    let _ = sa.write_bytes(offset as usize, &[value]);
                }
                Cmd::Poke(row, value) => {
                    let mut data = BitRow::zeros(64);
                    data.write_bytes(0, &value.to_le_bytes());
                    sa.poke_row(row as usize, data);
                }
            }
            // Global invariant: sense buffer exists iff activated.
            prop_assert_eq!(sa.sense().is_some(), sa.is_activated());
        }
    }

    #[test]
    fn bank_protocol_invariants(
        ops in proptest::collection::vec((0usize..3, 0usize..4, 0usize..8), 1..60),
        salp in any::<bool>(),
    ) {
        let mut bank = Bank::new(4, 8, 64);
        bank.set_salp(salp);
        for (kind, subarray, row) in ops {
            match kind {
                0 => {
                    let before = bank.open_subarrays().len();
                    match bank.activate(subarray, &[Wordline::data(row)]) {
                        Ok(_) => {
                            prop_assert!(bank.is_activated());
                            if !salp {
                                prop_assert!(bank.open_subarrays().len() <= 1);
                            }
                        }
                        Err(DramError::SubarrayConflict { .. }) => {
                            prop_assert!(!salp, "SALP never raises subarray conflicts");
                            prop_assert_eq!(bank.open_subarrays().len(), before);
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                    }
                }
                1 => {
                    let was_open = bank.is_activated();
                    let result = bank.precharge();
                    prop_assert_eq!(result.is_ok(), was_open);
                    prop_assert!(!bank.is_activated());
                }
                _ => {
                    let was_open = bank.open_subarrays().contains(&subarray);
                    let result = bank.precharge_subarray(subarray);
                    prop_assert_eq!(result.is_ok(), was_open);
                }
            }
        }
    }

    #[test]
    fn timer_issue_times_respect_per_bank_ordering(
        ops in proptest::collection::vec((0usize..4, 0usize..3), 1..80),
    ) {
        let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Overlapped);
        let mut last_issue = [0u64; 4];
        let mut active = [false; 4];
        for (bank, kind) in ops {
            match kind {
                0 => {
                    let t = timer.issue_activate(bank, 1).unwrap();
                    prop_assert!(t >= last_issue[bank], "per-bank time went backwards");
                    last_issue[bank] = t;
                    active[bank] = true;
                }
                1 => {
                    if active[bank] {
                        let ready = timer.issue_precharge(bank).unwrap();
                        prop_assert!(ready >= last_issue[bank]);
                        last_issue[bank] = ready;
                        active[bank] = false;
                    } else {
                        prop_assert_eq!(
                            timer.issue_precharge(bank).unwrap_err(),
                            DramError::BankNotActivated
                        );
                    }
                }
                _ => {
                    if active[bank] {
                        // Data returns after the row was opened; completion
                        // times do not constrain later command *issue* times
                        // (an AAP's copy-ACT may issue while data is in
                        // flight), so they are checked but not accumulated.
                        let done = timer.issue_read(bank).unwrap();
                        prop_assert!(done >= last_issue[bank]);
                    }
                }
            }
            // The wall-clock horizon covers every bank's progress.
            prop_assert!(timer.horizon_ps() >= *last_issue.iter().max().expect("nonempty"));
        }
    }

    #[test]
    fn aap_latency_is_constant_regardless_of_history(
        warmup in proptest::collection::vec(0usize..4, 0..20),
    ) {
        // Whatever other banks did before, a fresh AAP on an idle bank
        // always takes exactly 49 ns end to end.
        let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Overlapped);
        for bank in warmup {
            let _ = timer.aap(bank, 1, 1);
        }
        let (s, e) = timer.aap(7, 1, 1).unwrap();
        prop_assert_eq!(e - s, 49_000);
    }

    #[test]
    fn energy_is_monotone_in_commands(n in 1usize..40) {
        let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Overlapped);
        let mut last = 0.0;
        for i in 0..n {
            timer.aap(i % 4, 1 + i % 3, 1).unwrap();
            let e = timer.energy().total_nj();
            prop_assert!(e > last);
            last = e;
        }
    }
}
