//! Integration tests for manufacturing faults, spare-row repair, and
//! transient TRA fault injection (paper Sections 5.5.3 and 6).

use ambit_dram::{BitRow, CellFault, DramError, Subarray, Wordline};

fn filled(bits: usize, stride: usize) -> BitRow {
    BitRow::from_fn(bits, |i| i % stride == 0)
}

#[test]
fn stuck_at_faults_corrupt_stored_data() {
    let mut sa = Subarray::new(16, 64);
    sa.poke_row(3, BitRow::ones(64));
    sa.inject_fault(3, 10, CellFault::StuckAtZero).unwrap();
    sa.inject_fault(3, 20, CellFault::StuckAtZero).unwrap();
    let data = sa.peek_row(3);
    assert!(!data.get(10) && !data.get(20));
    assert_eq!(data.count_ones(), 62);
    // Writing again cannot heal a stuck cell.
    sa.poke_row(3, BitRow::ones(64));
    assert!(!sa.peek_row(3).get(10));
}

#[test]
fn stuck_at_one_pollutes_tra_results() {
    // A stuck-at-one cell in a designated row makes AND results wrong at
    // that bit — the failure testing must catch (Section 5.5.3).
    let mut sa = Subarray::new(16, 64);
    sa.inject_fault(2, 5, CellFault::StuckAtOne).unwrap(); // row 2 = control zero row
    sa.poke_row(0, BitRow::ones(64));
    sa.poke_row(1, BitRow::ones(64));
    sa.poke_row(2, BitRow::zeros(64)); // tries to clear; bit 5 stays 1
    let sensed = sa
        .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
        .unwrap()
        .clone();
    sa.precharge().unwrap();
    // majority(1, 1, stuck-1) is still 1 everywhere, but a majority with
    // the roles reversed shows the corruption:
    let mut sa2 = Subarray::new(16, 64);
    sa2.inject_fault(2, 5, CellFault::StuckAtOne).unwrap();
    sa2.poke_row(0, BitRow::ones(64));
    sa2.poke_row(1, BitRow::zeros(64));
    sa2.poke_row(2, BitRow::zeros(64));
    let and = sa2
        .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
        .unwrap()
        .clone();
    assert!(and.get(5), "stuck-at-one flipped AND(1,0) to 1 at bit 5");
    assert_eq!(and.count_ones(), 1, "all healthy bitlines computed 0");
    assert_eq!(sensed.count_ones(), 64);
}

#[test]
fn spare_row_remap_repairs_a_faulty_row() {
    let mut sa = Subarray::new(32, 64);
    // Row 7 is faulty; row 30 is a spare.
    sa.inject_fault(7, 0, CellFault::StuckAtZero).unwrap();
    sa.remap_row(7, 30).unwrap();
    // Logical row 7 now reaches physical row 30: writes stick.
    let data = filled(64, 3);
    sa.poke_row(7, data.clone());
    assert_eq!(sa.peek_row(7), data);
    assert!(sa.peek_row(7).get(0), "bit 0 healthy after repair");
    // The activation path follows the remap too.
    let sensed = sa.activate(&[Wordline::data(7)]).unwrap().clone();
    sa.precharge().unwrap();
    assert_eq!(sensed, data);
}

#[test]
fn remapped_tra_is_correct() {
    // Repair must keep TRA working: remap one designated row to a spare
    // and verify the majority still computes.
    let mut sa = Subarray::new(32, 64);
    sa.remap_row(1, 29).unwrap();
    let a = filled(64, 2);
    let b = filled(64, 3);
    sa.poke_row(0, a.clone());
    sa.poke_row(1, b.clone()); // lands in physical row 29
    sa.poke_row(2, BitRow::zeros(64));
    let sensed = sa
        .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
        .unwrap()
        .clone();
    sa.precharge().unwrap();
    assert_eq!(sensed, a.and(&b));
    // The result was restored through the remap as well.
    assert_eq!(sa.peek_row(1), a.and(&b));
}

#[test]
fn transient_tra_faults_occur_at_roughly_the_configured_rate() {
    let mut sa = Subarray::new(16, 8192);
    sa.set_tra_fault_rate(0.01).unwrap();
    let a = BitRow::ones(8192);
    let mut wrong_bits = 0usize;
    let trials = 50;
    for _ in 0..trials {
        sa.poke_row(0, a.clone());
        sa.poke_row(1, a.clone());
        sa.poke_row(2, a.clone());
        let sensed = sa
            .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
            .unwrap()
            .clone();
        sa.precharge().unwrap();
        wrong_bits += 8192 - sensed.count_ones();
    }
    let rate = wrong_bits as f64 / (trials * 8192) as f64;
    assert!(
        (rate - 0.01).abs() < 0.004,
        "observed fault rate {rate}, configured 0.01"
    );
}

#[test]
fn transient_faults_do_not_affect_single_row_activation() {
    // Ordinary sensing has full signal margin; only charge-sharing
    // activations are exposed to the variation-induced failures.
    let mut sa = Subarray::new(16, 4096);
    sa.set_tra_fault_rate(0.5).unwrap();
    let data = filled(4096, 5);
    sa.poke_row(0, data.clone());
    let sensed = sa.activate(&[Wordline::data(0)]).unwrap().clone();
    sa.precharge().unwrap();
    assert_eq!(sensed, data);
}

#[test]
fn zero_fault_rate_is_deterministic() {
    let mut sa = Subarray::new(16, 1024);
    sa.set_tra_fault_rate(0.0).unwrap();
    let a = filled(1024, 2);
    let b = filled(1024, 3);
    sa.poke_row(0, a.clone());
    sa.poke_row(1, b.clone());
    sa.poke_row(2, BitRow::zeros(1024));
    let sensed = sa
        .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
        .unwrap()
        .clone();
    assert_eq!(sensed, a.and(&b));
}

#[test]
fn fault_bounds_checked() {
    let err = Subarray::new(4, 8)
        .inject_fault(4, 0, CellFault::StuckAtZero)
        .unwrap_err();
    assert_eq!(
        err,
        DramError::CellOutOfRange { row: 4, bit: 0, rows: 4, bits: 8 }
    );
    assert!(matches!(
        Subarray::new(4, 8).remap_row(0, 9).unwrap_err(),
        DramError::RowOutOfRange { row: 9, rows: 4 }
    ));
}

#[test]
fn fault_rate_validated() {
    for bad in [1.5, -0.1, f64::NAN] {
        assert!(matches!(
            Subarray::new(4, 8).set_tra_fault_rate(bad).unwrap_err(),
            DramError::InvalidFaultRate { .. }
        ));
    }
    assert!(Subarray::new(4, 8).set_tra_fault_rate(1.0).is_ok());
}

#[test]
fn clear_faults_restores_health() {
    let mut sa = Subarray::new(8, 64);
    sa.inject_fault(0, 3, CellFault::StuckAtOne).unwrap();
    sa.clear_faults();
    sa.poke_row(0, BitRow::zeros(64));
    assert_eq!(sa.peek_row(0).count_ones(), 0);
}
