//! Equivalence suite for the word-parallel charge-share fast path.
//!
//! The 3-row TRA fast path must be byte-identical to the retained bit-serial
//! scalar reference (`Subarray::set_scalar_reference`) across arbitrary row
//! contents, bitline/bitline-bar side mixes, and every `TieBreak` policy —
//! and arming transient fault injection must keep producing the exact same
//! deterministic flip stream as before the fast path existed (fault-armed
//! subarrays always take the scalar path).

use ambit_conformance::ReferenceRng;
use ambit_dram::{BitRow, CellFault, Subarray, TieBreak, Wordline};
use proptest::prelude::*;

fn bitrow_strategy(len: usize) -> impl Strategy<Value = BitRow> {
    proptest::collection::vec(any::<bool>(), len)
        .prop_map(move |bits| BitRow::from_fn(len, |i| bits[i]))
}

fn wordline(row: usize, bar: bool) -> Wordline {
    if bar {
        Wordline::negated(row)
    } else {
        Wordline::data(row)
    }
}

/// Runs the same TRA on a fast-path and a forced-scalar subarray and checks
/// that the sensed value and every restored row agree bit for bit.
fn assert_tra_equivalent(
    rows: &(BitRow, BitRow, BitRow),
    sides: (bool, bool, bool),
    policy: TieBreak,
) -> std::result::Result<(), TestCaseError> {
    let bits = rows.0.len();
    let mk = |force_scalar: bool| {
        let mut sa = Subarray::new(8, bits);
        sa.set_scalar_reference(force_scalar);
        sa.set_tie_break(policy);
        sa.poke_row(0, rows.0.clone());
        sa.poke_row(1, rows.1.clone());
        sa.poke_row(2, rows.2.clone());
        sa
    };
    let wls = [
        wordline(0, sides.0),
        wordline(1, sides.1),
        wordline(2, sides.2),
    ];
    let mut fast = mk(false);
    let mut scalar = mk(true);
    let sensed_fast = fast.activate(&wls).unwrap().clone();
    let sensed_scalar = scalar.activate(&wls).unwrap().clone();
    prop_assert_eq!(&sensed_fast, &sensed_scalar);
    fast.precharge().unwrap();
    scalar.precharge().unwrap();
    for row in 0..3 {
        prop_assert_eq!(fast.peek_row(row), scalar.peek_row(row));
    }
    prop_assert_eq!(fast.stats().word_parallel_charge_shares, 1);
    prop_assert_eq!(fast.stats().scalar_charge_shares, 0);
    prop_assert_eq!(scalar.stats().word_parallel_charge_shares, 0);
    prop_assert_eq!(scalar.stats().scalar_charge_shares, 1);
    Ok(())
}

// The model's documented RNG (xorshift64* from the fixed seed, one draw per
// bitline per fault-armed multi-row activation) is `ReferenceRng`, shared
// from `ambit_conformance`: any change to the draw stream's shape or order
// fails the replay tests below.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn tra_fast_path_matches_scalar_reference(
        a in bitrow_strategy(130),
        b in bitrow_strategy(130),
        c in bitrow_strategy(130),
        sa_bar in any::<bool>(),
        sb_bar in any::<bool>(),
        sc_bar in any::<bool>(),
    ) {
        // 130 bits exercises the masked tail of the last word. Ties are
        // impossible at arity 3, so every policy must behave identically.
        for policy in [TieBreak::Error, TieBreak::Zero, TieBreak::One, TieBreak::Random] {
            assert_tra_equivalent(
                &(a.clone(), b.clone(), c.clone()),
                (sa_bar, sb_bar, sc_bar),
                policy,
            )?;
        }
    }

    #[test]
    fn two_row_activations_stay_on_the_scalar_path(
        a in bitrow_strategy(64),
        b in bitrow_strategy(64),
    ) {
        // Non-TRA arities can tie, so they must resolve through the scalar
        // reference — and the forced-scalar switch must be a no-op there.
        for policy in [TieBreak::Zero, TieBreak::One, TieBreak::Random] {
            let mk = |force_scalar: bool| {
                let mut sa = Subarray::new(8, 64);
                sa.set_scalar_reference(force_scalar);
                sa.set_tie_break(policy);
                sa.poke_row(0, a.clone());
                sa.poke_row(1, b.clone());
                sa
            };
            let mut fast = mk(false);
            let mut scalar = mk(true);
            let wls = [Wordline::data(0), Wordline::data(1)];
            let s1 = fast.activate(&wls).unwrap().clone();
            let s2 = scalar.activate(&wls).unwrap().clone();
            prop_assert_eq!(s1, s2);
            prop_assert_eq!(fast.stats().word_parallel_charge_shares, 0);
            prop_assert_eq!(fast.stats().scalar_charge_shares, 1);
        }
    }

    #[test]
    fn armed_fault_injection_replays_the_reference_stream(
        a in bitrow_strategy(128),
        b in bitrow_strategy(128),
        c in bitrow_strategy(128),
        rate_millis in 1u32..400,
    ) {
        // A fault-armed subarray must take the scalar path and flip exactly
        // the bitlines the documented per-bit RNG stream dictates — same
        // seed, same flipped bits, regardless of the fast path's existence.
        let rate = rate_millis as f64 / 1000.0;
        let mut sa = Subarray::new(8, 128);
        sa.set_tra_fault_rate(rate).unwrap();
        sa.poke_row(0, a.clone());
        sa.poke_row(1, b.clone());
        sa.poke_row(2, c.clone());
        let wls = [Wordline::data(0), Wordline::data(1), Wordline::data(2)];
        let sensed = sa.activate(&wls).unwrap().clone();
        prop_assert_eq!(sa.stats().scalar_charge_shares, 1);
        prop_assert_eq!(sa.stats().word_parallel_charge_shares, 0);

        let threshold = (rate * u64::MAX as f64) as u64;
        let mut rng = ReferenceRng::new();
        let clean = BitRow::majority(&a, &b, &c);
        let expect = BitRow::from_fn(128, |i| clean.get(i) ^ (rng.next() < threshold));
        prop_assert_eq!(sensed, expect);
    }
}

#[test]
fn stuck_at_faults_agree_across_paths() {
    // Stuck-at faults are baked into storage at write time, so the fast
    // path (which reads storage directly) must see exactly what the scalar
    // reference sees, and restore must re-pin the faulty cells.
    let mk = |force_scalar: bool| {
        let mut sa = Subarray::new(8, 96);
        sa.set_scalar_reference(force_scalar);
        sa.inject_fault(0, 5, CellFault::StuckAtOne).unwrap();
        sa.inject_fault(2, 64, CellFault::StuckAtZero).unwrap();
        sa.poke_row(0, BitRow::from_fn(96, |i| i % 3 == 0));
        sa.poke_row(1, BitRow::from_fn(96, |i| i % 5 == 0));
        sa.poke_row(2, BitRow::from_fn(96, |i| i % 7 == 0));
        sa.activate(&[Wordline::data(0), Wordline::data(1), Wordline::negated(2)])
            .unwrap();
        sa.precharge().unwrap();
        sa
    };
    let fast = mk(false);
    let scalar = mk(true);
    assert_eq!(fast.sense(), scalar.sense());
    for row in 0..3 {
        assert_eq!(fast.peek_row(row), scalar.peek_row(row), "row {row}");
    }
    assert!(!fast.peek_row(2).get(64), "stuck-at-zero survives restore");
    assert!(fast.peek_row(0).get(5), "stuck-at-one survives restore");
}

#[test]
fn fault_replay_is_identical_across_instances() {
    // Two identically configured subarrays replay the same flip sequence
    // across several consecutive fault-armed TRAs (the RNG stream advances
    // identically), pinning campaign replays to their pre-fast-path traces.
    let run = || {
        let mut sa = Subarray::new(8, 256);
        sa.set_tra_fault_rate(0.05).unwrap();
        let mut sensed = Vec::new();
        for round in 0..4u64 {
            sa.poke_row(0, BitRow::from_fn(256, |i| (i as u64 + round).is_multiple_of(3)));
            sa.poke_row(1, BitRow::from_fn(256, |i| (i as u64 + round).is_multiple_of(4)));
            sa.poke_row(2, BitRow::from_fn(256, |i| (i as u64 + round).is_multiple_of(5)));
            sensed.push(
                sa.activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
                    .unwrap()
                    .clone(),
            );
            sa.precharge().unwrap();
        }
        sensed
    };
    assert_eq!(run(), run());
}
