//! Property-based tests for the DRAM substrate: BitRow algebra, activation
//! semantics, and RowClone invariants under arbitrary data.

use ambit_dram::{
    rowclone, AapMode, BitRow, CommandTimer, DramDevice, DramGeometry, RowLocation, Subarray,
    TimingParams, Wordline,
};
use proptest::prelude::*;

fn bitrow_strategy(len: usize) -> impl Strategy<Value = BitRow> {
    proptest::collection::vec(any::<bool>(), len)
        .prop_map(move |bits| BitRow::from_fn(len, |i| bits[i]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn majority_is_symmetric(
        a in bitrow_strategy(96),
        b in bitrow_strategy(96),
        c in bitrow_strategy(96),
    ) {
        let m1 = BitRow::majority(&a, &b, &c);
        let m2 = BitRow::majority(&c, &a, &b);
        let m3 = BitRow::majority(&b, &c, &a);
        prop_assert_eq!(&m1, &m2);
        prop_assert_eq!(&m1, &m3);
    }

    #[test]
    fn majority_duality(a in bitrow_strategy(96), b in bitrow_strategy(96), c in bitrow_strategy(96)) {
        // The open-bitline footnote of Section 3.1: NOT(maj(a,b,c)) ==
        // maj(!a, !b, !c) — duality makes TRA work on either bitline side.
        let lhs = BitRow::majority(&a, &b, &c).not();
        let rhs = BitRow::majority(&a.not(), &b.not(), &c.not());
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn majority_absorbs_control_rows(a in bitrow_strategy(64), b in bitrow_strategy(64)) {
        let zeros = BitRow::zeros(64);
        let ones = BitRow::ones(64);
        prop_assert_eq!(BitRow::majority(&a, &b, &zeros), a.and(&b));
        prop_assert_eq!(BitRow::majority(&a, &b, &ones), a.or(&b));
    }

    #[test]
    fn bitrow_roundtrip_bytes(data in proptest::collection::vec(any::<u8>(), 1..64)) {
        let bits = data.len() * 8;
        let mut row = BitRow::zeros(bits);
        row.write_bytes(0, &data);
        prop_assert_eq!(row.to_bytes(), data);
    }

    #[test]
    fn count_ones_matches_iter_ones(row in bitrow_strategy(200)) {
        prop_assert_eq!(row.count_ones(), row.iter_ones().count());
        let not_count = row.not().count_ones();
        prop_assert_eq!(row.count_ones() + not_count, 200);
    }

    #[test]
    fn tra_senses_majority_and_restores_it(
        a in bitrow_strategy(64),
        b in bitrow_strategy(64),
        c in bitrow_strategy(64),
    ) {
        let mut sa = Subarray::new(8, 64);
        sa.poke_row(0, a.clone());
        sa.poke_row(1, b.clone());
        sa.poke_row(2, c.clone());
        let expect = BitRow::majority(&a, &b, &c);
        let sensed = sa
            .activate(&[Wordline::data(0), Wordline::data(1), Wordline::data(2)])
            .unwrap()
            .clone();
        sa.precharge().unwrap();
        prop_assert_eq!(&sensed, &expect);
        for row in 0..3 {
            prop_assert_eq!(sa.peek_row(row), expect.clone());
        }
    }

    #[test]
    fn activation_restore_is_idempotent(data in bitrow_strategy(64), row in 0usize..8) {
        // Activating the same row twice (with a precharge between) never
        // changes it: sensing is non-destructive end-to-end.
        let mut sa = Subarray::new(8, 64);
        sa.poke_row(row, data.clone());
        for _ in 0..2 {
            sa.activate(&[Wordline::data(row)]).unwrap();
            sa.precharge().unwrap();
        }
        prop_assert_eq!(sa.peek_row(row), data);
    }

    #[test]
    fn double_dcc_negation_roundtrips(data in bitrow_strategy(64)) {
        // src -> DCC (negated) -> dst (negated again) == src.
        let mut sa = Subarray::new(8, 64);
        sa.poke_row(0, data.clone());
        sa.activate(&[Wordline::data(0)]).unwrap();
        sa.activate(&[Wordline::negated(4)]).unwrap();
        sa.precharge().unwrap();
        sa.activate(&[Wordline::negated(4)]).unwrap(); // senses !(!data)
        sa.activate(&[Wordline::data(6)]).unwrap();
        sa.precharge().unwrap();
        prop_assert_eq!(sa.peek_row(6), data);
    }

    #[test]
    fn rowclone_fpm_preserves_and_copies(data in bitrow_strategy(128), src_row in 0usize..16, dst_row in 0usize..16) {
        prop_assume!(src_row != dst_row);
        let g = DramGeometry { row_bytes: 16, rows_per_subarray: 16, ..DramGeometry::tiny() };
        let mut dev = DramDevice::new(g);
        let mut timer = CommandTimer::new(TimingParams::ddr3_1600(), AapMode::Naive);
        let src = RowLocation::in_bank0(0, src_row);
        let dst = RowLocation::in_bank0(0, dst_row);
        dev.poke(src, data.clone());
        rowclone::copy_fpm(&mut dev, &mut timer, src, dst).unwrap();
        prop_assert_eq!(dev.peek(src), data.clone());
        prop_assert_eq!(dev.peek(dst), data);
    }

    #[test]
    fn write_read_row_roundtrip(data in bitrow_strategy(128), subarray in 0usize..2, row in 0usize..32) {
        let mut dev = DramDevice::new(DramGeometry::tiny());
        let loc = RowLocation::in_bank0(subarray, row);
        dev.write_row(loc, &data).unwrap();
        prop_assert_eq!(dev.read_row(loc).unwrap(), data);
    }
}
