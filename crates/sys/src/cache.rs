//! A set-associative LRU cache simulator and a two-level hierarchy.
//!
//! Used for two purposes in the reproduction:
//!
//! * locating the working-set crossovers that produce the speedup jumps in
//!   the paper's Figure 11 (BitWeaving) and the cache-resident regime of
//!   Figure 12, and
//! * counting the dirty lines the memory controller must flush before an
//!   Ambit operation (Section 5.4.4 coherence).

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessResult {
    /// Hit in the first-level cache.
    L1Hit,
    /// Miss in L1, hit in L2.
    L2Hit,
    /// Missed the whole hierarchy (memory access).
    Miss,
}

/// Counters for one cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty lines evicted (writebacks).
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (bigger = more recent).
    lru: u64,
}

/// A set-associative write-back, write-allocate cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use ambit_sys::Cache;
///
/// let mut cache = Cache::new(32 * 1024, 8, 64);
/// assert!(!cache.access(0x1000, false)); // cold miss
/// assert!(cache.access(0x1000, false));  // now a hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: usize,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless capacity is an exact multiple of `ways × line_bytes`
    /// and the set count is a power of two.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(ways > 0 && line_bytes > 0, "degenerate cache shape");
        assert_eq!(
            capacity_bytes % (ways * line_bytes),
            0,
            "capacity must divide into ways × line size"
        );
        let sets = capacity_bytes / (ways * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets,
            ways,
            line_bytes,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    lru: 0
                };
                sets * ways
            ],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    /// Access statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses `addr`; returns `true` on hit. A write marks the line
    /// dirty. Misses allocate, evicting LRU (counting a writeback if the
    /// victim was dirty).
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line_addr = addr / self.line_bytes as u64;
        let set = (line_addr % self.sets as u64) as usize;
        let tag = line_addr / self.sets as u64;
        let base = set * self.ways;

        // Hit?
        for i in base..base + self.ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].lru = self.clock;
                self.lines[i].dirty |= write;
                self.stats.hits += 1;
                return true;
            }
        }

        // Miss: fill into invalid or LRU way.
        self.stats.misses += 1;
        let victim = (base..base + self.ways)
            .min_by_key(|&i| if self.lines[i].valid { self.lines[i].lru } else { 0 })
            .expect("ways > 0");
        if self.lines[victim].valid && self.lines[victim].dirty {
            self.stats.writebacks += 1;
        }
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.clock,
        };
        false
    }

    /// Invalidates any line covering `addr` without writing it back
    /// (destination-row invalidation of Section 5.4.4). Returns `true` if a
    /// line was dropped.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.line_bytes as u64;
        let set = (line_addr % self.sets as u64) as usize;
        let tag = line_addr / self.sets as u64;
        let base = set * self.ways;
        for i in base..base + self.ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                self.lines[i].valid = false;
                self.lines[i].dirty = false;
                return true;
            }
        }
        false
    }

    /// Flushes (writes back and invalidates) any dirty line covering
    /// `addr`. Returns `true` if a dirty line was written back — the
    /// source-row flush of Section 5.4.4.
    pub fn flush(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.line_bytes as u64;
        let set = (line_addr % self.sets as u64) as usize;
        let tag = line_addr / self.sets as u64;
        let base = set * self.ways;
        for i in base..base + self.ways {
            if self.lines[i].valid && self.lines[i].tag == tag {
                let was_dirty = self.lines[i].dirty;
                if was_dirty {
                    self.stats.writebacks += 1;
                }
                self.lines[i].valid = false;
                self.lines[i].dirty = false;
                return was_dirty;
            }
        }
        false
    }

    /// Counts currently dirty lines (for flush-cost estimation).
    pub fn dirty_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid && l.dirty).count()
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }
}

/// A two-level inclusive-enough hierarchy (L1 + L2) matching Table 4.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// First-level data cache.
    pub l1: Cache,
    /// Second-level cache.
    pub l2: Cache,
}

impl CacheHierarchy {
    /// Builds the Table 4 hierarchy: 32 KB 8-way L1, 2 MB 16-way L2,
    /// 64 B lines.
    pub fn micro17() -> Self {
        CacheHierarchy {
            l1: Cache::new(32 * 1024, 8, 64),
            l2: Cache::new(2 * 1024 * 1024, 16, 64),
        }
    }

    /// Accesses the hierarchy: L1, then L2, then memory. The dirty bit for
    /// a write lives in L1; L2 is filled clean (writebacks from L1 to L2 on
    /// eviction are not tracked — dirty data is counted once).
    pub fn access(&mut self, addr: u64, write: bool) -> AccessResult {
        if self.l1.access(addr, write) {
            return AccessResult::L1Hit;
        }
        if self.l2.access(addr, false) {
            return AccessResult::L2Hit;
        }
        AccessResult::Miss
    }

    /// Flushes an address range from both levels, returning the number of
    /// dirty lines written back (the coherence cost driver of §5.4.4).
    pub fn flush_range(&mut self, start: u64, bytes: u64) -> usize {
        let line = self.l1.line_bytes() as u64;
        let mut writebacks = 0;
        let mut addr = start & !(line - 1);
        while addr < start + bytes {
            if self.l1.flush(addr) {
                writebacks += 1;
            }
            if self.l2.flush(addr) {
                writebacks += 1;
            }
            addr += line;
        }
        writebacks
    }

    /// Invalidates an address range in both levels without writeback.
    pub fn invalidate_range(&mut self, start: u64, bytes: u64) {
        let line = self.l1.line_bytes() as u64;
        let mut addr = start & !(line - 1);
        while addr < start + bytes {
            self.l1.invalidate(addr);
            self.l2.invalidate(addr);
            addr += line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false), "same line");
        assert!(!c.access(64, false), "next line");
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, 8 sets of 64 B: addresses 0, 1024, 2048 map to set 0.
        let mut c = Cache::new(1024, 2, 64);
        c.access(0, false);
        c.access(1024, false);
        c.access(0, false); // refresh 0
        c.access(2048, false); // evicts 1024 (LRU)
        assert!(c.access(0, false), "0 should survive");
        assert!(!c.access(1024, false), "1024 was evicted");
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(0, true);
        c.access(1024, false);
        c.access(2048, false); // evicts dirty line 0
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn capacity_working_set_behaviour() {
        // A working set equal to capacity hits ~100 % on re-scan; twice the
        // capacity with LRU thrashes to ~0 %.
        let mut c = Cache::new(4096, 4, 64);
        for round in 0..2 {
            for addr in (0..4096u64).step_by(64) {
                c.access(addr, false);
            }
            if round == 1 {
                assert!(c.stats().hit_rate() > 0.45);
            }
        }
        let mut big = Cache::new(4096, 4, 64);
        for _ in 0..2 {
            for addr in (0..8192u64).step_by(64) {
                big.access(addr, false);
            }
        }
        assert!(big.stats().hit_rate() < 0.05, "LRU thrashing");
    }

    #[test]
    fn flush_and_invalidate() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(0, true);
        c.access(64, false);
        assert!(c.flush(0), "dirty line written back");
        assert!(!c.flush(64), "clean line dropped without writeback");
        assert!(!c.access(0, false), "flushed line is gone");
        c.access(128, true);
        assert!(c.invalidate(128));
        assert_eq!(c.dirty_lines(), 0);
    }

    #[test]
    fn hierarchy_levels() {
        let mut h = CacheHierarchy::micro17();
        assert_eq!(h.access(0x5000, false), AccessResult::Miss);
        assert_eq!(h.access(0x5000, false), AccessResult::L1Hit);
        // Thrash L1 only: 64 KB of lines > 32 KB L1, < 2 MB L2.
        for addr in (0..65536u64).step_by(64) {
            h.access(addr, false);
        }
        assert_eq!(h.access(0x5000, false), AccessResult::L2Hit);
    }

    #[test]
    fn hierarchy_flush_range_counts_dirty_lines() {
        let mut h = CacheHierarchy::micro17();
        for addr in (0..4096u64).step_by(64) {
            h.access(addr, true);
        }
        let wb = h.flush_range(0, 4096);
        assert!(wb >= 64, "64 dirty L1 lines flushed, got {wb}");
        // After the flush, everything is a miss again.
        assert_eq!(h.access(0, false), AccessResult::Miss);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        Cache::new(3 * 64, 1, 64);
    }
}
