//! Cache-coherence costs for Ambit operations (paper Section 5.4.4).
//!
//! Before the memory controller performs an Ambit operation it must
//! (1) flush dirty cache lines belonging to the source rows and
//! (2) invalidate cache lines of the destination rows. The paper notes the
//! destination invalidation proceeds in parallel with the Ambit operation
//! (free), while source flushes put writeback traffic on the channel.
//! Structures like the Dirty-Block Index make *finding* the dirty lines
//! cheap; the writeback bandwidth remains.

use crate::cache::CacheHierarchy;
use crate::config::SystemConfig;

/// Coherence cost of preparing one Ambit operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CoherenceCost {
    /// Dirty lines written back from the source rows.
    pub flushed_lines: usize,
    /// Latency added before the Ambit operation can start, seconds.
    pub latency_s: f64,
}

/// Computes flush/invalidate costs against a simulated cache hierarchy.
#[derive(Debug)]
pub struct CoherenceModel {
    config: SystemConfig,
}

impl CoherenceModel {
    /// Creates a model under the given system configuration.
    pub fn new(config: SystemConfig) -> Self {
        CoherenceModel { config }
    }

    /// Flushes the source ranges and invalidates the destination range in
    /// `caches`, returning the latency the Ambit operation must wait.
    ///
    /// Destination invalidation is overlapped with the operation
    /// (Section 5.4.4), so only source writebacks contribute latency.
    pub fn prepare(
        &self,
        caches: &mut CacheHierarchy,
        sources: &[(u64, u64)],
        destination: (u64, u64),
    ) -> CoherenceCost {
        let mut flushed = 0;
        for &(start, bytes) in sources {
            flushed += caches.flush_range(start, bytes);
        }
        caches.invalidate_range(destination.0, destination.1);
        CoherenceCost {
            flushed_lines: flushed,
            latency_s: self.writeback_latency_s(flushed),
        }
    }

    /// Latency of writing back `lines` dirty lines over the channel.
    pub fn writeback_latency_s(&self, lines: usize) -> f64 {
        (lines * self.config.line_bytes) as f64
            / (self.config.mem_bw * self.config.mem_efficiency)
    }

    /// Upper-bound latency if every line of `bytes` of source data were
    /// dirty — a conservative estimate usable without cache simulation.
    pub fn worst_case_latency_s(&self, bytes: u64) -> f64 {
        self.writeback_latency_s((bytes as usize).div_ceil(self.config.line_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CoherenceModel {
        CoherenceModel::new(SystemConfig::micro17())
    }

    #[test]
    fn clean_sources_cost_nothing() {
        let mut caches = CacheHierarchy::micro17();
        // Read-only traffic over the source range: lines cached but clean.
        for addr in (0..8192u64).step_by(64) {
            caches.access(addr, false);
        }
        let cost = model().prepare(&mut caches, &[(0, 8192)], (16384, 8192));
        assert_eq!(cost.flushed_lines, 0);
        assert_eq!(cost.latency_s, 0.0);
    }

    #[test]
    fn dirty_sources_cost_writeback_bandwidth() {
        let mut caches = CacheHierarchy::micro17();
        for addr in (0..8192u64).step_by(64) {
            caches.access(addr, true);
        }
        let cost = model().prepare(&mut caches, &[(0, 8192)], (16384, 8192));
        assert!(cost.flushed_lines >= 128, "128 dirty lines: {}", cost.flushed_lines);
        // 8 KB at ~13.4 GB/s ≈ 0.6 µs.
        assert!(cost.latency_s > 0.3e-6 && cost.latency_s < 2e-6);
    }

    #[test]
    fn destination_invalidation_is_free_but_effective() {
        let mut caches = CacheHierarchy::micro17();
        for addr in (16384..16384 + 8192u64).step_by(64) {
            caches.access(addr, true);
        }
        let cost = model().prepare(&mut caches, &[(0, 8192)], (16384, 8192));
        assert_eq!(cost.latency_s, 0.0, "invalidation overlaps the operation");
        // The stale destination lines are gone.
        assert_eq!(
            caches.access(16384, false),
            crate::cache::AccessResult::Miss
        );
    }

    #[test]
    fn worst_case_bound_dominates_simulated_cost() {
        let mut caches = CacheHierarchy::micro17();
        for addr in (0..8192u64).step_by(64) {
            caches.access(addr, true);
        }
        let cost = model().prepare(&mut caches, &[(0, 8192)], (16384, 1));
        assert!(model().worst_case_latency_s(8192) >= cost.latency_s);
    }
}
