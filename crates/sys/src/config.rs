//! Full-system configuration (paper Table 4) and the CPU timing model used
//! by the application studies of Section 8.

/// The gem5 configuration of the paper's Table 4, as a parameter struct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Core clock in GHz (Table 4: 4 GHz, x86, 8-wide out-of-order).
    pub cpu_ghz: f64,
    /// Issue width of the out-of-order core.
    pub issue_width: usize,
    /// L1 data cache capacity in bytes (32 KB).
    pub l1_bytes: usize,
    /// L2 cache capacity in bytes (2 MB).
    pub l2_bytes: usize,
    /// Cache line size in bytes (64 B).
    pub line_bytes: usize,
    /// SIMD register width in bytes the baseline uses (128-bit = 16 B).
    pub simd_bytes: usize,
    /// Main-memory channel peak bandwidth in bytes/s (DDR4-2400 ×64:
    /// 19.2 GB/s, one channel, one rank, 16 banks).
    pub mem_bw: f64,
    /// Fraction of peak channel bandwidth a streaming kernel sustains.
    pub mem_efficiency: f64,
    /// L2 streaming bandwidth in bytes/s.
    pub l2_bw: f64,
    /// L1 streaming bandwidth in bytes/s.
    pub l1_bw: f64,
    /// Average main-memory random access latency in seconds.
    pub mem_latency_s: f64,
    /// Average L2 hit latency in seconds.
    pub l2_latency_s: f64,
    /// DRAM row size in bytes (8 KB).
    pub row_bytes: usize,
    /// Popcount scans sustain this fraction of the streaming bandwidth
    /// (the dependent reduction chain costs a little throughput).
    pub popcount_efficiency: f64,
}

impl SystemConfig {
    /// The paper's Table 4 system: 4 GHz 8-wide x86, 32 KB L1, 2 MB L2,
    /// DDR4-2400 single channel, 8 KB rows, FR-FCFS controller.
    pub fn micro17() -> Self {
        SystemConfig {
            cpu_ghz: 4.0,
            issue_width: 8,
            l1_bytes: 32 * 1024,
            l2_bytes: 2 * 1024 * 1024,
            line_bytes: 64,
            simd_bytes: 16,
            mem_bw: 19.2e9,
            mem_efficiency: 0.70,
            l2_bw: 64e9,
            l1_bw: 128e9,
            mem_latency_s: 80e-9,
            l2_latency_s: 12e-9,
            row_bytes: 8192,
            popcount_efficiency: 1.0,
        }
    }

    /// The same Table 4 system with *effective* rates calibrated to the
    /// paper's gem5 absolute numbers rather than hardware peaks: a single
    /// simulated out-of-order core sustains far less streaming bandwidth
    /// than channel peak (limited MSHRs, one channel, dependent SIMD
    /// loads). Used by the Section 8 application studies (Figures 10-12).
    pub fn gem5_calibrated() -> Self {
        SystemConfig {
            mem_efficiency: 0.104, // ~2.0 GB/s effective streaming
            l2_bw: 8e9,
            l1_bw: 25e9,
            popcount_efficiency: 0.75,
            ..SystemConfig::micro17()
        }
    }

    /// Sustained streaming bandwidth for a working set of `bytes`:
    /// L1-resident, L2-resident, or memory-bound.
    pub fn stream_bandwidth(&self, working_set_bytes: usize) -> f64 {
        if working_set_bytes <= self.l1_bytes {
            self.l1_bw
        } else if working_set_bytes <= self.l2_bytes {
            self.l2_bw
        } else {
            self.mem_bw * self.mem_efficiency
        }
    }

    /// Peak SIMD processing rate for bitwise kernels, bytes/s: one SIMD op
    /// per cycle on `simd_bytes`-wide registers.
    pub fn simd_rate(&self) -> f64 {
        self.cpu_ghz * 1e9 * self.simd_bytes as f64
    }

    /// Time for a streaming bitwise kernel that touches `bytes_moved` bytes
    /// (reads + writes) and computes on `bytes_computed` of them, with the
    /// given resident working set. The kernel is limited by the slower of
    /// data movement and SIMD compute.
    pub fn stream_time_s(
        &self,
        bytes_moved: usize,
        bytes_computed: usize,
        working_set_bytes: usize,
    ) -> f64 {
        let move_t = bytes_moved as f64 / self.stream_bandwidth(working_set_bytes);
        let compute_t = bytes_computed as f64 / self.simd_rate();
        move_t.max(compute_t)
    }

    /// Time for a CPU `popcount` over `bytes` (the paper's applications
    /// keep bitcount on the CPU). Modern cores sustain one 8-byte popcount
    /// per cycle; the scan is also bounded by the streaming bandwidth.
    pub fn popcount_time_s(&self, bytes: usize, working_set_bytes: usize) -> f64 {
        let compute_t = bytes as f64 / (self.cpu_ghz * 1e9 * 8.0);
        let move_t = bytes as f64
            / (self.stream_bandwidth(working_set_bytes) * self.popcount_efficiency);
        compute_t.max(move_t)
    }

    /// Time for `accesses` dependent random accesses over a structure of
    /// `working_set_bytes` (pointer chasing, e.g. tree traversal).
    pub fn random_access_time_s(&self, accesses: usize, working_set_bytes: usize) -> f64 {
        let latency = if working_set_bytes <= self.l1_bytes {
            // L1 hits: a few cycles.
            4.0 / (self.cpu_ghz * 1e9)
        } else if working_set_bytes <= self.l2_bytes {
            self.l2_latency_s
        } else {
            self.mem_latency_s
        };
        accesses as f64 * latency
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::micro17()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values() {
        let c = SystemConfig::micro17();
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l2_bytes, 2 * 1024 * 1024);
        assert_eq!(c.line_bytes, 64);
        assert_eq!(c.row_bytes, 8192);
        assert_eq!(c.cpu_ghz, 4.0);
    }

    #[test]
    fn bandwidth_tiers_are_ordered() {
        let c = SystemConfig::micro17();
        let l1 = c.stream_bandwidth(16 * 1024);
        let l2 = c.stream_bandwidth(1024 * 1024);
        let mem = c.stream_bandwidth(64 * 1024 * 1024);
        assert!(l1 > l2 && l2 > mem);
    }

    #[test]
    fn cache_crossover_slows_streaming() {
        // The mechanism behind Figure 11's speedup jumps: the same scan is
        // several times slower once the working set spills out of L2.
        let c = SystemConfig::micro17();
        let in_cache = c.stream_time_s(1 << 20, 1 << 20, 1 << 20);
        let spilled = c.stream_time_s(1 << 20, 1 << 20, 4 << 20);
        assert!(spilled > 3.0 * in_cache);
    }

    #[test]
    fn random_access_latency_tiers() {
        let c = SystemConfig::micro17();
        let small = c.random_access_time_s(1000, 8 * 1024);
        let mid = c.random_access_time_s(1000, 256 * 1024);
        let big = c.random_access_time_s(1000, 32 << 20);
        assert!(small < mid && mid < big);
        // Memory-resident pointer chasing: ~80 ns per access.
        assert!((big - 1000.0 * 80e-9).abs() < 1e-12);
    }

    #[test]
    fn gem5_profile_is_slower_but_same_shape() {
        let hw = SystemConfig::micro17();
        let g5 = SystemConfig::gem5_calibrated();
        assert!(g5.stream_bandwidth(64 << 20) < hw.stream_bandwidth(64 << 20));
        assert!(g5.stream_bandwidth(1 << 20) > g5.stream_bandwidth(64 << 20));
        // Popcount costs a bit more than a plain stream under gem5.
        let ws = 64 << 20;
        assert!(g5.popcount_time_s(1 << 20, ws) > (1 << 20) as f64 / g5.stream_bandwidth(ws));
    }

    #[test]
    fn simd_rate_sane() {
        // 4 GHz × 16 B = 64 GB/s.
        assert!((SystemConfig::micro17().simd_rate() - 64e9).abs() < 1.0);
    }
}
