//! Baseline machine models for the raw-throughput comparison of the
//! paper's Section 7 (Figure 9).
//!
//! The paper's central observation is that for bulk bitwise operations all
//! conventional systems — CPU, GPU, and even the logic layer of 3D-stacked
//! DRAM — are limited by the memory bandwidth available to the processing
//! unit. Each model here is therefore a bandwidth roofline: throughput =
//! sustained memory bandwidth ÷ bytes moved per byte of output, with a
//! measured-efficiency factor calibrated against the paper's reported
//! speedups (the paper measured real hardware; we document the factor).
//!
//! | system | peak BW | efficiency | source |
//! |---|---|---|---|
//! | Intel Skylake (4 cores, AVX, 2×DDR3-2133) | 34.1 GB/s | 0.55 | §7 |
//! | NVIDIA GTX 745 (128-bit DDR3-1800) | 28.8 GB/s | 0.91 | §7 |
//! | HMC 2.0 logic layer (32 vaults × 10 GB/s) | 320 GB/s | 1.0 | §7 |

use ambit_core::{AmbitConfig, BitwiseOp};

/// Bytes moved over the memory interface per byte of output for each
/// operation class: NOT/copy streams read+write (2), two-operand ops read
/// two sources and write one destination (3).
pub fn transfers_per_byte(op: BitwiseOp) -> u64 {
    match op.source_count() {
        0 | 1 => 2,
        _ => 3,
    }
}

/// A machine evaluated in Figure 9.
pub trait BitwiseMachine {
    /// Display name, as used in the figure legend.
    fn name(&self) -> &'static str;

    /// Steady-state throughput for `op` in 8-bit GOps/s (= output GB/s).
    fn throughput_gops(&self, op: BitwiseOp) -> f64;

    /// Geometric-mean throughput across the seven Figure 9 operations.
    fn mean_throughput_gops(&self) -> f64 {
        let ops = BitwiseOp::FIGURE9_OPS;
        let product: f64 = ops.iter().map(|&op| self.throughput_gops(op)).product();
        product.powf(1.0 / ops.len() as f64)
    }
}

/// A bandwidth-bound conventional machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthMachine {
    name: &'static str,
    /// Peak memory bandwidth available to the compute units, bytes/s.
    pub peak_bw: f64,
    /// Fraction of peak the bitwise microbenchmark sustains.
    pub efficiency: f64,
}

impl BandwidthMachine {
    /// The paper's Intel Skylake host: 4 cores with AVX, two 64-bit
    /// DDR3-2133 channels.
    pub fn skylake() -> Self {
        BandwidthMachine {
            name: "Skylake",
            peak_bw: 2.0 * 2133e6 * 8.0,
            efficiency: 0.55,
        }
    }

    /// The paper's NVIDIA GeForce GTX 745: one 128-bit DDR3-1800 channel.
    pub fn gtx745() -> Self {
        BandwidthMachine {
            name: "GTX 745",
            peak_bw: 1800e6 * 16.0,
            efficiency: 0.91,
        }
    }

    /// Processing in the logic layer of HMC 2.0: 32 vaults × 10 GB/s.
    pub fn hmc2() -> Self {
        BandwidthMachine {
            name: "HMC 2.0",
            peak_bw: 32.0 * 10e9,
            efficiency: 1.0,
        }
    }

    /// Sustained bandwidth in bytes/s.
    pub fn sustained_bw(&self) -> f64 {
        self.peak_bw * self.efficiency
    }
}

impl BitwiseMachine for BandwidthMachine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn throughput_gops(&self, op: BitwiseOp) -> f64 {
        self.sustained_bw() / transfers_per_byte(op) as f64 / 1e9
    }
}

/// The Ambit configurations of Figure 9, adapted to the machine trait.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmbitMachine {
    name: &'static str,
    config: AmbitConfig,
}

impl AmbitMachine {
    /// Ambit in a regular 8-bank DDR3 module.
    pub fn module() -> Self {
        AmbitMachine {
            name: "Ambit",
            config: AmbitConfig::ddr3_module(),
        }
    }

    /// Ambit-3D: Ambit integrated into an HMC-like 3D stack (256 banks of
    /// 1 KB rows — 3D stacks use much smaller pages than DDR modules).
    pub fn three_d() -> Self {
        AmbitMachine {
            name: "Ambit-3D",
            config: AmbitConfig {
                banks: 256,
                row_bytes: 1024,
                ..AmbitConfig::ddr3_module()
            },
        }
    }

    /// The underlying throughput configuration.
    pub fn config(&self) -> &AmbitConfig {
        &self.config
    }
}

impl BitwiseMachine for AmbitMachine {
    fn name(&self) -> &'static str {
        self.name
    }

    fn throughput_gops(&self, op: BitwiseOp) -> f64 {
        self.config
            .throughput_gops(op)
            .expect("standard ops always compile")
    }
}

/// All five Figure 9 systems in presentation order.
pub fn figure9_machines() -> Vec<Box<dyn BitwiseMachine>> {
    vec![
        Box::new(BandwidthMachine::skylake()),
        Box::new(BandwidthMachine::gtx745()),
        Box::new(BandwidthMachine::hmc2()),
        Box::new(AmbitMachine::module()),
        Box::new(AmbitMachine::three_d()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidths_match_section7() {
        assert!((BandwidthMachine::skylake().peak_bw - 34.1e9).abs() < 0.2e9);
        assert!((BandwidthMachine::gtx745().peak_bw - 28.8e9).abs() < 0.1e9);
        assert!((BandwidthMachine::hmc2().peak_bw - 320e9).abs() < 1.0);
    }

    #[test]
    fn hmc_vs_cpu_gpu_matches_paper() {
        // Paper: HMC 2.0 achieves 18.5× Skylake and 13.1× GTX 745 for bulk
        // bitwise ops. Same transfers cancel, so this is a bandwidth ratio.
        let sky = BandwidthMachine::skylake().mean_throughput_gops();
        let gpu = BandwidthMachine::gtx745().mean_throughput_gops();
        let hmc = BandwidthMachine::hmc2().mean_throughput_gops();
        let r_sky = hmc / sky;
        let r_gpu = hmc / gpu;
        assert!((r_sky - 18.5).abs() < 2.0, "HMC/Skylake = {r_sky:.1} (paper 18.5)");
        assert!((r_gpu - 13.1).abs() < 1.5, "HMC/GTX745 = {r_gpu:.1} (paper 13.1)");
    }

    #[test]
    fn ambit_speedups_match_paper_headline() {
        // Paper: Ambit (8 banks) outperforms Skylake 44.9×, GTX 745 32.0×,
        // HMC 2.0 2.4×, averaged across the seven operations.
        let ambit = AmbitMachine::module().mean_throughput_gops();
        let sky = ambit / BandwidthMachine::skylake().mean_throughput_gops();
        let gpu = ambit / BandwidthMachine::gtx745().mean_throughput_gops();
        let hmc = ambit / BandwidthMachine::hmc2().mean_throughput_gops();
        assert!((sky - 44.9).abs() < 6.0, "Ambit/Skylake = {sky:.1} (paper 44.9)");
        assert!((gpu - 32.0).abs() < 4.0, "Ambit/GTX745 = {gpu:.1} (paper 32.0)");
        assert!((hmc - 2.4).abs() < 0.5, "Ambit/HMC = {hmc:.1} (paper 2.4)");
    }

    #[test]
    fn ambit_3d_speedup_over_hmc_matches_paper() {
        // Paper: Ambit-3D improves throughput 9.7× over the HMC logic layer.
        let r = AmbitMachine::three_d().mean_throughput_gops()
            / BandwidthMachine::hmc2().mean_throughput_gops();
        assert!((r - 9.7).abs() < 1.5, "Ambit-3D/HMC = {r:.1} (paper 9.7)");
    }

    #[test]
    fn figure9_ordering_holds_for_every_op() {
        // Skylake < GTX 745 < HMC < Ambit < Ambit-3D, op by op.
        let machines = figure9_machines();
        for op in BitwiseOp::FIGURE9_OPS {
            let ts: Vec<f64> = machines.iter().map(|m| m.throughput_gops(op)).collect();
            for pair in ts.windows(2) {
                assert!(
                    pair[0] < pair[1],
                    "{op}: ordering violated: {ts:?}"
                );
            }
        }
    }

    #[test]
    fn transfer_counts() {
        assert_eq!(transfers_per_byte(BitwiseOp::Not), 2);
        assert_eq!(transfers_per_byte(BitwiseOp::Copy), 2);
        assert_eq!(transfers_per_byte(BitwiseOp::And), 3);
        assert_eq!(transfers_per_byte(BitwiseOp::Xnor), 3);
    }
}
