//! # ambit-sys — system-level models for the Ambit reproduction
//!
//! Everything outside the DRAM chip that the paper's evaluation depends on:
//!
//! * [`SystemConfig`] — the gem5 configuration of Table 4 plus a CPU
//!   timing model (streaming bandwidth tiers, SIMD rate, random-access
//!   latency) used by the Section 8 application studies;
//! * [`Cache`] / [`CacheHierarchy`] — a set-associative LRU cache simulator
//!   for working-set crossovers (Figure 11/12) and dirty-line accounting;
//! * [`machines`] — bandwidth-roofline models of the Figure 9 baselines
//!   (Intel Skylake, NVIDIA GTX 745, HMC 2.0) and the Ambit/Ambit-3D
//!   configurations;
//! * [`CoherenceModel`] — the flush/invalidate costs of Section 5.4.4.
//!
//! # Example: who wins Figure 9, and by how much
//!
//! ```
//! use ambit_sys::machines::{AmbitMachine, BandwidthMachine, BitwiseMachine};
//!
//! let ambit = AmbitMachine::module().mean_throughput_gops();
//! let skylake = BandwidthMachine::skylake().mean_throughput_gops();
//! let speedup = ambit / skylake;
//! assert!(speedup > 35.0, "paper reports 44.9x on average");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod coherence;
mod config;
mod dbi;
pub mod machines;

pub use cache::{AccessResult, Cache, CacheHierarchy, CacheStats};
pub use dbi::DirtyBlockIndex;
pub use coherence::{CoherenceCost, CoherenceModel};
pub use config::SystemConfig;
