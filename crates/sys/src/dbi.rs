//! The Dirty-Block Index (Seshadri et al., ISCA'14), which the paper's
//! Section 5.4.4 proposes using to accelerate the source-row flushes that
//! precede Ambit operations.
//!
//! A conventional cache must be walked line by line to find the dirty
//! lines of a DRAM row (128 probes for an 8 KB row). The DBI reorganizes
//! dirty bits *by DRAM row*: one query returns the full dirty bitmap of a
//! row, so the controller can generate exactly the needed writebacks and
//! nothing else.

use std::collections::HashMap;

/// Dirty-line tracking organized by DRAM row.
///
/// # Examples
///
/// ```
/// use ambit_sys::DirtyBlockIndex;
///
/// let mut dbi = DirtyBlockIndex::new(8192, 64);
/// dbi.mark_dirty(0x2040); // row 1, line 1
/// assert_eq!(dbi.dirty_line_count(1), 1);
/// assert_eq!(dbi.flush_row(1), 1);
/// assert_eq!(dbi.dirty_line_count(1), 0);
/// ```
#[derive(Debug, Clone)]
pub struct DirtyBlockIndex {
    row_bytes: usize,
    line_bytes: usize,
    /// Per-row dirty bitmaps (one bit per cache line in the row).
    rows: HashMap<u64, Vec<u64>>,
    /// Total dirty lines across all rows.
    dirty_total: usize,
}

impl DirtyBlockIndex {
    /// Creates a DBI for `row_bytes` DRAM rows and `line_bytes` cache
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics unless the row size is a positive multiple of the line size.
    pub fn new(row_bytes: usize, line_bytes: usize) -> Self {
        assert!(
            line_bytes > 0 && row_bytes.is_multiple_of(line_bytes),
            "row must be a whole number of lines"
        );
        DirtyBlockIndex {
            row_bytes,
            line_bytes,
            rows: HashMap::new(),
            dirty_total: 0,
        }
    }

    fn locate(&self, addr: u64) -> (u64, usize) {
        let row = addr / self.row_bytes as u64;
        let line = (addr % self.row_bytes as u64) as usize / self.line_bytes;
        (row, line)
    }

    fn words_per_row(&self) -> usize {
        (self.row_bytes / self.line_bytes).div_ceil(64)
    }

    /// Marks the line containing `addr` dirty (called on cache writes).
    pub fn mark_dirty(&mut self, addr: u64) {
        let (row, line) = self.locate(addr);
        let words = self.words_per_row();
        let bitmap = self.rows.entry(row).or_insert_with(|| vec![0; words]);
        let mask = 1u64 << (line % 64);
        if bitmap[line / 64] & mask == 0 {
            bitmap[line / 64] |= mask;
            self.dirty_total += 1;
        }
    }

    /// Marks the line containing `addr` clean (called on writeback or
    /// eviction).
    pub fn mark_clean(&mut self, addr: u64) {
        let (row, line) = self.locate(addr);
        if let Some(bitmap) = self.rows.get_mut(&row) {
            let mask = 1u64 << (line % 64);
            if bitmap[line / 64] & mask != 0 {
                bitmap[line / 64] &= !mask;
                self.dirty_total -= 1;
            }
            if bitmap.iter().all(|&w| w == 0) {
                self.rows.remove(&row);
            }
        }
    }

    /// Number of dirty lines in DRAM row `row` — one O(row) query instead
    /// of per-line cache probes.
    pub fn dirty_line_count(&self, row: u64) -> usize {
        self.rows
            .get(&row)
            .map(|b| b.iter().map(|w| w.count_ones() as usize).sum())
            .unwrap_or(0)
    }

    /// The dirty-line bitmap of a row (LSB = line 0), if any line is dirty.
    pub fn row_bitmap(&self, row: u64) -> Option<&[u64]> {
        self.rows.get(&row).map(|v| v.as_slice())
    }

    /// Flushes a row: clears its dirty bits and returns how many lines
    /// need writeback (the controller issues exactly these).
    pub fn flush_row(&mut self, row: u64) -> usize {
        match self.rows.remove(&row) {
            Some(bitmap) => {
                let n: usize = bitmap.iter().map(|w| w.count_ones() as usize).sum();
                self.dirty_total -= n;
                n
            }
            None => 0,
        }
    }

    /// Total dirty lines tracked.
    pub fn dirty_total(&self) -> usize {
        self.dirty_total
    }

    /// Rows that currently hold at least one dirty line.
    pub fn dirty_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cache probes a conventional walk would need to flush `rows` DRAM
    /// rows, vs the DBI's per-row queries — the speedup the paper's
    /// citation of the DBI is about.
    pub fn probe_savings(&self, rows: usize) -> (usize, usize) {
        let conventional = rows * (self.row_bytes / self.line_bytes);
        (conventional, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbi() -> DirtyBlockIndex {
        DirtyBlockIndex::new(8192, 64)
    }

    #[test]
    fn mark_and_count() {
        let mut d = dbi();
        d.mark_dirty(0);
        d.mark_dirty(64);
        d.mark_dirty(64); // idempotent
        d.mark_dirty(8192); // next row
        assert_eq!(d.dirty_line_count(0), 2);
        assert_eq!(d.dirty_line_count(1), 1);
        assert_eq!(d.dirty_total(), 3);
        assert_eq!(d.dirty_rows(), 2);
    }

    #[test]
    fn clean_removes_and_collapses() {
        let mut d = dbi();
        d.mark_dirty(128);
        d.mark_clean(128);
        d.mark_clean(128); // idempotent
        assert_eq!(d.dirty_total(), 0);
        assert_eq!(d.dirty_rows(), 0);
        assert!(d.row_bitmap(0).is_none());
    }

    #[test]
    fn flush_returns_exact_writeback_count() {
        let mut d = dbi();
        for line in 0..128 {
            d.mark_dirty(line * 64);
        }
        assert_eq!(d.flush_row(0), 128);
        assert_eq!(d.flush_row(0), 0, "second flush finds nothing");
        assert_eq!(d.dirty_total(), 0);
    }

    #[test]
    fn bitmap_identifies_lines() {
        let mut d = dbi();
        d.mark_dirty(0); // line 0
        d.mark_dirty(65 * 64); // line 65
        let bm = d.row_bitmap(0).unwrap();
        assert_eq!(bm[0], 1);
        assert_eq!(bm[1], 2);
    }

    #[test]
    fn probe_savings_are_row_size_over_line_size() {
        let d = dbi();
        let (conventional, with_dbi) = d.probe_savings(10);
        assert_eq!(conventional, 1280);
        assert_eq!(with_dbi, 10);
    }

    #[test]
    #[should_panic(expected = "whole number of lines")]
    fn bad_geometry_rejected() {
        DirtyBlockIndex::new(100, 64);
    }

    #[test]
    fn matches_cache_simulation_ground_truth() {
        // Drive the same access stream into the cache hierarchy and the
        // DBI; the DBI's dirty accounting must agree with the flush count
        // the cache reports.
        use crate::cache::CacheHierarchy;
        let mut caches = CacheHierarchy::micro17();
        let mut d = dbi();
        // Dirty a strided subset of two rows.
        for line in (0..256).step_by(3) {
            let addr = line * 64;
            caches.access(addr, true);
            d.mark_dirty(addr);
        }
        let expect_row0 = d.dirty_line_count(0);
        let flushed = caches.flush_range(0, 8192);
        assert_eq!(flushed, expect_row0);
    }
}
