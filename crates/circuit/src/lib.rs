//! # ambit-circuit — analog models for triple-row activation
//!
//! The Ambit paper (Section 6) validates triple-row activation (TRA) with
//! SPICE simulations of a 55 nm DDR3 sense amplifier under process
//! variation. This crate is the equivalent analysis built from first
//! principles:
//!
//! * [`charge`] — exact charge-sharing arithmetic (the general form of the
//!   paper's Equation 1) plus RC settling transients;
//! * [`SenseAmp`] — a forward-Euler transient simulation of the
//!   cross-coupled inverter latch with square-law MOSFETs;
//! * [`variation`] — a calibrated per-component process-variation model
//!   (cell/bitline capacitance, stored and precharge voltages, sense-amp
//!   offset);
//! * [`montecarlo`] — the Table 2 experiment: TRA failure rates across
//!   ±0–25 % variation, plus the adversarial worst-case margin (paper:
//!   reliable to ±6 %);
//! * [`characterization`] — per-subarray device maps ([`ChipProfile`]):
//!   Monte Carlo success rates, weak-cell lists, and reliability bins
//!   under voltage/temperature corners, persisted as byte-stable JSON.
//!
//! # Example
//!
//! ```
//! use ambit_circuit::{CircuitParams, SenseAmp};
//!
//! let params = CircuitParams::ddr3_55nm();
//! // TRA with 2 of 3 cells charged: positive deviation → senses 1.
//! let deviation = params.tra_deviation_ideal(2);
//! let outcome = SenseAmp::new(params).sense(deviation);
//! assert!(outcome.sensed_one);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod characterization;
pub mod charge;
mod leakage;
pub mod montecarlo;
mod params;
mod sense_amp;
mod transistor;
pub mod variation;

pub use characterization::{
    CharacterizationConfig, CharacterizationError, ChipProfile, SubarrayBin, SubarrayProfile,
    CHIP_PROFILE_SCHEMA,
};
pub use montecarlo::{
    per_subarray_rates, run_monte_carlo, sweep_levels, table2_sweep, worst_case_margin,
    worst_case_ok, MonteCarloError, MonteCarloResult, TABLE2_LEVELS,
};
pub use leakage::LeakageModel;
pub use params::CircuitParams;
pub use sense_amp::{LatchMismatch, SenseAmp, SenseOutcome};
pub use transistor::Mosfet;
pub use variation::{TraInstance, VariationModel};
