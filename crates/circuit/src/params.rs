//! Nominal circuit parameters for the 55 nm DDR3 process modelled by the
//! paper's SPICE simulations (Rambus power model cell/transistor values,
//! PTM low-power transistors).

/// Nominal (variation-free) circuit parameters.
///
/// The paper's Section 6 gives cell capacitance = 22 fF and 55 nm devices;
/// the remaining values are representative of the same Rambus/PTM model
/// generation and are documented where they influence results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitParams {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// DRAM cell capacitance in farads (paper: 22 fF).
    pub c_cell: f64,
    /// Bitline capacitance in farads. Bitlines in 512-cell subarrays run
    /// ~3.5× the cell capacitance in this process generation.
    pub c_bitline: f64,
    /// On-resistance of the access transistor in ohms (sets the charge-
    /// sharing settling time constant).
    pub r_access: f64,
    /// Sense-amplifier transistor transconductance factor k = µCox·W/L in
    /// A/V² (square-law model).
    pub k_transistor: f64,
    /// Transistor threshold voltage in volts.
    pub v_threshold: f64,
}

impl CircuitParams {
    /// 55 nm DDR3 parameters per the paper's Section 6 setup.
    pub fn ddr3_55nm() -> Self {
        CircuitParams {
            vdd: 1.2,
            c_cell: 22e-15,
            c_bitline: 77e-15,
            r_access: 8_000.0,
            k_transistor: 500e-6,
            v_threshold: 0.35,
        }
    }

    /// Precharge voltage (VDD/2).
    pub fn v_precharge(&self) -> f64 {
        self.vdd / 2.0
    }

    /// The ideal TRA bitline deviation of paper Equation 1 for `k` of the
    /// three cells fully charged:
    ///
    /// `δ = (2k − 3)·Cc / (6·Cc + 2·Cb) · VDD`
    ///
    /// # Panics
    ///
    /// Panics if `k > 3`.
    pub fn tra_deviation_ideal(&self, k: usize) -> f64 {
        assert!(k <= 3, "k is the number of charged cells out of 3");
        let num = (2.0 * k as f64 - 3.0) * self.c_cell;
        let den = 6.0 * self.c_cell + 2.0 * self.c_bitline;
        num / den * self.vdd
    }
}

impl Default for CircuitParams {
    fn default() -> Self {
        CircuitParams::ddr3_55nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation1_signs_match_paper() {
        // δ > 0 iff k ∈ {2, 3}; δ < 0 iff k ∈ {0, 1} (paper Section 3.1).
        let p = CircuitParams::ddr3_55nm();
        assert!(p.tra_deviation_ideal(0) < 0.0);
        assert!(p.tra_deviation_ideal(1) < 0.0);
        assert!(p.tra_deviation_ideal(2) > 0.0);
        assert!(p.tra_deviation_ideal(3) > 0.0);
    }

    #[test]
    fn equation1_magnitudes() {
        let p = CircuitParams::ddr3_55nm();
        // k=3 deviation is 3× the k=2 deviation (numerators 3Cc vs Cc).
        let r = p.tra_deviation_ideal(3) / p.tra_deviation_ideal(2);
        assert!((r - 3.0).abs() < 1e-12);
        // Symmetric: δ(1) = −δ(2), δ(0) = −δ(3).
        assert!((p.tra_deviation_ideal(1) + p.tra_deviation_ideal(2)).abs() < 1e-18);
        assert!((p.tra_deviation_ideal(0) + p.tra_deviation_ideal(3)).abs() < 1e-18);
    }

    #[test]
    fn worst_case_margin_is_tens_of_millivolts() {
        // The k=2 deviation must be big enough to sense: expect 50–150 mV.
        let p = CircuitParams::ddr3_55nm();
        let d = p.tra_deviation_ideal(2);
        assert!(d > 0.05 && d < 0.15, "got {d} V");
    }
}
