//! Charge-sharing analysis for multi-cell activations.
//!
//! When an ACTIVATE raises several wordlines, every raised cell's capacitor
//! is connected to the bitline (or bitline-bar for an n-wordline) while the
//! sense amplifier is still disabled. Charge redistributes; the resulting
//! bitline voltage is the capacitance-weighted mean of the participating
//! capacitors and the precharged bitline. This module computes that voltage
//! exactly for arbitrary per-cell capacitances and voltages — the general
//! form of the paper's Equation 1 — plus the exponential settling transient
//! through the access transistors.

use crate::params::CircuitParams;

/// One capacitor participating in charge sharing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedCell {
    /// Capacitance in farads.
    pub capacitance: f64,
    /// Pre-activation voltage in volts.
    pub voltage: f64,
}

impl SharedCell {
    /// A fully charged cell at the given parameters' VDD (optionally scaled).
    pub fn charged(params: &CircuitParams) -> Self {
        SharedCell {
            capacitance: params.c_cell,
            voltage: params.vdd,
        }
    }

    /// A fully empty cell.
    pub fn empty(params: &CircuitParams) -> Self {
        SharedCell {
            capacitance: params.c_cell,
            voltage: 0.0,
        }
    }
}

/// Result of a charge-sharing event on one bitline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeShareResult {
    /// Final shared voltage of bitline + cells, volts.
    pub v_final: f64,
    /// Deviation from the comparison (reference) voltage, volts. Positive
    /// means the sense amplifier will drive the bitline to VDD.
    pub deviation: f64,
}

/// Computes the charge-sharing outcome for `cells` dumped onto a bitline of
/// capacitance `c_bitline` precharged to `v_precharge`, compared against a
/// reference voltage `v_reference` (the other bitline's precharge level).
///
/// # Panics
///
/// Panics if `cells` is empty or any capacitance is non-positive.
pub fn share_charge(
    cells: &[SharedCell],
    c_bitline: f64,
    v_precharge: f64,
    v_reference: f64,
) -> ChargeShareResult {
    assert!(!cells.is_empty(), "charge sharing requires at least one cell");
    let mut q = c_bitline * v_precharge;
    let mut c = c_bitline;
    for cell in cells {
        assert!(cell.capacitance > 0.0, "capacitance must be positive");
        q += cell.capacitance * cell.voltage;
        c += cell.capacitance;
    }
    let v_final = q / c;
    ChargeShareResult {
        v_final,
        deviation: v_final - v_reference,
    }
}

/// Convenience: ideal triple-row-activation deviation with `k` charged cells
/// out of three identical ones — must agree with
/// [`CircuitParams::tra_deviation_ideal`] (paper Equation 1).
pub fn tra_share(params: &CircuitParams, k: usize) -> ChargeShareResult {
    assert!(k <= 3, "k out of range");
    let cells: Vec<SharedCell> = (0..3)
        .map(|i| {
            if i < k {
                SharedCell::charged(params)
            } else {
                SharedCell::empty(params)
            }
        })
        .collect();
    share_charge(
        &cells,
        params.c_bitline,
        params.v_precharge(),
        params.v_precharge(),
    )
}

/// Voltage of the bitline `t` seconds into the charge-sharing phase,
/// modelling the RC settling through the access transistors:
///
/// `v(t) = v_final + (v_precharge − v_final)·exp(−t/τ)`, with
/// `τ = R_access · C_parallel` (cells in parallel with the bitline).
pub fn settle_voltage(
    params: &CircuitParams,
    cells: &[SharedCell],
    v_final: f64,
    t_seconds: f64,
) -> f64 {
    let c_cells: f64 = cells.iter().map(|c| c.capacitance).sum();
    // Series combination of the cell group and bitline capacitances.
    let c_eq = c_cells * params.c_bitline / (c_cells + params.c_bitline);
    let tau = params.r_access / cells.len() as f64 * c_eq;
    v_final + (params.v_precharge() - v_final) * (-t_seconds / tau).exp()
}

/// Time for the charge-sharing transient to settle within `fraction`
/// (e.g. 0.01 for 1 %) of its final value, in seconds.
pub fn settle_time(params: &CircuitParams, cells: &[SharedCell], fraction: f64) -> f64 {
    assert!(fraction > 0.0 && fraction < 1.0, "fraction in (0, 1)");
    let c_cells: f64 = cells.iter().map(|c| c.capacitance).sum();
    let c_eq = c_cells * params.c_bitline / (c_cells + params.c_bitline);
    let tau = params.r_access / cells.len() as f64 * c_eq;
    -tau * fraction.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CircuitParams {
        CircuitParams::ddr3_55nm()
    }

    #[test]
    fn tra_share_matches_equation1_for_all_k() {
        let params = p();
        for k in 0..=3 {
            let got = tra_share(&params, k).deviation;
            let expect = params.tra_deviation_ideal(k);
            assert!(
                (got - expect).abs() < 1e-12,
                "k={k}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn single_charged_cell_gives_standard_activation_deviation() {
        // Classic single-cell charge sharing: δ = Cc/(Cc+Cb)·VDD/2.
        let params = p();
        let r = share_charge(
            &[SharedCell::charged(&params)],
            params.c_bitline,
            params.v_precharge(),
            params.v_precharge(),
        );
        let expect = params.c_cell / (params.c_cell + params.c_bitline) * params.vdd / 2.0;
        assert!((r.deviation - expect).abs() < 1e-12);
    }

    #[test]
    fn charge_is_conserved() {
        let params = p();
        let cells = [
            SharedCell { capacitance: 20e-15, voltage: 1.2 },
            SharedCell { capacitance: 25e-15, voltage: 0.0 },
            SharedCell { capacitance: 22e-15, voltage: 1.1 },
        ];
        let r = share_charge(&cells, params.c_bitline, 0.6, 0.6);
        let q_before: f64 =
            cells.iter().map(|c| c.capacitance * c.voltage).sum::<f64>() + params.c_bitline * 0.6;
        let c_total: f64 =
            cells.iter().map(|c| c.capacitance).sum::<f64>() + params.c_bitline;
        assert!((r.v_final * c_total - q_before).abs() < 1e-24);
    }

    #[test]
    fn deviation_shrinks_with_more_cells_sharing() {
        // Issue 1 of Section 3.2: TRA deviation (k=2 of 3) is smaller than a
        // single-cell activation's deviation.
        let params = p();
        let single = share_charge(
            &[SharedCell::charged(&params)],
            params.c_bitline,
            params.v_precharge(),
            params.v_precharge(),
        );
        let tra = tra_share(&params, 2);
        assert!(tra.deviation < single.deviation);
        assert!(tra.deviation > 0.0);
    }

    #[test]
    fn settling_is_monotonic_and_converges() {
        let params = p();
        let cells = vec![SharedCell::charged(&params); 3];
        let v_final = tra_share(&params, 3).v_final;
        let early = settle_voltage(&params, &cells, v_final, 0.1e-9);
        let late = settle_voltage(&params, &cells, v_final, 5e-9);
        assert!(early < late, "rising toward v_final");
        assert!((late - v_final).abs() < 0.01 * (v_final - params.v_precharge()).abs() + 1e-6);
    }

    #[test]
    fn settle_time_is_subnanosecond_to_nanoseconds() {
        // Charge sharing settles quickly relative to tRCD (~13 ns).
        let params = p();
        let cells = vec![SharedCell::charged(&params); 3];
        let t = settle_time(&params, &cells, 0.01);
        assert!(t > 1e-11 && t < 5e-9, "settle time {t} s");
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_cell_list_panics() {
        share_charge(&[], 77e-15, 0.6, 0.6);
    }
}
