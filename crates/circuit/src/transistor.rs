//! Square-law MOSFET model used by the transient sense-amplifier
//! simulation. A long-channel approximation is adequate here: we care about
//! regenerative latch dynamics and relative timing, not absolute 55 nm I-V
//! accuracy.

/// A square-law MOSFET: cutoff / triode / saturation regions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Transconductance parameter k = µCox·W/L, in A/V².
    pub k: f64,
    /// Threshold voltage magnitude in volts.
    pub vt: f64,
}

impl Mosfet {
    /// Creates a device with the given transconductance and threshold.
    pub fn new(k: f64, vt: f64) -> Self {
        Mosfet { k, vt }
    }

    /// Drain current of an NMOS with source at 0 V: gate voltage `vg`,
    /// drain voltage `vd` (both relative to source). Returns amperes,
    /// flowing drain → source (discharging the drain node).
    pub fn nmos_current(&self, vg: f64, vd: f64) -> f64 {
        let vov = vg - self.vt;
        if vov <= 0.0 || vd <= 0.0 {
            return 0.0;
        }
        if vd < vov {
            // Triode.
            self.k * (vov * vd - vd * vd / 2.0)
        } else {
            // Saturation.
            self.k / 2.0 * vov * vov
        }
    }

    /// Drain current of a PMOS with source at `vdd`: gate voltage `vg`,
    /// drain voltage `vd`. Returns amperes, flowing source → drain
    /// (charging the drain node).
    pub fn pmos_current(&self, vdd: f64, vg: f64, vd: f64) -> f64 {
        let vsg = vdd - vg;
        let vsd = vdd - vd;
        let vov = vsg - self.vt;
        if vov <= 0.0 || vsd <= 0.0 {
            return 0.0;
        }
        if vsd < vov {
            self.k * (vov * vsd - vsd * vsd / 2.0)
        } else {
            self.k / 2.0 * vov * vov
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: f64 = 500e-6;
    const VT: f64 = 0.35;

    #[test]
    fn nmos_cutoff_below_threshold() {
        let m = Mosfet::new(K, VT);
        assert_eq!(m.nmos_current(0.3, 1.0), 0.0);
        assert_eq!(m.nmos_current(0.35, 1.0), 0.0);
    }

    #[test]
    fn nmos_saturation_value() {
        let m = Mosfet::new(K, VT);
        // Vov = 0.25, saturated: I = k/2 · Vov².
        let i = m.nmos_current(0.6, 1.2);
        assert!((i - K / 2.0 * 0.25 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn nmos_triode_continuous_with_saturation() {
        let m = Mosfet::new(K, VT);
        let vov: f64 = 0.25;
        let at_edge = m.nmos_current(0.6, vov);
        let sat = m.nmos_current(0.6, vov + 1e-9);
        assert!((at_edge - sat).abs() < 1e-9 * K);
        // Triode current is monotone in vd up to the edge.
        assert!(m.nmos_current(0.6, 0.1) < at_edge);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let m = Mosfet::new(K, VT);
        let vdd = 1.2;
        // PMOS(vg, vd) should equal NMOS(vdd-vg, vdd-vd) by symmetry.
        for (vg, vd) in [(0.0, 1.2), (0.3, 0.9), (0.6, 0.6), (0.9, 0.1)] {
            let p = m.pmos_current(vdd, vg, vd);
            let n = m.nmos_current(vdd - vg, vdd - vd);
            assert!((p - n).abs() < 1e-15, "vg={vg} vd={vd}");
        }
    }

    #[test]
    fn currents_increase_with_gate_drive() {
        let m = Mosfet::new(K, VT);
        assert!(m.nmos_current(1.2, 1.2) > m.nmos_current(0.8, 1.2));
        assert!(m.pmos_current(1.2, 0.0, 0.0) > m.pmos_current(1.2, 0.4, 0.0));
    }
}
