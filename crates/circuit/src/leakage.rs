//! Cell charge leakage and its effect on triple-row activation — the
//! quantitative side of the paper's Section 3.2, issue 4.
//!
//! A charged DRAM cell decays toward 0 V with an RC-like time constant far
//! longer than the 64 ms refresh interval (the JEDEC window guarantees the
//! *worst* cell still senses correctly after 64 ms of decay). Ordinary
//! sensing tolerates a lot of decay; TRA's margin is ~3× smaller, which is
//! why Ambit performs TRAs only on *just-copied* (fully refreshed) rows.
//!
//! This module models exponential decay calibrated to the JEDEC guarantee
//! and computes how stale a row may get before a TRA becomes marginal —
//! showing that Ambit's copy-first discipline (copies happen ~10⁵–10⁶×
//! faster than retention) makes staleness a non-issue, while TRAs on
//! *arbitrary* aged rows would not be safe.

use crate::charge::{share_charge, SharedCell};
use crate::params::CircuitParams;

/// Exponential cell-decay model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageModel {
    /// Decay time constant in seconds.
    pub tau_s: f64,
}

impl LeakageModel {
    /// Calibrated so that after the 64 ms JEDEC retention window a charged
    /// cell has lost `loss_at_refresh` of its charge (default model: 20 % —
    /// the margin DRAM vendors design single-cell sensing to tolerate).
    pub fn jedec_64ms(loss_at_refresh: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_at_refresh) && loss_at_refresh > 0.0,
            "loss must be in (0, 1)"
        );
        // v(t) = VDD·exp(-t/τ);  1 − loss = exp(-0.064/τ).
        LeakageModel {
            tau_s: -0.064 / (1.0 - loss_at_refresh).ln(),
        }
    }

    /// Voltage of a cell charged to `v0` after `t_s` seconds of decay.
    pub fn decayed_voltage(&self, v0: f64, t_s: f64) -> f64 {
        v0 * (-t_s / self.tau_s).exp()
    }

    /// TRA bitline deviation when `k` of 3 cells are charged and every
    /// charged cell has decayed for `t_s` seconds (empty cells stay at 0).
    pub fn tra_deviation_after(&self, params: &CircuitParams, k: usize, t_s: f64) -> f64 {
        assert!(k <= 3, "k out of range");
        let v = self.decayed_voltage(params.vdd, t_s);
        let cells: Vec<SharedCell> = (0..3)
            .map(|i| SharedCell {
                capacitance: params.c_cell,
                voltage: if i < k { v } else { 0.0 },
            })
            .collect();
        share_charge(
            &cells,
            params.c_bitline,
            params.v_precharge(),
            params.v_precharge(),
        )
        .deviation
    }

    /// The staleness at which a k=2 TRA's deviation drops below
    /// `min_deviation_v` (the sense margin), found by bisection. Returns
    /// seconds.
    pub fn tra_safe_staleness(&self, params: &CircuitParams, min_deviation_v: f64) -> f64 {
        let mut lo = 0.0f64;
        let mut hi = 10.0 * self.tau_s;
        for _ in 0..64 {
            let mid = (lo + hi) / 2.0;
            if self.tra_deviation_after(params, 2, mid) > min_deviation_v {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

impl Default for LeakageModel {
    fn default() -> Self {
        LeakageModel::jedec_64ms(0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CircuitParams {
        CircuitParams::ddr3_55nm()
    }

    #[test]
    fn calibration_hits_the_refresh_point() {
        let m = LeakageModel::jedec_64ms(0.2);
        let v = m.decayed_voltage(1.2, 0.064);
        assert!((v - 0.96).abs() < 1e-9, "80% of 1.2 V after 64 ms: {v}");
    }

    #[test]
    fn decay_is_monotone() {
        let m = LeakageModel::default();
        let v1 = m.decayed_voltage(1.2, 0.01);
        let v2 = m.decayed_voltage(1.2, 0.05);
        assert!(v2 < v1 && v1 < 1.2);
    }

    #[test]
    fn fresh_tra_matches_ideal_equation() {
        let params = p();
        let m = LeakageModel::default();
        for k in 0..=3 {
            let fresh = m.tra_deviation_after(&params, k, 0.0);
            let ideal = params.tra_deviation_ideal(k);
            assert!((fresh - ideal).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn k2_margin_shrinks_with_staleness_and_eventually_flips() {
        // The k=2 deviation sits just above zero; decay of the two charged
        // cells eventually makes the majority read as 0 — a TRA failure.
        let params = p();
        let m = LeakageModel::default();
        let fresh = m.tra_deviation_after(&params, 2, 0.0);
        let at_refresh = m.tra_deviation_after(&params, 2, 0.064);
        assert!(at_refresh < fresh);
        let very_stale = m.tra_deviation_after(&params, 2, 2.0);
        assert!(very_stale < 0.0, "stale k=2 TRA flips sign: {very_stale}");
    }

    #[test]
    fn copy_first_discipline_has_enormous_margin() {
        // Paper Section 3.3: copies run "five-six orders of magnitude"
        // faster than retention; even against a 30 mV sense requirement,
        // the row stays TRA-safe for ~tens of milliseconds, vs the ~100 ns
        // between RowClone copy and TRA.
        let params = p();
        let m = LeakageModel::default();
        let safe_s = m.tra_safe_staleness(&params, 0.030);
        assert!(safe_s > 1e-3, "safe staleness {safe_s} s");
        let copy_to_tra_gap_s = 100e-9;
        assert!(
            safe_s / copy_to_tra_gap_s > 1e4,
            "copy-to-TRA gap leaves {}x margin",
            safe_s / copy_to_tra_gap_s
        );
    }

    #[test]
    fn single_cell_sensing_outlives_tra_margin() {
        // At the same staleness (a full 64 ms retention window), ordinary
        // single-cell sensing keeps several times the margin of a k=2 TRA
        // — why DRAM tolerates decay but TRA must run on fresh rows.
        let params = p();
        let m = LeakageModel::default();
        let v_old = m.decayed_voltage(params.vdd, 0.064);
        let single_old = share_charge(
            &[SharedCell { capacitance: params.c_cell, voltage: v_old }],
            params.c_bitline,
            params.v_precharge(),
            params.v_precharge(),
        )
        .deviation;
        let tra_old = m.tra_deviation_after(&params, 2, 0.064);
        assert!(single_old > 3.0 * tra_old, "{single_old} vs {tra_old}");
        assert!(single_old > 0.05, "single-cell margin stays healthy");
    }

    #[test]
    #[should_panic(expected = "loss must be in")]
    fn bad_calibration_rejected() {
        LeakageModel::jedec_64ms(1.5);
    }
}
