//! Device characterization: per-subarray TRA reliability maps.
//!
//! Real DRAM chips do not fail uniformly — "Functionally-Complete Boolean
//! Logic in Real DRAM Chips" (ETH 2024) measures per-subarray success-rate
//! maps, weak columns, and strong voltage/temperature sensitivity on
//! commodity parts. This module reproduces that workflow in simulation: it
//! runs the existing Monte Carlo harness (`run_monte_carlo`) once per
//! subarray under a jittered [`VariationModel`](crate::VariationModel)
//! level, derated for a voltage/temperature corner, and folds the results
//! into a persistable [`ChipProfile`]:
//!
//! * a TRA failure rate per subarray (the success-rate map),
//! * a small list of *weak cells* per subarray — the most leakage-prone
//!   cell of each weak column, as `(row, column)` pairs, and
//! * a reliability/retention [`SubarrayBin`] (strong / nominal / weak)
//!   that downstream recovery uses to de-rate retry budgets.
//!
//! The profile round-trips through the telemetry crate's hand-rolled JSON
//! byte-stably: persist → load → re-persist is byte-identical for a fixed
//! seed, so profiles can be checked into CI artifacts and replayed.
//! Consumers: `ambit_dram::FaultCampaign::from_profile` arms a fault
//! campaign from the map, and `ambit_core`'s allocator places data
//! strongest-first and pre-remaps the weak cells before first use.

use std::collections::HashSet;
use std::fmt;

use ambit_telemetry::json::{self, Json, JsonError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::montecarlo::run_monte_carlo;
use crate::params::CircuitParams;

/// Schema marker embedded in persisted profiles.
pub const CHIP_PROFILE_SCHEMA: &str = "ambit-chip-profile/v1";

/// Nominal operating temperature in °C; corners are measured against this.
pub const NOMINAL_TEMP_C: f64 = 45.0;

/// Extra effective variation per 100 °C above nominal (first-order model
/// of retention/leakage worsening with temperature).
const TEMP_LEVEL_PER_100C: f64 = 0.2;

/// Extra effective variation per unit of supply undervolt (first-order
/// model of the shrinking sense margin as VDD scales down).
const VOLT_LEVEL_GAIN: f64 = 2.0;

/// Hard clamp on the effective variation level handed to
/// [`VariationModel::at_level`](crate::VariationModel::at_level).
const MAX_LEVEL: f64 = 0.45;

/// Subarrays with a TRA failure rate below this are binned Strong.
const STRONG_MAX_RATE: f64 = 1e-3;

/// Subarrays with a TRA failure rate below this (and above
/// [`STRONG_MAX_RATE`]) are binned Nominal; anything higher is Weak.
const NOMINAL_MAX_RATE: f64 = 2e-2;

/// Errors raised by profile generation and (de)serialization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CharacterizationError {
    /// The configured geometry has zero banks, subarrays, or row bits.
    EmptyGeometry,
    /// No rows are eligible to host weak cells.
    NoEligibleRows {
        /// First row eligible for weak cells.
        first_eligible_row: usize,
        /// Rows per subarray.
        rows: usize,
    },
    /// `trials_per_subarray` was zero.
    NoTrials,
    /// A tuning knob was outside its legal range.
    InvalidKnob {
        /// Name of the offending knob.
        knob: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A persisted profile failed to parse as JSON.
    Parse(JsonError),
    /// A persisted profile parsed but did not match the expected schema.
    Schema {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for CharacterizationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharacterizationError::EmptyGeometry => {
                write!(f, "characterization geometry has no banks, subarrays, or bits")
            }
            CharacterizationError::NoEligibleRows {
                first_eligible_row,
                rows,
            } => write!(
                f,
                "first eligible row {first_eligible_row} leaves no weak-cell rows in a {rows}-row subarray"
            ),
            CharacterizationError::NoTrials => {
                write!(f, "characterization requires at least one Monte Carlo trial per subarray")
            }
            CharacterizationError::InvalidKnob { knob, value } => {
                write!(f, "characterization knob {knob} = {value} is out of range")
            }
            CharacterizationError::Parse(e) => write!(f, "chip profile is not valid JSON: {e}"),
            CharacterizationError::Schema { detail } => {
                write!(f, "chip profile schema mismatch: {detail}")
            }
        }
    }
}

impl std::error::Error for CharacterizationError {}

impl From<JsonError> for CharacterizationError {
    fn from(e: JsonError) -> Self {
        CharacterizationError::Parse(e)
    }
}

/// Reliability/retention bin of one subarray, classified from its measured
/// TRA failure rate. Strong bins fail fast to remap; weak bins earn extra
/// retry budget in the resilient executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SubarrayBin {
    /// Failure rate below 0.1 % — retries are almost never useful.
    Strong,
    /// Failure rate between 0.1 % and 2 %.
    Nominal,
    /// Failure rate of 2 % or more — transient faults dominate, so extra
    /// retries pay off before falling back.
    Weak,
}

impl SubarrayBin {
    /// Classifies a failure rate into a bin.
    pub fn from_rate(rate: f64) -> Self {
        if rate < STRONG_MAX_RATE {
            SubarrayBin::Strong
        } else if rate < NOMINAL_MAX_RATE {
            SubarrayBin::Nominal
        } else {
            SubarrayBin::Weak
        }
    }

    /// Stable string form used in persisted profiles.
    pub fn as_str(&self) -> &'static str {
        match self {
            SubarrayBin::Strong => "strong",
            SubarrayBin::Nominal => "nominal",
            SubarrayBin::Weak => "weak",
        }
    }

    /// Parses the persisted string form.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "strong" => Some(SubarrayBin::Strong),
            "nominal" => Some(SubarrayBin::Nominal),
            "weak" => Some(SubarrayBin::Weak),
            _ => None,
        }
    }

    /// Compact numeric code (0 strong, 1 nominal, 2 weak) for plain-data
    /// consumers that cannot depend on this crate.
    pub fn code(&self) -> u8 {
        match self {
            SubarrayBin::Strong => 0,
            SubarrayBin::Nominal => 1,
            SubarrayBin::Weak => 2,
        }
    }
}

/// Knobs for one characterization run.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationConfig {
    /// Seed for the jitter + Monte Carlo + weak-cell sampling stream.
    pub seed: u64,
    /// Banks on the device.
    pub banks: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Rows per subarray.
    pub rows_per_subarray: usize,
    /// Row width in bits (columns per subarray).
    pub row_bits: usize,
    /// First row eligible to host weak cells; lower rows are reserved for
    /// the Ambit control group and must stay clean.
    pub first_eligible_row: usize,
    /// Nominal process-variation level (e.g. 0.10 for ±10 %).
    pub variation_level: f64,
    /// Per-subarray level jitter: each subarray draws its level uniformly
    /// from `level * [1 - spread, 1 + spread]`.
    pub subarray_spread: f64,
    /// Monte Carlo trials per subarray.
    pub trials_per_subarray: u64,
    /// Supply voltage as a fraction of nominal VDD (1.0 = nominal;
    /// undervolting below 1.0 shrinks the sense margin).
    pub voltage_scale: f64,
    /// Operating temperature in °C ([`NOMINAL_TEMP_C`] = nominal).
    pub temperature_c: f64,
    /// Expected weak cells per subarray per unit of failure rate; the
    /// count is `round(rate * weak_cell_scale)` capped at
    /// [`max_weak_cells`](Self::max_weak_cells).
    pub weak_cell_scale: f64,
    /// Upper bound on weak cells recorded per subarray.
    pub max_weak_cells: usize,
}

impl CharacterizationConfig {
    /// Nominal-corner configuration for the given geometry.
    pub fn for_geometry(
        banks: usize,
        subarrays_per_bank: usize,
        rows_per_subarray: usize,
        row_bits: usize,
    ) -> Self {
        CharacterizationConfig {
            seed: 0xC0FF_EE00,
            banks,
            subarrays_per_bank,
            rows_per_subarray,
            row_bits,
            first_eligible_row: 8,
            variation_level: 0.10,
            subarray_spread: 0.4,
            trials_per_subarray: 4_000,
            voltage_scale: 1.0,
            temperature_c: NOMINAL_TEMP_C,
            weak_cell_scale: 150.0,
            max_weak_cells: 4,
        }
    }

    /// The effective variation level after folding in the
    /// voltage/temperature corner: undervolt and heat both widen the
    /// distribution the Monte Carlo samples from (first-order derating,
    /// clamped to the model's legal range).
    pub fn effective_level(&self) -> f64 {
        let temp = 1.0 + TEMP_LEVEL_PER_100C * (self.temperature_c - NOMINAL_TEMP_C) / 100.0;
        let volt = 1.0 + VOLT_LEVEL_GAIN * (1.0 - self.voltage_scale);
        (self.variation_level * temp.max(0.0) * volt.max(0.0)).clamp(0.0, MAX_LEVEL)
    }

    fn validate(&self) -> Result<(), CharacterizationError> {
        if self.banks == 0 || self.subarrays_per_bank == 0 || self.row_bits == 0 {
            return Err(CharacterizationError::EmptyGeometry);
        }
        if self.first_eligible_row >= self.rows_per_subarray {
            return Err(CharacterizationError::NoEligibleRows {
                first_eligible_row: self.first_eligible_row,
                rows: self.rows_per_subarray,
            });
        }
        if self.trials_per_subarray == 0 {
            return Err(CharacterizationError::NoTrials);
        }
        let knobs = [
            ("variation_level", self.variation_level, 0.0, 0.99),
            ("subarray_spread", self.subarray_spread, 0.0, 1.0),
            ("voltage_scale", self.voltage_scale, 0.1, 2.0),
            ("temperature_c", self.temperature_c, -60.0, 200.0),
            ("weak_cell_scale", self.weak_cell_scale, 0.0, 1e9),
        ];
        for (knob, value, lo, hi) in knobs {
            if !value.is_finite() || value < lo || value > hi {
                return Err(CharacterizationError::InvalidKnob { knob, value });
            }
        }
        Ok(())
    }
}

/// Characterization result for one subarray.
#[derive(Debug, Clone, PartialEq)]
pub struct SubarrayProfile {
    /// Flat bank index.
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// Measured TRA failure rate in `[0, 1]`.
    pub tra_failure_rate: f64,
    /// Reliability/retention bin classified from the rate.
    pub bin: SubarrayBin,
    /// Weak cells as `(row, column)` pairs — the most leakage-prone cell
    /// of each weak column found during characterization, sorted.
    pub weak_cells: Vec<(usize, usize)>,
}

/// A persistable per-subarray reliability map of one simulated chip.
///
/// Subarrays are stored row-major: flat index
/// `bank * subarrays_per_bank + subarray`, matching
/// `ambit_dram::BankId::flat_index` composition order.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipProfile {
    /// The configuration that produced this profile.
    pub config: CharacterizationConfig,
    /// Per-subarray results, row-major.
    pub subarrays: Vec<SubarrayProfile>,
}

impl ChipProfile {
    /// Runs the per-subarray Monte Carlo characterization. Deterministic
    /// for a fixed `config.seed`.
    pub fn characterize(
        params: &CircuitParams,
        config: &CharacterizationConfig,
    ) -> Result<Self, CharacterizationError> {
        config.validate()?;
        let base = config.effective_level();
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut subarrays = Vec::with_capacity(config.banks * config.subarrays_per_bank);
        for bank in 0..config.banks {
            for subarray in 0..config.subarrays_per_bank {
                let jitter = 1.0 + config.subarray_spread * (rng.gen::<f64>() * 2.0 - 1.0);
                let sub_level = (base * jitter).clamp(0.0, MAX_LEVEL);
                let rate = run_monte_carlo(params, sub_level, config.trials_per_subarray, &mut rng)
                    .failure_rate();
                let eligible_rows = config.rows_per_subarray - config.first_eligible_row;
                let capacity = eligible_rows * config.row_bits;
                let want = ((rate * config.weak_cell_scale).round() as usize)
                    .min(config.max_weak_cells)
                    .min(capacity);
                let mut taken = HashSet::new();
                let mut weak_cells = Vec::with_capacity(want);
                while weak_cells.len() < want {
                    let row = config.first_eligible_row + rng.gen_range(0..eligible_rows);
                    let col = rng.gen_range(0..config.row_bits);
                    if taken.insert((row, col)) {
                        weak_cells.push((row, col));
                    }
                }
                weak_cells.sort_unstable();
                subarrays.push(SubarrayProfile {
                    bank,
                    subarray,
                    tra_failure_rate: rate,
                    bin: SubarrayBin::from_rate(rate),
                    weak_cells,
                });
            }
        }
        Ok(ChipProfile {
            config: config.clone(),
            subarrays,
        })
    }

    /// Per-subarray TRA failure rates, row-major — the shape
    /// `FaultCampaign::plan_with_rates` / `from_profile` expect.
    pub fn rates(&self) -> Vec<f64> {
        self.subarrays.iter().map(|s| s.tra_failure_rate).collect()
    }

    /// Per-subarray weak cells, row-major.
    pub fn weak_cells(&self) -> Vec<Vec<(usize, usize)>> {
        self.subarrays.iter().map(|s| s.weak_cells.clone()).collect()
    }

    /// Per-subarray bin codes (0 strong, 1 nominal, 2 weak), row-major —
    /// the plain-data form consumed by `ambit_core`.
    pub fn bin_codes(&self) -> Vec<u8> {
        self.subarrays.iter().map(|s| s.bin.code()).collect()
    }

    /// `(bank, subarray)` pairs sorted strongest (lowest failure rate)
    /// first, ties broken by flat index. This is the placement order the
    /// variation-aware allocator follows.
    pub fn strength_order(&self) -> Vec<(usize, usize)> {
        let mut idx: Vec<usize> = (0..self.subarrays.len()).collect();
        idx.sort_by(|&a, &b| {
            self.subarrays[a]
                .tra_failure_rate
                .partial_cmp(&self.subarrays[b].tra_failure_rate)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.into_iter()
            .map(|i| (self.subarrays[i].bank, self.subarrays[i].subarray))
            .collect()
    }

    /// Number of subarrays binned [`SubarrayBin::Weak`].
    pub fn weak_subarray_count(&self) -> usize {
        self.subarrays
            .iter()
            .filter(|s| s.bin == SubarrayBin::Weak)
            .count()
    }

    /// Serializes the profile to its canonical JSON form. The rendering
    /// is byte-stable: [`from_json`](Self::from_json) followed by
    /// `to_json` reproduces the exact same bytes.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema\": \"{}\",\n  \"seed\": \"{}\",\n",
            CHIP_PROFILE_SCHEMA, c.seed
        ));
        out.push_str(&format!(
            "  \"banks\": {}, \"subarrays_per_bank\": {}, \"rows_per_subarray\": {}, \"row_bits\": {}, \"first_eligible_row\": {},\n",
            c.banks, c.subarrays_per_bank, c.rows_per_subarray, c.row_bits, c.first_eligible_row
        ));
        out.push_str(&format!(
            "  \"variation_level\": {}, \"subarray_spread\": {}, \"voltage_scale\": {}, \"temperature_c\": {},\n",
            json::number(c.variation_level),
            json::number(c.subarray_spread),
            json::number(c.voltage_scale),
            json::number(c.temperature_c)
        ));
        out.push_str(&format!(
            "  \"trials_per_subarray\": {}, \"weak_cell_scale\": {}, \"max_weak_cells\": {},\n",
            c.trials_per_subarray,
            json::number(c.weak_cell_scale),
            c.max_weak_cells
        ));
        out.push_str("  \"subarrays\": [\n");
        for (i, s) in self.subarrays.iter().enumerate() {
            let cells: Vec<String> = s
                .weak_cells
                .iter()
                .map(|&(r, c)| format!("[{r}, {c}]"))
                .collect();
            out.push_str(&format!(
                "    {{\"bank\": {}, \"subarray\": {}, \"tra_failure_rate\": {}, \"bin\": \"{}\", \"weak_cells\": [{}]}}{}\n",
                s.bank,
                s.subarray,
                json::number(s.tra_failure_rate),
                s.bin.as_str(),
                cells.join(", "),
                if i + 1 < self.subarrays.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a profile persisted by [`to_json`](Self::to_json).
    pub fn from_json(text: &str) -> Result<Self, CharacterizationError> {
        let doc = Json::parse(text)?;
        let schema = |detail: &str| CharacterizationError::Schema {
            detail: detail.to_string(),
        };
        if doc.get("schema").and_then(Json::as_str) != Some(CHIP_PROFILE_SCHEMA) {
            return Err(schema(&format!("expected schema {CHIP_PROFILE_SCHEMA}")));
        }
        let seed = doc
            .get("seed")
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| schema("seed must be a decimal string"))?;
        let usize_field = |key: &str| -> Result<usize, CharacterizationError> {
            doc.get(key)
                .and_then(Json::as_u64)
                .map(|v| v as usize)
                .ok_or_else(|| schema(&format!("missing integer field {key}")))
        };
        let f64_field = |key: &str| -> Result<f64, CharacterizationError> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| schema(&format!("missing number field {key}")))
        };
        let config = CharacterizationConfig {
            seed,
            banks: usize_field("banks")?,
            subarrays_per_bank: usize_field("subarrays_per_bank")?,
            rows_per_subarray: usize_field("rows_per_subarray")?,
            row_bits: usize_field("row_bits")?,
            first_eligible_row: usize_field("first_eligible_row")?,
            variation_level: f64_field("variation_level")?,
            subarray_spread: f64_field("subarray_spread")?,
            voltage_scale: f64_field("voltage_scale")?,
            temperature_c: f64_field("temperature_c")?,
            trials_per_subarray: doc
                .get("trials_per_subarray")
                .and_then(Json::as_u64)
                .ok_or_else(|| schema("missing integer field trials_per_subarray"))?,
            weak_cell_scale: f64_field("weak_cell_scale")?,
            max_weak_cells: usize_field("max_weak_cells")?,
        };
        let entries = doc
            .get("subarrays")
            .and_then(Json::as_arr)
            .ok_or_else(|| schema("missing subarrays array"))?;
        if entries.len() != config.banks * config.subarrays_per_bank {
            return Err(schema(&format!(
                "subarray count {} does not match geometry {}x{}",
                entries.len(),
                config.banks,
                config.subarrays_per_bank
            )));
        }
        let mut subarrays = Vec::with_capacity(entries.len());
        for e in entries {
            let bank = e
                .get("bank")
                .and_then(Json::as_u64)
                .ok_or_else(|| schema("subarray entry missing bank"))? as usize;
            let subarray = e
                .get("subarray")
                .and_then(Json::as_u64)
                .ok_or_else(|| schema("subarray entry missing subarray"))?
                as usize;
            let tra_failure_rate = e
                .get("tra_failure_rate")
                .and_then(Json::as_f64)
                .ok_or_else(|| schema("subarray entry missing tra_failure_rate"))?;
            let bin = e
                .get("bin")
                .and_then(Json::as_str)
                .and_then(SubarrayBin::from_str_opt)
                .ok_or_else(|| schema("subarray entry has no valid bin"))?;
            let mut weak_cells = Vec::new();
            for cell in e
                .get("weak_cells")
                .and_then(Json::as_arr)
                .ok_or_else(|| schema("subarray entry missing weak_cells"))?
            {
                let pair = cell
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| schema("weak cell must be a [row, column] pair"))?;
                let row = pair[0]
                    .as_u64()
                    .ok_or_else(|| schema("weak cell row must be an integer"))?
                    as usize;
                let col = pair[1]
                    .as_u64()
                    .ok_or_else(|| schema("weak cell column must be an integer"))?
                    as usize;
                if row >= config.rows_per_subarray || col >= config.row_bits {
                    return Err(schema(&format!(
                        "weak cell ({row}, {col}) out of range for {}x{} subarray",
                        config.rows_per_subarray, config.row_bits
                    )));
                }
                weak_cells.push((row, col));
            }
            subarrays.push(SubarrayProfile {
                bank,
                subarray,
                tra_failure_rate,
                bin,
                weak_cells,
            });
        }
        Ok(ChipProfile { config, subarrays })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CharacterizationConfig {
        let mut c = CharacterizationConfig::for_geometry(2, 2, 32, 128);
        c.trials_per_subarray = 1_500;
        c
    }

    #[test]
    fn characterization_is_deterministic_per_seed() {
        let params = CircuitParams::ddr3_55nm();
        let a = ChipProfile::characterize(&params, &cfg()).unwrap();
        let b = ChipProfile::characterize(&params, &cfg()).unwrap();
        assert_eq!(a, b);
        let mut other = cfg();
        other.seed ^= 1;
        let c = ChipProfile::characterize(&params, &other).unwrap();
        assert_ne!(a.rates(), c.rates(), "seed change should move the map");
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        let params = CircuitParams::ddr3_55nm();
        let mut config = cfg();
        config.seed = u64::MAX - 3; // exercise the >2^53 decimal-string path
        config.voltage_scale = 0.85;
        config.temperature_c = 85.0;
        let profile = ChipProfile::characterize(&params, &config).unwrap();
        let text = profile.to_json();
        let loaded = ChipProfile::from_json(&text).unwrap();
        assert_eq!(loaded, profile);
        assert_eq!(loaded.to_json(), text, "persist -> load -> re-persist must be byte-identical");
    }

    #[test]
    fn worse_corner_raises_failure_rates() {
        let params = CircuitParams::ddr3_55nm();
        let mut nominal = cfg();
        nominal.variation_level = 0.12;
        let mut corner = nominal.clone();
        corner.voltage_scale = 0.8;
        corner.temperature_c = 85.0;
        assert!(corner.effective_level() > nominal.effective_level());
        let n = ChipProfile::characterize(&params, &nominal).unwrap();
        let c = ChipProfile::characterize(&params, &corner).unwrap();
        let sum = |p: &ChipProfile| p.rates().iter().sum::<f64>();
        assert!(
            sum(&c) > sum(&n),
            "undervolt + heat should raise aggregate failure rate: {} vs {}",
            sum(&c),
            sum(&n)
        );
    }

    #[test]
    fn strength_order_is_sorted_by_rate() {
        let params = CircuitParams::ddr3_55nm();
        let mut config = cfg();
        config.variation_level = 0.14;
        let profile = ChipProfile::characterize(&params, &config).unwrap();
        let order = profile.strength_order();
        assert_eq!(order.len(), 4);
        let rate_of = |pair: (usize, usize)| {
            profile
                .subarrays
                .iter()
                .find(|s| (s.bank, s.subarray) == pair)
                .unwrap()
                .tra_failure_rate
        };
        for w in order.windows(2) {
            assert!(rate_of(w[0]) <= rate_of(w[1]));
        }
    }

    #[test]
    fn weak_cells_respect_eligible_rows_and_bounds() {
        let params = CircuitParams::ddr3_55nm();
        let mut config = cfg();
        config.variation_level = 0.2; // force weak subarrays with cells
        let profile = ChipProfile::characterize(&params, &config).unwrap();
        let total: usize = profile.subarrays.iter().map(|s| s.weak_cells.len()).sum();
        assert!(total > 0, "a ±20 % chip should have weak cells");
        for s in &profile.subarrays {
            assert!(s.weak_cells.len() <= config.max_weak_cells);
            for &(row, col) in &s.weak_cells {
                assert!(row >= config.first_eligible_row);
                assert!(row < config.rows_per_subarray);
                assert!(col < config.row_bits);
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let params = CircuitParams::ddr3_55nm();
        let mut empty = cfg();
        empty.banks = 0;
        assert_eq!(
            ChipProfile::characterize(&params, &empty),
            Err(CharacterizationError::EmptyGeometry)
        );
        let mut rows = cfg();
        rows.first_eligible_row = rows.rows_per_subarray;
        assert!(matches!(
            ChipProfile::characterize(&params, &rows),
            Err(CharacterizationError::NoEligibleRows { .. })
        ));
        let mut level = cfg();
        level.variation_level = 1.5;
        assert!(matches!(
            ChipProfile::characterize(&params, &level),
            Err(CharacterizationError::InvalidKnob { knob: "variation_level", .. })
        ));
        let mut trials = cfg();
        trials.trials_per_subarray = 0;
        assert_eq!(
            ChipProfile::characterize(&params, &trials),
            Err(CharacterizationError::NoTrials)
        );
    }

    #[test]
    fn bin_classification_thresholds() {
        assert_eq!(SubarrayBin::from_rate(0.0), SubarrayBin::Strong);
        assert_eq!(SubarrayBin::from_rate(5e-3), SubarrayBin::Nominal);
        assert_eq!(SubarrayBin::from_rate(0.05), SubarrayBin::Weak);
        for bin in [SubarrayBin::Strong, SubarrayBin::Nominal, SubarrayBin::Weak] {
            assert_eq!(SubarrayBin::from_str_opt(bin.as_str()), Some(bin));
        }
        assert_eq!(SubarrayBin::from_str_opt("bogus"), None);
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        assert!(matches!(
            ChipProfile::from_json("not json"),
            Err(CharacterizationError::Parse(_))
        ));
        assert!(matches!(
            ChipProfile::from_json("{\"schema\": \"other/v1\"}"),
            Err(CharacterizationError::Schema { .. })
        ));
    }
}
