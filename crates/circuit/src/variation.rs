//! Process-variation model for triple-row activation reliability.
//!
//! Section 6 of the paper varies "all the components in the subarray (cell
//! capacitance, transistor length/width/resistance, bitline/wordline
//! capacitance and resistance, and voltage levels)" by ±p % and reports TRA
//! failure rates. We model each varying quantity as an independent uniform
//! draw on ±`level`, with per-component sensitivities calibrated (see the
//! crate README and `montecarlo` tests) so that:
//!
//! * the fully adversarial worst case first fails near ±6 % (paper: TRA is
//!   guaranteed correct up to ±6 %), and
//! * Monte Carlo failure rates track the paper's Table 2 shape.

use rand::Rng;

use crate::charge::{share_charge, SharedCell};
use crate::params::CircuitParams;

/// Sensitivity coefficients mapping the headline variation level onto each
/// physical component. Calibrated against the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Half-width of the uniform distribution, e.g. `0.10` for ±10 %.
    pub level: f64,
    /// Cell stored-voltage sensitivity (fraction of VDD per unit level):
    /// leakage since last restore, write-driver variation, coupling noise.
    pub cell_voltage_scale: f64,
    /// Precharge-voltage mismatch sensitivity between bitline and
    /// bitline-bar (the equalizer is a matched circuit, so this is small).
    pub precharge_scale: f64,
    /// Sense-amplifier input-referred offset sensitivity (fraction of VDD
    /// per unit level) from threshold/transconductance mismatch.
    pub offset_scale: f64,
    /// Superlinear growth of the offset with the variation level: mismatch
    /// statistics degrade faster than linearly at aggressive corners.
    pub offset_growth: f64,
}

impl VariationModel {
    /// The calibrated model at a given ±`level` (e.g. `0.10` for ±10 %).
    ///
    /// # Panics
    ///
    /// Panics if `level` is negative or ≥ 1.
    pub fn at_level(level: f64) -> Self {
        assert!((0.0..1.0).contains(&level), "level must be in [0, 1)");
        VariationModel {
            level,
            cell_voltage_scale: 0.32,
            precharge_scale: 0.25,
            offset_scale: 0.42,
            offset_growth: 3.2,
        }
    }

    /// Effective sense-offset half-width in volts.
    pub fn offset_halfwidth(&self, params: &CircuitParams) -> f64 {
        self.level * self.offset_scale * (1.0 + self.offset_growth * self.level) * params.vdd
    }
}

/// One sampled (or adversarially chosen) set of component values for a TRA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraInstance {
    /// Per-cell capacitances in farads.
    pub c_cells: [f64; 3],
    /// Per-cell stored voltages in volts.
    pub v_cells: [f64; 3],
    /// Bitline capacitance in farads.
    pub c_bitline: f64,
    /// Bitline precharge voltage.
    pub v_precharge_bl: f64,
    /// Bitline-bar precharge voltage (the comparison reference).
    pub v_precharge_bar: f64,
    /// Sense-amplifier input-referred offset in volts: the bitline must
    /// exceed the reference by more than this to sense a 1.
    pub sense_offset: f64,
}

impl TraInstance {
    /// Samples an instance for the cell-value pattern `values` (true =
    /// fully charged) under `model`, all draws uniform on ±level.
    pub fn sample(
        params: &CircuitParams,
        model: &VariationModel,
        values: [bool; 3],
        rng: &mut impl Rng,
    ) -> Self {
        let v = model.level;
        let mut u = |scale: f64| rng.gen_range(-1.0f64..=1.0) * v * scale;
        let c_cells = [
            params.c_cell * (1.0 + u(1.0)),
            params.c_cell * (1.0 + u(1.0)),
            params.c_cell * (1.0 + u(1.0)),
        ];
        let mut v_cells = [0.0; 3];
        for (i, &charged) in values.iter().enumerate() {
            let base = if charged { params.vdd } else { 0.0 };
            v_cells[i] = base + u(model.cell_voltage_scale) * params.vdd;
        }
        let c_bitline = params.c_bitline * (1.0 + u(1.0));
        let v_precharge_bl = params.v_precharge() * (1.0 + u(model.precharge_scale));
        let v_precharge_bar = params.v_precharge() * (1.0 + u(model.precharge_scale));
        let sense_offset =
            u(model.offset_scale * (1.0 + model.offset_growth * v)) * params.vdd;
        TraInstance {
            c_cells,
            v_cells,
            c_bitline,
            v_precharge_bl,
            v_precharge_bar,
            sense_offset,
        }
    }

    /// The fully adversarial instance for the pattern `values`: every
    /// component at the corner that pushes the sensed value *away* from the
    /// correct majority.
    pub fn worst_case(params: &CircuitParams, model: &VariationModel, values: [bool; 3]) -> Self {
        let v = model.level;
        let majority = values.iter().filter(|&&b| b).count() >= 2;
        // If the correct answer is 1, adversaries push the bitline down and
        // the reference/offset up; mirrored when the correct answer is 0.
        let sign = if majority { -1.0 } else { 1.0 };
        let mut c_cells = [0.0; 3];
        let mut v_cells = [0.0; 3];
        for (i, &charged) in values.iter().enumerate() {
            // A charged cell helps a 1: adversarially shrink it when the
            // answer is 1 and grow it when the answer is 0; empty cells are
            // the opposite.
            let helps_one = charged;
            let cap_sign = if helps_one { sign } else { -sign };
            c_cells[i] = params.c_cell * (1.0 + cap_sign * v);
            let base = if charged { params.vdd } else { 0.0 };
            v_cells[i] = base + sign * v * model.cell_voltage_scale * params.vdd;
        }
        // A bigger bitline cap dilutes the deviation either way; the
        // dilution hurts, so the adversary grows Cb.
        let c_bitline = params.c_bitline * (1.0 + v);
        let v_precharge_bl = params.v_precharge() * (1.0 + sign * v * model.precharge_scale);
        let v_precharge_bar = params.v_precharge() * (1.0 - sign * v * model.precharge_scale);
        let sense_offset = -sign * model.offset_halfwidth(params);
        TraInstance {
            c_cells,
            v_cells,
            c_bitline,
            v_precharge_bl,
            v_precharge_bar,
            sense_offset,
        }
    }

    /// Evaluates the charge-sharing outcome: returns `(sensed_one, margin)`
    /// where `margin` is the signed voltage distance from the sensing
    /// threshold (positive = sensed correctly relative to the deviation
    /// sign, i.e. margin toward the value actually sensed).
    pub fn evaluate(&self) -> (bool, f64) {
        let cells: Vec<SharedCell> = (0..3)
            .map(|i| SharedCell {
                capacitance: self.c_cells[i],
                voltage: self.v_cells[i],
            })
            .collect();
        let result = share_charge(
            &cells,
            self.c_bitline,
            self.v_precharge_bl,
            self.v_precharge_bar,
        );
        let effective = result.deviation - self.sense_offset;
        (effective > 0.0, effective)
    }

    /// The correct (ideal) sensed value for the stored pattern: bitwise
    /// majority of the cells being above half-VDD.
    pub fn expected(&self, params: &CircuitParams) -> bool {
        let charged = self
            .v_cells
            .iter()
            .filter(|&&v| v > params.v_precharge())
            .count();
        charged >= 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn p() -> CircuitParams {
        CircuitParams::ddr3_55nm()
    }

    #[test]
    fn zero_variation_never_fails() {
        let params = p();
        let model = VariationModel::at_level(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for pattern in 0..8u8 {
            let values = [pattern & 1 != 0, pattern & 2 != 0, pattern & 4 != 0];
            let inst = TraInstance::sample(&params, &model, values, &mut rng);
            let (sensed, _) = inst.evaluate();
            assert_eq!(sensed, values.iter().filter(|&&b| b).count() >= 2);
        }
    }

    #[test]
    fn worst_case_margin_shrinks_with_level() {
        let params = p();
        let m5 = TraInstance::worst_case(&params, &VariationModel::at_level(0.05), [true, true, false]);
        let m10 =
            TraInstance::worst_case(&params, &VariationModel::at_level(0.10), [true, true, false]);
        let (ok5, margin5) = m5.evaluate();
        let (_, margin10) = m10.evaluate();
        assert!(ok5, "±5 % worst case still senses 1 (paper: safe to ±6 %)");
        assert!(margin10 < margin5);
    }

    #[test]
    fn worst_case_symmetric_for_k1() {
        // k=1 should fail by sensing a spurious 1; margins mirror k=2.
        let params = p();
        let model = VariationModel::at_level(0.05);
        let k2 = TraInstance::worst_case(&params, &model, [true, true, false]);
        let k1 = TraInstance::worst_case(&params, &model, [false, false, true]);
        let (s2, m2) = k2.evaluate();
        let (s1, m1) = k1.evaluate();
        assert!(s2, "k=2 senses 1");
        assert!(!s1, "k=1 senses 0");
        // Margins are of opposite sign and comparable magnitude.
        assert!((m2 + m1).abs() < 0.3 * m2.abs(), "m2={m2} m1={m1}");
    }

    #[test]
    fn sampled_instances_stay_within_bounds() {
        let params = p();
        let model = VariationModel::at_level(0.25);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            let inst = TraInstance::sample(&params, &model, [true, false, true], &mut rng);
            for c in inst.c_cells {
                assert!(c >= params.c_cell * 0.75 - 1e-30 && c <= params.c_cell * 1.25 + 1e-30);
            }
            assert!(inst.sense_offset.abs() <= model.offset_halfwidth(&params) + 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "level must be in")]
    fn invalid_level_panics() {
        VariationModel::at_level(1.5);
    }
}
