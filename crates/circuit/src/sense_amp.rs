//! Transient simulation of the DRAM sense amplifier: two cross-coupled
//! CMOS inverters latching the bitline / bitline-bar differential.
//!
//! The paper resolves TRA reliability with SPICE; this module is the
//! equivalent mechanism in miniature: forward-Euler integration of the
//! regenerative latch with square-law transistors. It reproduces the two
//! behaviours the paper's arguments rest on:
//!
//! 1. the final state depends only on the *sign* of the post-charge-sharing
//!    deviation (plus device mismatch), and
//! 2. smaller deviations take longer to amplify — issue 1 of Section 3.2 —
//!    which is also why the overlapped second ACTIVATE of an AAP, arriving
//!    at an already-latched amplifier, needs only a few extra nanoseconds.

use crate::params::CircuitParams;
use crate::transistor::Mosfet;

/// Per-transistor mismatch for the four devices of the latch.
///
/// Index order: `[nmos_a, pmos_a, nmos_b, pmos_b]`, where inverter A drives
/// the bitline node and inverter B drives bitline-bar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatchMismatch {
    /// Multiplicative k (transconductance) factors, nominally 1.0.
    pub k_scale: [f64; 4],
    /// Additive threshold-voltage shifts in volts, nominally 0.0.
    pub vt_delta: [f64; 4],
}

impl LatchMismatch {
    /// No mismatch.
    pub fn none() -> Self {
        LatchMismatch {
            k_scale: [1.0; 4],
            vt_delta: [0.0; 4],
        }
    }
}

impl Default for LatchMismatch {
    fn default() -> Self {
        LatchMismatch::none()
    }
}

/// Outcome of a sense amplification transient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseOutcome {
    /// `true` if the bitline latched to VDD (sensed a logical 1).
    pub sensed_one: bool,
    /// Time from enable to the differential reaching 90 % of VDD, seconds.
    pub latch_time_s: f64,
    /// Final bitline voltage.
    pub v_bitline: f64,
    /// Final bitline-bar voltage.
    pub v_bitline_bar: f64,
    /// `true` if the latch failed to resolve within the simulation window
    /// (metastability; only possible for vanishing deviations).
    pub metastable: bool,
}

/// A cross-coupled inverter sense amplifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmp {
    params: CircuitParams,
    mismatch: LatchMismatch,
}

impl SenseAmp {
    /// A sense amplifier with nominal (mismatch-free) devices.
    pub fn new(params: CircuitParams) -> Self {
        SenseAmp {
            params,
            mismatch: LatchMismatch::none(),
        }
    }

    /// A sense amplifier with explicit device mismatch.
    pub fn with_mismatch(params: CircuitParams, mismatch: LatchMismatch) -> Self {
        SenseAmp { params, mismatch }
    }

    /// Simulates enabling the amplifier with the bitline at
    /// `v_precharge + deviation` and bitline-bar at `v_precharge`.
    pub fn sense(&self, deviation: f64) -> SenseOutcome {
        self.sense_from(
            self.params.v_precharge() + deviation,
            self.params.v_precharge(),
        )
    }

    /// Simulates enabling the amplifier from arbitrary initial node
    /// voltages (e.g. after a charge-sharing computation).
    pub fn sense_from(&self, v_bitline: f64, v_bitline_bar: f64) -> SenseOutcome {
        let p = &self.params;
        let m = &self.mismatch;
        let nmos_a = Mosfet::new(p.k_transistor * m.k_scale[0], p.v_threshold + m.vt_delta[0]);
        let pmos_a = Mosfet::new(p.k_transistor * m.k_scale[1], p.v_threshold + m.vt_delta[1]);
        let nmos_b = Mosfet::new(p.k_transistor * m.k_scale[2], p.v_threshold + m.vt_delta[2]);
        let pmos_b = Mosfet::new(p.k_transistor * m.k_scale[3], p.v_threshold + m.vt_delta[3]);

        let c = p.c_bitline;
        let dt = 1e-12; // 1 ps Euler step
        let t_max = 50e-9;
        let target = 0.9 * p.vdd;

        let mut va = v_bitline;
        let mut vb = v_bitline_bar;
        let mut t = 0.0;
        while t < t_max {
            if (va - vb).abs() >= target {
                return SenseOutcome {
                    sensed_one: va > vb,
                    latch_time_s: t,
                    v_bitline: va,
                    v_bitline_bar: vb,
                    metastable: false,
                };
            }
            // Inverter A: input vb, output va. Inverter B: input va, output vb.
            let ia = pmos_a.pmos_current(p.vdd, vb, va) - nmos_a.nmos_current(vb, va);
            let ib = pmos_b.pmos_current(p.vdd, va, vb) - nmos_b.nmos_current(va, vb);
            va = (va + ia / c * dt).clamp(0.0, p.vdd);
            vb = (vb + ib / c * dt).clamp(0.0, p.vdd);
            t += dt;
        }
        SenseOutcome {
            sensed_one: va > vb,
            latch_time_s: t,
            v_bitline: va,
            v_bitline_bar: vb,
            metastable: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp() -> SenseAmp {
        SenseAmp::new(CircuitParams::ddr3_55nm())
    }

    #[test]
    fn positive_deviation_latches_high() {
        let out = amp().sense(0.05);
        assert!(out.sensed_one);
        assert!(!out.metastable);
        assert!(out.v_bitline > 1.0, "bitline driven to VDD: {}", out.v_bitline);
        assert!(out.v_bitline_bar < 0.2);
    }

    #[test]
    fn negative_deviation_latches_low() {
        let out = amp().sense(-0.05);
        assert!(!out.sensed_one);
        assert!(!out.metastable);
        assert!(out.v_bitline < 0.2);
    }

    #[test]
    fn latch_time_in_nanosecond_range() {
        // Full sense amplification is a few ns — consistent with it being
        // the dominant component of tRAS (paper Section 5.3).
        let out = amp().sense(0.09);
        assert!(
            out.latch_time_s > 0.5e-9 && out.latch_time_s < 20e-9,
            "latch time {} s",
            out.latch_time_s
        );
    }

    #[test]
    fn smaller_deviation_amplifies_slower() {
        // Issue 1 of Section 3.2: TRA's smaller deviation lengthens sensing.
        let t_small = amp().sense(0.02).latch_time_s;
        let t_large = amp().sense(0.20).latch_time_s;
        assert!(t_small > t_large, "{t_small} vs {t_large}");
    }

    #[test]
    fn tra_deviation_senses_correctly_for_all_k() {
        let p = CircuitParams::ddr3_55nm();
        let amp = SenseAmp::new(p);
        for k in 0..=3 {
            let dev = p.tra_deviation_ideal(k);
            let out = amp.sense(dev);
            assert_eq!(out.sensed_one, k >= 2, "k={k}");
            assert!(!out.metastable);
        }
    }

    #[test]
    fn zero_deviation_with_no_mismatch_is_metastable() {
        let out = amp().sense(0.0);
        assert!(out.metastable, "perfectly balanced latch cannot resolve");
    }

    #[test]
    fn mismatch_shifts_the_trip_point() {
        // A stronger pull-down on the bitline node flips a small positive
        // deviation to a sensed 0 — the physical origin of the sense-amp
        // offset in the Monte Carlo model.
        let mut mis = LatchMismatch::none();
        mis.k_scale[0] = 1.6; // nmos_a stronger: discharges bitline faster
        let skewed = SenseAmp::with_mismatch(CircuitParams::ddr3_55nm(), mis);
        let out = skewed.sense(0.005);
        assert!(!out.sensed_one, "offset overwhelms a 5 mV deviation");
        // But a healthy TRA deviation still senses correctly.
        let p = CircuitParams::ddr3_55nm();
        assert!(skewed.sense(p.tra_deviation_ideal(2)).sensed_one);
    }

    #[test]
    fn already_latched_amp_holds_state() {
        // The second ACTIVATE of an AAP arrives at a driven amplifier: from
        // a latched state the outcome is stable and immediate.
        let p = CircuitParams::ddr3_55nm();
        let out = amp().sense_from(p.vdd, 0.0);
        assert!(out.sensed_one);
        assert!(out.latch_time_s < 1e-12 * 10.0);
    }
}
