//! Monte Carlo and worst-case reliability analysis of triple-row
//! activation — the reproduction of the paper's Section 6 / Table 2.

use std::fmt;

use rand::Rng;

use crate::params::CircuitParams;
use crate::variation::{TraInstance, VariationModel};

/// The variation levels of the paper's Table 2 (±0 % … ±25 %).
pub const TABLE2_LEVELS: [f64; 6] = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25];

/// Errors raised by the checked Monte Carlo sweep entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MonteCarloError {
    /// A sweep was requested over an empty list of variation levels, so
    /// there is no "last" (worst-case) result to report.
    EmptySweep,
}

impl fmt::Display for MonteCarloError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonteCarloError::EmptySweep => {
                write!(f, "sweep requested over an empty list of variation levels")
            }
        }
    }
}

impl std::error::Error for MonteCarloError {}

/// Result of a Monte Carlo TRA reliability run at one variation level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// The ±variation level simulated (e.g. 0.10 for ±10 %).
    pub level: f64,
    /// Number of TRA trials.
    pub trials: u64,
    /// Trials whose sensed value differed from the correct majority.
    pub failures: u64,
}

impl MonteCarloResult {
    /// Failure rate in [0, 1].
    pub fn failure_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failures as f64 / self.trials as f64
        }
    }

    /// Failure rate as a percentage, as printed in the paper's Table 2.
    pub fn failure_percent(&self) -> f64 {
        self.failure_rate() * 100.0
    }
}

/// Runs `trials` TRA simulations at ±`level` variation with uniformly
/// random cell-value patterns, counting sensing failures.
///
/// This mirrors the paper's experiment: 100 000 iterations per level, all
/// subarray components varied.
pub fn run_monte_carlo(
    params: &CircuitParams,
    level: f64,
    trials: u64,
    rng: &mut impl Rng,
) -> MonteCarloResult {
    let model = VariationModel::at_level(level);
    let mut failures = 0;
    for _ in 0..trials {
        let values = [rng.gen::<bool>(), rng.gen::<bool>(), rng.gen::<bool>()];
        let expected = values.iter().filter(|&&b| b).count() >= 2;
        let inst = TraInstance::sample(params, &model, values, rng);
        let (sensed, _) = inst.evaluate();
        if sensed != expected {
            failures += 1;
        }
    }
    MonteCarloResult {
        level,
        trials,
        failures,
    }
}

/// Runs one Monte Carlo per entry of `levels`, rejecting an empty sweep
/// with a typed error instead of letting callers panic on `last()`.
pub fn sweep_levels(
    params: &CircuitParams,
    levels: &[f64],
    trials_per_level: u64,
    rng: &mut impl Rng,
) -> Result<Vec<MonteCarloResult>, MonteCarloError> {
    if levels.is_empty() {
        return Err(MonteCarloError::EmptySweep);
    }
    Ok(levels
        .iter()
        .map(|&level| run_monte_carlo(params, level, trials_per_level, rng))
        .collect())
}

/// Sweeps the paper's Table 2 levels (±0 % … ±25 %) and returns one result
/// per level.
pub fn table2_sweep(
    params: &CircuitParams,
    trials_per_level: u64,
    rng: &mut impl Rng,
) -> Vec<MonteCarloResult> {
    sweep_levels(params, &TABLE2_LEVELS, trials_per_level, rng)
        .expect("TABLE2_LEVELS is non-empty")
}

/// Samples one TRA failure rate per subarray for a fault-injection
/// campaign: each subarray runs its own Monte Carlo at a variation level
/// drawn uniformly from `level * [1 - spread, 1 + spread]`, modelling
/// spatially correlated process variation across a device. The returned
/// rates feed `ambit_dram`'s `FaultCampaign::plan_with_rates`.
pub fn per_subarray_rates(
    params: &CircuitParams,
    level: f64,
    spread: f64,
    subarrays: usize,
    trials_per_subarray: u64,
    rng: &mut impl Rng,
) -> Vec<f64> {
    (0..subarrays)
        .map(|_| {
            let jitter = 1.0 + spread * (rng.gen::<f64>() * 2.0 - 1.0);
            let sub_level = (level * jitter).max(0.0);
            run_monte_carlo(params, sub_level, trials_per_subarray, rng).failure_rate()
        })
        .collect()
}

/// Returns `true` if TRA senses correctly even when *every* component sits
/// at its adversarial ±`level` corner, for both failure-prone patterns
/// (two-charged and one-charged).
pub fn worst_case_ok(params: &CircuitParams, level: f64) -> bool {
    let model = VariationModel::at_level(level);
    let k2 = TraInstance::worst_case(params, &model, [true, true, false]);
    let k1 = TraInstance::worst_case(params, &model, [true, false, false]);
    let (s2, _) = k2.evaluate();
    let (s1, _) = k1.evaluate();
    s2 && !s1
}

/// Binary-searches the largest variation level at which the worst case
/// still senses correctly. The paper reports ±6 % for its SPICE setup.
pub fn worst_case_margin(params: &CircuitParams) -> f64 {
    let mut lo = 0.0;
    let mut hi = 0.5;
    for _ in 0..48 {
        let mid = (lo + hi) / 2.0;
        if worst_case_ok(params, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn p() -> CircuitParams {
        CircuitParams::ddr3_55nm()
    }

    #[test]
    fn worst_case_margin_near_paper_6_percent() {
        let margin = worst_case_margin(&p());
        assert!(
            (0.05..=0.09).contains(&margin),
            "worst-case margin {margin:.3} should be near the paper's 0.06"
        );
    }

    #[test]
    fn table2_zero_and_five_percent_have_no_failures() {
        let params = p();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for level in [0.0, 0.05] {
            let r = run_monte_carlo(&params, level, 20_000, &mut rng);
            assert_eq!(r.failures, 0, "level {level}: paper reports 0.00 %");
        }
    }

    #[test]
    fn table2_ten_percent_failures_are_rare_but_nonzero_shape() {
        // Paper: 0.29 % at ±10 %. Accept the same order of magnitude.
        let params = p();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let r = run_monte_carlo(&params, 0.10, 100_000, &mut rng);
        assert!(
            r.failure_percent() < 1.0,
            "±10 %: {:.2} % should be well under 1 %",
            r.failure_percent()
        );
    }

    #[test]
    fn table2_failure_rate_is_monotone_in_level() {
        let params = p();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let sweep = sweep_levels(&params, &TABLE2_LEVELS, 20_000, &mut rng)
            .expect("TABLE2_LEVELS is non-empty");
        for pair in sweep.windows(2) {
            assert!(
                pair[1].failure_rate() >= pair[0].failure_rate(),
                "failure rate should not decrease: {pair:?}"
            );
        }
        // And the ±25 % rate is substantial (paper: 26.19 %). The checked
        // sweep guarantees a non-empty result, so indexing the tail is safe.
        let last = &sweep[sweep.len() - 1];
        assert!(
            last.failure_percent() > 10.0,
            "±25 %: {:.1} %",
            last.failure_percent()
        );
    }

    #[test]
    fn empty_sweep_is_a_typed_error_not_a_panic() {
        let params = p();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let err = sweep_levels(&params, &[], 100, &mut rng).unwrap_err();
        assert_eq!(err, MonteCarloError::EmptySweep);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn sweep_levels_matches_table2_sweep() {
        let params = p();
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let checked = sweep_levels(&params, &TABLE2_LEVELS, 2_000, &mut a).unwrap();
        assert_eq!(checked, table2_sweep(&params, 2_000, &mut b));
    }

    #[test]
    fn table2_fifteen_percent_in_single_digit_band() {
        // Paper: 6.01 % at ±15 %.
        let params = p();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let r = run_monte_carlo(&params, 0.15, 50_000, &mut rng);
        assert!(
            (1.0..15.0).contains(&r.failure_percent()),
            "±15 %: {:.2} %",
            r.failure_percent()
        );
    }

    #[test]
    fn per_subarray_rates_vary_but_stay_probabilities() {
        let params = p();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let rates = per_subarray_rates(&params, 0.15, 0.3, 8, 5_000, &mut rng);
        assert_eq!(rates.len(), 8);
        assert!(rates.iter().all(|r| (0.0..=1.0).contains(r)));
        assert!(
            rates.windows(2).any(|w| w[0] != w[1]),
            "level jitter should differentiate subarrays: {rates:?}"
        );
        // Deterministic replay under the same seed.
        let mut rng2 = ChaCha8Rng::seed_from_u64(11);
        assert_eq!(rates, per_subarray_rates(&params, 0.15, 0.3, 8, 5_000, &mut rng2));
    }

    #[test]
    fn failure_rate_helpers() {
        let r = MonteCarloResult {
            level: 0.1,
            trials: 200,
            failures: 3,
        };
        assert!((r.failure_rate() - 0.015).abs() < 1e-12);
        assert!((r.failure_percent() - 1.5).abs() < 1e-12);
        let empty = MonteCarloResult { level: 0.0, trials: 0, failures: 0 };
        assert_eq!(empty.failure_rate(), 0.0);
    }
}
