//! Property-based tests for the application data structures: the red-black
//! tree against a model (BTreeSet), the bitset against the tree, and the
//! BitWeaving scan against a naive filter.

use ambit_apps::bitweaving::BitSlicedColumn;
use ambit_apps::{BitSet, RbTree, WahBitmap};
use proptest::prelude::*;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum SetCmd {
    Insert(u16),
    Remove(u16),
    Contains(u16),
}

fn cmd_strategy() -> impl Strategy<Value = SetCmd> {
    prop_oneof![
        (0u16..400).prop_map(SetCmd::Insert),
        (0u16..400).prop_map(SetCmd::Remove),
        (0u16..400).prop_map(SetCmd::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rbtree_behaves_like_btreeset(cmds in proptest::collection::vec(cmd_strategy(), 1..300)) {
        let mut tree = RbTree::new();
        let mut model = BTreeSet::new();
        for cmd in cmds {
            match cmd {
                SetCmd::Insert(k) => {
                    prop_assert_eq!(tree.insert(k), model.insert(k));
                }
                SetCmd::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                SetCmd::Contains(k) => {
                    prop_assert_eq!(tree.contains(&k), model.contains(&k));
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();
        let got: Vec<u16> = tree.iter().copied().collect();
        let expect: Vec<u16> = model.into_iter().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn rbtree_black_height_is_logarithmic(keys in proptest::collection::btree_set(any::<u32>(), 1..600)) {
        let n = keys.len();
        let tree: RbTree<u32> = keys.into_iter().collect();
        let bh = tree.check_invariants();
        // Black height ≤ log2(n+1) + 1 for any red-black tree.
        let bound = ((n + 1) as f64).log2() as usize + 1;
        prop_assert!(bh <= bound, "black height {bh} vs bound {bound} at n={n}");
    }

    #[test]
    fn bitset_algebra_matches_rbtree(
        xs in proptest::collection::btree_set(0usize..256, 0..80),
        ys in proptest::collection::btree_set(0usize..256, 0..80),
    ) {
        let tx: RbTree<usize> = xs.iter().copied().collect();
        let ty: RbTree<usize> = ys.iter().copied().collect();
        let mut bx = BitSet::new(256);
        let mut by = BitSet::new(256);
        for &v in &xs { bx.insert(v); }
        for &v in &ys { by.insert(v); }

        let t_union: Vec<usize> = tx.union(&ty).iter().copied().collect();
        let b_union: Vec<usize> = bx.union(&by).iter().collect();
        prop_assert_eq!(t_union, b_union);

        let t_inter: Vec<usize> = tx.intersection(&ty).iter().copied().collect();
        let b_inter: Vec<usize> = bx.intersection(&by).iter().collect();
        prop_assert_eq!(t_inter, b_inter);

        let t_diff: Vec<usize> = tx.difference(&ty).iter().copied().collect();
        let b_diff: Vec<usize> = bx.difference(&by).iter().collect();
        prop_assert_eq!(t_diff, b_diff);
    }

    #[test]
    fn bitweaving_scan_equals_naive_filter(
        values in proptest::collection::vec(0u32..4096, 1..500),
        c1 in 0u32..4096,
        c2 in 0u32..4096,
    ) {
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let col = BitSlicedColumn::from_values(&values, 12);
        let result = col.scan_between(lo, hi);
        for (row, &v) in values.iter().enumerate() {
            let got = result[row / 64] >> (row % 64) & 1 == 1;
            prop_assert_eq!(got, v >= lo && v <= hi, "row {} value {}", row, v);
        }
        // No bits set beyond the row count.
        let total: usize = result.iter().map(|w| w.count_ones() as usize).sum();
        let expect = values.iter().filter(|&&v| v >= lo && v <= hi).count();
        prop_assert_eq!(total, expect);
    }

    #[test]
    fn bit_sliced_layout_is_lossless(values in proptest::collection::vec(0u32..65536, 1..200)) {
        let col = BitSlicedColumn::from_values(&values, 16);
        // Reconstruct each value from the slices.
        for (row, &v) in values.iter().enumerate() {
            let mut rebuilt = 0u32;
            for j in 0..16 {
                let bit = col.slice(j)[row / 64] >> (row % 64) & 1;
                rebuilt |= (bit as u32) << (15 - j);
            }
            prop_assert_eq!(rebuilt, v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wah_roundtrips_arbitrary_bitmaps(
        data in proptest::collection::vec(any::<bool>(), 1..800),
    ) {
        let w = WahBitmap::from_bools(&data);
        prop_assert_eq!(w.len_bits(), data.len());
        prop_assert_eq!(w.count_ones(), data.iter().filter(|&&b| b).count());
        for (i, &bit) in data.iter().enumerate() {
            prop_assert_eq!(w.get(i), bit, "bit {}", i);
        }
    }

    #[test]
    fn wah_algebra_matches_bitset(
        xs in proptest::collection::btree_set(0usize..600, 0..120),
        ys in proptest::collection::btree_set(0usize..600, 0..120),
    ) {
        let domain = 600;
        let wa = WahBitmap::from_indices(domain, &xs.iter().copied().collect::<Vec<_>>());
        let wb = WahBitmap::from_indices(domain, &ys.iter().copied().collect::<Vec<_>>());
        let mut ba = BitSet::new(domain);
        let mut bb = BitSet::new(domain);
        for &v in &xs { ba.insert(v); }
        for &v in &ys { bb.insert(v); }

        let w_and: Vec<usize> = wa.and(&wb).iter_ones().collect();
        let b_and: Vec<usize> = ba.intersection(&bb).iter().collect();
        prop_assert_eq!(w_and, b_and);

        let w_or: Vec<usize> = wa.or(&wb).iter_ones().collect();
        let b_or: Vec<usize> = ba.union(&bb).iter().collect();
        prop_assert_eq!(w_or, b_or);
    }

    #[test]
    fn wah_compression_never_loses_against_runs(
        runs in proptest::collection::vec((any::<bool>(), 1usize..200), 1..12),
    ) {
        // Build a bitmap from explicit runs; WAH must encode it compactly
        // (at most one literal per run boundary region) and losslessly.
        let mut data = Vec::new();
        for &(value, len) in &runs {
            data.extend(std::iter::repeat_n(value, len));
        }
        let w = WahBitmap::from_bools(&data);
        for (i, &bit) in data.iter().enumerate() {
            prop_assert_eq!(w.get(i), bit);
        }
        // Canonical form: never more words than groups.
        prop_assert!(w.compressed_words() <= data.len().div_ceil(31).max(1));
    }
}

mod arith_props {
    use ambit_apps::arith::BitSlicedVector;
    use ambit_core::AmbitMemory;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};
    use proptest::prelude::*;

    fn memory() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry {
                subarrays_per_bank: 4,
                rows_per_subarray: 128,
                ..DramGeometry::tiny()
            },
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn in_dram_add_matches_wrapping_scalar(
            width in 1usize..12,
            values in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..40),
        ) {
            let mask = if width == 32 { u32::MAX } else { (1 << width) - 1 };
            let av: Vec<u32> = values.iter().map(|&(a, _)| a & mask).collect();
            let bv: Vec<u32> = values.iter().map(|&(_, b)| b & mask).collect();
            let mut mem = memory();
            let a = BitSlicedVector::alloc(&mut mem, av.len(), width).unwrap();
            let b = BitSlicedVector::alloc(&mut mem, bv.len(), width).unwrap();
            a.write(&mut mem, &av).unwrap();
            b.write(&mut mem, &bv).unwrap();
            let (sum, _) = a.add(&mut mem, &b).unwrap();
            let got = sum.read(&mem).unwrap();
            for l in 0..av.len() {
                prop_assert_eq!(got[l], av[l].wrapping_add(bv[l]) & mask, "lane {}", l);
            }
        }

        #[test]
        fn add_then_sub_is_identity(
            width in 2usize..10,
            values in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..30),
        ) {
            let mask = (1u32 << width) - 1;
            let av: Vec<u32> = values.iter().map(|&(a, _)| a & mask).collect();
            let bv: Vec<u32> = values.iter().map(|&(_, b)| b & mask).collect();
            let mut mem = memory();
            let a = BitSlicedVector::alloc(&mut mem, av.len(), width).unwrap();
            let b = BitSlicedVector::alloc(&mut mem, bv.len(), width).unwrap();
            a.write(&mut mem, &av).unwrap();
            b.write(&mut mem, &bv).unwrap();
            let (sum, _) = a.add(&mut mem, &b).unwrap();
            let (back, _) = sum.sub(&mut mem, &b).unwrap();
            prop_assert_eq!(back.read(&mem).unwrap(), av);
        }
    }
}
