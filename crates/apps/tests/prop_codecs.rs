//! Property-based round-trips for the two codecs the application layer is
//! built on: WAH compression (compress → decompress must be the identity,
//! and the compressed form must be canonical) and the BitWeaving vertical
//! pack/scan (every `Predicate` variant over a packed column must agree
//! with the scalar per-value reference).

use ambit_apps::bitweaving::{BitSlicedColumn, Predicate};
use ambit_apps::WahBitmap;
use proptest::prelude::*;

/// Decompress a WAH bitmap back to the plain bool vector it encodes.
fn decompress(w: &WahBitmap) -> Vec<bool> {
    let mut out = vec![false; w.len_bits()];
    for i in w.iter_ones() {
        out[i] = true;
    }
    out
}

/// Bitmaps with interesting structure for a run-length codec: a mix of
/// long runs (fills) and noisy regions (literals), at a length that is
/// deliberately not 31-aligned most of the time.
fn structured_bitmap() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(
        prop_oneof![
            // A run of identical bits (exercises fill words).
            (any::<bool>(), 1usize..150)
                .prop_map(|(v, n)| std::iter::repeat_n(v, n).collect::<Vec<bool>>()),
            // A noisy stretch (exercises literal words).
            proptest::collection::vec(any::<bool>(), 1..40),
        ],
        1..10,
    )
    .prop_map(|segments| segments.concat())
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let c = any::<u32>();
    prop_oneof![
        c.prop_map(Predicate::Lt),
        c.prop_map(Predicate::Le),
        c.prop_map(Predicate::Gt),
        c.prop_map(Predicate::Ge),
        c.prop_map(Predicate::Eq),
        c.prop_map(Predicate::Ne),
        (c, c).prop_map(|(a, b)| Predicate::Between(a.min(b), a.max(b))),
    ]
}

/// Reduces a predicate's constants into the column's value domain — the
/// slice-wise scan only consumes the low `bits` of each constant, so the
/// scalar reference must compare against the same clamped values.
fn clamp(p: Predicate, mask: u32) -> Predicate {
    match p {
        Predicate::Lt(c) => Predicate::Lt(c & mask),
        Predicate::Le(c) => Predicate::Le(c & mask),
        Predicate::Gt(c) => Predicate::Gt(c & mask),
        Predicate::Ge(c) => Predicate::Ge(c & mask),
        Predicate::Eq(c) => Predicate::Eq(c & mask),
        Predicate::Ne(c) => Predicate::Ne(c & mask),
        Predicate::Between(c1, c2) => {
            let (c1, c2) = (c1 & mask, c2 & mask);
            Predicate::Between(c1.min(c2), c1.max(c2))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// compress → decompress is the identity, bit for bit.
    #[test]
    fn wah_compress_decompress_roundtrips(data in structured_bitmap()) {
        let w = WahBitmap::from_bools(&data);
        prop_assert_eq!(w.len_bits(), data.len());
        prop_assert_eq!(decompress(&w), data);
    }

    /// Re-compressing a decompressed bitmap yields the identical encoding:
    /// the compressor always emits the canonical form, so equal logical
    /// content can be compared word-by-word.
    #[test]
    fn wah_canonical_form_is_a_fixed_point(data in structured_bitmap()) {
        let once = WahBitmap::from_bools(&data);
        let twice = WahBitmap::from_bools(&decompress(&once));
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once.compressed_words(), twice.compressed_words());
    }

    /// Compressed-domain AND/OR agree with the operation on the plain
    /// bitvectors — decompress(f(compress a, compress b)) == f(a, b).
    #[test]
    fn wah_compressed_algebra_matches_plain(
        a in structured_bitmap(),
        b in structured_bitmap(),
    ) {
        // The merge requires equal lengths; truncate to the shorter input.
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let wa = WahBitmap::from_bools(a);
        let wb = WahBitmap::from_bools(b);
        let and: Vec<bool> = (0..n).map(|i| a[i] && b[i]).collect();
        let or: Vec<bool> = (0..n).map(|i| a[i] || b[i]).collect();
        prop_assert_eq!(decompress(&wa.and(&wb)), and);
        prop_assert_eq!(decompress(&wa.or(&wb)), or);
    }

    /// WAH never inflates beyond one word per 31-bit group (canonical form
    /// merges every run), and fully uniform inputs collapse to fills.
    #[test]
    fn wah_compressed_size_is_bounded(data in structured_bitmap()) {
        let w = WahBitmap::from_bools(&data);
        prop_assert!(w.compressed_words() <= data.len().div_ceil(31).max(1));
        if data.iter().all(|&b| b == data[0]) {
            prop_assert_eq!(w.compressed_words(), 1, "uniform input is one fill");
        }
    }

    /// The vertical pack/scan pipeline matches the scalar reference for
    /// every predicate variant, on every row, including the masked tail
    /// beyond the last full 64-row word.
    #[test]
    fn bitweaving_scan_matches_scalar_reference(
        bits in 1usize..13,
        values in proptest::collection::vec(any::<u32>(), 1..300),
        p in predicate_strategy(),
    ) {
        let mask = (1u32 << bits) - 1;
        let p = clamp(p, mask);
        let values: Vec<u32> = values.iter().map(|&v| v & mask).collect();
        let col = BitSlicedColumn::from_values(&values, bits);
        let packed = col.scan(p);
        for (row, &v) in values.iter().enumerate() {
            let got = packed[row / 64] >> (row % 64) & 1 == 1;
            prop_assert_eq!(got, p.matches(v), "{} on value {} (row {})", p, v, row);
        }
        // Tail masking: the packed result carries no bits past the rows.
        let total: usize = packed.iter().map(|w| w.count_ones() as usize).sum();
        prop_assert_eq!(total, values.iter().filter(|&&v| p.matches(v)).count());
    }

    /// The pack itself is lossless at every width: each value reconstructs
    /// exactly from its MSB-first slices.
    #[test]
    fn bitweaving_pack_is_lossless_at_every_width(
        bits in 1usize..=32,
        values in proptest::collection::vec(any::<u32>(), 1..120),
    ) {
        let mask = if bits == 32 { u32::MAX } else { (1 << bits) - 1 };
        let values: Vec<u32> = values.iter().map(|&v| v & mask).collect();
        let col = BitSlicedColumn::from_values(&values, bits);
        for (row, &v) in values.iter().enumerate() {
            let mut rebuilt = 0u32;
            for j in 0..bits {
                let bit = col.slice(j)[row / 64] >> (row % 64) & 1;
                rebuilt |= (bit as u32) << (bits - 1 - j);
            }
            prop_assert_eq!(rebuilt, v, "row {}", row);
        }
    }
}
