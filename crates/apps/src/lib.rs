//! # ambit-apps — the application studies of the Ambit paper (Section 8)
//!
//! Each application runs *functionally* against the simulated Ambit device
//! from `ambit-core` and is cross-checked against a software reference;
//! execution times come from the controller's command receipts (Ambit side)
//! and the calibrated CPU model in `ambit-sys` (baseline side).
//!
//! * [`bitmap_index`] — database bitmap indices (Figure 10);
//! * [`bitweaving`] — BitWeaving-V predicate scans (Figure 11);
//! * [`setops`] + [`RbTree`] / [`BitSet`] / [`AmbitSetArena`] — set
//!   operations: red-black tree vs SIMD bitset vs Ambit (Figure 12);
//! * [`bitfunnel`] — Bloom-signature document filtering (Section 8.4.1);
//! * [`masked_init`] — in-DRAM masked initialization (Section 8.4.2);
//! * [`xorcipher`] — bulk XOR encryption (Section 8.4.3);
//! * [`dna`] — bit-parallel DNA read filtering (Section 8.4.4).
//!
//! # Example: a Figure 10 point
//!
//! ```
//! use ambit_apps::bitmap_index::{run_bitmap_index, BitmapIndexWorkload};
//! use ambit_core::AmbitMemory;
//! use ambit_dram::{AapMode, DramGeometry, TimingParams};
//! use ambit_sys::SystemConfig;
//!
//! let mem = AmbitMemory::new(
//!     DramGeometry { row_bytes: 512, rows_per_subarray: 64, ..DramGeometry::tiny() },
//!     TimingParams::ddr3_1600(),
//!     AapMode::Overlapped,
//! );
//! let workload = BitmapIndexWorkload::figure10(20_000, 2);
//! let result = run_bitmap_index(&SystemConfig::gem5_calibrated(), mem, &workload);
//! // Both paths computed the same answer; at this toy scale the bitmaps
//! // are cache-resident, so Ambit's win appears at paper-scale sizes.
//! assert!(result.ambit_s > 0.0 && result.baseline_s > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod amset;
pub mod arith;
pub mod bitfunnel;
pub mod bitmap_index;
mod bitset;
pub mod bitweaving;
pub mod dna;
pub mod masked_init;
mod rbtree;
pub mod setops;
pub mod synth_arith;
pub mod table;
mod wah;
pub mod xorcipher;

pub use amset::{AmbitSetArena, AmbitSetHandle};
pub use bitset::BitSet;
pub use rbtree::{Iter as RbTreeIter, RbTree};
pub use setops::{run_setop, SetOpResult, SetOperation, SetWorkload};
pub use wah::WahBitmap;
