//! Ambit-accelerated bitvector sets (paper Section 8.3).
//!
//! A set over domain `0..N` is an `N`-bit vector resident in Ambit memory;
//! union/intersection/difference execute as in-DRAM bulk bitwise
//! operations. Inserts and lookups are constant-time CPU accesses, exactly
//! as for the software [`BitSet`](crate::BitSet) — only the bulk set
//! algebra changes.

use ambit_core::{AmbitError, AmbitMemory, BitVectorHandle, BitwiseOp, OpReceipt};

/// Handle to one set stored in Ambit memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AmbitSetHandle(BitVectorHandle);

/// An arena of same-domain sets resident in one Ambit device.
///
/// # Examples
///
/// ```
/// use ambit_apps::AmbitSetArena;
/// use ambit_core::AmbitMemory;
/// use ambit_dram::{AapMode, DramGeometry, TimingParams};
///
/// let mem = AmbitMemory::new(
///     DramGeometry::tiny(),
///     TimingParams::ddr3_1600(),
///     AapMode::Overlapped,
/// );
/// let mut arena = AmbitSetArena::new(mem, 100);
/// let a = arena.new_set()?;
/// let b = arena.new_set()?;
/// arena.insert(a, 7)?;
/// arena.insert(b, 7)?;
/// arena.insert(b, 9)?;
/// let out = arena.new_set()?;
/// arena.intersection(out, a, b)?;
/// assert_eq!(arena.elements(out)?, vec![7]);
/// # Ok::<(), ambit_core::AmbitError>(())
/// ```
#[derive(Debug)]
pub struct AmbitSetArena {
    mem: AmbitMemory,
    domain: usize,
    /// One scratch vector for difference (holds the complement operand).
    scratch: Option<BitVectorHandle>,
}

impl AmbitSetArena {
    /// Creates an arena whose sets cover `0..domain`.
    ///
    /// Each set occupies `domain` bits rounded up to whole DRAM rows.
    pub fn new(mem: AmbitMemory, domain: usize) -> Self {
        assert!(domain > 0, "empty domain");
        AmbitSetArena {
            mem,
            domain,
            scratch: None,
        }
    }

    /// The set domain `N`.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// The underlying Ambit memory (timing/energy accounting).
    pub fn memory(&self) -> &AmbitMemory {
        &self.mem
    }

    /// Allocates an empty set.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] when the device is full.
    pub fn new_set(&mut self) -> Result<AmbitSetHandle, AmbitError> {
        let h = self.mem.alloc(self.padded_bits())?;
        Ok(AmbitSetHandle(h))
    }

    /// Inserts `value` (a CPU bit write).
    ///
    /// # Errors
    ///
    /// Propagates handle errors.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn insert(&mut self, set: AmbitSetHandle, value: usize) -> Result<(), AmbitError> {
        assert!(value < self.domain, "value {value} outside domain {}", self.domain);
        let mut bits = self.mem.peek_bits(set.0)?;
        bits[value] = true;
        self.mem.poke_bits(set.0, &bits)
    }

    /// Membership test (a CPU bit read).
    ///
    /// # Errors
    ///
    /// Propagates handle errors.
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside the domain.
    pub fn contains(&self, set: AmbitSetHandle, value: usize) -> Result<bool, AmbitError> {
        assert!(value < self.domain, "value {value} outside domain {}", self.domain);
        Ok(self.mem.peek_bits(set.0)?[value])
    }

    /// Bulk-loads a set from an element list (workload setup; backdoor).
    ///
    /// # Errors
    ///
    /// Propagates handle errors.
    pub fn load(&mut self, set: AmbitSetHandle, elements: &[usize]) -> Result<(), AmbitError> {
        let mut bits = vec![false; self.padded_bits()];
        for &v in elements {
            assert!(v < self.domain, "value {v} outside domain {}", self.domain);
            bits[v] = true;
        }
        self.mem.poke_bits(set.0, &bits)
    }

    /// `dst = a ∪ b`, in DRAM (one bulk OR).
    ///
    /// # Errors
    ///
    /// Propagates driver/controller errors.
    pub fn union(
        &mut self,
        dst: AmbitSetHandle,
        a: AmbitSetHandle,
        b: AmbitSetHandle,
    ) -> Result<OpReceipt, AmbitError> {
        self.mem.bitwise(BitwiseOp::Or, a.0, Some(b.0), dst.0)
    }

    /// `dst = a ∩ b`, in DRAM (one bulk AND).
    ///
    /// # Errors
    ///
    /// Propagates driver/controller errors.
    pub fn intersection(
        &mut self,
        dst: AmbitSetHandle,
        a: AmbitSetHandle,
        b: AmbitSetHandle,
    ) -> Result<OpReceipt, AmbitError> {
        self.mem.bitwise(BitwiseOp::And, a.0, Some(b.0), dst.0)
    }

    /// `dst = a \ b`, in DRAM (bulk NOT of `b` into scratch, then AND).
    ///
    /// # Errors
    ///
    /// Propagates driver/controller errors.
    pub fn difference(
        &mut self,
        dst: AmbitSetHandle,
        a: AmbitSetHandle,
        b: AmbitSetHandle,
    ) -> Result<OpReceipt, AmbitError> {
        let scratch = match self.scratch {
            Some(s) => s,
            None => {
                let s = self.mem.alloc(self.padded_bits())?;
                self.scratch = Some(s);
                s
            }
        };
        let mut receipt = self.mem.bitwise(BitwiseOp::Not, b.0, None, scratch)?;
        let and = self.mem.bitwise(BitwiseOp::And, a.0, Some(scratch), dst.0)?;
        receipt.absorb(&and);
        Ok(receipt)
    }

    /// Number of elements (CPU popcount over the vector, masked to the
    /// domain — complement bits in the row padding never leak in).
    ///
    /// # Errors
    ///
    /// Propagates handle errors.
    pub fn len(&self, set: AmbitSetHandle) -> Result<usize, AmbitError> {
        Ok(self.mem.peek_bits(set.0)?[..self.domain]
            .iter()
            .filter(|&&b| b)
            .count())
    }

    /// Elements in ascending order (CPU scan).
    ///
    /// # Errors
    ///
    /// Propagates handle errors.
    pub fn elements(&self, set: AmbitSetHandle) -> Result<Vec<usize>, AmbitError> {
        Ok(self.mem.peek_bits(set.0)?[..self.domain]
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect())
    }

    fn padded_bits(&self) -> usize {
        let row = self.mem.row_bits();
        self.domain.div_ceil(row) * row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeSet;

    fn arena(domain: usize) -> AmbitSetArena {
        let mem = AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        );
        AmbitSetArena::new(mem, domain)
    }

    #[test]
    fn insert_contains_roundtrip() {
        let mut a = arena(200);
        let s = a.new_set().unwrap();
        assert!(!a.contains(s, 42).unwrap());
        a.insert(s, 42).unwrap();
        assert!(a.contains(s, 42).unwrap());
        assert_eq!(a.len(s).unwrap(), 1);
    }

    #[test]
    fn set_algebra_matches_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let domain = 300;
        let xs: BTreeSet<usize> = (0..80).map(|_| rng.gen_range(0..domain)).collect();
        let ys: BTreeSet<usize> = (0..80).map(|_| rng.gen_range(0..domain)).collect();

        let mut a = arena(domain);
        let sx = a.new_set().unwrap();
        let sy = a.new_set().unwrap();
        a.load(sx, &xs.iter().copied().collect::<Vec<_>>()).unwrap();
        a.load(sy, &ys.iter().copied().collect::<Vec<_>>()).unwrap();

        let u = a.new_set().unwrap();
        a.union(u, sx, sy).unwrap();
        assert_eq!(
            a.elements(u).unwrap(),
            xs.union(&ys).copied().collect::<Vec<_>>()
        );

        let i = a.new_set().unwrap();
        a.intersection(i, sx, sy).unwrap();
        assert_eq!(
            a.elements(i).unwrap(),
            xs.intersection(&ys).copied().collect::<Vec<_>>()
        );

        let d = a.new_set().unwrap();
        a.difference(d, sx, sy).unwrap();
        assert_eq!(
            a.elements(d).unwrap(),
            xs.difference(&ys).copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn difference_padding_does_not_leak() {
        // NOT sets the padding bits beyond the domain; difference and len
        // must mask them.
        let mut a = arena(10);
        let x = a.new_set().unwrap();
        let y = a.new_set().unwrap();
        a.load(x, &[1, 2, 3]).unwrap();
        a.load(y, &[2]).unwrap();
        let d = a.new_set().unwrap();
        a.difference(d, x, y).unwrap();
        assert_eq!(a.elements(d).unwrap(), vec![1, 3]);
        assert_eq!(a.len(d).unwrap(), 2);
    }

    #[test]
    fn union_costs_one_bulk_or() {
        let mut a = arena(100);
        let x = a.new_set().unwrap();
        let y = a.new_set().unwrap();
        let d = a.new_set().unwrap();
        let receipt = a.union(d, x, y).unwrap();
        assert_eq!(receipt.aaps, 4, "one chunk × 4 AAPs for OR");
    }

    #[test]
    fn multiway_union_accumulates() {
        let mut a = arena(64);
        let acc = a.new_set().unwrap();
        for i in 0..5 {
            let s = a.new_set().unwrap();
            a.load(s, &[i * 10]).unwrap();
            a.union(acc, acc, s).unwrap();
        }
        assert_eq!(a.elements(acc).unwrap(), vec![0, 10, 20, 30, 40]);
    }
}
