//! Masked initialization in DRAM (paper Section 8.4.2).
//!
//! `dst = (dst & !mask) | (value & mask)` — useful e.g. for clearing one
//! color channel of an image whose planes live in memory. Expressed with
//! Ambit's bulk AND/OR/NOT, the whole merge runs inside DRAM.

use ambit_core::{AmbitError, AmbitMemory, BitVectorHandle, BitwiseOp, OpReceipt};

/// Performs `dst = (dst & !mask) | (value & mask)` with bulk in-DRAM
/// operations, using two scratch vectors from the same allocation group.
///
/// # Errors
///
/// Propagates driver/controller errors (size mismatches, co-location).
pub fn masked_init(
    mem: &mut AmbitMemory,
    dst: BitVectorHandle,
    value: BitVectorHandle,
    mask: BitVectorHandle,
    scratch: (BitVectorHandle, BitVectorHandle),
) -> Result<OpReceipt, AmbitError> {
    let (keep, take) = scratch;
    // keep = dst & !mask
    let mut receipt = mem.bitwise(BitwiseOp::Not, mask, None, keep)?;
    receipt.absorb(&mem.bitwise(BitwiseOp::And, dst, Some(keep), keep)?);
    // take = value & mask
    receipt.absorb(&mem.bitwise(BitwiseOp::And, value, Some(mask), take)?);
    // dst = keep | take
    receipt.absorb(&mem.bitwise(BitwiseOp::Or, keep, Some(take), dst)?);
    Ok(receipt)
}

/// A tiny raster of 1-bit planes stored in Ambit memory, demonstrating
/// masked clears/fills on image data (the paper's graphics motivation).
#[derive(Debug)]
pub struct BitPlaneImage {
    mem: AmbitMemory,
    plane: BitVectorHandle,
    scratch: (BitVectorHandle, BitVectorHandle),
    mask: BitVectorHandle,
    value: BitVectorHandle,
    width: usize,
    height: usize,
    padded: usize,
}

impl BitPlaneImage {
    /// Creates a `width × height` 1-bit image, all zeros.
    ///
    /// # Panics
    ///
    /// Panics if the device lacks capacity.
    pub fn new(mut mem: AmbitMemory, width: usize, height: usize) -> Self {
        let bits = width * height;
        let row = mem.row_bits();
        let padded = bits.div_ceil(row) * row;
        let plane = mem.alloc(padded).expect("capacity");
        let s0 = mem.alloc(padded).expect("capacity");
        let s1 = mem.alloc(padded).expect("capacity");
        let mask = mem.alloc(padded).expect("capacity");
        let value = mem.alloc(padded).expect("capacity");
        BitPlaneImage {
            mem,
            plane,
            scratch: (s0, s1),
            mask,
            value,
            width,
            height,
            padded,
        }
    }

    /// Pixel accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> bool {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.mem.peek_bits(self.plane).expect("plane")[y * self.width + x]
    }

    /// Host-side pixel write (setup).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_pixel(&mut self, x: usize, y: usize, v: bool) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let mut bits = self.mem.peek_bits(self.plane).expect("plane");
        bits[y * self.width + x] = v;
        self.mem.poke_bits(self.plane, &bits).expect("plane");
    }

    /// Sets every pixel in the axis-aligned rectangle to `fill`, using one
    /// in-DRAM masked initialization.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the image.
    pub fn fill_rect(&mut self, x0: usize, y0: usize, w: usize, h: usize, fill: bool) -> OpReceipt {
        assert!(x0 + w <= self.width && y0 + h <= self.height, "rect out of bounds");
        let mut mask_bits = vec![false; self.padded];
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                mask_bits[y * self.width + x] = true;
            }
        }
        self.mem.poke_bits(self.mask, &mask_bits).expect("mask");
        let value_bits = vec![fill; self.padded];
        self.mem.poke_bits(self.value, &value_bits).expect("value");
        masked_init(&mut self.mem, self.plane, self.value, self.mask, self.scratch)
            .expect("masked init")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn mem() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    #[test]
    fn masked_init_merges_correctly() {
        let mut m = mem();
        let bits = m.row_bits();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let dst_v: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
        let val_v: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
        let mask_v: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

        let dst = m.alloc(bits).unwrap();
        let val = m.alloc(bits).unwrap();
        let mask = m.alloc(bits).unwrap();
        let s0 = m.alloc(bits).unwrap();
        let s1 = m.alloc(bits).unwrap();
        m.poke_bits(dst, &dst_v).unwrap();
        m.poke_bits(val, &val_v).unwrap();
        m.poke_bits(mask, &mask_v).unwrap();

        masked_init(&mut m, dst, val, mask, (s0, s1)).unwrap();
        let got = m.peek_bits(dst).unwrap();
        for i in 0..bits {
            let expect = if mask_v[i] { val_v[i] } else { dst_v[i] };
            assert_eq!(got[i], expect, "bit {i}");
        }
    }

    #[test]
    fn fill_rect_touches_only_the_rectangle() {
        let m = mem();
        let mut img = BitPlaneImage::new(m, 16, 8);
        img.set_pixel(0, 0, true);
        img.fill_rect(4, 2, 8, 4, true);
        assert!(img.pixel(0, 0), "outside pixel preserved");
        assert!(img.pixel(4, 2) && img.pixel(11, 5), "corners filled");
        assert!(!img.pixel(3, 2) && !img.pixel(12, 5), "borders untouched");
        // Clear a sub-rectangle.
        img.fill_rect(6, 3, 2, 2, false);
        assert!(!img.pixel(6, 3) && !img.pixel(7, 4));
        assert!(img.pixel(5, 3), "outside the clear remains set");
    }

    #[test]
    fn masked_init_is_a_handful_of_bulk_ops() {
        let m = mem();
        let mut img = BitPlaneImage::new(m, 8, 8);
        let receipt = img.fill_rect(0, 0, 8, 8, true);
        // not + and + and + or = 2 + 4 + 4 + 4 = 14 AAPs for one chunk.
        assert_eq!(receipt.aaps, 14);
    }
}
