//! Masked initialization in DRAM (paper Section 8.4.2).
//!
//! `dst = (dst & !mask) | (value & mask)` — useful e.g. for clearing one
//! color channel of an image whose planes live in memory. Expressed with
//! Ambit's bulk AND/OR/NOT, the whole merge runs inside DRAM.

use ambit_core::{AmbitError, AmbitMemory, BitVectorHandle, BitwiseOp, OpReceipt};

/// Performs `dst = (dst & !mask) | (value & mask)` with bulk in-DRAM
/// operations, using two scratch vectors from the same allocation group.
///
/// # Errors
///
/// Propagates driver/controller errors (size mismatches, co-location).
pub fn masked_init(
    mem: &mut AmbitMemory,
    dst: BitVectorHandle,
    value: BitVectorHandle,
    mask: BitVectorHandle,
    scratch: (BitVectorHandle, BitVectorHandle),
) -> Result<OpReceipt, AmbitError> {
    let (keep, take) = scratch;
    // keep = dst & !mask
    let mut receipt = mem.bitwise(BitwiseOp::Not, mask, None, keep)?;
    receipt.absorb(&mem.bitwise(BitwiseOp::And, dst, Some(keep), keep)?);
    // take = value & mask
    receipt.absorb(&mem.bitwise(BitwiseOp::And, value, Some(mask), take)?);
    // dst = keep | take
    receipt.absorb(&mem.bitwise(BitwiseOp::Or, keep, Some(take), dst)?);
    Ok(receipt)
}

/// A tiny raster of 1-bit planes stored in Ambit memory, demonstrating
/// masked clears/fills on image data (the paper's graphics motivation).
#[derive(Debug)]
pub struct BitPlaneImage {
    mem: AmbitMemory,
    plane: BitVectorHandle,
    scratch: (BitVectorHandle, BitVectorHandle),
    mask: BitVectorHandle,
    value: BitVectorHandle,
    width: usize,
    height: usize,
    padded: usize,
}

impl BitPlaneImage {
    /// Creates a `width × height` 1-bit image, all zeros.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] if the device lacks capacity
    /// for the plane and its scratch vectors.
    pub fn new(mut mem: AmbitMemory, width: usize, height: usize) -> Result<Self, AmbitError> {
        let bits = width * height;
        let row = mem.row_bits();
        let padded = bits.div_ceil(row) * row;
        let plane = mem.alloc(padded)?;
        let s0 = mem.alloc(padded)?;
        let s1 = mem.alloc(padded)?;
        let mask = mem.alloc(padded)?;
        let value = mem.alloc(padded)?;
        Ok(BitPlaneImage {
            mem,
            plane,
            scratch: (s0, s1),
            mask,
            value,
            width,
            height,
            padded,
        })
    }

    /// Pixel accessor.
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> Result<bool, AmbitError> {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        Ok(self.mem.peek_bits(self.plane)?[y * self.width + x])
    }

    /// Host-side pixel write (setup).
    ///
    /// # Errors
    ///
    /// Propagates driver errors.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set_pixel(&mut self, x: usize, y: usize, v: bool) -> Result<(), AmbitError> {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let mut bits = self.mem.peek_bits(self.plane)?;
        bits[y * self.width + x] = v;
        self.mem.poke_bits(self.plane, &bits)
    }

    /// Sets every pixel in the axis-aligned rectangle to `fill`, using one
    /// in-DRAM masked initialization.
    ///
    /// # Errors
    ///
    /// Propagates driver errors from the in-DRAM merge.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle exceeds the image.
    pub fn fill_rect(
        &mut self,
        x0: usize,
        y0: usize,
        w: usize,
        h: usize,
        fill: bool,
    ) -> Result<OpReceipt, AmbitError> {
        assert!(x0 + w <= self.width && y0 + h <= self.height, "rect out of bounds");
        let mut mask_bits = vec![false; self.padded];
        for y in y0..y0 + h {
            for x in x0..x0 + w {
                mask_bits[y * self.width + x] = true;
            }
        }
        self.mem.poke_bits(self.mask, &mask_bits)?;
        let value_bits = vec![fill; self.padded];
        self.mem.poke_bits(self.value, &value_bits)?;
        masked_init(&mut self.mem, self.plane, self.value, self.mask, self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn mem() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry::tiny(),
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    #[test]
    fn masked_init_merges_correctly() {
        let mut m = mem();
        let bits = m.row_bits();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let dst_v: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
        let val_v: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();
        let mask_v: Vec<bool> = (0..bits).map(|_| rng.gen()).collect();

        let dst = m.alloc(bits).unwrap();
        let val = m.alloc(bits).unwrap();
        let mask = m.alloc(bits).unwrap();
        let s0 = m.alloc(bits).unwrap();
        let s1 = m.alloc(bits).unwrap();
        m.poke_bits(dst, &dst_v).unwrap();
        m.poke_bits(val, &val_v).unwrap();
        m.poke_bits(mask, &mask_v).unwrap();

        masked_init(&mut m, dst, val, mask, (s0, s1)).unwrap();
        let got = m.peek_bits(dst).unwrap();
        for i in 0..bits {
            let expect = if mask_v[i] { val_v[i] } else { dst_v[i] };
            assert_eq!(got[i], expect, "bit {i}");
        }
    }

    #[test]
    fn fill_rect_touches_only_the_rectangle() {
        let m = mem();
        let mut img = BitPlaneImage::new(m, 16, 8).unwrap();
        img.set_pixel(0, 0, true).unwrap();
        img.fill_rect(4, 2, 8, 4, true).unwrap();
        assert!(img.pixel(0, 0).unwrap(), "outside pixel preserved");
        assert!(img.pixel(4, 2).unwrap() && img.pixel(11, 5).unwrap(), "corners filled");
        assert!(!img.pixel(3, 2).unwrap() && !img.pixel(12, 5).unwrap(), "borders untouched");
        // Clear a sub-rectangle.
        img.fill_rect(6, 3, 2, 2, false).unwrap();
        assert!(!img.pixel(6, 3).unwrap() && !img.pixel(7, 4).unwrap());
        assert!(img.pixel(5, 3).unwrap(), "outside the clear remains set");
    }

    #[test]
    fn masked_init_is_a_handful_of_bulk_ops() {
        let m = mem();
        let mut img = BitPlaneImage::new(m, 8, 8).unwrap();
        let receipt = img.fill_rect(0, 0, 8, 8, true).unwrap();
        // not + and + and + or = 2 + 4 + 4 + 4 = 14 AAPs for one chunk.
        assert_eq!(receipt.aaps, 14);
    }

    /// Regression: an image too large for the device used to panic inside
    /// `BitPlaneImage::new` ("capacity"); it must surface the typed
    /// out-of-memory error instead.
    #[test]
    fn oversized_image_returns_out_of_memory() {
        // tiny(): 2 banks x 2 subarrays x 14 data rows x 128 bits =
        // 7168 data bits; a 4096-pixel plane needs 5 x 4096 bits.
        let err = BitPlaneImage::new(mem(), 64, 64).unwrap_err();
        assert!(
            matches!(err, AmbitError::OutOfMemory { .. }),
            "expected OutOfMemory, got {err:?}"
        );
    }
}
