//! BitWeaving(-V): fast predicate scans on bit-sliced columns — the
//! paper's Section 8.2 (Figure 11), after Li & Patel (SIGMOD'13).
//!
//! A column of `b`-bit integers is stored *vertically*: slice `j` holds bit
//! `j` (MSB first) of every value, packed contiguously. The predicate
//! `c1 <= v <= c2` is evaluated with only bitwise operations over the
//! slices, processing one bit position of every row in parallel:
//!
//! ```text
//! for j in MSB..LSB:               // v < c, column-wide
//!     lt |= eq & !v_j   (when c_j = 1)
//!     eq &= (c_j ? v_j : !v_j)
//! ```
//!
//! The baseline executes this with 128-bit SIMD; Ambit executes the same
//! dataflow as bulk in-DRAM operations (the slices are row-aligned
//! bitvectors), leaving only the final `count(*)` popcount on the CPU.

use ambit_core::{AmbitError, AmbitMemory, BitVectorHandle, BitwiseOp, OpReceipt};
use ambit_sys::SystemConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A column predicate over unsigned integers, evaluated slice-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// `val < c`
    Lt(u32),
    /// `val <= c`
    Le(u32),
    /// `val > c`
    Gt(u32),
    /// `val >= c`
    Ge(u32),
    /// `val == c`
    Eq(u32),
    /// `val != c`
    Ne(u32),
    /// `c1 <= val <= c2`
    Between(u32, u32),
}

impl Predicate {
    /// Evaluates the predicate on one value (the naive reference).
    pub fn matches(&self, v: u32) -> bool {
        match *self {
            Predicate::Lt(c) => v < c,
            Predicate::Le(c) => v <= c,
            Predicate::Gt(c) => v > c,
            Predicate::Ge(c) => v >= c,
            Predicate::Eq(c) => v == c,
            Predicate::Ne(c) => v != c,
            Predicate::Between(c1, c2) => v >= c1 && v <= c2,
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Predicate::Lt(c) => write!(f, "val < {c}"),
            Predicate::Le(c) => write!(f, "val <= {c}"),
            Predicate::Gt(c) => write!(f, "val > {c}"),
            Predicate::Ge(c) => write!(f, "val >= {c}"),
            Predicate::Eq(c) => write!(f, "val == {c}"),
            Predicate::Ne(c) => write!(f, "val != {c}"),
            Predicate::Between(c1, c2) => write!(f, "{c1} <= val <= {c2}"),
        }
    }
}

/// A bit-sliced (vertical) column of unsigned integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSlicedColumn {
    /// Number of rows (values).
    rows: usize,
    /// Bits per value.
    bits: usize,
    /// `slices[j][w]`: word `w` of the bit-`j` slice; `j = 0` is the MSB.
    slices: Vec<Vec<u64>>,
}

impl BitSlicedColumn {
    /// Builds the vertical layout from row-major `values`.
    ///
    /// # Panics
    ///
    /// Panics if any value needs more than `bits` bits or `bits` is 0
    /// or > 64.
    pub fn from_values(values: &[u32], bits: usize) -> Self {
        assert!(bits > 0 && bits <= 32, "bits per value in 1..=32");
        let words = values.len().div_ceil(64);
        let mut slices = vec![vec![0u64; words]; bits];
        for (row, &v) in values.iter().enumerate() {
            assert!(
                bits == 32 || v < (1 << bits),
                "value {v} does not fit in {bits} bits"
            );
            for (j, slice) in slices.iter_mut().enumerate() {
                // Slice 0 is the most significant bit.
                if v >> (bits - 1 - j) & 1 == 1 {
                    slice[row / 64] |= 1 << (row % 64);
                }
            }
        }
        BitSlicedColumn {
            rows: values.len(),
            bits,
            slices,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bits per value.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The packed slice for bit `j` (0 = MSB).
    pub fn slice(&self, j: usize) -> &[u64] {
        &self.slices[j]
    }

    /// Total bytes of the vertical layout (the scan's working set).
    pub fn bytes(&self) -> usize {
        self.bits * self.rows.div_ceil(64) * 8
    }

    /// One BitWeaving pass: computes the packed `(v < c, v == c)` vectors
    /// by walking the slices MSB-first (Li & Patel's core recurrence).
    pub fn lt_eq_slices(&self, c: u32) -> (Vec<u64>, Vec<u64>) {
        let words = self.rows.div_ceil(64);
        let mut lt = vec![0u64; words];
        let mut eq = vec![u64::MAX; words];
        for j in 0..self.bits {
            let slice = &self.slices[j];
            let c_bit = c >> (self.bits - 1 - j) & 1 == 1;
            for w in 0..words {
                let v = slice[w];
                if c_bit {
                    lt[w] |= eq[w] & !v;
                    eq[w] &= v;
                } else {
                    eq[w] &= !v;
                }
            }
        }
        (lt, eq)
    }

    fn mask_tail(&self, out: &mut [u64]) {
        if !self.rows.is_multiple_of(64) {
            let words = self.rows.div_ceil(64);
            out[words - 1] &= (1u64 << (self.rows % 64)) - 1;
        }
    }

    /// Software (SIMD-style) evaluation of any [`Predicate`]; returns the
    /// packed result bitvector. This is both the baseline implementation
    /// and the reference the Ambit path is checked against.
    pub fn scan(&self, predicate: Predicate) -> Vec<u64> {
        let words = self.rows.div_ceil(64);
        let mut out = vec![0u64; words];
        match predicate {
            Predicate::Lt(c) => {
                let (lt, _) = self.lt_eq_slices(c);
                out.copy_from_slice(&lt);
            }
            Predicate::Le(c) => {
                let (lt, eq) = self.lt_eq_slices(c);
                for w in 0..words {
                    out[w] = lt[w] | eq[w];
                }
            }
            Predicate::Gt(c) => {
                let (lt, eq) = self.lt_eq_slices(c);
                for w in 0..words {
                    out[w] = !(lt[w] | eq[w]);
                }
            }
            Predicate::Ge(c) => {
                let (lt, _) = self.lt_eq_slices(c);
                for w in 0..words {
                    out[w] = !lt[w];
                }
            }
            Predicate::Eq(c) => {
                let (_, eq) = self.lt_eq_slices(c);
                out.copy_from_slice(&eq);
            }
            Predicate::Ne(c) => {
                let (_, eq) = self.lt_eq_slices(c);
                for w in 0..words {
                    out[w] = !eq[w];
                }
            }
            Predicate::Between(c1, c2) => {
                let (lt1, _) = self.lt_eq_slices(c1);
                let (lt2, eq2) = self.lt_eq_slices(c2);
                for w in 0..words {
                    out[w] = !lt1[w] & (lt2[w] | eq2[w]);
                }
            }
        }
        self.mask_tail(&mut out);
        out
    }

    /// Software evaluation of `c1 <= v <= c2` (the Figure 11 predicate).
    pub fn scan_between(&self, c1: u32, c2: u32) -> Vec<u64> {
        self.scan(Predicate::Between(c1, c2))
    }
}

/// Handles for the column's slices and scratch vectors in Ambit memory.
#[derive(Debug)]
pub struct AmbitColumn {
    slices: Vec<BitVectorHandle>,
    rows: usize,
    bits: usize,
    padded: usize,
}

impl AmbitColumn {
    /// Loads a bit-sliced column into Ambit memory (workload setup).
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] if the device lacks capacity
    /// and propagates other driver errors.
    pub fn load(mem: &mut AmbitMemory, column: &BitSlicedColumn) -> Result<Self, AmbitError> {
        let row_bits = mem.row_bits();
        let padded = column.rows().div_ceil(row_bits) * row_bits;
        let mut slices = Vec::with_capacity(column.bits());
        for j in 0..column.bits() {
            let h = mem.alloc(padded)?;
            let words = column.slice(j);
            let bits: Vec<bool> = (0..padded)
                .map(|i| i < column.rows() && (words[i / 64] >> (i % 64)) & 1 == 1)
                .collect();
            mem.poke_bits(h, &bits)?;
            slices.push(h);
        }
        Ok(AmbitColumn {
            slices,
            rows: column.rows(),
            bits: column.bits(),
            padded,
        })
    }

    /// One in-DRAM BitWeaving pass: leaves the packed `(v < c, v == c)`
    /// vectors in `lt`/`eq`, sharing the `not_v`/`tmp` scratch handles.
    #[allow(clippy::too_many_arguments)] // a pass is naturally (c, lt, eq, scratch×2, acc)
    fn lt_eq_pass(
        &self,
        mem: &mut AmbitMemory,
        c: u32,
        lt: BitVectorHandle,
        eq: BitVectorHandle,
        not_v: BitVectorHandle,
        tmp: BitVectorHandle,
        total: &mut Option<OpReceipt>,
    ) -> Result<(), AmbitError> {
        let run = |mem: &mut AmbitMemory,
                   op: BitwiseOp,
                   a: BitVectorHandle,
                   b: Option<BitVectorHandle>,
                   d: BitVectorHandle,
                   total: &mut Option<OpReceipt>|
         -> Result<(), AmbitError> {
            let r = mem.bitwise(op, a, b, d)?;
            match total {
                Some(t) => t.absorb(&r),
                None => *total = Some(r),
            }
            Ok(())
        };
        run(mem, BitwiseOp::InitZero, lt, None, lt, total)?;
        run(mem, BitwiseOp::InitOne, eq, None, eq, total)?;
        for j in 0..self.bits {
            let v = self.slices[j];
            let c_bit = c >> (self.bits - 1 - j) & 1 == 1;
            run(mem, BitwiseOp::Not, v, None, not_v, total)?;
            if c_bit {
                run(mem, BitwiseOp::And, eq, Some(not_v), tmp, total)?;
                run(mem, BitwiseOp::Or, lt, Some(tmp), lt, total)?;
                run(mem, BitwiseOp::And, eq, Some(v), eq, total)?;
            } else {
                run(mem, BitwiseOp::And, eq, Some(not_v), eq, total)?;
            }
        }
        Ok(())
    }

    /// Evaluates any [`Predicate`] entirely with bulk in-DRAM operations.
    /// Returns the predicate match count and the controller receipt
    /// spanning the whole scan.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] if the device lacks capacity
    /// for the scratch vectors and propagates other driver errors.
    pub fn scan(
        &self,
        mem: &mut AmbitMemory,
        predicate: Predicate,
    ) -> Result<(usize, OpReceipt), AmbitError> {
        let (count, receipt, _) = self.scan_with_result(mem, predicate)?;
        Ok((count, receipt))
    }

    /// As [`scan`](Self::scan), but also returns the handle of the packed
    /// result bitvector left in Ambit memory — so multi-column engines can
    /// AND partial results without a round trip (see
    /// [`AmbitTable`](crate::table::AmbitTable)).
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] if the device lacks capacity
    /// for the scratch vectors and propagates other driver errors.
    pub fn scan_with_result(
        &self,
        mem: &mut AmbitMemory,
        predicate: Predicate,
    ) -> Result<(usize, OpReceipt, BitVectorHandle), AmbitError> {
        let padded = self.padded;
        let lt1 = mem.alloc(padded)?;
        let eq1 = mem.alloc(padded)?;
        let not_v = mem.alloc(padded)?;
        let tmp = mem.alloc(padded)?;
        let out = mem.alloc(padded)?;

        let mut total: Option<OpReceipt> = None;
        let run = |mem: &mut AmbitMemory,
                   op: BitwiseOp,
                   a: BitVectorHandle,
                   b: Option<BitVectorHandle>,
                   d: BitVectorHandle,
                   total: &mut Option<OpReceipt>|
         -> Result<(), AmbitError> {
            let r = mem.bitwise(op, a, b, d)?;
            match total {
                Some(t) => t.absorb(&r),
                None => *total = Some(r),
            }
            Ok(())
        };

        match predicate {
            Predicate::Lt(c) => {
                self.lt_eq_pass(mem, c, lt1, eq1, not_v, tmp, &mut total)?;
                run(mem, BitwiseOp::Copy, lt1, None, out, &mut total)?;
            }
            Predicate::Le(c) => {
                self.lt_eq_pass(mem, c, lt1, eq1, not_v, tmp, &mut total)?;
                run(mem, BitwiseOp::Or, lt1, Some(eq1), out, &mut total)?;
            }
            Predicate::Gt(c) => {
                self.lt_eq_pass(mem, c, lt1, eq1, not_v, tmp, &mut total)?;
                run(mem, BitwiseOp::Nor, lt1, Some(eq1), out, &mut total)?;
            }
            Predicate::Ge(c) => {
                self.lt_eq_pass(mem, c, lt1, eq1, not_v, tmp, &mut total)?;
                run(mem, BitwiseOp::Not, lt1, None, out, &mut total)?;
            }
            Predicate::Eq(c) => {
                self.lt_eq_pass(mem, c, lt1, eq1, not_v, tmp, &mut total)?;
                run(mem, BitwiseOp::Copy, eq1, None, out, &mut total)?;
            }
            Predicate::Ne(c) => {
                self.lt_eq_pass(mem, c, lt1, eq1, not_v, tmp, &mut total)?;
                run(mem, BitwiseOp::Not, eq1, None, out, &mut total)?;
            }
            Predicate::Between(c1, c2) => {
                let lt2 = mem.alloc(padded)?;
                let eq2 = mem.alloc(padded)?;
                self.lt_eq_pass(mem, c1, lt1, eq1, not_v, tmp, &mut total)?;
                self.lt_eq_pass(mem, c2, lt2, eq2, not_v, tmp, &mut total)?;
                // out = !lt1 & (lt2 | eq2)
                run(mem, BitwiseOp::Or, lt2, Some(eq2), tmp, &mut total)?;
                run(mem, BitwiseOp::Not, lt1, None, not_v, &mut total)?;
                run(mem, BitwiseOp::And, tmp, Some(not_v), out, &mut total)?;
            }
        }

        let receipt = total.expect("every predicate arm issues at least one op");
        // count(*): CPU popcount over the logical rows only.
        let bits = mem.peek_bits(out)?;
        let count = bits[..self.rows].iter().filter(|&&b| b).count();
        Ok((count, receipt, out))
    }

    /// Evaluates `c1 <= v <= c2` in DRAM (the Figure 11 predicate).
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] if the device lacks capacity
    /// for the scratch vectors and propagates other driver errors.
    pub fn scan_between(
        &self,
        mem: &mut AmbitMemory,
        c1: u32,
        c2: u32,
    ) -> Result<(usize, OpReceipt), AmbitError> {
        self.scan(mem, Predicate::Between(c1, c2))
    }
}

/// Parameters of one Figure 11 data point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitWeavingWorkload {
    /// Rows in the table (paper: 1 M – 8 M).
    pub rows: usize,
    /// Bits per column value (paper: 4 – 32 in steps of 4).
    pub bits: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BitWeavingWorkload {
    /// Generates the column values and a predicate selecting ~⅓ of rows.
    pub fn generate(&self) -> (Vec<u32>, u32, u32) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let max = if self.bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        };
        let values: Vec<u32> = (0..self.rows).map(|_| rng.gen_range(0..=max)).collect();
        let c1 = max / 3;
        let c2 = 2 * (max / 3);
        (values, c1, c2)
    }
}

/// Outcome of one Figure 11 data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitWeavingResult {
    /// Baseline (SIMD CPU) scan time, seconds.
    pub baseline_s: f64,
    /// Ambit scan time (in-DRAM ops + CPU count), seconds.
    pub ambit_s: f64,
    /// Cross-checked predicate match count.
    pub matches: usize,
}

impl BitWeavingResult {
    /// Speedup of Ambit over the baseline (the y-axis of Figure 11).
    pub fn speedup(&self) -> f64 {
        self.baseline_s / self.ambit_s
    }
}

/// Runs one Figure 11 data point: functional execution of both paths
/// (cross-checked) plus timing.
///
/// # Errors
///
/// Propagates driver errors (device capacity, co-location).
///
/// # Panics
///
/// Panics if the two paths disagree on the match count.
pub fn run_bitweaving(
    config: &SystemConfig,
    mut mem: AmbitMemory,
    workload: &BitWeavingWorkload,
) -> Result<BitWeavingResult, AmbitError> {
    let (values, c1, c2) = workload.generate();
    let column = BitSlicedColumn::from_values(&values, workload.bits);

    // Reference / baseline functional result.
    let reference = column.scan_between(c1, c2);
    let ref_count = reference.iter().map(|w| w.count_ones() as usize).sum::<usize>();

    // Baseline timing: one streaming pass over the vertical layout plus
    // the fused predicate compute (~4 word-ops per slice word) and count.
    let col_bytes = column.bytes();
    let result_bytes = workload.rows.div_ceil(8);
    let baseline_s = config.stream_time_s(col_bytes + result_bytes, 4 * col_bytes, col_bytes)
        + config.popcount_time_s(result_bytes, col_bytes);

    // Ambit execution.
    let acol = AmbitColumn::load(&mut mem, &column)?;
    let (count, receipt) = acol.scan_between(&mut mem, c1, c2)?;
    assert_eq!(count, ref_count, "Ambit scan disagrees with reference");
    let ambit_s = receipt.latency_ps() as f64 * 1e-12
        + config.popcount_time_s(result_bytes, col_bytes);

    Ok(BitWeavingResult {
        baseline_s,
        ambit_s,
        matches: count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};

    fn small_mem() -> AmbitMemory {
        AmbitMemory::new(
            DramGeometry {
                banks: 4,
                subarrays_per_bank: 4,
                rows_per_subarray: 128,
                row_bytes: 256,
                ..DramGeometry::tiny()
            },
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        )
    }

    #[test]
    fn vertical_layout_roundtrips_bits() {
        let values = vec![0b1011u32, 0b0000, 0b1111, 0b0100];
        let col = BitSlicedColumn::from_values(&values, 4);
        // MSB slice: values with bit 3 set → rows 0, 2.
        assert_eq!(col.slice(0)[0], 0b0101);
        // LSB slice: rows with odd values → rows 0, 2.
        assert_eq!(col.slice(3)[0], 0b0101);
        assert_eq!(col.rows(), 4);
        assert_eq!(col.bits(), 4);
    }

    #[test]
    fn software_scan_matches_naive_filter() {
        let w = BitWeavingWorkload {
            rows: 3000,
            bits: 9,
            seed: 3,
        };
        let (values, c1, c2) = w.generate();
        let col = BitSlicedColumn::from_values(&values, w.bits);
        let got = col.scan_between(c1, c2);
        for (row, &v) in values.iter().enumerate() {
            let expect = v >= c1 && v <= c2;
            let bit = got[row / 64] >> (row % 64) & 1 == 1;
            assert_eq!(bit, expect, "row {row} value {v} range [{c1}, {c2}]");
        }
    }

    #[test]
    fn scan_edge_constants() {
        let values: Vec<u32> = (0..128).collect();
        let col = BitSlicedColumn::from_values(&values, 8);
        // Full range selects everything.
        let all = col.scan_between(0, 255);
        assert_eq!(all.iter().map(|w| w.count_ones()).sum::<u32>(), 128);
        // Empty range (c1 > max value present in column's selected window).
        let none = col.scan_between(200, 255);
        assert_eq!(none.iter().map(|w| w.count_ones()).sum::<u32>(), 0);
        // Point query.
        let one = col.scan_between(77, 77);
        assert_eq!(one.iter().map(|w| w.count_ones()).sum::<u32>(), 1);
    }

    #[test]
    fn ambit_scan_matches_software_scan() {
        let w = BitWeavingWorkload {
            rows: 4000,
            bits: 6,
            seed: 11,
        };
        let r = run_bitweaving(&SystemConfig::gem5_calibrated(), small_mem(), &w).unwrap();
        // ~1/3 selectivity.
        assert!(
            (r.matches as f64 / 4000.0 - 0.33).abs() < 0.1,
            "selectivity {}",
            r.matches
        );
    }

    #[test]
    fn speedup_increases_with_bits_per_column() {
        // Paper: "the performance improvement of Ambit increases with
        // increasing number of bits per column". Needs paper-scale rows:
        // Ambit's advantage is the 8 KB row width.
        let cfg = SystemConfig::gem5_calibrated();
        let module = || AmbitMemory::ddr3_module();
        let narrow = run_bitweaving(
            &cfg,
            module(),
            &BitWeavingWorkload { rows: 512 * 1024, bits: 4, seed: 1 },
        )
        .unwrap();
        let wide = run_bitweaving(
            &cfg,
            module(),
            &BitWeavingWorkload { rows: 512 * 1024, bits: 16, seed: 1 },
        )
        .unwrap();
        assert!(
            wide.speedup() > narrow.speedup(),
            "wide {} vs narrow {}",
            wide.speedup(),
            narrow.speedup()
        );
        assert!(wide.speedup() > 1.0, "Ambit wins at 16 bits: {}", wide.speedup());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_values_rejected() {
        BitSlicedColumn::from_values(&[16], 4);
    }

    #[test]
    fn all_predicates_match_naive_in_software() {
        let w = BitWeavingWorkload { rows: 2000, bits: 10, seed: 21 };
        let (values, _, _) = w.generate();
        let col = BitSlicedColumn::from_values(&values, w.bits);
        let preds = [
            Predicate::Lt(300),
            Predicate::Le(300),
            Predicate::Gt(300),
            Predicate::Ge(300),
            Predicate::Eq(values[7]),
            Predicate::Ne(values[7]),
            Predicate::Between(100, 700),
        ];
        for p in preds {
            let got = col.scan(p);
            for (row, &v) in values.iter().enumerate() {
                let bit = got[row / 64] >> (row % 64) & 1 == 1;
                assert_eq!(bit, p.matches(v), "{p} row {row} value {v}");
            }
        }
    }

    #[test]
    fn all_predicates_match_in_dram() {
        let w = BitWeavingWorkload { rows: 1500, bits: 8, seed: 22 };
        let (values, _, _) = w.generate();
        let col = BitSlicedColumn::from_values(&values, w.bits);
        let preds = [
            Predicate::Lt(100),
            Predicate::Le(100),
            Predicate::Gt(100),
            Predicate::Ge(100),
            Predicate::Eq(values[3]),
            Predicate::Ne(values[3]),
            Predicate::Between(64, 192),
        ];
        for p in preds {
            let mut mem = small_mem();
            let acol = AmbitColumn::load(&mut mem, &col).unwrap();
            let (count, _) = acol.scan(&mut mem, p).unwrap();
            let expect = values.iter().filter(|&&v| p.matches(v)).count();
            assert_eq!(count, expect, "{p}");
        }
    }

    #[test]
    fn complementary_predicates_partition_the_column() {
        let w = BitWeavingWorkload { rows: 1000, bits: 6, seed: 23 };
        let (values, _, _) = w.generate();
        let col = BitSlicedColumn::from_values(&values, w.bits);
        let mut mem = small_mem();
        let acol = AmbitColumn::load(&mut mem, &col).unwrap();
        let (lt, _) = acol.scan(&mut mem, Predicate::Lt(30)).unwrap();
        let (ge, _) = acol.scan(&mut mem, Predicate::Ge(30)).unwrap();
        assert_eq!(lt + ge, 1000, "Lt and Ge partition every row");
        let (eq, _) = acol.scan(&mut mem, Predicate::Eq(30)).unwrap();
        let (ne, _) = acol.scan(&mut mem, Predicate::Ne(30)).unwrap();
        assert_eq!(eq + ne, 1000);
    }
}
