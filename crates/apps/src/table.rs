//! A multi-column scan engine on bit-sliced storage — the direction of
//! WideTable (Li & Patel, VLDB'14), which the paper's introduction cites
//! as "an entire database designed around BitWeaving". Conjunctive
//! predicates evaluate column by column; the per-column result bitvectors
//! combine with bulk ANDs, which is exactly where Ambit slots in.

use ambit_core::{AmbitError, AmbitMemory, BitwiseOp, OpReceipt};

use crate::bitweaving::{AmbitColumn, BitSlicedColumn, Predicate};

/// A table of bit-sliced integer columns.
#[derive(Debug)]
pub struct BitWeavingTable {
    columns: Vec<BitSlicedColumn>,
    names: Vec<String>,
    rows: usize,
}

/// One conjunct of a query: a predicate on a named column.
#[derive(Debug, Clone)]
pub struct ColumnPredicate {
    /// Column name.
    pub column: String,
    /// The predicate.
    pub predicate: Predicate,
}

impl BitWeavingTable {
    /// Creates an empty table with `rows` rows.
    pub fn new(rows: usize) -> Self {
        BitWeavingTable {
            columns: Vec::new(),
            names: Vec::new(),
            rows,
        }
    }

    /// Adds a column from row-major values.
    ///
    /// # Panics
    ///
    /// Panics if the value count differs from the table's row count, the
    /// name is duplicated, or values exceed `bits`.
    pub fn add_column(&mut self, name: &str, values: &[u32], bits: usize) -> &mut Self {
        assert_eq!(values.len(), self.rows, "column length mismatch");
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate column {name}"
        );
        self.columns.push(BitSlicedColumn::from_values(values, bits));
        self.names.push(name.to_string());
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    fn column(&self, name: &str) -> &BitSlicedColumn {
        let idx = self
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("no column named {name}"));
        &self.columns[idx]
    }

    /// Software execution of `select count(*) where p1 AND p2 AND …`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown column or empty predicate list.
    pub fn count_where(&self, predicates: &[ColumnPredicate]) -> usize {
        assert!(!predicates.is_empty(), "query needs at least one predicate");
        let words = self.rows.div_ceil(64);
        let mut acc = vec![u64::MAX; words];
        for p in predicates {
            let result = self.column(&p.column).scan(p.predicate);
            for w in 0..words {
                acc[w] &= result[w];
            }
        }
        if !self.rows.is_multiple_of(64) {
            acc[words - 1] &= (1u64 << (self.rows % 64)) - 1;
        }
        acc.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `select value, count(*) group by column` for a low-cardinality
    /// column: one equality scan per distinct value, each a pure bitwise
    /// pass — the group-by idiom of bit-sliced engines.
    ///
    /// # Panics
    ///
    /// Panics on an unknown column or a column wider than 16 bits (the
    /// scan-per-value strategy only makes sense for low cardinality).
    pub fn group_count(&self, column: &str) -> Vec<(u32, usize)> {
        let col = self.column(column);
        assert!(
            col.bits() <= 16,
            "group_count is for low-cardinality columns (≤16 bits)"
        );
        let max = (1u32 << col.bits()) - 1;
        (0..=max)
            .filter_map(|v| {
                let result = col.scan(Predicate::Eq(v));
                let count: usize = result.iter().map(|w| w.count_ones() as usize).sum();
                (count > 0).then_some((v, count))
            })
            .collect()
    }

    /// Naive row-at-a-time reference (for testing): evaluates every
    /// predicate on every row.
    pub fn count_where_naive(&self, predicates: &[ColumnPredicate]) -> usize {
        (0..self.rows)
            .filter(|&row| {
                predicates.iter().all(|p| {
                    let col = self.column(&p.column);
                    let mut v = 0u32;
                    for j in 0..col.bits() {
                        let bit = col.slice(j)[row / 64] >> (row % 64) & 1;
                        v |= (bit as u32) << (col.bits() - 1 - j);
                    }
                    p.predicate.matches(v)
                })
            })
            .count()
    }
}

/// The same table resident in Ambit memory: per-column slice handles plus
/// an accumulator for conjunctive queries.
#[derive(Debug)]
pub struct AmbitTable {
    columns: Vec<AmbitColumn>,
    names: Vec<String>,
    rows: usize,
}

impl AmbitTable {
    /// Loads every column of `table` into Ambit memory.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] if the device lacks capacity
    /// and propagates other driver errors.
    pub fn load(mem: &mut AmbitMemory, table: &BitWeavingTable) -> Result<Self, AmbitError> {
        let columns = table
            .columns
            .iter()
            .map(|c| AmbitColumn::load(mem, c))
            .collect::<Result<_, _>>()?;
        Ok(AmbitTable {
            columns,
            names: table.names.clone(),
            rows: table.rows,
        })
    }

    /// In-DRAM execution of `select count(*) where p1 AND p2 AND …`:
    /// each per-column predicate runs as an in-DRAM scan, the partial
    /// results AND together with bulk operations, and the final count is
    /// a CPU popcount.
    ///
    /// # Errors
    ///
    /// Returns [`AmbitError::OutOfMemory`] if the device lacks capacity
    /// for the scans and propagates other driver errors.
    ///
    /// # Panics
    ///
    /// Panics on unknown columns or an empty predicate list (API misuse,
    /// not a runtime condition).
    pub fn count_where(
        &self,
        mem: &mut AmbitMemory,
        predicates: &[ColumnPredicate],
    ) -> Result<(usize, OpReceipt), AmbitError> {
        assert!(!predicates.is_empty(), "query needs at least one predicate");
        let mut receipt: Option<OpReceipt> = None;
        let mut acc: Option<ambit_core::BitVectorHandle> = None;

        for p in predicates {
            let idx = self
                .names
                .iter()
                .position(|n| n == &p.column)
                .unwrap_or_else(|| panic!("no column named {}", p.column));
            let (_, scan_receipt, result) =
                self.columns[idx].scan_with_result(mem, p.predicate)?;
            match &mut receipt {
                Some(r) => r.absorb(&scan_receipt),
                None => receipt = Some(scan_receipt),
            }
            acc = Some(match acc {
                None => result,
                Some(acc_h) => {
                    let r = mem.bitwise(BitwiseOp::And, acc_h, Some(result), acc_h)?;
                    receipt.as_mut().expect("set above").absorb(&r);
                    acc_h
                }
            });
        }

        let acc = acc.expect("at least one predicate");
        let bits = mem.peek_bits(acc)?;
        let count = bits[..self.rows].iter().filter(|&&b| b).count();
        Ok((count, receipt.expect("at least one scan")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ambit_dram::{AapMode, DramGeometry, TimingParams};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn sample_table(rows: usize, seed: u64) -> BitWeavingTable {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let age: Vec<u32> = (0..rows).map(|_| rng.gen_range(0..100)).collect();
        let income: Vec<u32> = (0..rows).map(|_| rng.gen_range(0..4096)).collect();
        let region: Vec<u32> = (0..rows).map(|_| rng.gen_range(0..8)).collect();
        let mut t = BitWeavingTable::new(rows);
        t.add_column("age", &age, 7)
            .add_column("income", &income, 12)
            .add_column("region", &region, 3);
        t
    }

    fn query() -> Vec<ColumnPredicate> {
        vec![
            ColumnPredicate { column: "age".into(), predicate: Predicate::Between(18, 65) },
            ColumnPredicate { column: "income".into(), predicate: Predicate::Ge(1000) },
            ColumnPredicate { column: "region".into(), predicate: Predicate::Eq(3) },
        ]
    }

    #[test]
    fn software_scan_matches_naive() {
        let t = sample_table(3000, 1);
        assert_eq!(t.count_where(&query()), t.count_where_naive(&query()));
    }

    #[test]
    fn single_predicate_queries() {
        let t = sample_table(1000, 2);
        let q = vec![ColumnPredicate {
            column: "region".into(),
            predicate: Predicate::Lt(4),
        }];
        let count = t.count_where(&q);
        assert_eq!(count, t.count_where_naive(&q));
        // Uniform over 8 regions: about half.
        assert!((count as f64 / 1000.0 - 0.5).abs() < 0.1);
    }

    #[test]
    fn ambit_table_matches_software() {
        let t = sample_table(2000, 3);
        let mut mem = AmbitMemory::new(
            DramGeometry {
                banks: 2,
                subarrays_per_bank: 4,
                rows_per_subarray: 128,
                row_bytes: 256,
                ..DramGeometry::tiny()
            },
            TimingParams::ddr3_1600(),
            AapMode::Overlapped,
        );
        let at = AmbitTable::load(&mut mem, &t).unwrap();
        let (count, receipt) = at.count_where(&mut mem, &query()).unwrap();
        assert_eq!(count, t.count_where_naive(&query()));
        assert!(receipt.aaps > 0);
    }

    #[test]
    fn conjunction_narrows_monotonically() {
        let t = sample_table(2000, 4);
        let q = query();
        let c1 = t.count_where(&q[..1]);
        let c2 = t.count_where(&q[..2]);
        let c3 = t.count_where(&q);
        assert!(c1 >= c2 && c2 >= c3);
        assert!(c3 > 0, "query should select something at 2000 rows");
    }

    #[test]
    fn group_count_partitions_the_table() {
        let t = sample_table(2000, 6);
        let groups = t.group_count("region");
        let total: usize = groups.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 2000, "every row belongs to exactly one group");
        assert_eq!(groups.len(), 8, "uniform over 8 regions at 2000 rows");
        for &(v, count) in &groups {
            let q = vec![ColumnPredicate {
                column: "region".into(),
                predicate: Predicate::Eq(v),
            }];
            assert_eq!(count, t.count_where_naive(&q), "group {v}");
        }
    }

    #[test]
    #[should_panic(expected = "low-cardinality")]
    fn group_count_rejects_wide_columns() {
        let mut t = BitWeavingTable::new(4);
        t.add_column("wide", &[0, 1, 2, 3], 20);
        t.group_count("wide");
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn unknown_column_panics() {
        let t = sample_table(100, 5);
        t.count_where(&[ColumnPredicate {
            column: "salary".into(),
            predicate: Predicate::Lt(1),
        }]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_column_panics() {
        let mut t = BitWeavingTable::new(4);
        t.add_column("a", &[0, 1, 2, 3], 2);
        t.add_column("a", &[0, 1, 2, 3], 2);
    }
}
